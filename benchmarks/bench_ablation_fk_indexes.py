"""Ablation A6 — foreign-key indexes under TPC-H's correlated subqueries.

Not a Phoenix design decision but an engine one the evaluation leans on:
Q4/Q17/Q20/Q21's correlated subqueries re-probe lineitem per outer row.
With the customary FK indexes those probes are hash lookups; without them
each probe is a full scan.  This bench pins the gap (and explains why the
workload's DDL creates the indexes, like every real TPC-H kit).
"""

from __future__ import annotations

import pytest

import repro
from repro.workloads.tpch.datagen import generate, load
from repro.workloads.tpch.queries import query_sql

SF = 0.0005
CORRELATED = ["Q4", "Q17", "Q20"]


def build(indexes: bool):
    system = repro.make_system()
    data = generate(sf=SF, seed=9)
    session = system.server.connect(user="loader")

    def execute(sql: str):
        system.server.execute(session, sql)

    from repro.workloads.tpch.schema import ddl_statements

    for ddl in ddl_statements(indexes=indexes):
        execute(ddl)
    # reuse load()'s row insertion only (schema already created)
    from repro.workloads.tpch.datagen import _render_value

    for table, rows in data.rows.items():
        for start in range(0, len(rows), 500):
            chunk = rows[start : start + 500]
            values = ", ".join(
                "(" + ", ".join(_render_value(v) for v in row) + ")" for row in chunk
            )
            execute(f"INSERT INTO {table} VALUES {values}")
    system.server.disconnect(session)
    return system, data


@pytest.fixture(scope="module")
def systems():
    return {True: build(True), False: build(False)}


@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "scan"])
@pytest.mark.parametrize("query_id", CORRELATED)
def test_correlated_query(benchmark, systems, indexed, query_id):
    system, data = systems[indexed]
    connection = system.plain.connect(system.DSN)
    cursor = connection.cursor()
    sql = query_sql(query_id, data.sf)

    def run():
        cursor.execute(sql)
        return cursor.fetchall()

    rows = benchmark(run)
    assert isinstance(rows, list)
    connection.close()


def test_indexes_give_order_of_magnitude(systems):
    import time

    timings = {}
    for indexed in (True, False):
        system, data = systems[indexed]
        connection = system.plain.connect(system.DSN)
        cursor = connection.cursor()
        started = time.perf_counter()
        for query_id in CORRELATED:
            cursor.execute(query_sql(query_id, data.sf))
            cursor.fetchall()
        timings[indexed] = time.perf_counter() - started
        connection.close()
    assert timings[True] < timings[False] / 3, timings
