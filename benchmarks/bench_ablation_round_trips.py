"""Ablation A5 — wire round trips per query, native vs Phoenix.

Wall-clock on an in-process wire hides the network; round-trip counts do
not.  Phoenix's steady-state query cost is a *fixed* number of extra round
trips (metadata probe, result-table DDL, server-side fill, delivery open),
so its network overhead is independent of data size — the structural reason
Table 1's ratio approaches 1 as queries grow.  This bench pins the counts
and projects the overhead at representative RTTs.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_round_trip_accounting

QUERIES = ["Q1", "Q6", "Q16"]


@pytest.fixture(scope="module")
def accounting():
    return {row.name: row for row in run_round_trip_accounting(queries=QUERIES)}


def test_native_query_is_one_round_trip(accounting):
    assert all(row.native_trips == 1 for row in accounting.values())


def test_phoenix_fixed_round_trip_overhead(accounting):
    """Probe + DDL + fill + open: exactly 4 trips, for every query."""
    assert all(row.phoenix_trips == 4 for row in accounting.values())


def test_phoenix_bytes_scale_with_result_not_with_protocol(accounting):
    # Q1 returns 6 wide rows, Q16 ~30; phoenix bytes stay within a small
    # constant factor of native (the data dominates, not the mechanism)
    for row in accounting.values():
        assert row.phoenix_bytes < 6 * row.native_bytes + 5000, vars(row)


@pytest.mark.parametrize("rtt_ms", [1.0, 30.0])
def test_projected_overhead_is_fixed_per_query(accounting, rtt_ms):
    rtt = rtt_ms / 1000.0
    overheads = {
        name: row.projected_overhead_seconds(rtt) for name, row in accounting.items()
    }
    # same fixed overhead regardless of the query
    assert len(set(round(v, 9) for v in overheads.values())) == 1


def test_round_trip_accounting_benchmark(benchmark):
    rows = benchmark.pedantic(
        lambda: run_round_trip_accounting(queries=["Q6"]), rounds=2
    )
    assert rows[0].phoenix_trips > rows[0].native_trips
