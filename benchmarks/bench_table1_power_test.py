"""Table 1 — TPC-H power test: native ODBC vs Phoenix/ODBC (paper §4).

Regenerates the paper's per-query comparison.  Each benchmark entry times
one query (or refresh function) through one driver manager; the paired
entries are the two timing columns of Table 1, and the
``test_table1_overhead_shape`` assertions pin the paper's headline claims:

* total query overhead is modest (paper: ≈1%; we allow a generous bound —
  a micro-scale engine pays proportionally more fixed cost per query);
* update overhead is small (paper: <0.5%);
* every query returns identical rows through both managers (transparency).

The full rendered table: ``python -m repro.bench.reporting table1``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_table1_power_comparison
from repro.workloads.tpch.power import run_power_test
from repro.workloads.tpch.queries import query_sql

#: the subset benchmarked per-query under pytest-benchmark (the named rows
#: of the paper's Table 1 excerpt); the full suite runs via the harness.
NAMED_QUERIES = ["Q1", "Q6", "Q11", "Q16"]


@pytest.mark.parametrize("query_id", NAMED_QUERIES)
def test_table1_query_native(benchmark, tpch_system, query_id):
    system, data = tpch_system
    connection = system.plain.connect(system.DSN)
    sql = query_sql(query_id, data.sf)
    cursor = connection.cursor()

    def run():
        cursor.execute(sql)
        return cursor.fetchall()

    rows = benchmark(run)
    assert rows is not None
    connection.close()


@pytest.mark.parametrize("query_id", NAMED_QUERIES)
def test_table1_query_phoenix(benchmark, tpch_system, query_id):
    system, data = tpch_system
    connection = system.phoenix.connect(system.DSN)
    sql = query_sql(query_id, data.sf)
    cursor = connection.cursor()

    def run():
        cursor.execute(sql)
        return cursor.fetchall()

    rows = benchmark(run)
    assert rows is not None
    connection.close()


@pytest.mark.parametrize("manager_name", ["native", "phoenix"])
def test_table1_refresh_functions(benchmark, tpch_system, manager_name):
    """RF1 + RF2 (with undo, so every round sees the same data)."""
    system, data = tpch_system
    manager = system.plain if manager_name == "native" else system.phoenix

    def run():
        connection = manager.connect(system.DSN)
        report = run_power_test(connection, data, queries=[])
        connection.close()
        return report

    report = benchmark(run)
    assert report.total_update_seconds >= 0


def test_table1_overhead_shape(tpch_system):
    """The paper's Table 1 claims, as assertions on a fresh comparison."""
    system, data = tpch_system
    rows = run_table1_power_comparison(system=system, data=data, repetitions=2)
    by_name = {r.name: r for r in rows}

    total_query = by_name["Total Query"]
    assert total_query.ratio < 1.6, (
        f"Phoenix query overhead ratio {total_query.ratio:.2f} is far above "
        "the paper's 'modest overhead' claim"
    )
    total_updates = by_name["Total Updates"]
    assert total_updates.ratio < 2.0

    # transparency: identical results through both managers
    native = system.plain.connect(system.DSN)
    phoenix = system.phoenix.connect(system.DSN)
    for query_id in NAMED_QUERIES:
        sql = query_sql(query_id, data.sf)
        native_rows = native.cursor().execute(sql).fetchall()
        phoenix_rows = phoenix.cursor().execute(sql).fetchall()
        assert native_rows == phoenix_rows, f"{query_id} differs under Phoenix"
    native.close()
    phoenix.close()
