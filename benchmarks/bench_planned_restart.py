"""Experiment PR — planned restarts (drain + swap) vs hard crashes.

The paper recovers sessions from *unplanned* failures (§1, §3); the same
ride-through machinery also makes *planned* maintenance invisible.  An
operator calls ``drain_and_restart()`` under a 16-client UPDATE workload:
in-flight statements finish (or are bounced retryably at the drain
deadline), the engine is checkpointed and swapped, and every Phoenix
session rides through on ordinary session recovery.  The crash baseline
kills the same server the same number of times; clients there pay failure
detection plus ping backoff before recovering.

Expected shape: zero client-visible errors in both phases (Phoenix masks
both), but the planned phase's p99 latency stays strictly below the crash
baseline's — an advertised pause beats an unannounced death.
"""

from __future__ import annotations

from repro.bench.harness import run_planned_restart


def test_planned_restart_zero_errors_and_bounded_pause():
    result = run_planned_restart(clients=16, ops_per_client=30, restarts=2)

    assert result.client_errors == 0, "planned restart leaked errors to clients"
    assert result.fingerprints_match, "planned vs crash durable state diverged"
    assert result.drains_completed == 2
    assert result.sessions_ridden_through >= 16, (
        "every client session should ride through each drain"
    )
    assert result.planned_p99 < result.crash_p99, (
        f"planned p99 {result.planned_p99 * 1e3:.2f} ms should beat crash "
        f"baseline {result.crash_p99 * 1e3:.2f} ms"
    )
    assert result.max_pause_seconds > 0.0


def test_planned_restart_benchmark(benchmark):
    def run():
        return run_planned_restart(clients=8, ops_per_client=20, restarts=1)

    result = benchmark.pedantic(run, rounds=2)
    assert result.client_errors == 0
    assert result.fingerprints_match
