"""Scale trend — Phoenix's Table 1 overhead ratio converges to 1 with scale.

Phoenix's per-query costs (extra round trips, the server-side fill) are
fixed or O(result size), while query compute grows with the data.  The
paper measured ≈1% at SF 1; our micro scales sit higher, and this bench
pins the *trend* connecting the two: quadrupling the scale factor moves the
scan-bound ratio from ~1.4 toward ~1.0.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_table1_power_comparison

SCAN_BOUND = ["Q1", "Q3", "Q6", "Q10", "Q12", "Q14", "Q16"]
SCALES = [0.0005, 0.002]


def ratio_at(sf: float, repetitions: int = 2) -> float:
    rows = run_table1_power_comparison(sf=sf, repetitions=repetitions, queries=SCAN_BOUND)
    return next(r for r in rows if r.name == "Total Query").ratio


def test_overhead_ratio_shrinks_with_scale():
    small = ratio_at(SCALES[0])
    large = ratio_at(SCALES[1])
    print(f"\nratio at sf={SCALES[0]}: {small:.3f}; at sf={SCALES[1]}: {large:.3f}")
    # generous margin: timing noise exists, but a 4x scale step should
    # clearly shrink the relative overhead
    assert large < small + 0.05, (small, large)
    assert large < 1.5


@pytest.mark.parametrize("sf", SCALES)
def test_power_subset_benchmark(benchmark, sf):
    result = benchmark.pedantic(lambda: ratio_at(sf, repetitions=1), rounds=1)
    assert result > 0
