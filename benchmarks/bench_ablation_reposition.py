"""Ablation A3 — server-side vs client-side result repositioning.

Paper §4, Figure 2 discussion: recovery repositions the result "using a
stored procedure that advances to a specified tuple, hence advancing
through the result set on the server without passing tuples to the
client."  The ablation re-fetches the whole materialized result and
discards the delivered prefix client-side instead, making the saved wire
traffic visible.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import PhoenixConfig
from repro.errors import CommunicationError

ROWS = 4_000
DELIVERED = 3_900  # deep into the result: repositioning cost is maximal


def _prepared_connection(reposition_server_side: bool):
    system = repro.make_system()
    loader = system.server.connect()
    system.server.execute(loader, "CREATE TABLE rep_rows (k INT PRIMARY KEY, v FLOAT)")
    for start in range(0, ROWS, 1000):
        values = ", ".join(
            f"({k}, {k * 0.25})" for k in range(start + 1, min(start + 1001, ROWS + 1))
        )
        system.server.execute(loader, f"INSERT INTO rep_rows VALUES {values}")
    system.server.checkpoint()
    system.server.disconnect(loader)

    config = PhoenixConfig(reposition_server_side=reposition_server_side)
    connection = system.phoenix.connect(system.DSN, config=config)
    connection.config.sleep = lambda _s: None
    cursor = connection.cursor()
    cursor.execute("SELECT k, v FROM rep_rows ORDER BY k")
    cursor.fetchmany(DELIVERED)
    return system, connection, cursor


@pytest.mark.parametrize("mode", ["server_side", "client_side"])
def test_reposition(benchmark, mode):
    server_side = mode == "server_side"

    def setup():
        system, connection, cursor = _prepared_connection(server_side)
        system.server.crash()
        system.endpoint.restart_server()
        return (system, connection, cursor), {}

    def recover(system, connection, cursor):
        connection.recovery.recover(CommunicationError("bench crash"))
        tail = cursor.fetchall()
        connection.close()
        return tail

    tail = benchmark.pedantic(recover, setup=setup, rounds=3)
    assert len(tail) == ROWS - DELIVERED


def test_reposition_wire_traffic():
    """Server-side repositioning ships (almost) no rows; client-side
    re-ships the whole result."""
    received = {}
    for mode, flag in (("server", True), ("client", False)):
        system, connection, cursor = _prepared_connection(flag)
        system.server.crash()
        system.endpoint.restart_server()
        before = system.metrics.bytes_received
        connection.recovery.recover(CommunicationError("bench crash"))
        received[mode] = system.metrics.bytes_received - before
        tail = cursor.fetchall()
        assert len(tail) == ROWS - DELIVERED
        connection.close()
    assert received["server"] < received["client"] / 5, received
