"""Ablation A1 — server-side stored-procedure materialization vs shipping
every row to the client and INSERTing it back.

Paper §3, Result Sets step 3: "The advantage of using a stored procedure is
that all data is moved locally at the server ... rather than having data
moving across the network."  The ablation makes that advantage measurable:
time, round trips, and bytes on the wire for the same materialization.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import PhoenixConfig
from repro.sql import parse

ROWS = 2_000
SQL = "SELECT k, v, v * 2 AS v2 FROM abl_rows WHERE k <= 100000"


def _system():
    system = repro.make_system()
    loader = system.server.connect()
    system.server.execute(loader, "CREATE TABLE abl_rows (k INT PRIMARY KEY, v FLOAT)")
    for start in range(0, ROWS, 1000):
        values = ", ".join(
            f"({k}, {k * 0.5})" for k in range(start + 1, min(start + 1001, ROWS + 1))
        )
        system.server.execute(loader, f"INSERT INTO abl_rows VALUES {values}")
    system.server.disconnect(loader)
    return system


@pytest.fixture(scope="module")
def systems():
    return {"proc": _system(), "client": _system()}


@pytest.mark.parametrize("mode", ["proc", "client"])
def test_materialize(benchmark, systems, mode):
    system = systems[mode]
    config = PhoenixConfig(materialize_via_procedure=(mode == "proc"))
    connection = system.phoenix.connect(system.DSN, config=config)
    select = parse(SQL)

    def run():
        return connection.materialize_default(parse(SQL))

    state = benchmark(run)
    assert state.table
    connection.close()


def test_materialize_round_trips_and_bytes():
    """The design's point, asserted: the stored-procedure path costs far
    fewer round trips and orders of magnitude fewer bytes than round-
    tripping the rows."""
    costs = {}
    for mode in ("proc", "client"):
        system = _system()
        config = PhoenixConfig(materialize_via_procedure=(mode == "proc"))
        connection = system.phoenix.connect(system.DSN, config=config)
        before = (system.metrics.round_trips, system.metrics.bytes_sent)
        connection.materialize_default(parse(SQL))
        after = (system.metrics.round_trips, system.metrics.bytes_sent)
        costs[mode] = (after[0] - before[0], after[1] - before[1])
        connection.close()
    proc_trips, proc_bytes = costs["proc"]
    client_trips, client_bytes = costs["client"]
    assert proc_trips < client_trips / 5, (costs,)
    assert proc_bytes < client_bytes / 10, (costs,)
