"""Shared fixtures for the benchmark suite.

One populated TPC-H system per session (scale factor chosen for seconds-
scale total runtime); benches that crash servers build their own systems.
"""

from __future__ import annotations

import pytest

import repro
from repro.workloads.tpch.datagen import populate

BENCH_SF = 0.001
BENCH_SEED = 42


@pytest.fixture(scope="session")
def tpch_system():
    """A system with TPC-H loaded; shared by read-only benchmarks."""
    system = repro.make_system()
    data = populate(system, sf=BENCH_SF, seed=BENCH_SEED)
    return system, data


@pytest.fixture()
def fresh_system():
    """A small private system for benchmarks that crash the server."""
    system = repro.make_system()
    return system
