"""Ablation — statement/plan cache on vs off.

The engine re-parsed and re-planned every statement before the cache layer
landed; the paper's evaluation is dominated by *repeated* statement texts
(TPC-H power loops, Phoenix's doubled statement traffic).  This ablation
runs the same two workloads with caches enabled and disabled and checks
three things:

1. cache-on is faster than cache-off on both workloads,
2. the EngineMetrics counters show the caches actually ran hot, and
3. the result fingerprints are bit-identical — caching is unobservable
   except in the counters.
"""

from __future__ import annotations

import pytest

import repro
from repro.bench.harness import run_plan_cache_ablation
from repro.workloads.tpch.queries import query_sql

QUERIES = ["Q1", "Q3", "Q6", "Q12", "Q14"]
REPETITIONS = 5


@pytest.fixture(scope="module")
def ablation():
    runs = run_plan_cache_ablation(repetitions=REPETITIONS, queries=QUERIES)
    return {(run.workload, run.cache): run for run in runs}


@pytest.mark.parametrize("workload", ["tpch_power", "phoenix_trace"])
def test_cache_on_beats_cache_off(ablation, workload):
    on = ablation[(workload, "on")]
    off = ablation[(workload, "off")]
    assert on.seconds < off.seconds, (
        f"{workload}: cache-on {on.seconds:.4f}s not faster than "
        f"cache-off {off.seconds:.4f}s"
    )


@pytest.mark.parametrize("workload", ["tpch_power", "phoenix_trace"])
def test_results_identical_on_vs_off(ablation, workload):
    assert ablation[(workload, "on")].fingerprint == ablation[(workload, "off")].fingerprint


def test_caches_ran_hot_when_enabled(ablation):
    on = ablation[("tpch_power", "on")]
    assert on.metrics["parse_hit_rate"] > 0.5
    assert on.metrics["plan_hits"] > 0
    trace_on = ablation[("phoenix_trace", "on")]
    assert trace_on.metrics["parse_hits"] > 0


def test_counters_stay_zero_when_disabled(ablation):
    for workload in ("tpch_power", "phoenix_trace"):
        off = ablation[(workload, "off")]
        assert off.metrics["parse_hits"] == 0
        assert off.metrics["plan_hits"] == 0
        assert off.metrics["plan_invalidations"] == 0


@pytest.mark.parametrize("plan_cache", [True, False], ids=["cache_on", "cache_off"])
def test_repeated_query_throughput(benchmark, plan_cache):
    """pytest-benchmark view of the same effect: one hot TPC-H query."""
    from repro.workloads.tpch.datagen import populate

    system = repro.make_system(plan_cache=plan_cache)
    data = populate(system, sf=0.001, seed=42)
    connection = system.plain.connect(system.DSN)
    cursor = connection.cursor()
    sql = query_sql("Q6", data.sf)

    def hot_query():
        cursor.execute(sql)
        return cursor.fetchall()

    rows = benchmark(hot_query)
    assert rows  # Q6 aggregates to one row
    connection.close()
