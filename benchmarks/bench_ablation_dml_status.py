"""Ablation A4 — the DML status-table wrapper on vs off.

Paper §3, Data Modification Statements: "the primary overhead for data
modification statements is the creation of a transaction and a write to
the status table."  Table 1 found that overhead negligible (<0.5%).  The
ablation measures it directly — and the companion test shows what the
wrapper *buys*: exactly-once semantics across a lost commit reply, which
the unwrapped configuration cannot provide.
"""

from __future__ import annotations

import itertools

import pytest

import repro
from repro.core import PhoenixConfig
from repro.net import FaultKind

_key = itertools.count(1_000_000)


@pytest.fixture(scope="module")
def systems():
    out = {}
    for mode, flag in (("wrapped", True), ("unwrapped", False)):
        system = repro.make_system()
        loader = system.server.connect()
        system.server.execute(
            loader, "CREATE TABLE dml_rows (k INT PRIMARY KEY, v FLOAT)"
        )
        system.server.disconnect(loader)
        connection = system.phoenix.connect(
            system.DSN, config=PhoenixConfig(persist_dml_status=flag)
        )
        out[mode] = (system, connection)
    return out


@pytest.mark.parametrize("mode", ["wrapped", "unwrapped"])
def test_dml_insert(benchmark, systems, mode):
    _system, connection = systems[mode]
    cursor = connection.cursor()

    def insert():
        key = next(_key)
        cursor.execute(f"INSERT INTO dml_rows VALUES ({key}, 1.5)")
        return cursor.rowcount

    rowcount = benchmark(insert)
    assert rowcount == 1


def test_wrapper_buys_exactly_once():
    """With the wrapper, a lost commit reply is resolved via the status
    table probe — the statement applies exactly once.  Without it, Phoenix
    must re-execute blindly; for this INSERT that surfaces as a duplicate-
    key error reaching the application."""
    # wrapped: exactly once
    system = repro.make_system()
    loader = system.server.connect()
    system.server.execute(loader, "CREATE TABLE t (k INT PRIMARY KEY)")
    system.server.disconnect(loader)
    connection = system.phoenix.connect(system.DSN)
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    cursor = connection.cursor()
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "INSERT INTO t")
    cursor.execute("INSERT INTO t VALUES (1)")
    assert cursor.rowcount == 1
    cursor.execute("SELECT count(*) AS n FROM t")
    assert cursor.fetchone() == (1,)
    assert connection.stats.probe_hits == 1
    connection.close()
