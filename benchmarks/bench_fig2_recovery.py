"""Figure 2 — elapsed time for session recovery over varying result sizes.

The paper's experiment: run a query, fetch to near the end, kill the
server, restart it, and time Phoenix recovering the session and answering
the outstanding fetch — split into the *virtual session* phase (constant,
0.37 s in the paper) and the *SQL state* phase (repositioning, grows with
the result).  §4 also claims recovery costs "less than a tenth of the time
required to simply recompute" the query; we assert the weaker shape
(recovery strictly cheaper than recompute) and record the measured ratio in
EXPERIMENTS.md.

Full series: ``python -m repro.bench.reporting fig2``.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.bench.harness import run_fig2_recovery_sweep
from repro.errors import CommunicationError

RESULT_SIZES = [100, 1000, 2500]
TABLE_ROWS = 12_000


def _build_system(table_rows: int = TABLE_ROWS):
    system = repro.make_system()
    loader = system.server.connect(user="loader")
    system.server.execute(loader, "CREATE TABLE bench_rows (k INT PRIMARY KEY, v FLOAT)")
    for start in range(0, table_rows, 1000):
        values = ", ".join(
            f"({k}, {(k % 97) * 1.5})"
            for k in range(start + 1, min(start + 1001, table_rows + 1))
        )
        system.server.execute(loader, f"INSERT INTO bench_rows VALUES {values}")
    system.server.checkpoint()
    system.server.disconnect(loader)
    return system


def _sql(size: int) -> str:
    return (
        f"SELECT k % {size} AS bucket, sum(v) AS total, avg(v) AS mean, count(*) AS n "
        f"FROM bench_rows GROUP BY k % {size} ORDER BY bucket"
    )


@pytest.fixture(scope="module")
def fig2_system():
    return _build_system()


@pytest.mark.parametrize("size", RESULT_SIZES)
def test_fig2_session_recovery(benchmark, fig2_system, size):
    """Time one full Phoenix session recovery at a given result size."""
    system = fig2_system

    def setup():
        connection = system.phoenix.connect(system.DSN)
        connection.config.sleep = lambda _s: None
        cursor = connection.cursor()
        cursor.execute(_sql(size))
        cursor.fetchmany(size - 5)
        system.server.crash()
        system.endpoint.restart_server()
        return (connection, cursor), {}

    def recover(connection, cursor):
        connection.recovery.recover(CommunicationError("bench crash"))
        tail = cursor.fetchall()
        connection.close()
        return tail

    tail = benchmark.pedantic(recover, setup=setup, rounds=3)
    assert len(tail) == 5


@pytest.mark.parametrize("size", RESULT_SIZES)
def test_fig2_recompute_baseline(benchmark, fig2_system, size):
    """The comparison bar: re-running the query natively + redelivery."""
    system = fig2_system
    connection = system.plain.connect(system.DSN)
    cursor = connection.cursor()
    sql = _sql(size)

    def recompute():
        cursor.execute(sql)
        return cursor.fetchall()

    rows = benchmark(recompute)
    assert len(rows) == size
    connection.close()


def test_fig2_shape():
    """Pin the figure's qualitative claims on one fresh sweep:

    * virtual-session recovery time is independent of result size;
    * total recovery beats recomputation at every size.
    """
    series = run_fig2_recovery_sweep(
        result_sizes=[100, 1000, 2500], table_rows=TABLE_ROWS
    )
    virtuals = [p.virtual_session_seconds for p in series.points]
    assert max(virtuals) < 0.1, "virtual session recovery should be near-instant"
    # size-independence: the largest result's virtual phase is within an
    # order of magnitude of the smallest's (absolute values are sub-ms)
    assert max(virtuals) < 10 * max(min(virtuals), 1e-4)
    for point in series.points:
        assert point.recovery_seconds < point.recompute_seconds, (
            f"recovery ({point.recovery_seconds:.4f}s) should beat recompute "
            f"({point.recompute_seconds:.4f}s) at size {point.result_size}"
        )


def test_fig2_recovery_vs_recompute_ratio():
    """§4's stronger claim, on the compute-heavy end: with a large detail
    table and the paper's ~2500-row result, recovery costs a small fraction
    of recomputation."""
    series = run_fig2_recovery_sweep(result_sizes=[2500], table_rows=20_000)
    point = series.points[0]
    assert point.recovery_vs_recompute < 0.75, (
        f"recovery/recompute = {point.recovery_vs_recompute:.2f}"
    )
