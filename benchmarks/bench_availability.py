"""Experiment AV — application availability under periodic server crashes.

The paper's opening problem statement, quantified: "database applications
may lose work because of a server failure ... This prevents masking server
failures and degrades application availability" (§1).  We run identical
order-entry session traces through the plain ODBC stack and through
Phoenix/ODBC while the server crashes on every Nth request, and count the
sessions that complete.  Server downtime is identical on both sides (the
operator restarts it immediately); only the *application's* fate differs.

Expected shape: native availability drops with crash frequency; Phoenix
stays at 100% — that is the paper's whole point.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_availability_experiment

SESSIONS = 20


@pytest.mark.parametrize("crash_every", [15, 40])
def test_availability_comparison(crash_every):
    results = run_availability_experiment(sessions=SESSIONS, crash_every=crash_every)
    native = results["native"]
    phoenix = results["phoenix"]

    assert phoenix.availability == 1.0, (
        f"Phoenix lost sessions: {phoenix.sessions_completed}/{phoenix.sessions_total}"
    )
    assert native.availability < 1.0, (
        "the chaos schedule should break at least one native session"
    )
    assert phoenix.crashes >= native.crashes, (
        "Phoenix keeps retrying, so it should witness at least as many crashes"
    )


def test_native_availability_degrades_with_crash_rate():
    frequent = run_availability_experiment(sessions=SESSIONS, crash_every=10)["native"]
    rare = run_availability_experiment(sessions=SESSIONS, crash_every=80)["native"]
    assert frequent.availability <= rare.availability


def test_availability_benchmark(benchmark):
    def run():
        return run_availability_experiment(sessions=10, crash_every=20)

    results = benchmark.pedantic(run, rounds=2)
    assert results["phoenix"].availability == 1.0
