"""Ablation A2 — the ``WHERE 0=1`` metadata probe vs executing the query.

Paper §3, Result Sets step 1: the probe "guarantees that the query will not
be executed and that no result data will actually be returned, minimizing
both server load and message size.  Only query compilation is performed."
We compare the probe against the naive alternative — run the real query
once and discard the rows just to see the metadata.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import PhoenixConfig
from repro.sql import parse

ROWS = 5_000
SQL = "SELECT k, v, k % 7 AS bucket FROM meta_rows WHERE v > 0"


@pytest.fixture(scope="module")
def system():
    system = repro.make_system()
    loader = system.server.connect()
    system.server.execute(loader, "CREATE TABLE meta_rows (k INT PRIMARY KEY, v FLOAT)")
    for start in range(0, ROWS, 1000):
        values = ", ".join(
            f"({k}, {k * 1.0})" for k in range(start + 1, min(start + 1001, ROWS + 1))
        )
        system.server.execute(loader, f"INSERT INTO meta_rows VALUES {values}")
    system.server.disconnect(loader)
    return system


@pytest.mark.parametrize("mode", ["false_where", "execute"])
def test_metadata_probe(benchmark, system, mode):
    config = PhoenixConfig(metadata_via_false_where=(mode == "false_where"))
    connection = system.phoenix.connect(system.DSN, config=config)
    select = parse(SQL)

    def probe():
        return connection.probe_metadata(select)

    columns = benchmark(probe)
    assert [c.name for c in columns] == ["k", "v", "bucket"]
    connection.close()


def test_metadata_probe_ships_no_data(system):
    """The probe's reply carries metadata only; the naive path hauls every
    row across the wire."""
    select = parse(SQL)
    received = {}
    for mode, flag in (("false_where", True), ("execute", False)):
        connection = system.phoenix.connect(
            system.DSN, config=PhoenixConfig(metadata_via_false_where=flag)
        )
        before = system.metrics.bytes_received
        connection.probe_metadata(select)
        received[mode] = system.metrics.bytes_received - before
        connection.close()
    assert received["false_where"] < received["execute"] / 50, received
