"""Gnarly SQL: stress cases for the planner and evaluator that the
straightforward suites don't reach."""

from __future__ import annotations

import pytest

from tests.conftest import execute


@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE emp (id INT PRIMARY KEY, dept INT, boss INT, pay FLOAT)")
    execute(server, sid, """INSERT INTO emp VALUES
        (1, 10, NULL, 100.0), (2, 10, 1, 80.0), (3, 10, 1, 60.0),
        (4, 20, NULL, 90.0), (5, 20, 4, 70.0), (6, 30, NULL, 50.0)""")
    return server, sid


def q(db, sql):
    server, sid = db
    return execute(server, sid, sql)


def test_self_join_hierarchy(db):
    rows = q(db, """
        SELECT e.id, b.id FROM emp e JOIN emp b ON e.boss = b.id ORDER BY e.id""")
    assert rows == [(2, 1), (3, 1), (5, 4)]


def test_left_self_join_roots_padded(db):
    rows = q(db, """
        SELECT e.id, b.pay FROM emp e LEFT JOIN emp b ON e.boss = b.id
        WHERE b.pay IS NULL ORDER BY e.id""")
    assert [r[0] for r in rows] == [1, 4, 6]


def test_nested_derived_tables(db):
    rows = q(db, """
        SELECT dept, mx FROM (
            SELECT dept, max(pay) AS mx FROM (
                SELECT dept, pay FROM emp WHERE pay > 55
            ) inner_t GROUP BY dept
        ) outer_t ORDER BY dept""")
    assert rows == [(10, 100.0), (20, 90.0)]


def test_two_level_correlation(db):
    # employees earning more than their department's average
    rows = q(db, """
        SELECT id FROM emp e
        WHERE pay > (SELECT avg(pay) FROM emp d WHERE d.dept = e.dept)
        ORDER BY id""")
    assert rows == [(1,), (4,)]


def test_correlated_subquery_inside_in_subquery(db):
    # departments where someone out-earns the boss... shaped nesting
    rows = q(db, """
        SELECT DISTINCT dept FROM emp e
        WHERE id IN (
            SELECT id FROM emp x
            WHERE x.pay >= (SELECT max(pay) FROM emp y WHERE y.dept = x.dept))
        ORDER BY dept""")
    assert rows == [(10,), (20,), (30,)]


def test_exists_and_not_exists_combined(db):
    rows = q(db, """
        SELECT id FROM emp e
        WHERE EXISTS (SELECT * FROM emp s WHERE s.boss = e.id)
          AND NOT EXISTS (SELECT * FROM emp s WHERE s.boss = e.id AND s.pay > 75)
        ORDER BY id""")
    assert rows == [(4,)]  # 4's only report earns 70; 1 has a report at 80


def test_aggregate_of_case_over_join(db):
    rows = q(db, """
        SELECT b.id, sum(CASE WHEN e.pay > 65 THEN 1 ELSE 0 END) AS rich_reports
        FROM emp b JOIN emp e ON e.boss = b.id
        GROUP BY b.id ORDER BY b.id""")
    assert rows == [(1, 1), (4, 1)]


def test_having_on_avg_with_order_by_alias(db):
    rows = q(db, """
        SELECT dept, avg(pay) AS mean FROM emp GROUP BY dept
        HAVING avg(pay) > 55 ORDER BY mean DESC""")
    assert [r[0] for r in rows] == [10, 20]


def test_scalar_subquery_in_select_list_per_row(db):
    rows = q(db, """
        SELECT id, (SELECT count(*) FROM emp s WHERE s.boss = e.id) AS reports
        FROM emp e ORDER BY id""")
    assert [r[1] for r in rows] == [2, 0, 0, 1, 0, 0]


def test_between_on_expression(db):
    rows = q(db, "SELECT id FROM emp WHERE pay * 2 BETWEEN 120 AND 165 ORDER BY id")
    assert rows == [(2,), (3,), (5,)]


def test_deeply_nested_boolean_logic(db):
    rows = q(db, """
        SELECT id FROM emp
        WHERE NOT (dept = 10 AND (pay < 70 OR boss IS NULL)) AND NOT dept = 30
        ORDER BY id""")
    assert rows == [(2,), (4,), (5,)]


def test_union_of_aggregates_in_derived_table(db):
    rows = q(db, """
        SELECT max(n) FROM (
            SELECT count(*) AS n FROM emp WHERE dept = 10
            UNION ALL
            SELECT count(*) AS n FROM emp WHERE dept = 20
        ) counts""")
    assert rows == [(3,)]


def test_view_over_join_with_index(db):
    server, sid = db
    execute(server, sid, "CREATE INDEX idx_boss ON emp (boss)")
    execute(server, sid, """
        CREATE VIEW spans (boss_id, n) AS
        SELECT b.id, count(*) FROM emp b JOIN emp e ON e.boss = b.id GROUP BY b.id""")
    rows = q(db, "SELECT n FROM spans WHERE boss_id = 1")
    assert rows == [(2,)]


def test_group_by_two_expressions(db):
    rows = q(db, """
        SELECT dept % 20, pay > 60, count(*) FROM emp
        GROUP BY dept % 20, pay > 60 ORDER BY 1, 2""")
    # dept%20 folds 10 and 30 together: (0,T,2), (10,F,2), (10,T,2)
    assert rows == [(0, True, 2), (10, False, 2), (10, True, 2)]
    assert sum(r[2] for r in rows) == 6


def test_order_by_mixes_alias_and_expression(db):
    rows = q(db, "SELECT id, pay AS salary FROM emp ORDER BY dept DESC, salary ASC")
    assert [r[0] for r in rows] == [6, 5, 4, 3, 2, 1]


def test_distinct_over_computed_tuple(db):
    rows = q(db, "SELECT DISTINCT dept, boss IS NULL FROM emp ORDER BY dept")
    # (10,T) (10,F) (20,T) (20,F) (30,T)
    assert len(rows) == 5


def test_update_via_correlated_subquery(db):
    server, sid = db
    execute(server, sid, """
        UPDATE emp SET pay = pay + (SELECT count(*) FROM emp s WHERE s.boss = emp.id)
        WHERE boss IS NULL""")
    rows = q(db, "SELECT id, pay FROM emp WHERE boss IS NULL ORDER BY id")
    assert rows == [(1, 102.0), (4, 91.0), (6, 50.0)]


def test_delete_with_in_subquery(db):
    server, sid = db
    count = execute(
        server, sid,
        "DELETE FROM emp WHERE dept IN (SELECT dept FROM emp GROUP BY dept HAVING count(*) = 1)",
    )
    assert count == 1
    assert q(db, "SELECT count(*) FROM emp") == [(5,)]


def test_empty_table_joins_and_aggregates(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE void (x INT PRIMARY KEY)")
    assert execute(server, sid, "SELECT count(*), sum(x) FROM void") == [(0, None)]
    assert execute(server, sid, "SELECT * FROM void a JOIN void b ON a.x = b.x") == []
    assert execute(
        server, sid, "SELECT x FROM void WHERE x IN (SELECT x FROM void)"
    ) == []
