"""Unit tests for table schemas and the in-memory table primitive."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, IntegrityError, InternalError
from repro.engine.schema import Column, TableSchema, schema_from_ast
from repro.engine.storage import TableData
from repro.engine.table import Table
from repro.engine.values import SqlType
from repro.sql import parse


def make_schema(**kwargs) -> TableSchema:
    defaults = dict(
        name="t",
        columns=(
            Column("k", SqlType.INT, not_null=True),
            Column("v", SqlType.VARCHAR, length=10),
        ),
        primary_key=("k",),
    )
    defaults.update(kwargs)
    return TableSchema(**defaults)


# ---------------------------------------------------------------- schema

def test_schema_column_lookup():
    schema = make_schema()
    assert schema.column_index("v") == 1
    assert schema.column("k").type is SqlType.INT
    assert schema.has_column("k") and not schema.has_column("zz")


def test_schema_unknown_column_raises():
    with pytest.raises(CatalogError):
        make_schema().column_index("nope")


def test_schema_duplicate_columns_rejected():
    with pytest.raises(CatalogError):
        TableSchema("t", (Column("a", SqlType.INT), Column("a", SqlType.INT)))


def test_schema_pk_must_reference_columns():
    with pytest.raises(CatalogError):
        TableSchema("t", (Column("a", SqlType.INT),), primary_key=("zz",))


def test_coerce_row_validates_arity():
    with pytest.raises(IntegrityError):
        make_schema().coerce_row([1])


def test_coerce_row_enforces_not_null():
    with pytest.raises(IntegrityError):
        make_schema().coerce_row([None, "x"])


def test_coerce_row_applies_types():
    row = make_schema().coerce_row(["7", 123])
    assert row == (7, "123")


def test_key_of_extracts_pk_tuple():
    schema = make_schema()
    assert schema.key_of((5, "x")) == (5,)


def test_renamed_copy():
    schema = make_schema().renamed("other", temporary=True)
    assert schema.name == "other" and schema.temporary
    assert schema.column_index("v") == 1  # index rebuilt


def test_create_table_sql_round_trips_through_parser():
    schema = make_schema()
    stmt = parse(schema.create_table_sql())
    rebuilt = schema_from_ast(stmt)
    assert rebuilt.column_names == schema.column_names
    assert rebuilt.primary_key == schema.primary_key


def test_schema_from_ast_lowercases_names():
    schema = schema_from_ast(parse("CREATE TABLE MyTable (Aa INT PRIMARY KEY)"))
    assert schema.name == "mytable"
    assert schema.column_names == ["aa"]
    assert schema.primary_key == ("aa",)


def test_schema_from_ast_temp_marker():
    assert schema_from_ast(parse("CREATE TABLE #w (a INT)")).temporary


# ---------------------------------------------------------------- table

def test_insert_assigns_growing_rowids():
    table = Table.create(make_schema())
    r1 = table.insert((1, "a"))
    r2 = table.insert((2, "b"))
    assert r2 == r1 + 1
    assert table.row_count() == 2


def test_insert_duplicate_pk_rejected():
    table = Table.create(make_schema())
    table.insert((1, "a"))
    with pytest.raises(IntegrityError):
        table.insert((1, "b"))


def test_check_insert_does_not_mutate():
    table = Table.create(make_schema())
    table.insert((1, "a"))
    with pytest.raises(IntegrityError):
        table.check_insert((1, "b"))
    assert table.row_count() == 1


def test_delete_returns_before_image_and_clears_index():
    table = Table.create(make_schema())
    rowid = table.insert((1, "a"))
    assert table.delete(rowid) == (1, "a")
    assert table.lookup_key((1,)) is None
    assert table.insert((1, "again"))  # key free again


def test_delete_unknown_rowid_raises():
    with pytest.raises(InternalError):
        Table.create(make_schema()).delete(99)


def test_update_moves_pk_index():
    table = Table.create(make_schema())
    rowid = table.insert((1, "a"))
    table.update(rowid, (2, "a"))
    assert table.lookup_key((1,)) is None
    assert table.lookup_key((2,)) == rowid


def test_update_pk_collision_rejected():
    table = Table.create(make_schema())
    table.insert((1, "a"))
    r2 = table.insert((2, "b"))
    with pytest.raises(IntegrityError):
        table.update(r2, (1, "b"))


def test_check_update_same_row_key_allowed():
    table = Table.create(make_schema())
    rowid = table.insert((1, "a"))
    table.check_update(rowid, (1, "changed"))  # no raise


def test_scan_yields_rowid_order():
    table = Table.create(make_schema())
    ids = [table.insert((i, str(i))) for i in (3, 1, 2)]
    assert [rowid for rowid, _ in table.scan()] == sorted(ids)


def test_explicit_rowid_bumps_next_rowid():
    table = Table.create(make_schema())
    table.insert((1, "a"), rowid=10)
    assert table.insert((2, "b")) == 11


def test_duplicate_rowid_rejected():
    table = Table.create(make_schema())
    table.insert((1, "a"), rowid=5)
    with pytest.raises(InternalError):
        table.insert((2, "b"), rowid=5)


def test_index_rebuilt_from_table_data():
    data = TableData(schema=make_schema(), rows={1: (1, "a"), 2: (2, "b")}, next_rowid=3)
    table = Table(data)
    assert table.lookup_key((2,)) == 2


def test_corrupt_duplicate_keys_detected_at_load():
    data = TableData(schema=make_schema(), rows={1: (1, "a"), 2: (1, "b")}, next_rowid=3)
    with pytest.raises(InternalError):
        Table(data)


def test_no_pk_table_skips_index():
    schema = TableSchema("t", (Column("a", SqlType.INT),))
    table = Table.create(schema)
    table.insert((1,))
    table.insert((1,))  # duplicates fine without a PK
    assert table.row_count() == 2
