"""Vectorized executor: ordered indexes, range probes, top-k, and parity.

Pins the PR-9 executor work (docs/ARCHITECTURE.md "Vectorized execution &
access paths"):

* :class:`~repro.engine.table.OrderedIndex` maintains sorted keys and
  sorted postings incrementally — equality probes stop re-sorting per
  call, range probes are bisect slices, and ordered iteration matches a
  stable ``sort_key`` sort exactly (NULLS first ascending).
* The compiled (vectorized) executor and the interpreted baseline return
  byte-identical results over range / BETWEEN / ORDER BY ... LIMIT
  workloads — the fingerprint guard that makes the perf work safe.
* Index maintenance stays consistent across rollback, crash recovery,
  escalated row locks, and AS OF time-travel reconstruction, because
  every one of those paths routes through the same Table primitives.
* The executor counters surface in ``registry.snapshot()["executor"]``.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.engine import DatabaseServer
from repro.engine.table import OrderedIndex
from repro.errors import DataError
from tests.conftest import execute


# ------------------------------------------------------------- OrderedIndex


def test_ordered_index_postings_stay_sorted_without_per_call_sort():
    index = OrderedIndex()
    for rowid in (5, 1, 9, 3, 7):
        index.add("x", rowid)
    # eq() returns the maintained posting list order — no sort on probe
    assert index.eq("x") == [1, 3, 5, 7, 9]
    index.remove("x", 5)
    assert index.eq("x") == [1, 3, 7, 9]
    assert index.eq("missing") == []


def test_ordered_index_range_inclusivity():
    index = OrderedIndex()
    for rowid, value in enumerate([10, 20, 20, 30, 40]):
        index.add(value, rowid)
    assert index.range(20, 30) == [1, 2, 3]
    assert index.range(20, 30, low_inclusive=False) == [3]
    assert index.range(20, 30, high_inclusive=False) == [1, 2]
    assert index.range(None, 20) == [0, 1, 2]          # unbounded low
    assert index.range(30, None) == [3, 4]             # unbounded high
    assert index.range(25, 15) == []                   # empty interval
    assert index.range(20, 30, desc=True) == [3, 1, 2]  # key order flips only


def test_ordered_index_nulls_never_match_ranges_but_order_first_asc():
    index = OrderedIndex()
    index.add(None, 4)
    index.add(None, 2)
    index.add(1, 0)
    index.add(3, 1)
    assert index.range(None, None) == [0, 1]      # NULLs excluded from ranges
    assert index.eq(None) == [2, 4]
    assert list(index.ordered()) == [2, 4, 0, 1]        # NULLS first asc
    assert list(index.ordered(desc=True)) == [1, 0, 2, 4]  # NULLS last desc
    assert len(index) == 4


def test_ordered_index_remove_cleans_empty_keys():
    index = OrderedIndex()
    index.add(7, 1)
    index.remove(7, 1)
    assert index.range(None, None) == []
    assert len(index) == 0
    index.remove(7, 1)  # idempotent on absent entries
    index.remove(None, 1)


# ---------------------------------------------------- compiled vs interpreted


def _seeded_pair():
    """Two servers with identical data, one per executor mode."""
    rng = random.Random(17)
    ddl = [
        "CREATE TABLE t (k INT PRIMARY KEY, v INT, s VARCHAR(10))",
        "CREATE INDEX iv ON t (v)",
        "CREATE INDEX istr ON t (s)",
    ]
    rows = []
    for k in range(300):
        v = "NULL" if rng.random() < 0.1 else str(rng.randrange(40))
        s = "NULL" if rng.random() < 0.1 else f"'s{rng.randrange(9)}'"
        rows.append(f"({k}, {v}, {s})")
    dml = "INSERT INTO t VALUES " + ", ".join(rows)
    pair = []
    for mode in ("compiled", "interpreted"):
        server = DatabaseServer(executor=mode)
        sid = server.connect()
        for sql in ddl:
            execute(server, sid, sql)
        execute(server, sid, dml)
        pair.append((server, sid))
    return pair


PARITY_QUERIES = [
    "SELECT k, v FROM t WHERE v >= 10 AND v < 20 ORDER BY k",
    "SELECT k FROM t WHERE v BETWEEN 5 AND 8 ORDER BY k",
    "SELECT k FROM t WHERE v > 35 ORDER BY k",
    "SELECT k FROM t WHERE v <= 2 ORDER BY k",
    "SELECT k, v FROM t ORDER BY v LIMIT 9",
    "SELECT k, v FROM t ORDER BY v DESC LIMIT 9",
    "SELECT k, v FROM t ORDER BY v LIMIT 6 OFFSET 4",
    "SELECT k, v FROM t WHERE v > 20 ORDER BY v LIMIT 5",
    "SELECT k, s FROM t WHERE s BETWEEN 's2' AND 's4' ORDER BY k",
    "SELECT k, s FROM t ORDER BY s DESC LIMIT 8",
    "SELECT s, COUNT(*), SUM(v) FROM t WHERE v >= 15 GROUP BY s ORDER BY s",
    "SELECT DISTINCT v FROM t WHERE v BETWEEN 0 AND 10 ORDER BY v",
    "SELECT k FROM t WHERE v = 7 AND s = 's3' ORDER BY k",
    "SELECT a.k FROM t a, t b WHERE a.v = b.k AND a.k < 20 ORDER BY a.k, a.v",
]


def test_compiled_matches_interpreted_fingerprints():
    (cs, cid), (is_, iid) = _seeded_pair()
    for sql in PARITY_QUERIES:
        assert execute(cs, cid, sql) == execute(is_, iid, sql), sql


def test_range_probe_error_parity_on_incomparable_bound():
    """A range bound the column type can't coerce must raise identically in
    both modes (the probe falls back to a full scan so the per-row compare
    surfaces the same DataError), not silently return zero rows."""
    (cs, cid), (is_, iid) = _seeded_pair()
    for server, sid in ((cs, cid), (is_, iid)):
        with pytest.raises(DataError):
            execute(server, sid, "SELECT k FROM t WHERE v > 'abc'")


def test_null_range_bound_matches_nothing_in_both_modes():
    (cs, cid), (is_, iid) = _seeded_pair()
    sql = "SELECT k FROM t WHERE v > NULL"
    assert execute(cs, cid, sql) == execute(is_, iid, sql) == []


def test_topk_ties_resolved_identically():
    """Duplicate ORDER BY keys: index-ordered streaming must reproduce the
    stable-sort tie order (postings ascend by rowid) for asc and desc."""
    for mode in ("compiled", "interpreted"):
        server = DatabaseServer(executor=mode)
        sid = server.connect()
        execute(server, sid, "CREATE TABLE d (k INT PRIMARY KEY, v INT)")
        execute(server, sid, "CREATE INDEX dv ON d (v)")
        execute(
            server, sid,
            "INSERT INTO d VALUES " + ", ".join(f"({i}, {i % 3})" for i in range(30)),
        )
        asc = execute(server, sid, "SELECT k, v FROM d ORDER BY v LIMIT 12")
        desc = execute(server, sid, "SELECT k, v FROM d ORDER BY v DESC LIMIT 12")
        if mode == "compiled":
            got_asc, got_desc = asc, desc
    assert got_asc == asc and got_desc == desc


# --------------------------------------------------------------- EXPLAIN


@pytest.fixture()
def indexed(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    execute(server, sid, "CREATE INDEX iv ON t (v)")
    execute(
        server, sid,
        "INSERT INTO t VALUES " + ", ".join(f"({i}, {i % 10})" for i in range(50)),
    )
    return server, sid


def _explain(server, sid, sql):
    return "\n".join(r[0] for r in execute(server, sid, f"EXPLAIN {sql}"))


def test_explain_shows_index_range(indexed):
    server, sid = indexed
    plan = _explain(server, sid, "SELECT k FROM t WHERE v >= 3 AND v < 7")
    assert "IndexRange t (v >= const AND v < const)" in plan
    plan = _explain(server, sid, "SELECT k FROM t WHERE v BETWEEN 2 AND 4")
    assert "IndexRange t (v >= const AND v <= const)" in plan


def test_explain_shows_topk_instead_of_sort(indexed):
    server, sid = indexed
    plan = _explain(server, sid, "SELECT k, v FROM t ORDER BY v DESC LIMIT 5")
    assert "TopK 5 Offset 0 ORDER BY v DESC (index-ordered, no sort)" in plan
    assert "Sort" not in plan
    # no index on k beyond the PK hash → ordinary sort path
    plan = _explain(server, sid, "SELECT k, v FROM t ORDER BY k LIMIT 5")
    assert "Sort k" in plan and "TopK" not in plan


def test_explain_eq_probe_outranks_range(indexed):
    server, sid = indexed
    plan = _explain(server, sid, "SELECT k FROM t WHERE v = 3 AND v < 9")
    assert "IndexScan t (v = const)" in plan and "IndexRange" not in plan


def test_interpreted_mode_plans_stay_baseline():
    server = DatabaseServer(executor="interpreted")
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    execute(server, sid, "CREATE INDEX iv ON t (v)")
    execute(server, sid, "INSERT INTO t VALUES (1, 1), (2, 2)")
    plan = _explain(server, sid, "SELECT k FROM t WHERE v > 1 ORDER BY v LIMIT 1")
    assert "IndexRange" not in plan and "TopK" not in plan
    assert "[compiled]" not in plan
    assert "Scan t" in plan and "Sort v" in plan


def test_executor_mode_validated():
    with pytest.raises(ValueError):
        DatabaseServer(executor="jit")


# --------------------------------------------------------------- counters


def test_executor_counters_in_registry_snapshot():
    system = repro.make_system(dsn="exec-counters")
    server = system.server
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    execute(server, sid, "CREATE INDEX iv ON t (v)")
    execute(
        server, sid,
        "INSERT INTO t VALUES " + ", ".join(f"({i}, {i})" for i in range(20)),
    )
    system.registry.reset()
    execute(server, sid, "SELECT k FROM t WHERE v >= 5 AND v < 10")
    execute(server, sid, "SELECT k FROM t ORDER BY v DESC LIMIT 3")
    execute(server, sid, "SELECT k FROM t WHERE v = 7")
    snap = system.registry.snapshot()["executor"]
    assert snap["index_range_scans"] == 1
    assert snap["topk_shortcuts"] == 1
    assert snap["index_eq_probes"] == 1
    assert snap["rows_returned"] == 5 + 3 + 1
    assert snap["rows_scanned"] >= snap["rows_returned"]
    assert snap["compiled_plans"] >= 3
    system.registry.reset()
    assert system.registry.snapshot()["executor"]["rows_scanned"] == 0


# ------------------------------------------------------- maintenance paths


def _range_and_topk(server, sid):
    return (
        execute(server, sid, "SELECT k FROM t WHERE v BETWEEN 2 AND 5 ORDER BY k"),
        execute(server, sid, "SELECT k, v FROM t ORDER BY v LIMIT 5"),
    )


def _expected_via_scan(server, sid):
    """The same answers with every secondary index dropped (full scans)."""
    execute(server, sid, "DROP INDEX iv")
    return _range_and_topk(server, sid)


def test_index_consistent_after_rollback(indexed):
    server, sid = indexed
    before = _range_and_topk(server, sid)
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (100, 3)")
    execute(server, sid, "UPDATE t SET v = 4 WHERE k = 0")
    execute(server, sid, "DELETE FROM t WHERE k = 1")
    execute(server, sid, "ROLLBACK")
    assert _range_and_topk(server, sid) == before
    assert _expected_via_scan(server, sid) == before


def test_index_consistent_after_crash_recovery(indexed):
    server, sid = indexed
    execute(server, sid, "UPDATE t SET v = 99 WHERE k = 5")
    before = _range_and_topk(server, sid)
    server.crash()
    server.restart()
    sid = server.connect()
    assert _range_and_topk(server, sid) == before
    assert _expected_via_scan(server, sid) == before


def test_index_consistent_under_escalated_row_locks(indexed):
    """A transaction whose row locks escalate to a table lock must leave
    the ordered index exactly as consistent as one that never escalated."""
    server, sid = indexed
    server.database.locks.escalation_threshold = 3
    execute(server, sid, "BEGIN")
    for k in range(8):  # crosses the threshold mid-transaction
        execute(server, sid, f"UPDATE t SET v = {k + 20} WHERE k = {k}")
    execute(server, sid, "COMMIT")
    assert server.database.locks.stats.escalations >= 1
    fast = _range_and_topk(server, sid)
    assert _expected_via_scan(server, sid) == fast


def test_index_consistent_in_as_of_reconstruction(system):
    server = system.server
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    execute(server, sid, "CREATE INDEX iv ON t (v)")
    execute(
        server, sid,
        "INSERT INTO t VALUES " + ", ".join(f"({i}, {i})" for i in range(20)),
    )
    ts = server.time_travel.clock.now()
    pinned = (
        execute(server, sid, "SELECT k FROM t WHERE v BETWEEN 3 AND 8 ORDER BY k"),
        execute(server, sid, "SELECT k FROM t ORDER BY v DESC LIMIT 4"),
    )
    execute(server, sid, "UPDATE t SET v = 0 WHERE k > 2")
    execute(server, sid, "DELETE FROM t WHERE k = 4")
    got = (
        execute(
            server, sid,
            f"SELECT k FROM t WHERE v BETWEEN 3 AND 8 ORDER BY k AS OF {ts!r}",
        ),
        execute(server, sid, f"SELECT k FROM t ORDER BY v DESC LIMIT 4 AS OF {ts!r}"),
    )
    assert got == pinned
