"""Multiple simultaneous Phoenix connections: isolation and independence.

The naming scheme gives each connection its own phx_* namespace, so
concurrent persistent sessions must never observe each other's helper
objects, temp redirections, or recoveries.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def pair(system):
    def autorestart(conn):
        conn.config.sleep = lambda _s: (
            system.endpoint.restart_server() if not system.server.up else None
        )
        return conn

    a = autorestart(system.phoenix.connect(system.DSN, user="alice"))
    b = autorestart(system.phoenix.connect(system.DSN, user="bob"))
    cur = a.cursor()
    cur.execute("CREATE TABLE shared (k INT PRIMARY KEY, who VARCHAR(10))")
    yield system, a, b
    for conn in (a, b):
        if not conn.closed:
            conn.close()


def test_distinct_namespaces(pair):
    _system, a, b = pair
    assert a.names.client_id != b.names.client_id
    assert a.names.status_table != b.names.status_table


def test_temp_tables_do_not_collide(pair):
    _system, a, b = pair
    a.cursor().execute("CREATE TABLE #w (x INT)")
    b.cursor().execute("CREATE TABLE #w (x INT)")  # same app-visible name!
    a.cursor().execute("INSERT INTO #w VALUES (1)")
    b.cursor().execute("INSERT INTO #w VALUES (2), (3)")
    ca, cb = a.cursor(), b.cursor()
    ca.execute("SELECT count(*) FROM #w")
    cb.execute("SELECT count(*) FROM #w")
    assert ca.fetchone() == (1,)
    assert cb.fetchone() == (2,)


def test_both_sessions_survive_one_crash(pair):
    system, a, b = pair
    ca, cb = a.cursor(), b.cursor()
    ca.execute("INSERT INTO shared VALUES (1, 'alice')")
    cb.execute("INSERT INTO shared VALUES (2, 'bob')")
    ca.execute("SELECT k FROM shared ORDER BY k")
    got_a = ca.fetchmany(1)
    system.server.crash()
    system.endpoint.restart_server()
    # both connections recover independently on their next request
    cb.execute("SELECT count(*) FROM shared")
    assert cb.fetchone() == (2,)
    got_a += ca.fetchall()
    assert [r[0] for r in got_a] == [1, 2]
    # b contacted the server and recovered; a's remaining rows were already
    # buffered client-side, so it recovers lazily on its next server request
    assert b.stats.recoveries == 1
    assert a.stats.recoveries == 0
    ca.execute("SELECT count(*) FROM shared")
    assert ca.fetchone() == (2,)
    assert a.stats.recoveries == 1


def test_interleaved_inserts_coexist(pair):
    """Two writers inserting different rows into the same table no longer
    conflict: each holds IX on the table plus X on its own fresh rowid."""
    _system, a, b = pair
    a.begin()
    a.cursor().execute("INSERT INTO shared VALUES (10, 'alice')")
    b.cursor().execute("INSERT INTO shared VALUES (11, 'bob')")
    a.commit()
    check = a.cursor()
    check.execute("SELECT count(*) FROM shared")
    assert check.fetchone() == (2,)


def test_interleaved_same_row_writes_conflict_cleanly(pair):
    """Two writers on the same *row*: the second hits the lock, not chaos."""
    from repro.errors import LockError

    _system, a, b = pair
    a.cursor().execute("INSERT INTO shared VALUES (10, 'alice')")
    a.begin()
    a.cursor().execute("UPDATE shared SET who = 'alice2' WHERE k = 10")
    with pytest.raises(LockError):
        b.cursor().execute("UPDATE shared SET who = 'bob' WHERE k = 10")
    a.commit()
    b.cursor().execute("UPDATE shared SET who = 'bob' WHERE k = 10")
    check = a.cursor()
    check.execute("SELECT who FROM shared WHERE k = 10")
    assert check.fetchone() == ("bob",)


def test_close_of_one_leaves_other_working(pair):
    system, a, b = pair
    a.cursor().execute("INSERT INTO shared VALUES (1, 'alice')")
    a.close()
    cb = b.cursor()
    cb.execute("SELECT count(*) FROM shared")
    assert cb.fetchone() == (1,)
    # a's phx objects are gone, b's remain
    names = system.server.table_names()
    assert not any(n.startswith(f"phx_c{a.names.client_id}_") for n in names)
