"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

import repro
from repro.engine import DatabaseServer


@pytest.fixture()
def server() -> DatabaseServer:
    """A fresh in-memory database server."""
    return DatabaseServer()


@pytest.fixture()
def session(server):
    """(server, session_id) ready for execute()."""
    return server, server.connect()


@pytest.fixture()
def system() -> repro.System:
    """A fully wired system (server + endpoint + drivers + managers)."""
    return repro.make_system()


@pytest.fixture()
def phoenix_conn(system):
    """A Phoenix connection whose recovery never sleeps and restarts the
    server automatically while pinging (so crash tests run instantly)."""
    connection = system.phoenix.connect(system.DSN)
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    yield connection
    if not connection.closed:
        try:
            connection.close()
        except Exception:
            pass


@pytest.fixture()
def plain_conn(system):
    connection = system.plain.connect(system.DSN)
    yield connection
    if not connection.closed:
        try:
            connection.close()
        except Exception:
            pass


def execute(server, session_id, sql):
    """Convenience: run SQL, return rows for queries / rowcount for DML."""
    result = server.execute(session_id, sql)
    if result.kind == "rows" and result.result_set is not None:
        return result.result_set.rows
    if result.kind == "rowcount":
        return result.rowcount
    return None
