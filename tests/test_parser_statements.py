"""Parser tests: DML, DDL, procedures, transactions, SET, batches."""

from __future__ import annotations

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast, parse, parse_script


# ---------------------------------------------------------------- INSERT

def test_insert_values_single_row():
    stmt = parse("INSERT INTO t VALUES (1, 'a')")
    assert isinstance(stmt, ast.Insert)
    assert stmt.columns is None
    assert len(stmt.rows) == 1 and len(stmt.rows[0]) == 2


def test_insert_values_multi_row():
    stmt = parse("INSERT INTO t VALUES (1), (2), (3)")
    assert len(stmt.rows) == 3


def test_insert_with_column_list():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
    assert stmt.columns == ["a", "b"]


def test_insert_select():
    stmt = parse("INSERT INTO t SELECT a, b FROM s WHERE a > 1")
    assert stmt.select is not None and stmt.rows is None


def test_insert_parenthesized_select():
    stmt = parse("INSERT INTO t (SELECT a FROM s)")
    assert stmt.select is not None


def test_insert_requires_values_or_select():
    with pytest.raises(SQLSyntaxError):
        parse("INSERT INTO t")


# ---------------------------------------------------------------- UPDATE / DELETE

def test_update_multiple_assignments():
    stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'")
    assert isinstance(stmt, ast.Update)
    assert [col for col, _ in stmt.assignments] == ["a", "b"]
    assert stmt.where is not None


def test_update_without_where():
    assert parse("UPDATE t SET a = 0").where is None


def test_update_requires_equals():
    with pytest.raises(SQLSyntaxError):
        parse("UPDATE t SET a 1")


def test_delete_with_where():
    stmt = parse("DELETE FROM t WHERE k IN (1, 2)")
    assert isinstance(stmt, ast.Delete) and stmt.where is not None


def test_delete_without_where():
    assert parse("DELETE FROM t").where is None


# ---------------------------------------------------------------- CREATE TABLE

def test_create_table_columns_and_types():
    stmt = parse(
        "CREATE TABLE t (a INT, b VARCHAR(10), c DECIMAL(12, 2), d DATE, e BOOLEAN, f FLOAT)"
    )
    assert isinstance(stmt, ast.CreateTable)
    types = [c.type.name for c in stmt.columns]
    assert types == ["INT", "VARCHAR", "DECIMAL", "DATE", "BOOLEAN", "FLOAT"]
    assert stmt.columns[1].type.length == 10
    assert stmt.columns[2].type.precision == 12 and stmt.columns[2].type.scale == 2


def test_create_table_column_primary_key_implies_not_null():
    stmt = parse("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    assert stmt.primary_key == ["k"]
    assert stmt.columns[0].not_null


def test_create_table_table_level_primary_key():
    stmt = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
    assert stmt.primary_key == ["a", "b"]


def test_create_table_not_null():
    stmt = parse("CREATE TABLE t (a INT NOT NULL, b INT NULL)")
    assert stmt.columns[0].not_null and not stmt.columns[1].not_null


def test_create_temporary_table_keyword():
    assert parse("CREATE TEMPORARY TABLE t (a INT)").temporary
    assert parse("CREATE TEMP TABLE t (a INT)").temporary


def test_create_table_hash_name_is_temporary():
    stmt = parse("CREATE TABLE #work (a INT)")
    assert stmt.temporary and stmt.name == "#work"


def test_create_table_if_not_exists():
    assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists


def test_create_table_default_clause_parses():
    stmt = parse("CREATE TABLE t (a INT DEFAULT 0)")
    assert stmt.columns[0].default is not None


def test_int_type_aliases():
    stmt = parse("CREATE TABLE t (a INTEGER, b BIGINT, c SMALLINT)")
    assert all(c.type.name == "INT" for c in stmt.columns)


def test_float_type_aliases():
    stmt = parse("CREATE TABLE t (a REAL, b DOUBLE PRECISION, c FLOAT)")
    assert all(c.type.name == "FLOAT" for c in stmt.columns)


# ---------------------------------------------------------------- DROP

def test_drop_table():
    stmt = parse("DROP TABLE t")
    assert isinstance(stmt, ast.DropTable) and not stmt.if_exists


def test_drop_table_if_exists():
    assert parse("DROP TABLE IF EXISTS t").if_exists


def test_drop_procedure():
    stmt = parse("DROP PROCEDURE IF EXISTS p")
    assert isinstance(stmt, ast.DropProcedure) and stmt.if_exists


# ---------------------------------------------------------------- procedures

def test_create_procedure_with_params():
    stmt = parse("CREATE PROCEDURE p (@a INT, @b VARCHAR(20)) AS INSERT INTO t VALUES (@a, @b)")
    assert isinstance(stmt, ast.CreateProcedure)
    assert [name for name, _ in stmt.params] == ["a", "b"]
    assert len(stmt.body) == 1


def test_create_procedure_no_params():
    stmt = parse("CREATE PROCEDURE p AS DELETE FROM t")
    assert stmt.params == []


def test_create_procedure_multi_statement_body():
    stmt = parse("CREATE PROCEDURE p AS INSERT INTO t VALUES (1); DELETE FROM s")
    assert len(stmt.body) == 2


def test_create_procedure_begin_end_body():
    stmt = parse("CREATE PROCEDURE p AS BEGIN INSERT INTO t VALUES (1); DELETE FROM s END")
    assert len(stmt.body) == 2


def test_create_procedure_begin_requires_end():
    with pytest.raises(SQLSyntaxError):
        parse("CREATE PROCEDURE p AS BEGIN INSERT INTO t VALUES (1)")


def test_create_procedure_empty_body_rejected():
    with pytest.raises(SQLSyntaxError):
        parse("CREATE PROCEDURE p AS")


def test_temp_procedure_flag():
    assert parse("CREATE PROCEDURE #p AS DELETE FROM t").temporary


def test_exec_with_args():
    stmt = parse("EXEC p 1, 'two', @three")
    assert isinstance(stmt, ast.ExecProcedure)
    assert len(stmt.args) == 3


def test_execute_keyword():
    assert isinstance(parse("EXECUTE p"), ast.ExecProcedure)


def test_exec_named_arg_style_accepted():
    stmt = parse("EXEC p @x = 5")
    assert len(stmt.args) == 1


# ---------------------------------------------------------------- transactions / SET

def test_begin_commit_rollback():
    assert isinstance(parse("BEGIN"), ast.BeginTransaction)
    assert isinstance(parse("BEGIN TRANSACTION"), ast.BeginTransaction)
    assert isinstance(parse("COMMIT"), ast.Commit)
    assert isinstance(parse("COMMIT WORK"), ast.Commit)
    assert isinstance(parse("ROLLBACK TRANSACTION"), ast.Rollback)


def test_set_option_forms():
    assert parse("SET timeout 30").value == 30
    assert parse("SET timeout = 30").value == 30
    assert parse("SET mode 'strict'").value == "strict"
    assert parse("SET flag ON").value is True
    assert parse("SET flag off").value is False


def test_set_option_name_lowercased():
    assert parse("SET TimeOut 5").name == "timeout"


def test_checkpoint_statement():
    assert isinstance(parse("CHECKPOINT"), ast.Checkpoint)


# ---------------------------------------------------------------- batches

def test_parse_script_multiple_statements():
    statements = parse_script("BEGIN; INSERT INTO t VALUES (1); COMMIT")
    assert [type(s).__name__ for s in statements] == [
        "BeginTransaction", "Insert", "Commit",
    ]


def test_parse_script_tolerates_extra_semicolons():
    assert len(parse_script(";;SELECT 1;; SELECT 2;;")) == 2


def test_parse_script_empty():
    assert parse_script("   ") == []


def test_parse_single_rejects_multiple():
    with pytest.raises(SQLSyntaxError):
        parse("SELECT 1; SELECT 2")


def test_procedure_inside_batch_with_begin_end():
    statements = parse_script(
        "DROP PROCEDURE IF EXISTS p; "
        "CREATE PROCEDURE p AS BEGIN INSERT INTO t VALUES (1) END; "
        "EXEC p"
    )
    assert [type(s).__name__ for s in statements] == [
        "DropProcedure", "CreateProcedure", "ExecProcedure",
    ]
