"""Last-mile coverage: lifecycle corners the other suites skip."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, CommunicationError, ProgrammingError
from repro.net import FaultKind
from repro.odbc.constants import CursorType, StatementAttr


def test_statement_close_releases_server_cursor(system, plain_conn):
    cur = plain_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES (1), (2), (3)")
    cur2 = plain_conn.cursor()
    cur2.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    cur2.execute("SELECT k FROM t")
    cur2.fetchone()
    session = next(iter(system.server.sessions.values()))
    assert session.cursors  # server-side cursor open
    cur2.close()
    assert not session.cursors  # released


def test_phoenix_crash_during_keys_fill(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))")
    cur.execute("INSERT INTO t VALUES " + ", ".join(f"({i}, 'v')" for i in range(1, 16)))
    system.faults.schedule(
        FaultKind.CRASH_AFTER_EXECUTE,
        matcher=lambda r: "keys" in getattr(r, "sql", "") and "EXEC" in getattr(r, "sql", ""),
    )
    ks = phoenix_conn.cursor()
    ks.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    ks.execute("SELECT k FROM t")
    assert [r[0] for r in ks.fetchall()] == list(range(1, 16))


def test_phoenix_recovery_during_connect_retry_limit(system):
    """Connect against a permanently-down server surfaces the error after
    bounded retries (never hangs)."""
    from repro.core import PhoenixConfig

    system.server.crash()
    config = PhoenixConfig(max_ping_attempts=2, max_recovery_attempts=2)
    config.sleep = lambda _s: None
    with pytest.raises(CommunicationError):
        system.phoenix.connect(system.DSN, config=config)


def test_cursor_reuse_after_recovery(system, phoenix_conn):
    """One cursor object used across many executes and crashes."""
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    for i in range(3):
        cur.execute(f"INSERT INTO t VALUES ({i})")
        system.server.crash()
        system.endpoint.restart_server()
        cur.execute("SELECT count(*) FROM t")
        assert cur.fetchone() == (i + 1,)


def test_view_referencing_dropped_table_fails_cleanly(session):
    from tests.conftest import execute

    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "CREATE VIEW v AS SELECT k FROM t")
    execute(server, sid, "DROP TABLE t")
    with pytest.raises(CatalogError):
        execute(server, sid, "SELECT * FROM v")


def test_drop_view_then_create_table_same_name(session):
    from tests.conftest import execute

    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "CREATE VIEW v AS SELECT k FROM t")
    execute(server, sid, "DROP VIEW v")
    execute(server, sid, "CREATE TABLE v (x INT)")
    execute(server, sid, "INSERT INTO v VALUES (1)")
    assert execute(server, sid, "SELECT x FROM v") == [(1,)]


def test_fetch_before_execute_is_empty(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    assert cur.fetchall() == []
    assert cur.fetchone() is None


def test_empty_sql_batch(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute(";;  ;")
    assert cur.fetchall() == []


def test_interleaved_cursors_one_connection_with_crash(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES " + ", ".join(f"({i})" for i in range(1, 31)))
    a = phoenix_conn.cursor()
    b = phoenix_conn.cursor()
    a.execute("SELECT k FROM t ORDER BY k")
    b.execute("SELECT k FROM t ORDER BY k DESC")
    got_a = a.fetchmany(10)
    got_b = b.fetchmany(10)
    system.server.crash()
    system.endpoint.restart_server()
    phoenix_conn.cursor().execute("SELECT 1")
    got_a += a.fetchall()
    got_b += b.fetchall()
    assert [r[0] for r in got_a] == list(range(1, 31))
    assert [r[0] for r in got_b] == list(range(30, 0, -1))


def test_union_keyset_request_downgrades(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES (1), (2)")
    cur.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    cur.execute("SELECT k FROM t UNION SELECT 99 ORDER BY 1")
    assert cur.effective_cursor_type == CursorType.FORWARD_ONLY
    assert cur.fetchall() == [(1,), (2,), (99,)]


def test_explain_union_through_server(session):
    from tests.conftest import execute

    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    lines = execute(server, sid, "EXPLAIN SELECT k FROM t UNION ALL SELECT k FROM t")
    assert lines[0][0].startswith("Union part 1")
