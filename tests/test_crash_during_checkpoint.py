"""Storage-level fault injection: crash in the middle of a checkpoint.

DESIGN.md §5 and recovery.py claim each checkpoint step is crash-safe: a
failure after some table files are written but before the checkpoint
pointer moves leaves snapshots "newer" than the checkpoint, and redo must
skip their already-reflected records via per-table ``last_lsn``.  These
tests make that crash actually happen by wrapping stable storage with a
write-counting bomb.
"""

from __future__ import annotations

import pytest

from repro.engine import DatabaseServer
from repro.engine.storage import InMemoryStableStorage
from tests.conftest import execute


class _CheckpointBomb(Exception):
    """Stands in for the process dying mid-checkpoint."""


class BombStorage(InMemoryStableStorage):
    """In-memory stable storage that detonates after N table-file writes.

    Writes that complete before the bomb are durable (they hit the real
    backing dicts); the detonation models the process dying between two
    file writes.
    """

    def __init__(self):
        super().__init__()
        self.fail_after_table_writes: int | None = None
        self._writes_seen = 0

    def arm(self, fail_after: int) -> None:
        self.fail_after_table_writes = fail_after
        self._writes_seen = 0

    def disarm(self) -> None:
        self.fail_after_table_writes = None

    def write_table_file(self, name, data):
        if self.fail_after_table_writes is not None:
            if self._writes_seen >= self.fail_after_table_writes:
                raise _CheckpointBomb(f"crash before writing {name}")
            self._writes_seen += 1
        super().write_table_file(name, data)


def build(n_tables: int = 3, rows_each: int = 5):
    storage = BombStorage()
    server = DatabaseServer(storage)
    sid = server.connect()
    for t in range(n_tables):
        execute(server, sid, f"CREATE TABLE t{t} (k INT PRIMARY KEY, v INT)")
        values = ", ".join(f"({i}, {i * 10})" for i in range(1, rows_each + 1))
        execute(server, sid, f"INSERT INTO t{t} VALUES {values}")
    return storage, server, sid


def expected_state(server, n_tables=3):
    sid = server.connect()
    return {
        f"t{t}": execute(server, sid, f"SELECT k, v FROM t{t} ORDER BY k")
        for t in range(n_tables)
    }


@pytest.mark.parametrize("fail_after", [0, 1, 2])
def test_crash_mid_checkpoint_preserves_committed_state(fail_after):
    storage, server, sid = build()
    before = expected_state(server)
    storage.arm(fail_after)
    with pytest.raises(_CheckpointBomb):
        server.checkpoint()
    storage.disarm()
    # the "process" is gone; rebuild purely from stable storage
    server.crash()
    server.restart()
    assert expected_state(server) == before


@pytest.mark.parametrize("fail_after", [0, 1, 2])
def test_work_after_failed_checkpoint_still_recovers(fail_after):
    storage, server, sid = build()
    storage.arm(fail_after)
    with pytest.raises(_CheckpointBomb):
        server.checkpoint()
    storage.disarm()
    # the server survives the I/O error (checkpoint failed, nothing else);
    # keep working, then crash for real
    execute(server, sid, "INSERT INTO t0 VALUES (100, 1000)")
    execute(server, sid, "UPDATE t1 SET v = 0 WHERE k = 1")
    execute(server, sid, "DELETE FROM t2 WHERE k = 2")
    after = expected_state(server)
    server.crash()
    server.restart()
    assert expected_state(server) == after


def test_crash_between_checkpoints_mixed_snapshot_ages():
    """Two interleaved checkpoints with a bomb in the second: some tables
    carry the new snapshot, others the old — redo must reconcile both."""
    storage, server, sid = build()
    server.checkpoint()  # clean baseline
    execute(server, sid, "INSERT INTO t0 VALUES (50, 500)")
    execute(server, sid, "INSERT INTO t2 VALUES (50, 500)")
    storage.arm(1)  # one table gets the fresh snapshot, then boom
    with pytest.raises(_CheckpointBomb):
        server.checkpoint()
    storage.disarm()
    before = expected_state(server)
    server.crash()
    server.restart()
    assert expected_state(server) == before


def test_repeated_bombed_checkpoints_then_success():
    storage, server, sid = build()
    for fail_after in (0, 1, 2):
        storage.arm(fail_after)
        with pytest.raises(_CheckpointBomb):
            server.checkpoint()
        storage.disarm()
        execute(server, sid, f"INSERT INTO t0 VALUES ({200 + fail_after}, 0)")
    server.checkpoint()  # finally a clean one
    before = expected_state(server)
    server.crash()
    report = server.restart()
    assert expected_state(server) == before
    # the clean checkpoint truncated the log: little to scan
    assert report.checkpoint_lsn > 0
