"""Property-based tests for the SQL front end (hypothesis)."""

from __future__ import annotations

import re

from hypothesis import given, settings, strategies as st

from repro.engine.expressions import like_to_regex
from repro.sql import ast, parse, parse_expression, tokenize
from repro.sql.ast import quote_literal

# ---------------------------------------------------------------- strategies

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in __import__("repro.sql.lexer", fromlist=["KEYWORDS"]).KEYWORDS
)

literals = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000).map(ast.Literal),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(ast.Literal),
    st.text(alphabet="abc'x ", max_size=8).map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
)


def expressions(depth: int = 2) -> st.SearchStrategy[ast.Expr]:
    base = st.one_of(literals, identifiers.map(ast.ColumnRef))
    if depth == 0:
        return base
    sub = expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "=", "<", ">=", "AND", "OR"]), sub, sub).map(
            lambda t: ast.Binary(t[0], t[1], t[2])
        ),
        sub.map(lambda e: ast.Unary("NOT", e)),
        st.tuples(sub, st.booleans()).map(lambda t: ast.IsNull(t[0], negated=t[1])),
        st.tuples(sub, sub, sub).map(lambda t: ast.Between(t[0], t[1], t[2])),
        st.tuples(sub, st.lists(literals, min_size=1, max_size=3)).map(
            lambda t: ast.InList(t[0], t[1])
        ),
    )


# ---------------------------------------------------------------- properties

@settings(max_examples=200, deadline=None)
@given(expressions())
def test_rendered_expressions_reparse_to_same_text(expr):
    """render → parse → render is a fixpoint for generated expressions."""
    text = expr.sql()
    reparsed = parse_expression(text)
    assert reparsed.sql() == text


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="abc'%_\\ \n;--", max_size=30))
def test_quote_literal_round_trips_through_lexer(s):
    tokens = tokenize(f"SELECT {quote_literal(s)}")
    assert tokens[1].value == s


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=20))
def test_string_literals_lex_back_exactly(s):
    rendered = "'" + s.replace("'", "''") + "'"
    tokens = tokenize(rendered)
    assert tokens[0].value == s


@settings(max_examples=150, deadline=None)
@given(
    pattern=st.text(alphabet="ab%_c", max_size=10),
    text=st.text(alphabet="abc", max_size=12),
)
def test_like_matches_reference_implementation(pattern, text):
    """like_to_regex agrees with a naive backtracking LIKE matcher."""

    def naive_like(p: str, t: str) -> bool:
        if not p:
            return not t
        head, rest = p[0], p[1:]
        if head == "%":
            return any(naive_like(rest, t[i:]) for i in range(len(t) + 1))
        if head == "_":
            return bool(t) and naive_like(rest, t[1:])
        return bool(t) and t[0] == head and naive_like(rest, t[1:])

    regex = like_to_regex(pattern)
    assert (regex.match(text) is not None) == naive_like(pattern, text)


@settings(max_examples=100, deadline=None)
@given(
    pattern=st.text(alphabet="ab%_!", max_size=8),
    text=st.text(alphabet="ab%_", max_size=10),
)
def test_like_escape_makes_wildcards_literal(pattern, text):
    """With ESCAPE '!', '!%' and '!_' match only the literal characters."""
    regex = like_to_regex(pattern, escape="!")
    # reference: translate escaped chars to a sentinel then naive-match
    out = []
    i = 0
    while i < len(pattern):
        if pattern[i] == "!" and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
        elif pattern[i] == "%":
            out.append(".*")
            i += 1
        elif pattern[i] == "_":
            out.append(".")
            i += 1
        else:
            out.append(re.escape(pattern[i]))
            i += 1
    reference = re.compile("".join(out) + r"\Z", re.DOTALL)
    assert (regex.match(text) is None) == (reference.match(text) is None)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(
    ["SELECT 1", "BEGIN", "COMMIT", "INSERT INTO t VALUES (1)", "DELETE FROM t"]
), min_size=0, max_size=6))
def test_parse_script_statement_count(statements):
    from repro.sql import parse_script

    script = "; ".join(statements)
    assert len(parse_script(script)) == len(statements)
