"""Server-side cursor tests: default, keyset, dynamic, downgrade, advance."""

from __future__ import annotations

import pytest

from repro.errors import ProgrammingError
from repro.engine.cursors import CursorType
from tests.conftest import execute


@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10))")
    execute(server, sid, "INSERT INTO t VALUES " + ", ".join(f"({i}, 'v{i}')" for i in range(1, 21)))
    return server, sid


def open_cursor(db, sql, cursor_type):
    server, sid = db
    result = server.execute(sid, sql, cursor_type=cursor_type)
    return result.cursor_id, result.extra["effective_cursor_type"]


def test_default_cursor_block_fetch(db):
    server, sid = db
    cid, effective = open_cursor(db, "SELECT k FROM t", CursorType.KEYSET)
    assert effective == CursorType.KEYSET
    rows, done = server.fetch(sid, cid, 5)
    assert [r[0] for r in rows] == [1, 2, 3, 4, 5] and not done


def test_keyset_sees_updates_not_membership_changes(db):
    server, sid = db
    cid, _ = open_cursor(db, "SELECT k, v FROM t WHERE k <= 10", CursorType.KEYSET)
    server.fetch(sid, cid, 2)
    execute(server, sid, "UPDATE t SET v = 'CHANGED' WHERE k = 4")
    execute(server, sid, "INSERT INTO t VALUES (100, 'new')")  # outside keyset
    rows, _ = server.fetch(sid, cid, 3)
    assert rows == [(3, "v3"), (4, "CHANGED"), (5, "v5")]
    # membership frozen: new row 100 never appears
    all_rows, done = server.fetch(sid, cid, 100)
    assert done and all(r[0] <= 10 for r in all_rows)


def test_keyset_deleted_rows_are_holes(db):
    server, sid = db
    cid, _ = open_cursor(db, "SELECT k FROM t WHERE k <= 5", CursorType.KEYSET)
    execute(server, sid, "DELETE FROM t WHERE k = 2")
    rows, done = server.fetch(sid, cid, 10)
    assert [r[0] for r in rows] == [1, 3, 4, 5]


def test_keyset_respects_order_by(db):
    server, sid = db
    cid, _ = open_cursor(db, "SELECT k FROM t WHERE k <= 5 ORDER BY k DESC", CursorType.KEYSET)
    server_rows, _ = (lambda s=db[0]: s.fetch(db[1], cid, 3))()
    assert [r[0] for r in server_rows] == [5, 4, 3]


def test_dynamic_cursor_sees_inserts_and_deletes(db):
    server, sid = db
    cid, effective = open_cursor(db, "SELECT k FROM t WHERE k >= 10", CursorType.DYNAMIC)
    assert effective == CursorType.DYNAMIC
    rows, _ = server.fetch(sid, cid, 3)
    assert [r[0] for r in rows] == [10, 11, 12]
    execute(server, sid, "INSERT INTO t VALUES (14, 'x')") if False else None
    execute(server, sid, "INSERT INTO t VALUES (150, 'tail')")
    execute(server, sid, "DELETE FROM t WHERE k = 15")
    rows, done = server.fetch(sid, cid, 100)
    keys = [r[0] for r in rows]
    assert 15 not in keys and 150 in keys


def test_dynamic_cursor_rejects_order_by(db):
    server, sid = db
    with pytest.raises(ProgrammingError):
        server.execute(sid, "SELECT k FROM t ORDER BY k DESC", cursor_type=CursorType.DYNAMIC)


def test_downgrade_on_join(db):
    server, sid = db
    _, effective = open_cursor(db, "SELECT a.k FROM t a JOIN t b ON a.k = b.k", CursorType.KEYSET)
    assert effective == CursorType.DEFAULT


def test_downgrade_on_aggregate(db):
    _, effective = open_cursor(db, "SELECT count(*) FROM t", CursorType.DYNAMIC)
    assert effective == CursorType.DEFAULT


def test_downgrade_on_composite_pk(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE c (a INT, b INT, PRIMARY KEY (a, b))")
    execute(server, sid, "INSERT INTO c VALUES (1, 1)")
    result = server.execute(sid, "SELECT a FROM c", cursor_type=CursorType.KEYSET)
    assert result.extra["effective_cursor_type"] == CursorType.DEFAULT


def test_advance_skips_server_side(db):
    server, sid = db
    cid, _ = open_cursor(db, "SELECT k FROM t", CursorType.KEYSET)
    server.advance(sid, cid, 15)
    rows, _ = server.fetch(sid, cid, 3)
    assert [r[0] for r in rows] == [16, 17, 18]


def test_advance_backward_rejected(db):
    server, sid = db
    cid, _ = open_cursor(db, "SELECT k FROM t", CursorType.KEYSET)
    server.fetch(sid, cid, 5)
    with pytest.raises(ProgrammingError):
        server.advance(sid, cid, 2)


def test_advance_past_end_clamps(db):
    server, sid = db
    cid, _ = open_cursor(db, "SELECT k FROM t", CursorType.KEYSET)
    server.advance(sid, cid, 10_000)
    rows, done = server.fetch(sid, cid, 5)
    assert rows == [] and done


def test_fetch_requires_positive_count(db):
    server, sid = db
    cid, _ = open_cursor(db, "SELECT k FROM t", CursorType.KEYSET)
    with pytest.raises(ProgrammingError):
        server.fetch(sid, cid, 0)


def test_close_cursor_frees_it(db):
    server, sid = db
    cid, _ = open_cursor(db, "SELECT k FROM t", CursorType.KEYSET)
    server.close_cursor(sid, cid)
    with pytest.raises(ProgrammingError):
        server.fetch(sid, cid, 1)


def test_unknown_cursor_type_rejected(db):
    server, sid = db
    with pytest.raises(ProgrammingError):
        server.execute(sid, "SELECT k FROM t", cursor_type="spiral")


def test_cursors_are_per_session(db):
    server, sid = db
    other = server.connect()
    cid, _ = open_cursor(db, "SELECT k FROM t", CursorType.KEYSET)
    with pytest.raises(ProgrammingError):
        server.fetch(other, cid, 1)


def test_default_cursor_type_returns_rows_inline(db):
    server, sid = db
    result = server.execute(sid, "SELECT k FROM t", cursor_type=CursorType.DEFAULT)
    assert result.cursor_id is None
    assert len(result.result_set.rows) == 20
