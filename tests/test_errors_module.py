"""The exception hierarchy: relationships client code relies on."""

from __future__ import annotations

import pytest

from repro import errors


def test_everything_derives_from_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        if name == "Warning":
            continue
        assert issubclass(cls, errors.Error), name


def test_dbapi_layering():
    assert issubclass(errors.OperationalError, errors.DatabaseError)
    assert issubclass(errors.IntegrityError, errors.DatabaseError)
    assert issubclass(errors.ProgrammingError, errors.DatabaseError)
    assert issubclass(errors.DataError, errors.DatabaseError)
    assert issubclass(errors.InterfaceError, errors.Error)
    assert not issubclass(errors.InterfaceError, errors.DatabaseError)


def test_communication_family():
    """Phoenix catches CommunicationError to mean 'the wire failed'; every
    transport-level failure must be inside that umbrella."""
    assert issubclass(errors.TimeoutError, errors.CommunicationError)
    assert issubclass(errors.ServerCrashedError, errors.CommunicationError)
    assert issubclass(errors.CommunicationError, errors.OperationalError)


def test_session_lost_is_operational_but_not_communication():
    # the server answered — the wire is fine, the session is gone
    assert issubclass(errors.SessionLostError, errors.OperationalError)
    assert not issubclass(errors.SessionLostError, errors.CommunicationError)


def test_catalog_and_syntax_are_programming_errors():
    assert issubclass(errors.CatalogError, errors.ProgrammingError)
    assert issubclass(errors.SQLSyntaxError, errors.ProgrammingError)


def test_syntax_error_carries_position():
    exc = errors.SQLSyntaxError("boom", position=7, line=2)
    assert exc.position == 7 and exc.line == 2


def test_recoverable_errors_tuple_matches_design():
    from repro.core.recovery import RECOVERABLE_ERRORS

    assert errors.CommunicationError in RECOVERABLE_ERRORS
    assert errors.SessionLostError in RECOVERABLE_ERRORS


def test_timeout_shadows_builtin_deliberately():
    assert errors.TimeoutError is not TimeoutError
    with pytest.raises(errors.CommunicationError):
        raise errors.TimeoutError("slow")
