"""Planned restarts: drain, engine swap, and client ride-through.

The paper only covers *unplanned* failure (DESIGN.md §5b); these tests pin
the planned-maintenance path built on the same recovery machinery:

* ``drain_and_restart`` under a 16-client workload completes with zero
  client-visible errors and exactly-once effects (the PR's acceptance
  line);
* the drain barrier parks new work, graceful drains wait out in-flight
  statements, deadline drains bounce lock waiters retryably;
* pings answered ``RESTARTING`` reset the driver's backoff to a flat
  cadence instead of inheriting crash-tuned exponential intervals;
* ``reap_sessions`` spares sessions parked behind the drain barrier;
* crashes *during* a drain or swap recover exactly-once like any other
  crash (chaos sweep);
* drain counters surface in ``MetricsRegistry.snapshot()["server"]``.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.engine.server import DrainStats, RestartPolicy
from repro.errors import OperationalError, ServerRestartingError


def _lift_drain(server) -> None:
    """Manually end a drain a test started with ``begin_drain`` (the test
    stands in for the swap half of ``drain_and_restart``)."""
    server.lifecycle = "running"
    server._restart_deadline = None
    server.dispatcher.resume()


def _make_table(system, rows: int = 1) -> None:
    loader = system.server.connect(user="loader")
    system.server.execute(loader, "CREATE TABLE pr (k INT PRIMARY KEY, v INT)")
    for i in range(rows):
        system.server.execute(loader, f"INSERT INTO pr VALUES ({i}, 0)")
    system.server.disconnect(loader)


def _rows(system) -> list[tuple]:
    checker = system.server.connect(user="checker")
    data = system.server.execute(checker, "SELECT k, v FROM pr ORDER BY k")
    rows = data.result_set.rows
    system.server.disconnect(checker)
    return rows


# ------------------------------------------------------------- policy object


def test_restart_policy_rejects_unknown_mode():
    with pytest.raises(ValueError):
        RestartPolicy(mode="yolo")


def test_restart_policy_defaults():
    policy = RestartPolicy()
    assert policy.mode == "deadline"
    assert policy.drain_timeout > 0
    assert policy.bump_catalog is False


# ------------------------------------------------------- basic ride-through


def test_single_session_rides_through_planned_restart(system):
    _make_table(system)
    connection = system.phoenix.connect(system.DSN)
    cursor = connection.cursor()
    cursor.execute("UPDATE pr SET v = v + 1 WHERE k = 0")

    report = system.endpoint.drain_and_restart(
        RestartPolicy(mode="deadline", drain_timeout=0.2)
    )
    assert report is not None
    assert system.server.up and system.server.lifecycle == "running"

    # the very next statement triggers session recovery, then succeeds
    cursor.execute("UPDATE pr SET v = v + 1 WHERE k = 0")
    cursor.execute("SELECT v FROM pr WHERE k = 0")
    assert cursor.fetchall() == [(2,)]
    assert connection.stats.recoveries == 1
    connection.close()


def test_drain_and_restart_uses_default_policy(system):
    _make_table(system)
    system.endpoint.drain_and_restart()
    assert system.server.lifecycle == "running"
    assert system.registry.server.drains_completed == 1


def test_bump_catalog_invalidates_cached_plans(system):
    _make_table(system)
    # the swapped-in engine recovers from stable storage either way; the
    # bump must leave its catalog version strictly ahead of a plain swap's
    system.endpoint.drain_and_restart(RestartPolicy(bump_catalog=False))
    plain = system.server.database.catalog_version
    system.endpoint.drain_and_restart(RestartPolicy(bump_catalog=True))
    assert system.server.database.catalog_version > plain


def test_endpoint_epoch_bumps_on_planned_restart(system):
    before = system.endpoint.epoch
    system.endpoint.drain_and_restart()
    assert system.endpoint.epoch == before + 1


def test_begin_drain_while_draining_raises(system):
    system.server.begin_drain()
    try:
        with pytest.raises(OperationalError):
            system.server.begin_drain()
    finally:
        _lift_drain(system.server)


# ------------------------------------------------ the 16-client acceptance


def test_drain_under_16_clients_zero_errors(system):
    clients, ops = 16, 6
    _make_table(system, rows=clients)
    system.endpoint.latency = 0.001
    connections = [
        system.phoenix.connect(system.DSN, user=f"c{i}") for i in range(clients)
    ]
    errors_seen: list[str] = []
    barrier = threading.Barrier(clients + 1)

    def worker(connection, key: int) -> None:
        try:
            cursor = connection.cursor()
            barrier.wait()
            for _ in range(ops):
                cursor.execute(f"UPDATE pr SET v = v + 1 WHERE k = {key}")
        except Exception as exc:  # noqa: BLE001 — the assertion below reports it
            errors_seen.append(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(connections[i], i)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    time.sleep(0.004)  # let the workload get airborne
    system.endpoint.drain_and_restart(RestartPolicy(mode="deadline", drain_timeout=0.5))
    for thread in threads:
        thread.join()

    assert errors_seen == [], errors_seen
    assert _rows(system) == [(i, ops) for i in range(clients)]
    stats = system.registry.server
    assert stats.drains_started == stats.drains_completed == 1
    assert stats.sessions_ridden_through >= 1
    assert stats.max_pause_seconds > 0.0
    for connection in connections:
        connection.close()


# ------------------------------------------------------------ drain barrier


def test_graceful_drain_waits_for_inflight_statement(system):
    _make_table(system)
    entered, release = threading.Event(), threading.Event()
    original = system.server.execute

    def slow_execute(session_id, sql, **kwargs):
        # Phoenix ships DML wrapped in its status-table transaction, so
        # match the statement anywhere in the script
        if "UPDATE pr" in sql:
            entered.set()
            release.wait(5.0)
        return original(session_id, sql, **kwargs)

    system.server.execute = slow_execute
    connection = system.phoenix.connect(system.DSN)
    cursor = connection.cursor()
    client = threading.Thread(
        target=cursor.execute, args=("UPDATE pr SET v = v + 1 WHERE k = 0",)
    )
    client.start()
    assert entered.wait(5.0)

    drainer = threading.Thread(
        target=system.endpoint.drain_and_restart,
        args=(RestartPolicy(mode="graceful"),),
    )
    drainer.start()
    time.sleep(0.05)
    # the drain must be parked behind the in-flight statement, not past it
    assert drainer.is_alive()
    assert system.server.lifecycle == "draining"
    assert system.registry.server.drains_completed == 0

    release.set()
    drainer.join(5.0)
    client.join(5.0)
    assert not drainer.is_alive() and not client.is_alive()
    # the statement ran to completion *before* the checkpoint + swap, so
    # its effect is durable in the swapped-in engine
    assert _rows(system) == [(0, 1)]
    connection.close()


def test_deadline_drain_bounces_lock_waiter_retryably(system):
    _make_table(system)
    # a raw engine session holds the row lock in an open transaction
    holder = system.server.connect(user="holder")
    system.server.execute(holder, "BEGIN TRANSACTION")
    system.server.execute(holder, "UPDATE pr SET v = 99 WHERE k = 0")

    connection = system.phoenix.connect(system.DSN)
    connection.config.ping_jitter = 0.0
    connection.config.ping_interval = 0.005
    cursor = connection.cursor()
    waits_before = system.registry.locks.waits
    client = threading.Thread(
        target=cursor.execute, args=("UPDATE pr SET v = v + 1 WHERE k = 0",)
    )
    client.start()
    deadline = time.monotonic() + 5.0
    while system.registry.locks.waits == waits_before:
        assert time.monotonic() < deadline, "client never reached the lock wait"
        time.sleep(0.001)

    system.endpoint.drain_and_restart(RestartPolicy(mode="deadline", drain_timeout=0.02))
    client.join(5.0)
    assert not client.is_alive()

    # the waiter was bounced (deadlock-victim style), recovered, retried —
    # and the holder's never-committed transaction died with its session
    assert system.registry.locks.drain_bounces >= 1
    assert system.registry.server.statements_bounced >= 1
    assert connection.stats.recoveries >= 1
    assert _rows(system) == [(0, 1)]
    connection.close()


# --------------------------------------------------- RESTARTING advertising


def test_ping_advertises_restarting_during_drain(system):
    policy = RestartPolicy(mode="deadline", drain_timeout=30.0)
    system.server.begin_drain(policy)
    try:
        with pytest.raises(ServerRestartingError) as info:
            system.native.ping()
        assert info.value.state == "draining"
        assert 0.0 < info.value.eta_seconds <= 30.0
    finally:
        _lift_drain(system.server)
    # barrier lifted: the same probe now pongs
    assert system.native.ping() is not None


def test_recovery_backoff_resets_on_restarting_advertisement(system):
    """Satellite: crash-tuned exponential backoff must flatten back to the
    base cadence the moment the server says RESTARTING."""
    _make_table(system)
    connection = system.phoenix.connect(system.DSN)
    connection.config.ping_jitter = 0.0
    base = connection.config.ping_interval
    sleeps: list[float] = []

    def scripted_sleep(seconds: float) -> None:
        sleeps.append(seconds)
        if len(sleeps) == 2:
            # the process is back mid planned restart: up, barrier still on
            system.endpoint.restart_server()
            system.server.lifecycle = "draining"
        elif len(sleeps) == 4:
            system.server.lifecycle = "running"

    connection.config.sleep = scripted_sleep
    cursor = connection.cursor()
    system.server.crash()
    cursor.execute("UPDATE pr SET v = v + 1 WHERE k = 0")

    # two crash pings back off (base, 2*base); the RESTARTING answers reset
    # the interval to base and hold it flat
    assert sleeps == [base, base * 2, base, base]
    cursor.execute("SELECT v FROM pr WHERE k = 0")
    assert cursor.fetchall() == [(1,)]
    connection.close()


# --------------------------------------------------------------- reap guard


def test_reap_spares_sessions_parked_behind_drain_barrier(system):
    """Satellite regression: a drain under 16 idle-looking clients loses no
    sessions to the reaper — parked requests prove the client is alive."""
    clients = 16
    _make_table(system, rows=clients)
    connections = [
        system.phoenix.connect(system.DSN, user=f"r{i}") for i in range(clients)
    ]
    cursors = [c.cursor() for c in connections]
    for i, cursor in enumerate(cursors):
        cursor.execute(f"SELECT v FROM pr WHERE k = {i}")

    system.server.begin_drain(RestartPolicy(mode="deadline", drain_timeout=30.0))
    threads = [
        threading.Thread(
            target=cursors[i].execute, args=(f"UPDATE pr SET v = v + 1 WHERE k = {i}",)
        )
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + 5.0
    while len(system.server.dispatcher.keys_with_pending()) < clients:
        assert time.monotonic() < deadline, "clients never parked behind the barrier"
        time.sleep(0.001)

    # every session's last activity predates this cutoff, so an unguarded
    # reaper would disconnect every one of them mid-pause — including the
    # 16 app sessions whose UPDATE is parked behind the barrier
    parked = system.server.dispatcher.keys_with_pending()
    cutoff = system.server.activity_epoch + 1
    reaped = system.server.reap_sessions(older_than_epoch=cutoff)
    app_sessions = {c.app.session_id for c in connections}
    assert set(reaped).isdisjoint(parked)
    assert set(reaped).isdisjoint(app_sessions), "reaper killed a parked session"
    assert app_sessions <= set(system.server.sessions)

    _lift_drain(system.server)
    for thread in threads:
        thread.join(5.0)
        assert not thread.is_alive()
    # zero sessions lost from the clients' side: every parked UPDATE landed
    # exactly once, with no recovery forced by the reaper
    assert _rows(system) == [(i, 1) for i in range(clients)]
    assert sum(c.stats.recoveries for c in connections) == 0
    for connection in connections:
        connection.close()


# ------------------------------------------------------------- chaos: drain


def test_crash_mid_drain_schedules_recover_exactly_once():
    from repro.chaos import ChaosExplorer

    explorer = ChaosExplorer(seed=7)
    report = explorer.sweep_drain_faults(stride=16)
    assert report.runs > 0
    assert report.recovered_fraction == 1.0, report.summary()


def test_crash_after_begin_drain_recovers(system):
    _make_table(system)
    connection = system.phoenix.connect(system.DSN)
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    cursor = connection.cursor()
    cursor.execute("UPDATE pr SET v = v + 1 WHERE k = 0")

    system.server.begin_drain()
    system.server.crash()  # the process dies mid-drain
    assert system.server.lifecycle == "running"  # crash() tears the barrier down

    cursor.execute("UPDATE pr SET v = v + 1 WHERE k = 0")
    cursor.execute("SELECT v FROM pr WHERE k = 0")
    assert cursor.fetchall() == [(2,)]
    connection.close()


# ------------------------------------------------------------------ metrics


def test_drain_stats_surface_in_registry_snapshot(system):
    _make_table(system)
    connection = system.phoenix.connect(system.DSN)
    connection.cursor().execute("SELECT v FROM pr WHERE k = 0")
    system.endpoint.drain_and_restart(RestartPolicy(mode="immediate"))

    section = system.registry.snapshot()["server"]
    assert section["drains_started"] == 1
    assert section["drains_completed"] == 1
    assert section["sessions_ridden_through"] >= 1
    assert section["statements_bounced"] == 0
    assert section["max_pause_seconds"] > 0.0
    connection.close()


def test_drain_stats_reset_with_registry(system):
    system.endpoint.drain_and_restart()
    system.registry.reset()
    assert system.registry.server.snapshot() == DrainStats().snapshot()


def test_drain_stats_cumulative_across_restarts(system):
    for _ in range(3):
        system.endpoint.drain_and_restart()
    assert system.registry.server.drains_completed == 3
    assert system.server.stats.restarts == 3
