"""Network substrate tests: protocol, transport, faults, metrics."""

from __future__ import annotations

import pytest

from repro import errors
from repro.engine import DatabaseServer
from repro.net import FaultInjector, FaultKind, NetworkMetrics, ServerEndpoint
from repro.net.protocol import (
    ConnectRequest,
    ConnectResponse,
    ErrorResponse,
    ExecuteRequest,
    FetchRequest,
    PingRequest,
    PongResponse,
    ResultResponse,
    TableSchemaRequest,
    decode_message,
    encode_message,
)
from repro.net.transport import ClientChannel


@pytest.fixture()
def endpoint():
    return ServerEndpoint(DatabaseServer())


def channel(endpoint) -> ClientChannel:
    return ClientChannel(endpoint)


def connect(endpoint) -> tuple[ClientChannel, int]:
    ch = channel(endpoint)
    response = ch.send(ConnectRequest(user="tester"))
    return ch, response.session_id


# ---------------------------------------------------------------- protocol

def test_message_serialization_round_trip():
    message = ExecuteRequest(session_id=3, sql="SELECT 1", cursor_type="keyset")
    again = decode_message(encode_message(message))
    assert again == message


def test_serialization_produces_real_bytes():
    raw = encode_message(PingRequest())
    assert isinstance(raw, bytes) and len(raw) > 0


# ---------------------------------------------------------------- dispatch

def test_connect_and_execute(endpoint):
    ch, sid = connect(endpoint)
    response = ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1 + 1"))
    assert isinstance(response, ResultResponse)
    assert response.rows == [(2,)]
    assert [c.name for c in response.columns]


def test_rowcount_response(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    response = ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1), (2)"))
    assert response.kind == "rowcount" and response.rowcount == 2


def test_cursor_flow_over_wire(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT PRIMARY KEY)"))
    ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1), (2), (3)"))
    opened = ch.send(ExecuteRequest(session_id=sid, sql="SELECT k FROM t", cursor_type="keyset"))
    assert opened.cursor_id is not None and opened.rows == []
    fetched = ch.send(FetchRequest(session_id=sid, cursor_id=opened.cursor_id, n=2))
    assert fetched.rows == [(1,), (2,)] and not fetched.done


def test_table_schema_request(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))"))
    response = ch.send(TableSchemaRequest(session_id=sid, table="t"))
    assert response.primary_key == ("k",)
    assert [c.name for c in response.columns] == ["k", "v"]


def test_sql_errors_travel_in_band_and_rebuild(endpoint):
    ch, sid = connect(endpoint)
    with pytest.raises(errors.CatalogError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT * FROM missing"))
    # channel still usable after an in-band error
    assert ch.send(PingRequest()).server_epoch == 0


def test_unknown_error_type_falls_back_to_database_error():
    from repro.net.transport import _rebuild_error

    rebuilt = _rebuild_error(ErrorResponse(error_type="NoSuchError", message="x"))
    assert isinstance(rebuilt, errors.DatabaseError)


def test_ping_reports_epoch_and_sessions(endpoint):
    ch, sid = connect(endpoint)
    pong = ch.send(PingRequest())
    assert isinstance(pong, PongResponse)
    assert pong.up_sessions == 1
    endpoint.server.crash()
    endpoint.restart_server()
    ch2 = channel(endpoint)
    assert ch2.send(PingRequest()).server_epoch == 1


# ---------------------------------------------------------------- faults

def test_crash_before_execute_loses_work(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    endpoint.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE)
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1)"))
    endpoint.restart_server()
    ch2, sid2 = connect(endpoint)
    response = ch2.send(ExecuteRequest(session_id=sid2, sql="SELECT count(*) FROM t"))
    assert response.rows == [(0,)]  # nothing executed


def test_crash_after_execute_commits_then_loses_reply(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    endpoint.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "INSERT")
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1)"))
    endpoint.restart_server()
    ch2, sid2 = connect(endpoint)
    response = ch2.send(ExecuteRequest(session_id=sid2, sql="SELECT count(*) FROM t"))
    assert response.rows == [(1,)]  # the work happened; only the reply died


def test_hang_raises_timeout_and_leaves_server_up(endpoint):
    ch, sid = connect(endpoint)
    endpoint.faults.schedule(FaultKind.HANG)
    with pytest.raises(errors.TimeoutError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))
    assert endpoint.server.up


def test_drop_connection_leaves_server_up(endpoint):
    ch, sid = connect(endpoint)
    endpoint.faults.schedule(FaultKind.DROP_CONNECTION)
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))
    assert endpoint.server.up


def test_broken_channel_stays_broken(endpoint):
    ch, sid = connect(endpoint)
    endpoint.faults.schedule(FaultKind.DROP_CONNECTION)
    with pytest.raises(errors.CommunicationError):
        ch.send(PingRequest())
    with pytest.raises(errors.CommunicationError):
        ch.send(PingRequest())  # no retry sneaks through a dead socket


def test_requests_to_down_server_refused(endpoint):
    ch, sid = connect(endpoint)
    endpoint.server.crash()
    ch2 = channel(endpoint)
    with pytest.raises(errors.ServerCrashedError):
        ch2.send(PingRequest())


def test_session_lost_error_after_fast_restart(endpoint):
    ch, sid = connect(endpoint)
    endpoint.server.crash()
    endpoint.restart_server()
    # the channel object survived, the session did not
    with pytest.raises(errors.SessionLostError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))


def test_fault_matcher_and_after(endpoint):
    ch, sid = connect(endpoint)
    fault = endpoint.faults.schedule(
        FaultKind.HANG,
        matcher=lambda r: getattr(r, "sql", "").startswith("SELECT"),
        after=1,
    )
    ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))  # first match skipped
    with pytest.raises(errors.TimeoutError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 2"))
    assert endpoint.faults.fired == [FaultKind.HANG]


def test_repeating_fault(endpoint):
    endpoint.faults.schedule(FaultKind.HANG, repeat=True)
    for _ in range(3):
        ch = channel(endpoint)
        with pytest.raises(errors.TimeoutError):
            ch.send(PingRequest())
    assert endpoint.faults.pending == 1


def test_cancel_all(endpoint):
    endpoint.faults.schedule(FaultKind.HANG)
    endpoint.faults.cancel_all()
    assert channel(endpoint).send(PingRequest())


# ---------------------------------------------------------------- metrics

def test_metrics_count_round_trips_and_bytes(endpoint):
    metrics = NetworkMetrics()
    ch = ClientChannel(endpoint, metrics=metrics)
    ch.send(ConnectRequest())
    assert metrics.round_trips == 1
    assert metrics.bytes_sent > 0 and metrics.bytes_received > 0
    assert metrics.by_request_type["ConnectRequest"] == 1


def test_metrics_record_errors(endpoint):
    metrics = NetworkMetrics()
    ch = ClientChannel(endpoint, metrics=metrics)
    endpoint.faults.schedule(FaultKind.DROP_CONNECTION)
    with pytest.raises(errors.CommunicationError):
        ch.send(PingRequest())
    assert metrics.errors == 1
    assert metrics.round_trips == 1


def test_metrics_simulated_latency(endpoint):
    metrics = NetworkMetrics(latency_seconds=0.001)
    ch = ClientChannel(endpoint, metrics=metrics)
    ch.send(PingRequest())
    ch.send(PingRequest())
    assert abs(metrics.simulated_seconds - 0.002) < 1e-9


def test_metrics_merge_and_reset():
    a = NetworkMetrics()
    a.record("X", 10, 20)
    b = NetworkMetrics()
    b.record("Y", 1, 2)
    a.merge(b)
    assert a.round_trips == 2 and a.bytes_sent == 11
    a.reset()
    assert a.round_trips == 0 and not a.by_request_type
