"""Network substrate tests: protocol, transport, faults, metrics."""

from __future__ import annotations

import pytest

from repro import errors
from repro.engine import DatabaseServer
from repro.net import FaultInjector, FaultKind, NetworkMetrics, ServerEndpoint
from repro.net.protocol import (
    ConnectRequest,
    ConnectResponse,
    ErrorResponse,
    ExecuteRequest,
    FetchRequest,
    PingRequest,
    PongResponse,
    ResultResponse,
    TableSchemaRequest,
    decode_message,
    encode_message,
)
from repro.net.transport import ClientChannel


@pytest.fixture()
def endpoint():
    return ServerEndpoint(DatabaseServer())


def channel(endpoint) -> ClientChannel:
    return ClientChannel(endpoint)


def connect(endpoint) -> tuple[ClientChannel, int]:
    ch = channel(endpoint)
    response = ch.send(ConnectRequest(user="tester"))
    return ch, response.session_id


# ---------------------------------------------------------------- protocol

def test_message_serialization_round_trip():
    message = ExecuteRequest(session_id=3, sql="SELECT 1", cursor_type="keyset")
    again = decode_message(encode_message(message))
    assert again == message


def test_serialization_produces_real_bytes():
    raw = encode_message(PingRequest())
    assert isinstance(raw, bytes) and len(raw) > 0


# ---------------------------------------------------------------- dispatch

def test_connect_and_execute(endpoint):
    ch, sid = connect(endpoint)
    response = ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1 + 1"))
    assert isinstance(response, ResultResponse)
    assert response.rows == [(2,)]
    assert [c.name for c in response.columns]


def test_rowcount_response(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    response = ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1), (2)"))
    assert response.kind == "rowcount" and response.rowcount == 2


def test_cursor_flow_over_wire(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT PRIMARY KEY)"))
    ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1), (2), (3)"))
    opened = ch.send(ExecuteRequest(session_id=sid, sql="SELECT k FROM t", cursor_type="keyset"))
    assert opened.cursor_id is not None and opened.rows == []
    fetched = ch.send(FetchRequest(session_id=sid, cursor_id=opened.cursor_id, n=2))
    assert fetched.rows == [(1,), (2,)] and not fetched.done


def test_table_schema_request(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))"))
    response = ch.send(TableSchemaRequest(session_id=sid, table="t"))
    assert response.primary_key == ("k",)
    assert [c.name for c in response.columns] == ["k", "v"]


def test_sql_errors_travel_in_band_and_rebuild(endpoint):
    ch, sid = connect(endpoint)
    with pytest.raises(errors.CatalogError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT * FROM missing"))
    # channel still usable after an in-band error
    assert ch.send(PingRequest()).server_epoch == 0


def test_unknown_error_type_falls_back_to_database_error():
    from repro.net.transport import _rebuild_error

    rebuilt = _rebuild_error(ErrorResponse(error_type="NoSuchError", message="x"))
    assert isinstance(rebuilt, errors.DatabaseError)


def test_ping_reports_epoch_and_sessions(endpoint):
    ch, sid = connect(endpoint)
    pong = ch.send(PingRequest())
    assert isinstance(pong, PongResponse)
    assert pong.up_sessions == 1
    endpoint.server.crash()
    endpoint.restart_server()
    ch2 = channel(endpoint)
    assert ch2.send(PingRequest()).server_epoch == 1


# ---------------------------------------------------------------- faults

def test_crash_before_execute_loses_work(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    endpoint.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE)
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1)"))
    endpoint.restart_server()
    ch2, sid2 = connect(endpoint)
    response = ch2.send(ExecuteRequest(session_id=sid2, sql="SELECT count(*) FROM t"))
    assert response.rows == [(0,)]  # nothing executed


def test_crash_after_execute_commits_then_loses_reply(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    endpoint.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "INSERT")
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1)"))
    endpoint.restart_server()
    ch2, sid2 = connect(endpoint)
    response = ch2.send(ExecuteRequest(session_id=sid2, sql="SELECT count(*) FROM t"))
    assert response.rows == [(1,)]  # the work happened; only the reply died


def test_hang_raises_timeout_and_leaves_server_up(endpoint):
    ch, sid = connect(endpoint)
    endpoint.faults.schedule(FaultKind.HANG)
    with pytest.raises(errors.TimeoutError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))
    assert endpoint.server.up


def test_drop_connection_leaves_server_up(endpoint):
    ch, sid = connect(endpoint)
    endpoint.faults.schedule(FaultKind.DROP_CONNECTION)
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))
    assert endpoint.server.up


def test_broken_channel_stays_broken(endpoint):
    ch, sid = connect(endpoint)
    endpoint.faults.schedule(FaultKind.DROP_CONNECTION)
    with pytest.raises(errors.CommunicationError):
        ch.send(PingRequest())
    with pytest.raises(errors.CommunicationError):
        ch.send(PingRequest())  # no retry sneaks through a dead socket


def test_requests_to_down_server_refused(endpoint):
    ch, sid = connect(endpoint)
    endpoint.server.crash()
    ch2 = channel(endpoint)
    with pytest.raises(errors.ServerCrashedError):
        ch2.send(PingRequest())


def test_session_lost_error_after_fast_restart(endpoint):
    ch, sid = connect(endpoint)
    endpoint.server.crash()
    endpoint.restart_server()
    # the channel object survived, the session did not
    with pytest.raises(errors.SessionLostError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))


def test_fault_matcher_and_after(endpoint):
    ch, sid = connect(endpoint)
    fault = endpoint.faults.schedule(
        FaultKind.HANG,
        matcher=lambda r: getattr(r, "sql", "").startswith("SELECT"),
        after=1,
    )
    ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))  # first match skipped
    with pytest.raises(errors.TimeoutError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 2"))
    assert endpoint.faults.fired == [FaultKind.HANG]


def test_repeating_fault(endpoint):
    endpoint.faults.schedule(FaultKind.HANG, repeat=True)
    for _ in range(3):
        ch = channel(endpoint)
        with pytest.raises(errors.TimeoutError):
            ch.send(PingRequest())
    assert endpoint.faults.pending == 1


def test_cancel_all(endpoint):
    endpoint.faults.schedule(FaultKind.HANG)
    endpoint.faults.cancel_all()
    assert channel(endpoint).send(PingRequest())


def test_fires_remaining_counts_down(endpoint):
    fault = endpoint.faults.schedule(FaultKind.HANG, after=1)
    assert fault.fires_remaining == 1
    assert fault.matches_until_fire == 2
    ch = channel(endpoint)
    ch.send(PingRequest())
    assert fault.matches_until_fire == 1
    with pytest.raises(errors.TimeoutError):
        channel(endpoint).send(PingRequest())
    assert fault.fires_remaining == 0
    assert fault.matches_until_fire is None


def test_fires_remaining_for_repeating_and_periodic(endpoint):
    repeating = endpoint.faults.schedule(FaultKind.HANG, repeat=True)
    assert repeating.fires_remaining is None  # unbounded
    endpoint.faults.cancel_all()
    periodic = endpoint.faults.schedule(FaultKind.HANG, every=3)
    assert periodic.matches_until_fire == 3
    for _ in range(2):
        channel(endpoint).send(PingRequest())
    assert periodic.matches_until_fire == 1


def test_after_counts_matching_requests_only(endpoint):
    # `after` counts requests the matcher accepts, not all wire traffic
    fault = endpoint.faults.schedule(
        FaultKind.HANG,
        matcher=lambda r: getattr(r, "sql", "").startswith("SELECT"),
        after=1,
    )
    ch, sid = connect(endpoint)  # ConnectRequest does not match
    ch.send(ExecuteRequest(session_id=sid, sql="SELECT 1"))  # match 1: skipped
    assert fault.matches_until_fire == 1
    ch.send(PingRequest())  # non-match: no effect
    assert fault.matches_until_fire == 1
    with pytest.raises(errors.TimeoutError):
        ch.send(ExecuteRequest(session_id=sid, sql="SELECT 2"))


# ---------------------------------------------------------------- storage faults

def test_torn_wal_tail_crashes_server_and_loses_the_write(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    endpoint.faults.schedule_on_sql(FaultKind.TORN_WAL_TAIL, "INSERT")
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1)"))
    assert not endpoint.server.up  # device fault downs the server
    endpoint.restart_server()
    ch2, sid2 = connect(endpoint)
    response = ch2.send(ExecuteRequest(session_id=sid2, sql="SELECT count(*) FROM t"))
    assert response.rows == [(0,)]  # the torn commit record never took


def test_force_fail_crashes_server_with_nothing_written(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    endpoint.faults.schedule_on_sql(FaultKind.FORCE_FAIL, "INSERT")
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1)"))
    assert not endpoint.server.up
    endpoint.restart_server()
    ch2, sid2 = connect(endpoint)
    response = ch2.send(ExecuteRequest(session_id=sid2, sql="SELECT count(*) FROM t"))
    assert response.rows == [(0,)]


def test_storage_fault_then_recovery_keeps_earlier_commits(endpoint):
    ch, sid = connect(endpoint)
    ch.send(ExecuteRequest(session_id=sid, sql="CREATE TABLE t (k INT)"))
    ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (1)"))
    endpoint.faults.schedule_on_sql(FaultKind.TORN_WAL_TAIL, "INSERT")
    with pytest.raises(errors.CommunicationError):
        ch.send(ExecuteRequest(session_id=sid, sql="INSERT INTO t VALUES (2)"))
    endpoint.restart_server()
    # the truncated tail must not block post-restart appends
    ch2, sid2 = connect(endpoint)
    ch2.send(ExecuteRequest(session_id=sid2, sql="INSERT INTO t VALUES (3)"))
    endpoint.server.crash()
    endpoint.restart_server()
    ch3, sid3 = connect(endpoint)
    response = ch3.send(
        ExecuteRequest(session_id=sid3, sql="SELECT k FROM t ORDER BY k")
    )
    assert response.rows == [(1,), (3,)]


# ---------------------------------------------------------------- metrics

def test_metrics_count_round_trips_and_bytes(endpoint):
    metrics = NetworkMetrics()
    ch = ClientChannel(endpoint, metrics=metrics)
    ch.send(ConnectRequest())
    assert metrics.round_trips == 1
    assert metrics.bytes_sent > 0 and metrics.bytes_received > 0
    assert metrics.by_request_type["ConnectRequest"] == 1


def test_metrics_record_errors(endpoint):
    metrics = NetworkMetrics()
    ch = ClientChannel(endpoint, metrics=metrics)
    endpoint.faults.schedule(FaultKind.DROP_CONNECTION)
    with pytest.raises(errors.CommunicationError):
        ch.send(PingRequest())
    assert metrics.errors == 1
    assert metrics.round_trips == 1


def test_metrics_simulated_latency(endpoint):
    metrics = NetworkMetrics(latency_seconds=0.001)
    ch = ClientChannel(endpoint, metrics=metrics)
    ch.send(PingRequest())
    ch.send(PingRequest())
    assert abs(metrics.simulated_seconds - 0.002) < 1e-9


def test_metrics_merge_and_reset():
    a = NetworkMetrics()
    a.record("X", 10, 20)
    b = NetworkMetrics()
    b.record("Y", 1, 2)
    a.merge(b)
    assert a.round_trips == 2 and a.bytes_sent == 11
    a.reset()
    assert a.round_trips == 0 and not a.by_request_type


def test_metrics_errors_broken_down_by_request_type(endpoint):
    metrics = NetworkMetrics()
    endpoint.faults.schedule(FaultKind.DROP_CONNECTION)
    with pytest.raises(errors.CommunicationError):
        ClientChannel(endpoint, metrics=metrics).send(PingRequest())
    endpoint.faults.schedule(FaultKind.DROP_CONNECTION)
    with pytest.raises(errors.CommunicationError):
        ClientChannel(endpoint, metrics=metrics).send(ConnectRequest())
    assert metrics.errors_by_request_type["PingRequest"] == 1
    assert metrics.errors_by_request_type["ConnectRequest"] == 1
    assert metrics.errors == 2
    assert metrics.snapshot()["errors_by_request_type"] == {
        "PingRequest": 1,
        "ConnectRequest": 1,
    }
    metrics.reset()
    assert not metrics.errors_by_request_type


def test_metrics_merge_combines_error_breakdown():
    a = NetworkMetrics()
    a.record_error("PingRequest", 5)
    b = NetworkMetrics()
    b.record_error("PingRequest", 5)
    b.record_error("ExecuteRequest", 9)
    a.merge(b)
    assert a.errors_by_request_type == {"PingRequest": 2, "ExecuteRequest": 1}


def test_recovery_ping_traffic_visible_in_system_metrics():
    import repro
    from repro.errors import CommunicationError as CE

    system = repro.make_system()
    connection = system.phoenix.connect(system.DSN)
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    cur = connection.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    before_pings = system.metrics.by_request_type.get("PingRequest", 0)
    system.server.crash()
    cur.execute("INSERT INTO t VALUES (1)")
    # the recovery pings ride the shared driver metrics: failed attempts in
    # the error breakdown, the successful one in the round-trip counts
    assert system.metrics.by_request_type["PingRequest"] > before_pings
    assert system.metrics.errors_by_request_type.get("PingRequest", 0) >= 1
    assert connection.stats.recovery_pings >= 1
