"""End-to-end durability: Phoenix over file-backed stable storage, with the
server object literally rebuilt from disk — as close to a real process kill
as an in-process simulation gets."""

from __future__ import annotations

import pytest

import repro
from repro.engine import DatabaseServer
from repro.engine.storage import FileStableStorage


@pytest.fixture()
def file_system(tmp_path):
    return repro.make_system(FileStableStorage(str(tmp_path / "db")))


def hard_restart(system, tmp_path=None):
    """Crash, then rebuild the DatabaseServer object from its storage files
    (not just restart the old object)."""
    storage = system.server.storage
    system.server.crash()
    reborn = DatabaseServer(FileStableStorage(storage.root))
    # splice the new server into the endpoint (same address, new process)
    old = system.endpoint.server
    system.endpoint.server = reborn
    system.server = reborn
    system.endpoint.epoch += 1
    return reborn


def test_phoenix_session_survives_process_replacement(file_system):
    system = file_system
    conn = system.phoenix.connect(system.DSN)
    conn.config.sleep = lambda _s: None
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10))")
    cur.execute("INSERT INTO t VALUES " + ", ".join(f"({i}, 'v{i}')" for i in range(1, 21)))
    cur.execute("SELECT k FROM t ORDER BY k")
    first = cur.fetchmany(8)

    hard_restart(system)

    cur2 = conn.cursor()
    cur2.execute("SELECT count(*) FROM t")  # triggers recovery
    assert cur2.fetchone() == (20,)
    rest = cur.fetchall()
    assert [r[0] for r in first + rest] == list(range(1, 21))
    conn.close()


def test_dml_exactly_once_across_process_replacement(file_system):
    system = file_system
    conn = system.phoenix.connect(system.DSN)
    restarted = {"done": False}

    def sleep_and_replace(_s):
        if not system.server.up and not restarted["done"]:
            hard_restart(system)
            restarted["done"] = True

    conn.config.sleep = sleep_and_replace
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")

    from repro.net import FaultKind

    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "INSERT INTO t")
    cur.execute("INSERT INTO t VALUES (1)")
    assert cur.rowcount == 1
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (1,)
    assert conn.stats.probe_hits == 1
    conn.close()


def test_materialized_tables_persist_on_disk(file_system, tmp_path):
    system = file_system
    conn = system.phoenix.connect(system.DSN)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES (1), (2)")
    cur.execute("SELECT k FROM t")
    state = cur._state
    system.server.checkpoint()
    # the phx result table is a first-class table in stable storage
    assert state.table in system.server.storage.list_table_files()
    conn.close()
