"""Property-based tests for the engine: model checking against Python.

The central invariants:

* a random DML workload applied through SQL equals the same workload
  applied to a dict model (including across crash+recovery);
* group-by aggregation equals Python's;
* ORDER BY equals Python's sort;
* WAL decode of any prefix of a valid log is a prefix of the records.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.engine import DatabaseServer
from repro.engine.wal import LogRecord, RecordType, decode_log, encode_record

from tests.conftest import execute

# operations: ("insert", k, v) / ("delete", k) / ("update", k, v) / ("crash",)
keys = st.integers(min_value=0, max_value=9)
values = st.integers(min_value=-100, max_value=100)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, values),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("update"), keys, values),
        st.tuples(st.just("crash")),
        st.tuples(st.just("checkpoint")),
    ),
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(operations)
def test_dml_workload_matches_dict_model_across_crashes(ops):
    server = DatabaseServer()
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    model: dict[int, int] = {}
    for op in ops:
        if op[0] == "crash":
            server.crash()
            server.restart()
            sid = server.connect()
            continue
        if op[0] == "checkpoint":
            server.checkpoint()
            continue
        if op[0] == "insert":
            _, k, v = op
            if k in model:
                continue  # would violate PK; model skips like the app would
            execute(server, sid, f"INSERT INTO t VALUES ({k}, {v})")
            model[k] = v
        elif op[0] == "delete":
            _, k = op
            execute(server, sid, f"DELETE FROM t WHERE k = {k}")
            model.pop(k, None)
        elif op[0] == "update":
            _, k, v = op
            execute(server, sid, f"UPDATE t SET v = {v} WHERE k = {k}")
            if k in model:
                model[k] = v
    rows = execute(server, sid, "SELECT k, v FROM t ORDER BY k")
    assert rows == sorted(model.items())


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(st.tuples(st.integers(0, 5), st.integers(-50, 50)), max_size=30),
)
def test_group_by_sums_match_python(rows):
    server = DatabaseServer()
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (g INT, v INT)")
    if rows:
        values = ", ".join(f"({g}, {v})" for g, v in rows)
        execute(server, sid, f"INSERT INTO t VALUES {values}")
    got = execute(server, sid, "SELECT g, sum(v), count(*) FROM t GROUP BY g ORDER BY g")
    model: dict[int, list[int]] = {}
    for g, v in rows:
        model.setdefault(g, []).append(v)
    expected = [(g, sum(vs), len(vs)) for g, vs in sorted(model.items())]
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.one_of(st.integers(-100, 100), st.none()), max_size=25))
def test_order_by_matches_python_sort_with_nulls_first(values):
    server = DatabaseServer()
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (v INT)")
    if values:
        rendered = ", ".join(f"({'NULL' if v is None else v})" for v in values)
        execute(server, sid, f"INSERT INTO t VALUES {rendered}")
    got = [r[0] for r in execute(server, sid, "SELECT v FROM t ORDER BY v")]
    expected = sorted(values, key=lambda v: (v is not None, v if v is not None else 0))
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(-20, 20), max_size=20))
def test_distinct_matches_set_semantics(values):
    server = DatabaseServer()
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (v INT)")
    if values:
        execute(server, sid, "INSERT INTO t VALUES " + ", ".join(f"({v})" for v in values))
    got = [r[0] for r in execute(server, sid, "SELECT DISTINCT v FROM t ORDER BY v")]
    assert got == sorted(set(values))


@settings(max_examples=60, deadline=None)
@given(
    n_records=st.integers(min_value=0, max_value=8),
    cut=st.integers(min_value=0, max_value=400),
)
def test_wal_decode_of_any_prefix_is_a_record_prefix(n_records, cut):
    records = [
        LogRecord(RecordType.INSERT, txn_id=i, table="t", rowid=i, after=(i,))
        for i in range(n_records)
    ]
    raw = b"".join(encode_record(r) for r in records)
    decoded = decode_log(raw[: min(cut, len(raw))])
    assert [r.rowid for r in decoded] == [r.rowid for r in records[: len(decoded)]]


@settings(max_examples=30, deadline=None)
@given(
    committed=st.lists(st.integers(0, 99), unique=True, max_size=10),
    uncommitted=st.lists(st.integers(100, 199), unique=True, max_size=5),
)
def test_recovery_keeps_exactly_the_committed_rows(committed, uncommitted):
    server = DatabaseServer()
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    for k in committed:
        execute(server, sid, f"INSERT INTO t VALUES ({k})")
    if uncommitted:
        execute(server, sid, "BEGIN")
        for k in uncommitted:
            execute(server, sid, f"INSERT INTO t VALUES ({k})")
        server.database.wal.force()  # make the loser's records durable
    server.crash()
    server.restart()
    sid = server.connect()
    rows = [r[0] for r in execute(server, sid, "SELECT k FROM t ORDER BY k")]
    assert rows == sorted(committed)
