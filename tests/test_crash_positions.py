"""Exhaustive crash-position sweeps: for *every* point in a delivery, a
crash there must not lose, duplicate, or reorder rows.

These complement the randomized property test with full coverage of the
small state space around block boundaries (buffer edges, block edges, first
row, last row, after the end)."""

from __future__ import annotations

import pytest

from repro.odbc.constants import CursorType, StatementAttr

N_ROWS = 12
BLOCK = 5  # deliberately not dividing N_ROWS


@pytest.fixture()
def loaded(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(8))")
    cur.execute(
        "INSERT INTO t VALUES " + ", ".join(f"({i}, 'v{i}')" for i in range(1, N_ROWS + 1))
    )
    return system, phoenix_conn


@pytest.mark.parametrize("position", list(range(0, N_ROWS + 1)))
def test_default_result_crash_at_every_position(loaded, position):
    system, conn = loaded
    cur = conn.cursor()
    cur.execute("SELECT k FROM t ORDER BY k")
    got = cur.fetchmany(position)
    system.server.crash()
    system.endpoint.restart_server()
    conn.cursor().execute("SELECT 1")  # trigger recovery
    got += cur.fetchall()
    assert [r[0] for r in got] == list(range(1, N_ROWS + 1))


@pytest.mark.parametrize("position", list(range(0, N_ROWS + 1, 2)))
def test_keyset_cursor_crash_at_every_position(loaded, position):
    system, conn = loaded
    cur = conn.cursor()
    cur.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    cur.set_attr(StatementAttr.FETCH_BLOCK_SIZE, BLOCK)
    cur.execute("SELECT k FROM t")
    got = cur.fetchmany(position)
    system.server.crash()
    system.endpoint.restart_server()
    got += cur.fetchall()
    assert [r[0] for r in got] == list(range(1, N_ROWS + 1))


@pytest.mark.parametrize("position", list(range(0, N_ROWS + 1, 3)))
def test_dynamic_cursor_crash_at_every_position(loaded, position):
    system, conn = loaded
    cur = conn.cursor()
    cur.set_attr(StatementAttr.CURSOR_TYPE, CursorType.DYNAMIC)
    cur.set_attr(StatementAttr.FETCH_BLOCK_SIZE, BLOCK)
    cur.execute("SELECT k FROM t")
    got = cur.fetchmany(position)
    system.server.crash()
    system.endpoint.restart_server()
    got += cur.fetchall()
    assert [r[0] for r in got] == list(range(1, N_ROWS + 1))


def test_double_crash_same_position(loaded):
    system, conn = loaded
    cur = conn.cursor()
    cur.execute("SELECT k FROM t ORDER BY k")
    got = cur.fetchmany(6)
    for _ in range(2):
        system.server.crash()
        system.endpoint.restart_server()
        conn.cursor().execute("SELECT 1")
    got += cur.fetchall()
    assert [r[0] for r in got] == list(range(1, N_ROWS + 1))


def test_adversarial_string_values_through_phoenix(system, phoenix_conn):
    """Quote-laden values must survive Phoenix's literal inlining and
    materialization (the rewrite pipeline re-renders SQL)."""
    nasty = ["o'brien", "two''quotes", "%like_", "-- comment", "a;b", "'"]
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE s (k INT PRIMARY KEY, v VARCHAR(20))")
    for i, value in enumerate(nasty):
        cur.execute("INSERT INTO s VALUES (?, ?)", [i, value])
    system.server.crash()
    system.endpoint.restart_server()
    cur.execute("SELECT v FROM s ORDER BY k")
    assert [r[0] for r in cur.fetchall()] == nasty
    cur.execute("SELECT k FROM s WHERE v = ?", ["o'brien"])
    assert cur.fetchone() == (0,)
