"""Tests for UNION / UNION ALL across the stack."""

from __future__ import annotations

import pytest

from repro.errors import ProgrammingError
from repro.sql import ast, parse
from tests.conftest import execute


@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE a (x INT, tag VARCHAR(3))")
    execute(server, sid, "CREATE TABLE b (x INT, tag VARCHAR(3))")
    execute(server, sid, "INSERT INTO a VALUES (1, 'a'), (2, 'a'), (2, 'a')")
    execute(server, sid, "INSERT INTO b VALUES (2, 'a'), (3, 'b')")
    return server, sid


# ---------------------------------------------------------------- parsing

def test_union_parses_to_union_select():
    stmt = parse("SELECT 1 UNION SELECT 2")
    assert isinstance(stmt, ast.UnionSelect)
    assert stmt.all_flags == [False]


def test_union_all_flag():
    stmt = parse("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3")
    assert stmt.all_flags == [True, False]


def test_trailing_order_limit_belongs_to_union():
    stmt = parse("SELECT x FROM a UNION SELECT x FROM b ORDER BY x LIMIT 2")
    assert isinstance(stmt, ast.UnionSelect)
    assert stmt.limit == 2 and len(stmt.order_by) == 1
    assert stmt.parts[0].limit is None and not stmt.parts[0].order_by


def test_plain_select_unchanged():
    stmt = parse("SELECT x FROM a ORDER BY x LIMIT 2 OFFSET 1")
    assert isinstance(stmt, ast.Select)
    assert (stmt.limit, stmt.offset) == (2, 1)


def test_union_renders_and_reparses():
    sql = "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY 1 LIMIT 3"
    once = parse(sql).sql()
    assert parse(once).sql() == once


# ---------------------------------------------------------------- execution

def test_union_dedupes(db):
    server, sid = db
    rows = execute(server, sid, "SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
    assert rows == [(1,), (2,), (3,)]


def test_union_all_keeps_duplicates(db):
    server, sid = db
    rows = execute(server, sid, "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x")
    assert rows == [(1,), (2,), (2,), (2,), (3,)]


def test_union_order_by_name_and_position(db):
    server, sid = db
    by_name = execute(server, sid, "SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC")
    by_pos = execute(server, sid, "SELECT x FROM a UNION SELECT x FROM b ORDER BY 1 DESC")
    assert by_name == by_pos == [(3,), (2,), (1,)]


def test_union_limit_offset(db):
    server, sid = db
    rows = execute(
        server, sid,
        "SELECT x FROM a UNION SELECT x FROM b ORDER BY x LIMIT 2 OFFSET 1",
    )
    assert rows == [(2,), (3,)]


def test_union_column_count_mismatch_rejected(db):
    server, sid = db
    with pytest.raises(ProgrammingError):
        execute(server, sid, "SELECT x FROM a UNION SELECT x, tag FROM b")


def test_union_order_by_unknown_column_rejected(db):
    server, sid = db
    with pytest.raises(ProgrammingError):
        execute(server, sid, "SELECT x FROM a UNION SELECT x FROM b ORDER BY zz")


def test_union_in_derived_table(db):
    server, sid = db
    rows = execute(
        server, sid,
        "SELECT count(*), sum(x) FROM (SELECT x FROM a UNION SELECT x FROM b) u",
    )
    assert rows == [(3, 6)]


def test_union_in_in_subquery(db):
    server, sid = db
    rows = execute(
        server, sid,
        "SELECT DISTINCT x FROM a WHERE x IN (SELECT x FROM b UNION SELECT 1) ORDER BY x",
    )
    assert rows == [(1,), (2,)]


def test_insert_from_union(db):
    server, sid = db
    execute(server, sid, "CREATE TABLE dst (x INT)")
    count = execute(server, sid, "INSERT INTO dst SELECT x FROM a UNION SELECT x FROM b")
    assert count == 3


def test_union_with_constants(db):
    server, sid = db
    rows = execute(server, sid, "SELECT 1 UNION SELECT 1 UNION ALL SELECT 2 ORDER BY 1")
    assert rows == [(1,), (2,)]


def test_union_aggregate_parts(db):
    server, sid = db
    rows = execute(
        server, sid,
        "SELECT count(*) FROM a UNION ALL SELECT count(*) FROM b ORDER BY 1",
    )
    assert rows == [(2,), (3,)]


def test_explain_union(db):
    server, sid = db
    lines = [r[0] for r in execute(server, sid, "EXPLAIN SELECT x FROM a UNION SELECT x FROM b")]
    assert lines[0].startswith("Union part 1")
    assert any("Scan b" in line for line in lines)


# ---------------------------------------------------------------- phoenix

def test_union_through_phoenix_survives_crash(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE a (x INT)")
    cur.execute("CREATE TABLE b (x INT)")
    cur.execute("INSERT INTO a VALUES (1), (2)")
    cur.execute("INSERT INTO b VALUES (2), (3)")
    cur.execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
    first = cur.fetchmany(1)
    system.server.crash()
    system.endpoint.restart_server()
    phoenix_conn.cursor().execute("SELECT 1")  # trigger recovery
    rest = cur.fetchall()
    assert first + rest == [(1,), (2,), (3,)]


def test_union_redirects_temp_tables(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE base (x INT)")
    cur.execute("INSERT INTO base VALUES (1)")
    cur.execute("CREATE TABLE #w (x INT)")
    cur.execute("INSERT INTO #w VALUES (9)")
    cur.execute("SELECT x FROM base UNION SELECT x FROM #w ORDER BY x")
    assert cur.fetchall() == [(1,), (9,)]
