"""Tests for EXPLAIN plan introspection."""

from __future__ import annotations

import pytest

from tests.conftest import execute


@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE c (ck INT PRIMARY KEY, name VARCHAR(10))")
    execute(server, sid, "CREATE TABLE o (ok INT PRIMARY KEY, ck INT, amt FLOAT)")
    return server, sid


def plan(db, sql):
    server, sid = db
    return [row[0] for row in execute(server, sid, f"EXPLAIN {sql}")]


def test_explain_simple_scan(db):
    lines = plan(db, "SELECT * FROM c")
    assert lines[0] == "Scan c"
    assert lines[-1].startswith("Project")


def test_explain_hash_join_from_where_equality(db):
    lines = plan(db, "SELECT name FROM c, o WHERE c.ck = o.ck")
    assert any(line.startswith("HashJoin") and "c.ck = o.ck" in line for line in lines)


def test_explain_hash_join_from_on_clause(db):
    lines = plan(db, "SELECT name FROM c JOIN o ON c.ck = o.ck")
    assert any("HashJoin(INNER)" in line for line in lines)


def test_explain_left_join(db):
    lines = plan(db, "SELECT name FROM c LEFT JOIN o ON c.ck = o.ck")
    assert any("HashJoin(LEFT)" in line for line in lines)


def test_explain_cross_join_without_keys_is_nested_loop(db):
    lines = plan(db, "SELECT name FROM c, o")
    assert any("NestedLoop(CROSS)" in line for line in lines)


def test_explain_pushed_filter_noted(db):
    lines = plan(db, "SELECT name FROM c WHERE name LIKE 'a%'")
    assert "residual filter" in lines[0]


def test_explain_constant_filter(db):
    lines = plan(db, "SELECT name FROM c WHERE 0 = 1")
    assert any("ConstantFilter" in line for line in lines)


def test_explain_subquery_filter_stays_final(db):
    lines = plan(db, "SELECT name FROM c WHERE ck IN (SELECT ck FROM o)")
    assert any("final WHERE" in line for line in lines)


def test_explain_aggregate_sort_limit(db):
    lines = plan(
        db,
        "SELECT name, count(*) FROM c GROUP BY name HAVING count(*) > 1 "
        "ORDER BY name LIMIT 5 OFFSET 2",
    )
    joined = "\n".join(lines)
    assert "Aggregate by [name]" in joined
    assert "Having" in joined
    assert "Sort name" in joined
    assert "Limit 5 Offset 2" in joined


def test_explain_distinct(db):
    assert any("Distinct" in line for line in plan(db, "SELECT DISTINCT name FROM c"))


def test_explain_constant_row(db):
    assert plan(db, "SELECT 1")[0] == "Result: constant row"


def test_explain_does_not_execute(db):
    server, sid = db
    execute(server, sid, "INSERT INTO c VALUES (1, 'x')")
    before = server.stats.rows_returned
    execute(server, sid, "EXPLAIN SELECT * FROM c")
    # only the plan rows were returned, not table data
    lines = execute(server, sid, "EXPLAIN SELECT * FROM c")
    assert all(isinstance(line[0], str) for line in lines)


def test_explain_round_trips_through_parser(db):
    from repro.sql import parse

    stmt = parse("EXPLAIN SELECT * FROM c")
    assert parse(stmt.sql()).sql() == stmt.sql()


def test_explain_through_phoenix(system):
    conn = system.phoenix.connect(system.DSN)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("EXPLAIN SELECT * FROM t")
    lines = cur.fetchall()
    assert lines and lines[0] == ("Scan t",)
    conn.close()
