"""Unit tests for stable storage backends and the write-ahead log."""

from __future__ import annotations

import pytest

from repro.engine.schema import Column, TableSchema
from repro.engine.storage import FileStableStorage, InMemoryStableStorage, TableData
from repro.engine.values import SqlType
from repro.engine.wal import LogRecord, RecordType, WriteAheadLog, decode_log, encode_record


def make_data(n: int = 2) -> TableData:
    schema = TableSchema("t", (Column("k", SqlType.INT),))
    return TableData(schema=schema, rows={i: (i,) for i in range(1, n + 1)}, next_rowid=n + 1)


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        return InMemoryStableStorage()
    return FileStableStorage(str(tmp_path / "db"))


# ---------------------------------------------------------------- table files

def test_table_file_round_trip(storage):
    storage.write_table_file("t", make_data())
    loaded = storage.read_table_file("t")
    assert loaded.rows == {1: (1,), 2: (2,)}
    assert loaded.next_rowid == 3
    assert loaded.schema.name == "t"


def test_table_file_listing_and_delete(storage):
    storage.write_table_file("a", make_data())
    storage.write_table_file("b", make_data())
    assert storage.list_table_files() == ["a", "b"]
    storage.delete_table_file("a")
    assert storage.list_table_files() == ["b"]
    storage.delete_table_file("missing")  # idempotent


def test_temp_style_names_storable(storage):
    storage.write_table_file("#probe", make_data())
    assert "#probe" in storage.list_table_files()
    assert storage.read_table_file("#probe").rows


def test_memory_storage_deep_copies_on_write():
    storage = InMemoryStableStorage()
    data = make_data()
    storage.write_table_file("t", data)
    data.rows[99] = (99,)  # mutate the live object after the "disk write"
    assert 99 not in storage.read_table_file("t").rows


def test_memory_storage_deep_copies_on_read():
    storage = InMemoryStableStorage()
    storage.write_table_file("t", make_data())
    loaded = storage.read_table_file("t")
    loaded.rows.clear()
    assert storage.read_table_file("t").rows  # untouched


# ---------------------------------------------------------------- log

def test_log_append_returns_offsets(storage):
    first = storage.append_log(b"aaaa")
    second = storage.append_log(b"bb")
    assert first == 0 and second == 4
    assert storage.read_log() == b"aaaabb"
    assert storage.log_size() == 6


def test_log_truncate_prefix_keeps_absolute_offsets(storage):
    storage.append_log(b"aaaa")
    storage.append_log(b"bbbb")
    storage.truncate_log_prefix(4)
    assert storage.read_log() == b"bbbb"
    assert storage.log_size() == 8  # absolute
    assert storage.append_log(b"cc") == 8


def test_log_truncate_noop_for_past_offsets(storage):
    storage.append_log(b"abcd")
    storage.truncate_log_prefix(0)
    assert storage.read_log() == b"abcd"


# ---------------------------------------------------------------- meta

def test_meta_round_trip(storage):
    storage.write_meta("checkpoint_lsn", 123)
    assert storage.read_meta("checkpoint_lsn") == 123
    assert storage.read_meta("missing", "default") == "default"


def test_meta_overwrite(storage):
    storage.write_meta("k", 1)
    storage.write_meta("k", 2)
    assert storage.read_meta("k") == 2


def test_file_storage_survives_reopen(tmp_path):
    path = str(tmp_path / "db")
    first = FileStableStorage(path)
    first.write_table_file("t", make_data())
    first.append_log(b"log!")
    first.write_meta("m", {"x": 1})
    second = FileStableStorage(path)  # a new "process"
    assert second.list_table_files() == ["t"]
    assert second.read_log() == b"log!"
    assert second.read_meta("m") == {"x": 1}


# ---------------------------------------------------------------- WAL records

def record(i: int) -> LogRecord:
    return LogRecord(RecordType.INSERT, txn_id=i, table="t", rowid=i, after=(i,))


def test_encode_decode_round_trip():
    raw = encode_record(record(1)) + encode_record(record(2))
    decoded = decode_log(raw)
    assert [r.rowid for r in decoded] == [1, 2]
    assert decoded[0].lsn == 0
    assert decoded[1].lsn == len(encode_record(record(1)))


def test_decode_stops_at_torn_tail():
    raw = encode_record(record(1)) + encode_record(record(2))[:-3]
    decoded = decode_log(raw)
    assert len(decoded) == 1


def test_decode_stops_at_corrupt_crc():
    raw = bytearray(encode_record(record(1)))
    raw[-1] ^= 0xFF  # flip a payload byte
    assert decode_log(bytes(raw)) == []


def test_decode_respects_base_offset():
    raw = encode_record(record(1))
    decoded = decode_log(raw, base_offset=100)
    assert decoded[0].lsn == 100


def test_wal_buffers_until_force():
    storage = InMemoryStableStorage()
    wal = WriteAheadLog(storage)
    wal.append(record(1))
    assert storage.read_log() == b""  # nothing durable yet
    assert wal.pending_count() == 1
    wal.force()
    assert wal.pending_count() == 0
    assert len(wal.read_all()) == 1


def test_wal_lsn_assigned_at_append_and_correct_after_force():
    storage = InMemoryStableStorage()
    wal = WriteAheadLog(storage)
    lsn1 = wal.append(record(1))
    lsn2 = wal.append(record(2))
    assert lsn1 == 0 and lsn2 > 0
    wal.force()
    durable = wal.read_all()
    assert [r.lsn for r in durable] == [lsn1, lsn2]


def test_wal_append_forced_is_one_storage_append():
    storage = InMemoryStableStorage()
    wal = WriteAheadLog(storage)
    wal.append(record(1))  # pending
    before = storage.log_appends
    lsns = wal.append_forced([record(2), record(3)])
    assert storage.log_appends == before + 1  # single atomic append
    assert len(lsns) == 2
    assert len(wal.read_all()) == 3


def test_wal_force_without_pending_is_cheap():
    storage = InMemoryStableStorage()
    wal = WriteAheadLog(storage)
    before = storage.log_appends
    wal.force()
    assert storage.log_appends == before


def test_crash_loses_unforced_tail():
    """The volatile-buffer semantics recovery depends on."""
    storage = InMemoryStableStorage()
    wal = WriteAheadLog(storage)
    wal.append(record(1))
    wal.force()
    wal.append(record(2))  # never forced
    # "crash": a new WAL over the same storage sees only the durable prefix
    recovered = WriteAheadLog(storage).read_all()
    assert [r.rowid for r in recovered] == [1]


# ------------------------------------------------------- scan_log / torn tails

def test_scan_log_returns_end_of_intact_prefix():
    from repro.engine.wal import scan_log

    a, b = encode_record(record(1)), encode_record(record(2))
    records, good_end = scan_log(a + b)
    assert len(records) == 2 and good_end == len(a) + len(b)
    records, good_end = scan_log(a + b[:-3])
    assert len(records) == 1 and good_end == len(a)
    records, good_end = scan_log(a + b[:-3], base_offset=50)
    assert good_end == 50 + len(a)


def test_truncate_log_suffix_drops_torn_tail(storage):
    a, b = encode_record(record(1)), encode_record(record(2))
    storage.append_log(a)
    storage.append_log(b[:-3])  # torn write
    storage.truncate_log_suffix(len(a))
    assert storage.read_log() == a
    # appends after truncation land at the truncated offset
    offset = storage.append_log(b)
    assert offset == len(a)
    assert decode_log(storage.read_log())[1].rowid == 2


def test_truncate_log_suffix_noop_past_end(storage):
    a = encode_record(record(1))
    storage.append_log(a)
    storage.truncate_log_suffix(len(a) + 100)
    assert storage.read_log() == a


def test_inject_append_fault_torn(storage):
    from repro.engine.storage import StorageFault

    a = encode_record(record(1))
    storage.inject_append_fault("torn", torn_bytes=3)
    with pytest.raises(StorageFault):
        storage.append_log(a)
    assert storage.read_log() == a[:-3]  # a real torn prefix hit the device
    # the fault is one-shot: the next append is clean
    storage.truncate_log_suffix(0)
    storage.append_log(a)
    assert storage.read_log() == a


def test_inject_append_fault_fail_writes_nothing(storage):
    from repro.engine.storage import StorageFault

    storage.inject_append_fault("fail")
    with pytest.raises(StorageFault):
        storage.append_log(encode_record(record(1)))
    assert storage.read_log() == b""


def test_inject_append_fault_rejects_unknown_mode(storage):
    with pytest.raises(ValueError):
        storage.inject_append_fault("sparks")


def test_clear_append_fault_disarms(storage):
    storage.inject_append_fault("fail")
    storage.clear_append_fault()
    storage.append_log(encode_record(record(1)))
    assert len(decode_log(storage.read_log())) == 1


def test_restart_recovery_truncates_torn_tail(storage):
    """End to end: a torn append downs the server; restart recovery must
    truncate the tail so post-restart commits stay readable."""
    from repro.engine import DatabaseServer
    from repro.engine.storage import StorageFault

    server = DatabaseServer(storage)
    sid = server.connect()
    server.execute(sid, "CREATE TABLE t (k INT)")
    server.execute(sid, "INSERT INTO t VALUES (1)")
    storage.inject_append_fault("torn")
    with pytest.raises(StorageFault):
        server.execute(sid, "INSERT INTO t VALUES (2)")
    server.crash()
    report = server.restart()
    assert report.torn_tail_bytes > 0
    sid = server.connect()
    server.execute(sid, "INSERT INTO t VALUES (3)")
    server.crash()
    server.restart()
    sid = server.connect()
    result = server.execute(sid, "SELECT k FROM t ORDER BY k")
    assert result.result_set.rows == [(1,), (3,)]
