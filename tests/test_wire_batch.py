"""Wire batching + WAL group commit: one round trip and one log force per
batch on the hot DML path, with per-statement exactly-once preserved.

Covers the protocol messages, the server's deferred-force execution, the
batched executemany client path (vs the statement-at-a-time baseline),
partial-batch replay after mid-batch crashes and a torn WAL tail under a
group force, the satellite fixes (``FETCH_BLOCK_SIZE`` in fetchall,
executemany rowcount accumulation), the metrics surfaces, autobatch flush
barriers, and the chaos batch sweep.
"""

from __future__ import annotations

import pytest

import repro
from repro.chaos import ChaosExplorer
from repro.errors import IntegrityError
from repro.net import FaultKind
from repro.net.faults import BATCH_FAULTS, STORAGE_FAULTS, WIRE_FAULTS
from repro.net.protocol import (
    BatchExecuteRequest,
    BatchExecuteResponse,
    ErrorResponse,
    ResultResponse,
    decode_message,
    encode_message,
)
from repro.odbc.constants import CursorType, StatementAttr


def _create_table(system) -> None:
    loader = system.server.connect(user="loader")
    system.server.execute(loader, "CREATE TABLE t (k INT PRIMARY KEY, v FLOAT)")
    system.server.disconnect(loader)


def _table_rows(system, sql: str = "SELECT k, v FROM t ORDER BY k") -> list[tuple]:
    session = system.server.connect(user="check")
    result = system.server.execute(session, sql)
    system.server.disconnect(session)
    return result.result_set.rows


def _auto_restart(system, connection) -> None:
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )


def _is_batch(request) -> bool:
    return isinstance(request, BatchExecuteRequest)


# ------------------------------------------------------------------- protocol


def test_batch_messages_round_trip_the_wire():
    request = BatchExecuteRequest(
        session_id=7, statements=["BEGIN TRANSACTION; X; COMMIT", "SELECT 1"]
    )
    assert decode_message(encode_message(request)) == request

    response = BatchExecuteResponse(
        results=[ResultResponse(kind="rowcount", rowcount=1, batch_rowcounts=[1, 1])],
        error=ErrorResponse(error_type="IntegrityError", message="duplicate key"),
        error_index=1,
    )
    assert decode_message(encode_message(response)) == response


def test_mid_batch_fault_is_batch_scoped_not_wire_scoped():
    # the exhaustive wire sweep's run count is pinned to WIRE_FAULTS; the
    # argumented mid-batch kind sweeps separately over batch positions
    assert FaultKind.CRASH_MID_BATCH in BATCH_FAULTS
    assert FaultKind.CRASH_MID_BATCH not in WIRE_FAULTS
    assert FaultKind.CRASH_MID_BATCH not in STORAGE_FAULTS


# ------------------------------------------------------- server group commit


def test_execute_batch_coalesces_commit_forces(system):
    _create_table(system)
    session = system.server.connect()
    system.registry.reset()
    statements = [f"INSERT INTO t VALUES ({k}, {k}.5)" for k in range(1, 5)]
    results, error, error_index = system.server.execute_batch(session, statements)
    assert error is None and error_index == -1
    assert [r.rowcount for r in results] == [1, 1, 1, 1]
    wal = system.registry.wal
    assert wal.forces == 1  # one device force for four autocommit INSERTs
    assert wal.group_forces == 1
    assert wal.forces_coalesced == 3
    assert len(_table_rows(system)) == 4


def test_execute_batch_error_prefix_is_durable(system):
    _create_table(system)
    session = system.server.connect()
    system.registry.reset()
    statements = [
        "INSERT INTO t VALUES (1, 1.5)",
        "INSERT INTO t VALUES (1, 9.9)",  # duplicate key
        "INSERT INTO t VALUES (2, 2.5)",
    ]
    results, error, error_index = system.server.execute_batch(session, statements)
    assert len(results) == 1
    assert isinstance(error, IntegrityError)
    assert error_index == 1
    assert system.registry.wal.group_forces <= 1  # never more than one per batch
    # the completed prefix was forced before the reply: it survives a crash,
    # and the suffix after the error never ran
    system.server.crash()
    system.endpoint.restart_server()
    assert _table_rows(system) == [(1, 1.5)]


def test_group_force_is_noop_for_read_only_batch(system):
    _create_table(system)
    session = system.server.connect()
    system.registry.reset()
    results, error, _ = system.server.execute_batch(
        session, ["SELECT count(*) FROM t", "SELECT count(*) FROM t"]
    )
    assert error is None and len(results) == 2
    # nothing committed, so no device force happened at the boundary
    assert system.registry.wal.forces == 0
    assert system.registry.wal.group_forces == 0


# --------------------------------------------------------- batched executemany


ROWS = [[k, k * 1.5] for k in range(1, 10)]  # 9 rows: exercises a short tail chunk


def _run_executemany(batch_size: int) -> tuple[repro.System, "repro.PhoenixCursor"]:
    system = repro.make_system()
    _create_table(system)
    connection = system.phoenix.connect(system.DSN)
    _auto_restart(system, connection)
    cursor = connection.cursor()
    cursor.set_attr(StatementAttr.BATCH_SIZE, batch_size)
    system.registry.reset()
    cursor.executemany("INSERT INTO t VALUES (?, ?)", ROWS)
    return system, cursor


def test_batched_executemany_matches_unbatched_with_fewer_trips():
    batched_system, batched_cursor = _run_executemany(4)
    unbatched_system, unbatched_cursor = _run_executemany(1)

    assert batched_cursor.rowcount == unbatched_cursor.rowcount == len(ROWS)
    assert _table_rows(batched_system) == _table_rows(unbatched_system)

    batched_net = batched_system.registry.network
    unbatched_net = unbatched_system.registry.network
    assert batched_net.batch_requests == 3  # ceil(9 / 4)
    assert batched_net.requests_batched == len(ROWS)
    assert unbatched_net.batch_requests == 0
    assert batched_net.round_trips * 2 <= unbatched_net.round_trips

    batched_wal = batched_system.registry.wal
    unbatched_wal = unbatched_system.registry.wal
    assert batched_wal.forces == 3
    assert batched_wal.forces_coalesced == len(ROWS) - 3
    assert unbatched_wal.forces == len(ROWS)
    assert unbatched_wal.forces_coalesced == 0


def test_batched_executemany_stops_at_error_like_unbatched():
    system, _ = _run_executemany(4)
    connection = system.phoenix.connect(system.DSN)
    cursor = connection.cursor()
    cursor.set_attr(StatementAttr.BATCH_SIZE, 4)
    with pytest.raises(IntegrityError):
        # 1 already exists: the batch aborts at the failing row
        cursor.executemany(
            "INSERT INTO t VALUES (?, ?)", [[100, 1.0], [1, 9.9], [101, 1.0]]
        )
    rows = dict(_table_rows(system))
    assert 100 in rows  # prefix landed
    assert 101 not in rows  # suffix after the error never ran
    # the failed wrapper transaction was rolled back: the cursor still works
    cursor.execute("INSERT INTO t VALUES (102, 1.0)")
    assert cursor.rowcount == 1
    connection.close()


# ------------------------------------------------------- partial-batch replay


@pytest.mark.parametrize("executed", [0, 1, 2, 3])
def test_crash_mid_batch_recovers_exactly_once(executed):
    """Kill the server after ``executed`` sub-statements of a 3-statement
    batch (3 = all ran, group force never issued).  Recovery must resolve
    the partial batch and land every row exactly once."""
    system = repro.make_system()
    _create_table(system)
    connection = system.phoenix.connect(system.DSN)
    _auto_restart(system, connection)
    cursor = connection.cursor()
    cursor.set_attr(StatementAttr.BATCH_SIZE, 3)
    system.faults.schedule(
        FaultKind.CRASH_MID_BATCH, matcher=_is_batch, arg=min(executed, 3)
    )
    cursor.executemany("INSERT INTO t VALUES (?, ?)", [[k, float(k)] for k in (1, 2, 3)])
    assert cursor.rowcount == 3
    assert _table_rows(system) == [(1, 1.0), (2, 2.0), (3, 3.0)]
    assert connection.stats.recoveries >= 1
    connection.close()


def test_torn_wal_tail_under_group_force_recovers():
    """The one-shot storage fault armed at a batch request fires at the
    group force — the batch's single device write tears.  Nothing the
    client observed is lost (no reply preceded the force), and resubmission
    lands every statement exactly once."""
    system = repro.make_system()
    _create_table(system)
    connection = system.phoenix.connect(system.DSN)
    _auto_restart(system, connection)
    cursor = connection.cursor()
    cursor.set_attr(StatementAttr.BATCH_SIZE, 3)
    system.faults.schedule(FaultKind.TORN_WAL_TAIL, matcher=_is_batch)
    cursor.executemany("INSERT INTO t VALUES (?, ?)", [[k, float(k)] for k in (1, 2, 3)])
    assert cursor.rowcount == 3
    assert _table_rows(system) == [(1, 1.0), (2, 2.0), (3, 3.0)]
    connection.close()


# --------------------------------------------------------- satellite: fetchall


def test_phoenix_fetchall_honors_fetch_block_size(system):
    from repro.obs import Tracer, use_tracer

    _create_table(system)
    loader = system.server.connect(user="loader")
    values = ", ".join(f"({k}, {k}.5)" for k in range(1, 31))
    system.server.execute(loader, f"INSERT INTO t VALUES {values}")
    system.server.disconnect(loader)

    with use_tracer(Tracer(enabled=True)) as tracer:
        connection = system.phoenix.connect(system.DSN)
        cursor = connection.cursor()
        cursor.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
        cursor.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 10)
        cursor.execute("SELECT k, v FROM t ORDER BY k")
        rows = cursor.fetchall()
        connection.close()
    assert len(rows) == 30
    # fetchall drains in FETCH_BLOCK_SIZE chunks, not a hardcoded 1024 gulp
    asked = [
        r["attrs"]["n"]
        for r in tracer.records
        if r.get("kind") == "span" and r["name"] == "client.fetch"
    ]
    assert asked and set(asked) == {10}


def test_plain_fetchall_honors_fetch_block_size(system):
    _create_table(system)
    loader = system.server.connect(user="loader")
    values = ", ".join(f"({k}, {k}.5)" for k in range(1, 31))
    system.server.execute(loader, f"INSERT INTO t VALUES {values}")
    system.server.disconnect(loader)

    connection = system.plain.connect(system.DSN)
    statement = connection.cursor()
    statement.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    statement.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 10)
    network = system.registry.network
    statement.execute("SELECT k, v FROM t ORDER BY k")
    before = network.by_request_type["FetchRequest"]
    rows = statement.fetchall()
    fetches = network.by_request_type["FetchRequest"] - before
    assert len(rows) == 30
    assert fetches >= 3
    connection.close()


# ------------------------------------------------ satellite: rowcount summing


def test_plain_executemany_rowcount_accumulates(system):
    _create_table(system)
    connection = system.plain.connect(system.DSN)
    statement = connection.cursor()
    statement.executemany("INSERT INTO t VALUES (?, ?)", [[k, 1.0] for k in (1, 2, 3)])
    assert statement.rowcount == 3
    # a 0-row UPDATE contributes 0 — it is not dropped, and not -1
    statement.executemany(
        "UPDATE t SET v = ? WHERE k = ?", [[9.0, 1], [9.0, 99], [9.0, 2]]
    )
    assert statement.rowcount == 2
    connection.close()


def test_phoenix_executemany_rowcount_accumulates_unbatched(system):
    _create_table(system)
    connection = system.phoenix.connect(system.DSN)
    cursor = connection.cursor()
    cursor.set_attr(StatementAttr.BATCH_SIZE, 1)  # statement-at-a-time path
    cursor.executemany("INSERT INTO t VALUES (?, ?)", [[k, 1.0] for k in (1, 2, 3)])
    assert cursor.rowcount == 3
    cursor.executemany(
        "UPDATE t SET v = ? WHERE k = ?", [[9.0, 1], [9.0, 99], [9.0, 2]]
    )
    assert cursor.rowcount == 2
    connection.close()


# ----------------------------------------------------------- metrics surfaces


def test_registry_snapshot_exposes_wal_and_batch_counters():
    system, _cursor = _run_executemany(3)
    snapshot = system.registry.snapshot()
    wal = snapshot["wal"]
    assert wal["forces"] == 3
    assert wal["group_forces"] == 3
    assert wal["forces_coalesced"] == len(ROWS) - 3
    network = snapshot["network"]
    assert network["batch_requests"] == 3
    assert network["requests_batched"] == len(ROWS)
    system.registry.reset()
    after = system.registry.snapshot()
    assert after["wal"]["forces"] == 0
    assert after["network"]["batch_requests"] == 0


def test_wal_counters_survive_crash_restart():
    system, _cursor = _run_executemany(3)
    before = system.registry.wal.forces
    system.server.crash()
    system.endpoint.restart_server()
    assert system.registry.wal.forces >= before  # cumulative, never zeroed


# ----------------------------------------------------------------- autobatch


def test_autobatch_queues_dml_and_flushes_at_barriers():
    config = repro.PhoenixConfig(dml_autobatch=True, dml_autobatch_size=8)
    system = repro.make_system(config=config)
    _create_table(system)
    connection = system.phoenix.connect(system.DSN)
    cursor = connection.cursor()
    system.registry.reset()
    cursor.execute("INSERT INTO t VALUES (1, 1.0)")
    cursor.execute("INSERT INTO t VALUES (2, 2.0)")
    assert cursor.rowcount == -1  # queued: outcome unknown until the flush
    assert len(connection._dml_pending) == 2
    assert system.registry.network.batch_requests == 0
    # any non-DML statement is an ordering barrier: the queue flushes first
    cursor.execute("SELECT count(*) FROM t")
    assert cursor.fetchall() == [(2,)]
    assert connection._dml_pending == []
    assert system.registry.network.batch_requests == 1
    assert system.registry.network.requests_batched == 2
    connection.close()


def test_autobatch_flushes_at_size_threshold_and_close():
    config = repro.PhoenixConfig(dml_autobatch=True, dml_autobatch_size=2)
    system = repro.make_system(config=config)
    _create_table(system)
    connection = system.phoenix.connect(system.DSN)
    cursor = connection.cursor()
    cursor.execute("INSERT INTO t VALUES (1, 1.0)")
    cursor.execute("INSERT INTO t VALUES (2, 2.0)")  # hits the threshold
    assert connection._dml_pending == []
    cursor.execute("INSERT INTO t VALUES (3, 3.0)")
    assert len(connection._dml_pending) == 1
    connection.close()  # close() ships the stragglers
    assert len(_table_rows(system)) == 3


def test_autobatch_off_by_default():
    assert repro.PhoenixConfig().dml_autobatch is False


# ------------------------------------------------------- drain x batch straddle


def test_inflight_batch_group_forces_before_drain_swap():
    """A batch already executing when a graceful drain begins must run to
    completion — group force included — before the engine swap, never be
    split by it."""
    import threading
    import time

    from repro.engine.server import RestartPolicy

    system = repro.make_system()
    _create_table(system)
    connection = system.phoenix.connect(system.DSN)
    _auto_restart(system, connection)
    cursor = connection.cursor()
    cursor.set_attr(StatementAttr.BATCH_SIZE, 3)

    entered, release = threading.Event(), threading.Event()
    original = system.server.execute_batch

    def slow_batch(session_id, statements, **kwargs):
        entered.set()
        release.wait(5.0)
        return original(session_id, statements, **kwargs)

    system.server.execute_batch = slow_batch
    failures: list[str] = []

    def run_batch() -> None:
        try:
            cursor.executemany(
                "INSERT INTO t VALUES (?, ?)", [[k, float(k)] for k in (1, 2, 3)]
            )
        except Exception as exc:  # noqa: BLE001 — reported via the assertion
            failures.append(f"{type(exc).__name__}: {exc}")

    client = threading.Thread(target=run_batch)
    client.start()
    assert entered.wait(5.0)
    drainer = threading.Thread(
        target=system.endpoint.drain_and_restart,
        args=(RestartPolicy(mode="graceful"),),
    )
    drainer.start()
    time.sleep(0.05)
    # the swap must be parked behind the in-flight batch
    assert drainer.is_alive()
    assert system.registry.server.drains_completed == 0
    group_forces_before = system.registry.wal.group_forces

    release.set()
    client.join(5.0)
    drainer.join(5.0)
    assert not client.is_alive() and not drainer.is_alive()
    assert failures == []
    assert cursor.rowcount == 3
    # the batch's one group force happened (before the checkpoint), and the
    # swapped-in engine carries every row exactly once
    assert system.registry.wal.group_forces == group_forces_before + 1
    assert _table_rows(system) == [(1, 1.0), (2, 2.0), (3, 3.0)]
    connection.close()


def test_batch_parked_behind_drain_resolves_exactly_once_after_swap():
    """A batch submitted *during* the drain parks behind the barrier, runs
    against the swapped-in engine, loses its session, and is resolved by
    ``resolve_batch`` on recovery — every statement lands exactly once,
    none twice, none dropped."""
    import threading
    import time

    from repro.engine.server import RestartPolicy

    system = repro.make_system()
    _create_table(system)
    blocker = system.phoenix.connect(system.DSN)
    _auto_restart(system, blocker)
    batcher = system.phoenix.connect(system.DSN)
    _auto_restart(system, batcher)
    cursor = batcher.cursor()
    cursor.set_attr(StatementAttr.BATCH_SIZE, 3)

    entered, release = threading.Event(), threading.Event()
    original = system.server.execute

    def slow_execute(session_id, sql, **kwargs):
        # Phoenix re-renders the predicate with explicit parens
        if "k = 999" in sql:
            entered.set()
            release.wait(5.0)
        return original(session_id, sql, **kwargs)

    system.server.execute = slow_execute
    failures: list[str] = []

    def run_blocker() -> None:
        try:
            blocker.cursor().execute("UPDATE t SET v = 9.0 WHERE k = 999")
        except Exception as exc:  # noqa: BLE001
            failures.append(f"blocker {type(exc).__name__}: {exc}")

    def run_batch() -> None:
        try:
            cursor.executemany(
                "INSERT INTO t VALUES (?, ?)", [[k, float(k)] for k in (1, 2, 3)]
            )
        except Exception as exc:  # noqa: BLE001
            failures.append(f"batch {type(exc).__name__}: {exc}")

    blocker_thread = threading.Thread(target=run_blocker)
    blocker_thread.start()
    assert entered.wait(5.0)  # the blocker holds the drain open
    drainer = threading.Thread(
        target=system.endpoint.drain_and_restart,
        args=(RestartPolicy(mode="graceful"),),
    )
    drainer.start()
    deadline = time.monotonic() + 5.0
    while system.server.lifecycle != "draining":
        assert time.monotonic() < deadline
        time.sleep(0.001)

    batch_thread = threading.Thread(target=run_batch)
    batch_thread.start()
    deadline = time.monotonic() + 5.0
    while batcher.app.session_id not in system.server.dispatcher.keys_with_pending():
        assert time.monotonic() < deadline, "the batch never parked behind the barrier"
        time.sleep(0.001)

    release.set()
    for thread in (blocker_thread, drainer, batch_thread):
        thread.join(5.0)
        assert not thread.is_alive()
    assert failures == []
    assert cursor.rowcount == 3
    assert batcher.stats.recoveries >= 1  # the parked batch rode through
    assert _table_rows(system) == [(1, 1.0), (2, 2.0), (3, 3.0)]
    blocker.close()
    batcher.close()


# ------------------------------------------------------------ chaos batch sweep


def test_batch_fault_sweep_is_green():
    explorer = ChaosExplorer(seed=3)
    assert explorer.golden.batch_requests  # the trace exercises wire batching
    report = explorer.sweep_batch_faults()
    assert report.runs == sum(size + 1 for _i, size in explorer.golden.batch_requests)
    assert report.recovered_fraction == 1.0
    assert report.total_recoveries >= report.runs - len(explorer.golden.batch_requests)


# ------------------------------------------------------------------ harness


def test_run_wire_batch_guards_and_measures():
    from repro.bench.harness import run_wire_batch

    result = run_wire_batch(rows=6, batch_size=3, trials=1)
    assert result.fingerprints_match
    assert result.trip_ratio >= 2.0
    assert result.force_ratio >= 3.0
