"""Property-based tests for the newer engine features: secondary indexes,
views, and UNION — each checked against a plain Python model."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.engine import DatabaseServer

from tests.conftest import execute

keys = st.integers(min_value=0, max_value=15)
values = st.integers(min_value=0, max_value=5)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, values),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("update"), keys, values),
        st.tuples(st.just("crash")),
    ),
    max_size=25,
)


@settings(max_examples=30, deadline=None)
@given(ops=operations, probe=values)
def test_indexed_equality_matches_model(ops, probe):
    """After any DML sequence (and crashes), an index-probed equality query
    returns exactly what a dict model says it should."""
    server = DatabaseServer()
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    execute(server, sid, "CREATE INDEX iv ON t (v)")
    model: dict[int, int] = {}
    for op in ops:
        if op[0] == "crash":
            server.crash()
            server.restart()
            sid = server.connect()
        elif op[0] == "insert":
            _, k, v = op
            if k not in model:
                execute(server, sid, f"INSERT INTO t VALUES ({k}, {v})")
                model[k] = v
        elif op[0] == "delete":
            _, k = op
            execute(server, sid, f"DELETE FROM t WHERE k = {k}")
            model.pop(k, None)
        elif op[0] == "update":
            _, k, v = op
            execute(server, sid, f"UPDATE t SET v = {v} WHERE k = {k}")
            if k in model:
                model[k] = v
    got = execute(server, sid, f"SELECT k FROM t WHERE v = {probe} ORDER BY k")
    expected = sorted((k,) for k, v in model.items() if v == probe)
    assert got == expected
    # and the probe really is an index path
    plan = execute(server, sid, f"EXPLAIN SELECT k FROM t WHERE v = {probe}")
    assert plan[0][0].startswith("IndexScan")


@settings(max_examples=30, deadline=None)
@given(
    rows=st.lists(st.tuples(st.integers(0, 8), st.integers(-20, 20)), max_size=25),
    threshold=st.integers(-20, 20),
)
def test_view_matches_inlined_query(rows, threshold):
    server = DatabaseServer()
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (g INT, v INT)")
    if rows:
        execute(server, sid, "INSERT INTO t VALUES " + ", ".join(f"({g},{v})" for g, v in rows))
    execute(
        server, sid,
        "CREATE VIEW sums (g, total) AS SELECT g, sum(v) FROM t GROUP BY g",
    )
    via_view = execute(
        server, sid, f"SELECT g, total FROM sums WHERE total > {threshold} ORDER BY g"
    )
    inlined = execute(
        server, sid,
        f"SELECT g, sum(v) FROM t GROUP BY g HAVING sum(v) > {threshold} ORDER BY g",
    )
    assert via_view == inlined


@settings(max_examples=40, deadline=None)
@given(
    left=st.lists(st.integers(0, 10), max_size=15),
    right=st.lists(st.integers(0, 10), max_size=15),
    use_all=st.booleans(),
)
def test_union_matches_python_model(left, right, use_all):
    server = DatabaseServer()
    sid = server.connect()
    execute(server, sid, "CREATE TABLE a (x INT)")
    execute(server, sid, "CREATE TABLE b (x INT)")
    if left:
        execute(server, sid, "INSERT INTO a VALUES " + ", ".join(f"({v})" for v in left))
    if right:
        execute(server, sid, "INSERT INTO b VALUES " + ", ".join(f"({v})" for v in right))
    op = "UNION ALL" if use_all else "UNION"
    got = [r[0] for r in execute(server, sid, f"SELECT x FROM a {op} SELECT x FROM b ORDER BY x")]
    if use_all:
        expected = sorted(left + right)
    else:
        expected = sorted(set(left) | set(right))
    assert got == expected
