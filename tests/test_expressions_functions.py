"""Unit tests for scalar functions, aggregates, and expression evaluation
details not covered by the SELECT-level tests."""

from __future__ import annotations

import pytest

from repro.errors import DataError, ProgrammingError
from repro.engine.functions import SCALAR_FUNCTIONS, make_accumulator
from tests.conftest import execute


# ---------------------------------------------------------------- scalar fns

@pytest.mark.parametrize("name,args,expected", [
    ("upper", ("abc",), "ABC"),
    ("lower", ("ABC",), "abc"),
    ("length", ("abcd",), 4),
    ("abs", (-3,), 3),
    ("round", (3.456, 2), 3.46),
    ("floor", (3.9,), 3),
    ("ceil", (3.1,), 4),
    ("trim", ("  x  ",), "x"),
    ("ltrim", ("  x",), "x"),
    ("rtrim", ("x  ",), "x"),
    ("substr", ("hello", 2, 3), "ell"),
    ("substr", ("hello", 2), "ello"),
    ("concat", ("a", 1, "b"), "a1b"),
    ("replace", ("banana", "na", "NA"), "baNANA"),
    ("mod", (7, 3), 1),
])
def test_scalar_function_values(name, args, expected):
    assert SCALAR_FUNCTIONS[name](*args) == expected


@pytest.mark.parametrize("name", ["upper", "length", "abs", "substr", "concat"])
def test_scalar_functions_null_propagate(name):
    fn = SCALAR_FUNCTIONS[name]
    arity = {"substr": 2, "concat": 2}.get(name, 1)
    assert fn(*([None] * arity)) is None


def test_coalesce_returns_first_non_null():
    assert SCALAR_FUNCTIONS["coalesce"](None, None, 3, 4) == 3
    assert SCALAR_FUNCTIONS["coalesce"](None, None) is None


def test_nullif():
    assert SCALAR_FUNCTIONS["nullif"](1, 1) is None
    assert SCALAR_FUNCTIONS["nullif"](1, 2) == 1


def test_substring_negative_length_rejected():
    with pytest.raises(DataError):
        SCALAR_FUNCTIONS["substring"]("abc", 1, -1)


def test_date_function_parses():
    import datetime

    assert SCALAR_FUNCTIONS["date"]("1998-01-02") == datetime.date(1998, 1, 2)


# ---------------------------------------------------------------- accumulators

def feed(acc, values):
    for v in values:
        acc.add(v)
    return acc.result()


def test_count_skips_nulls():
    assert feed(make_accumulator("count"), [1, None, 2]) == 2


def test_count_star_counts_nulls():
    assert feed(make_accumulator("count", star=True), [1, None, 2]) == 3


def test_sum_empty_is_null():
    assert feed(make_accumulator("sum"), []) is None
    assert feed(make_accumulator("sum"), [None]) is None


def test_avg_skips_nulls():
    assert feed(make_accumulator("avg"), [2, None, 4]) == 3


def test_min_max_with_strings():
    assert feed(make_accumulator("min"), ["b", "a", "c"]) == "a"
    assert feed(make_accumulator("max"), ["b", "a", "c"]) == "c"


def test_distinct_wrapper():
    assert feed(make_accumulator("sum", distinct=True), [1, 1, 2, 2, 3]) == 6
    assert feed(make_accumulator("count", distinct=True), [1, 1, None, 2]) == 2


def test_star_only_valid_for_count():
    with pytest.raises(ProgrammingError):
        make_accumulator("sum", star=True)


def test_unknown_aggregate_rejected():
    with pytest.raises(ProgrammingError):
        make_accumulator("median")


# ---------------------------------------------------------------- via SQL

@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10), n FLOAT)")
    execute(server, sid, "INSERT INTO t VALUES (1, 'Ab', -2.5), (2, NULL, 7.0)")
    return server, sid


def test_functions_compose_in_sql(db):
    server, sid = db
    rows = execute(server, sid, "SELECT upper(coalesce(v, 'none')), abs(n) FROM t ORDER BY k")
    assert rows == [("AB", 2.5), ("NONE", 7.0)]


def test_cast_in_sql(db):
    server, sid = db
    rows = execute(server, sid, "SELECT CAST(n AS INT), CAST(k AS VARCHAR(5)) FROM t ORDER BY k")
    assert rows == [(-2, "1"), (7, "2")]


def test_case_with_operand_in_sql(db):
    server, sid = db
    rows = execute(
        server, sid,
        "SELECT CASE k WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END FROM t ORDER BY k",
    )
    assert rows == [("one",), ("two",)]


def test_case_without_else_yields_null(db):
    server, sid = db
    rows = execute(server, sid, "SELECT CASE WHEN k > 5 THEN 'big' END FROM t")
    assert rows == [(None,), (None,)]


def test_unknown_function_rejected(db):
    server, sid = db
    with pytest.raises(ProgrammingError):
        execute(server, sid, "SELECT frobnicate(k) FROM t")


def test_string_comparison_case_sensitive(db):
    server, sid = db
    assert execute(server, sid, "SELECT count(*) FROM t WHERE v = 'ab'") == [(0,)]
    assert execute(server, sid, "SELECT count(*) FROM t WHERE upper(v) = 'AB'") == [(1,)]


def test_arithmetic_null_propagation(db):
    server, sid = db
    rows = execute(server, sid, "SELECT n + 1, v || 'x' FROM t WHERE k = 2")
    assert rows == [(8.0, None)]


def test_nested_function_calls(db):
    server, sid = db
    rows = execute(server, sid, "SELECT length(concat(v, v)) FROM t WHERE k = 1")
    assert rows == [(4,)]


def test_modulo_operator(db):
    server, sid = db
    assert execute(server, sid, "SELECT 7 % 3") == [(1,)]


def test_date_minus_date_gives_days(session):
    server, sid = session
    rows = execute(server, sid, "SELECT DATE '1998-03-01' - DATE '1998-02-27'")
    assert rows == [(2,)]


def test_date_plus_days_integer(session):
    import datetime

    server, sid = session
    rows = execute(server, sid, "SELECT DATE '1998-02-27' + 2")
    assert rows == [(datetime.date(1998, 3, 1),)]
