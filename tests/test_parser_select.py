"""Parser tests: SELECT in all its shapes."""

from __future__ import annotations

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast, parse, parse_expression


def test_minimal_select_no_from():
    stmt = parse("SELECT 1")
    assert isinstance(stmt, ast.Select)
    assert stmt.from_ is None
    assert isinstance(stmt.items[0].expr, ast.Literal)


def test_select_star():
    stmt = parse("SELECT * FROM t")
    assert isinstance(stmt.items[0].expr, ast.Star)
    assert stmt.items[0].expr.table is None


def test_select_qualified_star():
    stmt = parse("SELECT t.* FROM t")
    assert stmt.items[0].expr.table == "t"


def test_select_item_aliases():
    stmt = parse("SELECT a AS x, b y, c FROM t")
    assert [item.alias for item in stmt.items] == ["x", "y", None]


def test_distinct_flag():
    assert parse("SELECT DISTINCT a FROM t").distinct
    assert not parse("SELECT ALL a FROM t").distinct


def test_top_n_sets_limit():
    stmt = parse("SELECT TOP 5 a FROM t")
    assert stmt.limit == 5


def test_limit_offset():
    stmt = parse("SELECT a FROM t LIMIT 10 OFFSET 20")
    assert stmt.limit == 10
    assert stmt.offset == 20


def test_select_into():
    stmt = parse("SELECT a INTO target FROM src")
    assert stmt.into == "target"


def test_table_alias_with_and_without_as():
    stmt = parse("SELECT * FROM orders AS o")
    assert stmt.from_.alias == "o"
    stmt = parse("SELECT * FROM orders o")
    assert stmt.from_.alias == "o"


def test_comma_join_builds_cross_joins():
    stmt = parse("SELECT * FROM a, b, c")
    outer = stmt.from_
    assert isinstance(outer, ast.Join) and outer.kind == "CROSS"
    assert isinstance(outer.left, ast.Join) and outer.left.kind == "CROSS"


def test_inner_join_with_on():
    stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y")
    join = stmt.from_
    assert join.kind == "INNER"
    assert isinstance(join.on, ast.Binary)


def test_explicit_inner_keyword():
    assert parse("SELECT * FROM a INNER JOIN b ON a.x = b.x").from_.kind == "INNER"


def test_left_outer_join():
    assert parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x").from_.kind == "LEFT"
    assert parse("SELECT * FROM a LEFT JOIN b ON a.x = b.x").from_.kind == "LEFT"


def test_cross_join_keyword():
    join = parse("SELECT * FROM a CROSS JOIN b").from_
    assert join.kind == "CROSS" and join.on is None


def test_chained_joins_are_left_deep():
    stmt = parse("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
    outer = stmt.from_
    assert isinstance(outer.left, ast.Join)
    assert isinstance(outer.right, ast.TableName) and outer.right.name == "c"


def test_derived_table():
    stmt = parse("SELECT * FROM (SELECT a FROM t) sub")
    assert isinstance(stmt.from_, ast.SubquerySource)
    assert stmt.from_.alias == "sub"


def test_derived_table_requires_alias():
    with pytest.raises(SQLSyntaxError):
        parse("SELECT * FROM (SELECT a FROM t)")


def test_where_clause():
    stmt = parse("SELECT a FROM t WHERE a > 1 AND b < 2")
    assert isinstance(stmt.where, ast.Binary) and stmt.where.op == "AND"


def test_group_by_multiple_keys():
    stmt = parse("SELECT a, b, count(*) FROM t GROUP BY a, b")
    assert len(stmt.group_by) == 2


def test_having():
    stmt = parse("SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2")
    assert stmt.having is not None


def test_order_by_asc_desc():
    stmt = parse("SELECT a, b FROM t ORDER BY a DESC, b ASC, a + b")
    assert [o.desc for o in stmt.order_by] == [True, False, False]


def test_aggregates_parse_as_funccall():
    stmt = parse("SELECT count(*), sum(x), avg(y), min(z), max(w) FROM t")
    names = [item.expr.name for item in stmt.items]
    assert names == ["count", "sum", "avg", "min", "max"]
    assert stmt.items[0].expr.star


def test_count_distinct():
    expr = parse("SELECT count(DISTINCT x) FROM t").items[0].expr
    assert expr.distinct and not expr.star


def test_scalar_function_call():
    expr = parse_expression("upper(name)")
    assert isinstance(expr, ast.FuncCall) and expr.name == "upper"


def test_nullary_function_call():
    expr = parse_expression("rowcount()")
    assert isinstance(expr, ast.FuncCall) and expr.args == []


def test_in_list_predicate():
    expr = parse_expression("x IN (1, 2, 3)")
    assert isinstance(expr, ast.InList) and len(expr.items) == 3


def test_not_in_subquery():
    expr = parse_expression("x NOT IN (SELECT y FROM t)")
    assert isinstance(expr, ast.InSelect) and expr.negated


def test_between_and_not_between():
    assert not parse_expression("x BETWEEN 1 AND 2").negated
    assert parse_expression("x NOT BETWEEN 1 AND 2").negated


def test_like_with_escape():
    expr = parse_expression("x LIKE 'a!%%' ESCAPE '!'")
    assert isinstance(expr, ast.Like) and expr.escape is not None


def test_is_null_and_is_not_null():
    assert not parse_expression("x IS NULL").negated
    assert parse_expression("x IS NOT NULL").negated


def test_exists_subquery():
    expr = parse_expression("EXISTS (SELECT 1 FROM t)")
    assert isinstance(expr, ast.Exists)


def test_scalar_subquery_expression():
    expr = parse_expression("(SELECT max(x) FROM t)")
    assert isinstance(expr, ast.ScalarSelect)


def test_case_searched():
    expr = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
    assert isinstance(expr, ast.CaseExpr) and expr.operand is None


def test_case_with_operand():
    expr = parse_expression("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
    assert expr.operand is not None and len(expr.whens) == 2


def test_case_requires_when():
    with pytest.raises(SQLSyntaxError):
        parse_expression("CASE ELSE 1 END")


def test_cast():
    expr = parse_expression("CAST(x AS VARCHAR(10))")
    assert isinstance(expr, ast.Cast) and expr.type.length == 10


def test_date_literal():
    expr = parse_expression("DATE '1998-12-01'")
    assert isinstance(expr, ast.Literal) and expr.is_date


def test_interval_arithmetic():
    expr = parse_expression("DATE '1998-12-01' - INTERVAL '90' DAY")
    assert isinstance(expr, ast.Binary) and isinstance(expr.right, ast.IntervalLiteral)
    assert expr.right.amount == 90 and expr.right.unit == "DAY"


def test_extract_year():
    expr = parse_expression("EXTRACT(YEAR FROM d)")
    assert isinstance(expr, ast.ExtractExpr) and expr.part == "YEAR"


def test_year_convenience_form():
    expr = parse_expression("YEAR(d)")
    assert isinstance(expr, ast.ExtractExpr)


def test_substring_from_for():
    expr = parse_expression("SUBSTRING(phone FROM 1 FOR 2)")
    assert isinstance(expr, ast.SubstringExpr) and expr.length is not None


def test_substring_comma_form():
    expr = parse_expression("SUBSTRING(phone, 1, 2)")
    assert isinstance(expr, ast.SubstringExpr)


def test_operator_precedence_arithmetic_over_comparison():
    expr = parse_expression("a + b * c > d")
    assert expr.op == ">"
    assert expr.left.op == "+"
    assert expr.left.right.op == "*"


def test_operator_precedence_and_over_or():
    expr = parse_expression("a OR b AND c")
    assert expr.op == "OR"
    assert expr.right.op == "AND"


def test_not_binds_tighter_than_and():
    expr = parse_expression("NOT a AND b")
    assert expr.op == "AND"
    assert isinstance(expr.left, ast.Unary)


def test_unary_minus_folds_into_literal():
    expr = parse_expression("-5")
    assert isinstance(expr, ast.Literal) and expr.value == -5


def test_placeholders_numbered_left_to_right():
    stmt = parse("SELECT a FROM t WHERE x = ? AND y = ?")
    conj = stmt.where
    assert conj.left.right.index == 0
    assert conj.right.right.index == 1


def test_named_parameter_expression():
    expr = parse_expression("@cutoff")
    assert isinstance(expr, ast.Param) and expr.name == "cutoff"


def test_trailing_garbage_rejected():
    with pytest.raises(SQLSyntaxError):
        parse("SELECT 1 FROM t extra nonsense ,")


def test_select_star_without_from_parses_but_is_semantic_error():
    # the grammar allows it; the executor rejects '*' with no sources
    stmt = parse("SELECT *")
    assert isinstance(stmt.items[0].expr, ast.Star)


def test_incomplete_join_rejected():
    with pytest.raises(SQLSyntaxError):
        parse("SELECT * FROM a JOIN b")  # missing ON


def test_dangling_comma_in_select_list_rejected():
    with pytest.raises(SQLSyntaxError):
        parse("SELECT a, FROM t")
