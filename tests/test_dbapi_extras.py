"""Tests for DB-API extras and EXEC result-set transparency."""

from __future__ import annotations

import pytest

from repro.errors import IntegrityError
from repro.net import FaultKind


@pytest.fixture()
def both(system):
    plain = system.plain.connect(system.DSN)
    phoenix = system.phoenix.connect(system.DSN)
    phoenix.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    cur = plain.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10))")
    yield system, plain, phoenix
    for connection in (plain, phoenix):
        if not connection.closed:
            connection.close()


# ---------------------------------------------------------------- executemany

def test_executemany_native(both):
    _system, plain, _phoenix = both
    cur = plain.cursor()
    cur.executemany("INSERT INTO t VALUES (?, ?)", [[1, "a"], [2, "b"], [3, "c"]])
    assert cur.rowcount == 3
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (3,)


def test_executemany_phoenix(both):
    _system, _plain, phoenix = both
    cur = phoenix.cursor()
    cur.executemany("INSERT INTO t VALUES (?, ?)", [[10, "x"], [11, "y"]])
    assert cur.rowcount == 2


def test_executemany_phoenix_survives_crash(both):
    system, _plain, phoenix = both
    cur = phoenix.cursor()
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "21")
    cur.executemany("INSERT INTO t VALUES (?, ?)", [[20, "x"], [21, "y"], [22, "z"]])
    assert cur.rowcount == 3
    cur.execute("SELECT count(*) FROM t WHERE k >= 20")
    assert cur.fetchone() == (3,)


def test_executemany_stops_on_error(both):
    _system, plain, _phoenix = both
    cur = plain.cursor()
    cur.execute("INSERT INTO t VALUES (1, 'a')")
    with pytest.raises(IntegrityError):
        cur.executemany("INSERT INTO t VALUES (?, ?)", [[5, "x"], [1, "dup"], [6, "y"]])
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (2,)  # 1 and 5; 6 never ran


# ---------------------------------------------------------------- EXEC rows

def test_exec_result_set_transparent(both):
    _system, plain, phoenix = both
    setup = plain.cursor()
    setup.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    setup.execute("CREATE PROCEDURE listing AS SELECT k, v FROM t ORDER BY k")
    native_rows = plain.cursor().execute("EXEC listing").fetchall()
    phoenix_rows = phoenix.cursor().execute("EXEC listing").fetchall()
    assert native_rows == phoenix_rows == [(1, "a"), (2, "b")]


def test_exec_rows_lost_reply_returns_outcome_only(both):
    """The documented narrowing: when the EXEC's reply dies with the
    server, only the logged outcome (rowcount) survives."""
    system, plain, phoenix = both
    setup = plain.cursor()
    setup.execute("INSERT INTO t VALUES (1, 'a')")
    setup.execute("CREATE PROCEDURE listing AS SELECT k FROM t")
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "EXEC listing")
    cur = phoenix.cursor()
    cur.execute("EXEC listing")
    assert cur.fetchall() == []  # rows were in the lost reply
    assert phoenix.stats.probe_hits == 1  # but the outcome is certain


def test_exec_dml_proc_exactly_once(both):
    system, plain, phoenix = both
    setup = plain.cursor()
    setup.execute("CREATE PROCEDURE add_row (@k INT) AS INSERT INTO t VALUES (@k, 'p')")
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "EXEC add_row")
    cur = phoenix.cursor()
    cur.execute("EXEC add_row 42")
    cur.execute("SELECT count(*) FROM t WHERE k = 42")
    assert cur.fetchone() == (1,)
