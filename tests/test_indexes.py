"""Tests for secondary indexes: DDL, maintenance, planner use, recovery."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, NotSupportedError
from tests.conftest import execute


@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10), g INT)")
    execute(
        server, sid,
        "INSERT INTO t VALUES " + ", ".join(f"({i}, 'v{i % 5}', {i % 3})" for i in range(1, 61)),
    )
    execute(server, sid, "CREATE INDEX iv ON t (v)")
    return server, sid


def explain(db, sql):
    server, sid = db
    return "\n".join(r[0] for r in execute(server, sid, f"EXPLAIN {sql}"))


# ---------------------------------------------------------------- DDL

def test_create_and_drop_index(db):
    server, sid = db
    assert server.database.indexes == {"iv": ("t", "v")}
    execute(server, sid, "DROP INDEX iv")
    assert server.database.indexes == {}


def test_duplicate_index_name_rejected(db):
    server, sid = db
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE INDEX iv ON t (g)")


def test_index_on_missing_table_or_column_rejected(session):
    server, sid = session
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE INDEX i ON nope (x)")
    execute(server, sid, "CREATE TABLE t (k INT)")
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE INDEX i ON t (missing)")


def test_drop_missing_index(db):
    server, sid = db
    with pytest.raises(CatalogError):
        execute(server, sid, "DROP INDEX nope")
    execute(server, sid, "DROP INDEX IF EXISTS nope")  # tolerated


def test_index_on_temp_table_rejected(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE #w (x INT)")
    with pytest.raises(NotSupportedError):
        execute(server, sid, "CREATE INDEX i ON #w (x)")


def test_drop_table_drops_its_indexes(db):
    server, sid = db
    execute(server, sid, "DROP TABLE t")
    assert server.database.indexes == {}


# ---------------------------------------------------------------- planner

def test_equality_selection_uses_index(db):
    assert "IndexScan t (v = const)" in explain(db, "SELECT * FROM t WHERE v = 'v3'")


def test_pk_equality_uses_pk_lookup(db):
    assert "PkLookup t (k = const)" in explain(db, "SELECT * FROM t WHERE k = 7")


def test_non_indexed_column_scans(db):
    assert "Scan t" in explain(db, "SELECT * FROM t WHERE g = 1")


def test_index_results_match_scan(db):
    server, sid = db
    indexed = execute(server, sid, "SELECT k FROM t WHERE v = 'v2' ORDER BY k")
    execute(server, sid, "DROP INDEX iv")
    scanned = execute(server, sid, "SELECT k FROM t WHERE v = 'v2' ORDER BY k")
    assert indexed == scanned and indexed


def test_probe_combined_with_other_predicates(db):
    server, sid = db
    rows = execute(server, sid, "SELECT k FROM t WHERE v = 'v1' AND g = 0 ORDER BY k")
    expected = [(i,) for i in range(1, 61) if i % 5 == 1 and i % 3 == 0]
    assert rows == expected


def test_probe_with_incomparable_constant_matches_nothing(db):
    server, sid = db
    assert execute(server, sid, "SELECT k FROM t WHERE k = 'abc'") == []


def test_probe_value_can_be_expression(db):
    server, sid = db
    rows = execute(server, sid, "SELECT v FROM t WHERE k = 3 + 4")
    assert rows == [("v2",)]


def test_correlated_probe_in_subquery(db):
    """The probe value may reference the outer row (evaluated per call)."""
    server, sid = db
    rows = execute(
        server, sid,
        "SELECT a.k FROM t a WHERE a.g = (SELECT g FROM t WHERE k = a.k) AND a.k <= 3 ORDER BY a.k",
    )
    assert rows == [(1,), (2,), (3,)]


# ---------------------------------------------------------------- maintenance

def test_index_maintained_by_dml(db):
    server, sid = db
    execute(server, sid, "INSERT INTO t VALUES (100, 'v1', 0)")
    execute(server, sid, "UPDATE t SET v = 'v1' WHERE k = 5")
    execute(server, sid, "DELETE FROM t WHERE k = 1")
    rows = execute(server, sid, "SELECT count(*) FROM t WHERE v = 'v1'")
    execute(server, sid, "DROP INDEX iv")
    assert execute(server, sid, "SELECT count(*) FROM t WHERE v = 'v1'") == rows


def test_index_respects_rollback(db):
    server, sid = db
    before = execute(server, sid, "SELECT count(*) FROM t WHERE v = 'v1'")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (200, 'v1', 0)")
    execute(server, sid, "ROLLBACK")
    assert execute(server, sid, "SELECT count(*) FROM t WHERE v = 'v1'") == before


# ---------------------------------------------------------------- recovery

def test_index_survives_crash(db):
    server, sid = db
    server.crash()
    server.restart()
    sid = server.connect()
    assert server.database.indexes == {"iv": ("t", "v")}
    assert server.database.tables["t"].has_secondary_index("v")
    rows = execute(server, sid, "SELECT count(*) FROM t WHERE v = 'v0'")
    assert rows == [(12,)]


def test_index_survives_checkpointed_crash(db):
    server, sid = db
    server.checkpoint()
    execute(server, sid, "CREATE INDEX ig ON t (g)")
    server.crash()
    server.restart()
    assert set(server.database.indexes) == {"iv", "ig"}


def test_uncommitted_index_ddl_rolled_back_by_crash(db):
    server, sid = db
    execute(server, sid, "BEGIN")
    execute(server, sid, "DROP INDEX iv")
    execute(server, sid, "CREATE INDEX ig ON t (g)")
    server.database.wal.force()
    server.crash()
    server.restart()
    assert server.database.indexes == {"iv": ("t", "v")}
    assert server.database.tables["t"].has_secondary_index("v")
    assert not server.database.tables["t"].has_secondary_index("g")


def test_index_through_phoenix_with_crash(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))")
    cur.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a')")
    cur.execute("CREATE INDEX iv ON t (v)")
    system.server.crash()
    system.endpoint.restart_server()
    cur.execute("SELECT count(*) FROM t WHERE v = 'a'")
    assert cur.fetchone() == (2,)
