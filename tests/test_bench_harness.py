"""Tests for the benchmark harness and reporting (fast, tiny parameters)."""

from __future__ import annotations

import math

import pytest

import repro
from repro.bench.harness import (
    Fig2Point,
    Table1Row,
    run_fig2_recovery_sweep,
    run_table1_power_comparison,
)
from repro.bench.reporting import render_fig2, render_table1
from repro.workloads.tpch.datagen import populate


@pytest.fixture(scope="module")
def tiny():
    system = repro.make_system()
    data = populate(system, sf=0.0005, seed=3)
    return system, data


def test_table1_row_derived_columns():
    row = Table1Row("Q1", 10, native_seconds=2.0, phoenix_seconds=2.2)
    assert abs(row.difference - 0.2) < 1e-12
    assert abs(row.ratio - 1.1) < 1e-12


def test_table1_ratio_handles_zero_native():
    row = Table1Row("Q0", 0, native_seconds=0.0, phoenix_seconds=0.1)
    assert math.isnan(row.ratio)


def test_table1_comparison_has_totals(tiny):
    system, data = tiny
    rows = run_table1_power_comparison(
        system=system, data=data, repetitions=1, queries=["Q1", "Q6"]
    )
    names = [r.name for r in rows]
    assert "Total Query" in names and "Total Updates" in names
    total = next(r for r in rows if r.name == "Total Query")
    parts = [r for r in rows if r.name in ("Q1", "Q6")]
    assert abs(total.native_seconds - sum(p.native_seconds for p in parts)) < 1e-9


def test_fig2_point_totals():
    point = Fig2Point(100, 0.1, 0.2, 0.05, recompute_seconds=1.0)
    assert abs(point.recovery_seconds - 0.35) < 1e-12
    assert abs(point.recovery_vs_recompute - 0.35) < 1e-12


def test_fig2_sweep_produces_points():
    series = run_fig2_recovery_sweep(result_sizes=[50, 100], table_rows=500)
    assert [p.result_size for p in series.points] == [50, 100]
    for point in series.points:
        assert point.virtual_session_seconds > 0
        assert point.recompute_seconds > 0


def test_render_table1_layout():
    rows = [Table1Row("Q1", 5, 1.0, 1.1), Table1Row("Total Query", 5, 1.0, 1.1)]
    text = render_table1(rows)
    assert "Table 1" in text
    assert "Q1" in text and "Total Query" in text
    assert "1.100" in text  # the ratio column


def test_render_fig2_layout():
    from repro.bench.harness import Fig2Series

    series = Fig2Series(points=[Fig2Point(100, 0.001, 0.002, 0.0, 0.05)])
    text = render_fig2(series)
    assert "Figure 2" in text
    assert "100" in text
    assert "V = virtual session" in text
