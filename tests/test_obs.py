"""Tests for repro.obs: tracer, histograms, registry, timeline, CLI.

Pins the observability contracts ISSUE 3 introduced:

* a disabled tracer is a true no-op — no records, no id allocation;
* one correlation id survives a crash + recovery and links the client
  statement, the fault, the detection pings, both recovery phases, and the
  engine's restart recovery into a single causal chain;
* histogram bucket edges are the documented log-scale series;
* :class:`RecoveryTimeline` reconstructs phases from a synthetic trace;
* the metrics reset semantics defined in ``repro/obs/metrics.py`` hold:
  counters are cumulative across crash/restart, caches drop, and
  ``reset()`` is the only path back to zero.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.errors import CommunicationError
from repro.net.faults import FaultKind
from repro.obs import (
    Histogram,
    MetricsRegistry,
    RecoveryTimeline,
    Tracer,
    get_tracer,
    render_tree,
    use_tracer,
)
from repro.obs.tracer import load_jsonl


# ------------------------------------------------------------------ tracer


class TestTracerDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer", key="value") as span:
            span.set(more="attrs")
            tracer.event("inner.event", x=1)
        assert tracer.records == []
        assert tracer.ids_allocated == 0

    def test_disabled_tracer_allocates_no_correlation_ids(self):
        tracer = Tracer(enabled=False)
        assert tracer.new_correlation_id() is None
        assert tracer.ids_allocated == 0

    def test_default_process_tracer_is_disabled(self):
        assert get_tracer().enabled is False

    def test_disabled_workload_leaves_no_trace(self):
        """Running a whole system under an explicit disabled tracer must
        allocate nothing — the zero-cost-off guarantee, end to end."""
        tracer = Tracer(enabled=False)
        with use_tracer(tracer):
            system = repro.make_system()
            connection = system.phoenix.connect(system.DSN)
            cursor = connection.cursor()
            cursor.execute("CREATE TABLE t (k INT PRIMARY KEY)")
            cursor.execute("INSERT INTO t VALUES (1)")
            cursor.execute("SELECT * FROM t")
            assert cursor.fetchall() == [(1,)]
            assert connection.correlation_id is None
            connection.close()
        assert tracer.records == []
        assert tracer.ids_allocated == 0


class TestTracerEnabled:
    def test_span_records_parent_and_corr_inheritance(self):
        tracer = Tracer(enabled=True, seed=7)
        corr = tracer.new_correlation_id()
        assert corr == "s7-c1"
        with tracer.span("outer", corr=corr):
            with tracer.span("inner"):
                tracer.event("leaf")
        spans = [r for r in tracer.records if r["kind"] == "span"]
        events = [r for r in tracer.records if r["kind"] == "event"]
        outer = next(r for r in spans if r["name"] == "outer")
        inner = next(r for r in spans if r["name"] == "inner")
        assert inner["parent"] == outer["id"]
        assert inner["corr"] == corr
        assert events[0]["corr"] == corr
        assert events[0]["parent"] == inner["id"]

    def test_span_error_capture(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.records
        assert span["error"] == "ValueError: boom"

    def test_ids_are_deterministic(self):
        a, b = Tracer(enabled=True, seed=3), Tracer(enabled=True, seed=3)
        for tracer in (a, b):
            with tracer.span("x"):
                tracer.event("y")
        strip = lambda rs: [
            {k: v for k, v in r.items() if k not in ("start", "end", "at")}
            for r in rs
        ]
        assert strip(a.records) == strip(b.records)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a", n=1):
            tracer.event("b")
        path = tmp_path / "trace.jsonl"
        tracer.dump_jsonl(path)
        assert load_jsonl(path) == tracer.records


# ------------------------------------------------------- corr across recovery


class TestCorrelationAcrossRecovery:
    def test_corr_id_survives_crash_and_links_the_whole_chain(self, system):
        tracer = Tracer(enabled=True, seed=1)
        with use_tracer(tracer):
            connection = system.phoenix.connect(system.DSN)
            connection.config.sleep = lambda _s: (
                system.endpoint.restart_server() if not system.server.up else None
            )
            corr = connection.correlation_id
            assert corr is not None
            cursor = connection.cursor()
            cursor.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            cursor.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
            system.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE)
            cursor.execute("UPDATE t SET v = 99 WHERE k = 1")
            assert connection.stats.recoveries == 1
            connection.close()

        by_name = {}
        for record in tracer.records:
            by_name.setdefault(record["name"], []).append(record)

        # every link of the causal chain carries the session's corr id
        for name in (
            "client.statement",
            "wire.send",
            "server.dispatch",
            "fault.fired",
            "recovery",
            "recovery.await_server",
            "recovery.ping",
            "recovery.phase1.virtual_session",
            "recovery.phase2.sql_state",
        ):
            assert name in by_name, f"missing {name} records"
            assert any(r["corr"] == corr for r in by_name[name]), name

        # the engine's restart recovery ran *inside* the client's recovery
        # (the injected sleep restarts the server), so it shares the corr
        restart_recoveries = [
            r for r in by_name["engine.recovery"] if r["corr"] == corr
        ]
        assert restart_recoveries, "restart recovery not linked to the session"

        recovery_span = by_name["recovery"][0]
        assert recovery_span["attrs"]["outcome"] == "rebuilt"
        assert recovery_span["corr"] == corr

    def test_spurious_recovery_traced_as_spurious(self, system):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            connection = system.phoenix.connect(system.DSN)
            from repro.errors import TimeoutError as ReproTimeout

            rebuilt = connection.recovery.recover(ReproTimeout("slow server"))
            assert rebuilt is False
            connection.close()
        recovery = next(r for r in tracer.records if r["name"] == "recovery")
        assert recovery["attrs"]["outcome"] == "spurious"
        assert any(r["name"] == "recovery.detect" for r in tracer.records)


# --------------------------------------------------------------- histograms


class TestHistogram:
    def test_bucket_edges_are_log_scale(self):
        hist = Histogram(min_edge=1e-6, base=2.0, buckets=8)
        assert hist.edges == [1e-6 * 2.0**i for i in range(8)]
        assert len(hist.counts) == 9  # + overflow

    def test_values_land_in_documented_buckets(self):
        hist = Histogram(min_edge=1.0, base=10.0, buckets=3)  # edges 1, 10, 100
        hist.record(0.5)  # <= 1 → bucket 0
        hist.record(1.0)  # == edge → bucket 0 (first edge >= v)
        hist.record(5.0)  # bucket 1
        hist.record(99.0)  # bucket 2
        hist.record(1000.0)  # overflow
        assert hist.counts == [2, 1, 1, 1]  # 3 buckets + overflow
        assert hist.n == 5
        assert hist.min == 0.5 and hist.max == 1000.0

    def test_quantile_is_bucket_edge_conservative(self):
        hist = Histogram(min_edge=1.0, base=10.0, buckets=3)
        for v in (0.5, 0.6, 0.7, 50.0):
            hist.record(v)
        assert hist.quantile(0.5) == 1.0  # half the mass is under edge 1
        assert hist.quantile(1.0) == 100.0  # all mass under edge 100

    def test_reset_and_snapshot(self):
        hist = Histogram()
        hist.record(0.001)
        assert hist.snapshot()["count"] == 1
        hist.reset()
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["min"] == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram(min_edge=0.0)
        with pytest.raises(ValueError):
            Histogram(base=1.0)
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.quantile(0.0)


# ----------------------------------------------------------------- registry


class TestMetricsRegistry:
    def test_absorb_trace_builds_latency_histograms(self):
        tracer = Tracer(enabled=True)
        with tracer.span("wire.send", request="ExecuteRequest"):
            pass
        with tracer.span("engine.stmt", stmt="Select"):
            pass
        with tracer.span("uninteresting"):
            pass
        registry = MetricsRegistry()
        assert registry.absorb_trace(tracer.records) == 2
        snap = registry.snapshot()
        assert snap["histograms"]["wire.send"]["count"] == 1
        assert snap["histograms"]["wire.send.ExecuteRequest"]["count"] == 1
        assert snap["histograms"]["engine.stmt"]["count"] == 1
        assert "uninteresting" not in snap["histograms"]

    def test_system_registry_adopts_live_counters(self, system):
        connection = system.plain.connect(system.DSN)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE t (k INT PRIMARY KEY)")
        connection.close()
        snap = system.registry.snapshot()
        assert snap["network"]["round_trips"] == system.metrics.round_trips
        assert snap["network"]["round_trips"] > 0
        assert snap["engine"] == system.server.engine_metrics.snapshot()

    def test_counters_cumulative_across_crash_caches_drop(self, system):
        """The canonical reset-semantics contract (repro/obs/metrics.py):
        crash/restart must not zero counters, but must drop caches."""
        loader = system.server.connect()
        system.server.execute(loader, "CREATE TABLE t (k INT PRIMARY KEY)")
        system.server.execute(loader, "SELECT * FROM t")
        system.server.execute(loader, "SELECT * FROM t")  # parse-cache hit
        metrics = system.server.engine_metrics
        hits_before = metrics.parse_hits
        misses_before = metrics.parse_misses
        assert hits_before > 0

        system.server.crash()
        system.endpoint.restart_server()

        # counters survived the crash untouched
        assert metrics.parse_hits == hits_before
        assert metrics.parse_misses == misses_before
        # ... but the parse cache itself dropped: the same SQL misses cold
        session = system.server.connect()
        system.server.execute(session, "SELECT * FROM t")
        assert metrics.parse_misses == misses_before + 1

        # reset() is the explicit observer action back to zero
        system.registry.reset()
        assert metrics.parse_hits == 0
        assert system.metrics.round_trips == 0

    def test_engine_metrics_merge_matches_network_surface(self):
        from repro.engine.plancache import EngineMetrics

        a, b = EngineMetrics(), EngineMetrics()
        a.parse_hits, a.plan_misses = 3, 2
        b.parse_hits, b.plan_invalidations = 4, 5
        a.merge(b)
        assert a.parse_hits == 7
        assert a.plan_misses == 2
        assert a.plan_invalidations == 5


# ----------------------------------------------------------------- timeline


def _synthetic_recovery_records(corr: str = "s0-c1") -> list[dict]:
    """A hand-built trace shaped like one rebuilt recovery."""
    span = lambda id_, parent, name, start, end, **attrs: {
        "kind": "span", "id": id_, "parent": parent, "corr": corr,
        "name": name, "start": start, "end": end, "error": None, "attrs": attrs,
    }
    event = lambda id_, parent, name, at, **attrs: {
        "kind": "event", "id": id_, "parent": parent, "corr": corr,
        "name": name, "at": at, "attrs": attrs,
    }
    return [
        event(3, 2, "recovery.ping", 10.1, ok=False),
        event(4, 2, "recovery.ping", 10.3, ok=True),
        span(2, 1, "recovery.await_server", 10.0, 10.4),
        span(5, 1, "recovery.phase1.virtual_session", 10.4, 10.7),
        span(6, 1, "recovery.phase2.sql_state", 10.7, 10.9),
        span(1, None, "recovery", 10.0, 10.9, cause="CommunicationError",
             outcome="rebuilt"),
    ]


class TestRecoveryTimeline:
    def test_reconstructs_phases_from_synthetic_trace(self):
        timeline = RecoveryTimeline.from_records(_synthetic_recovery_records())
        assert len(timeline.recoveries) == 1
        view = timeline.recoveries[0]
        assert view.outcome == "rebuilt"
        assert view.pings == 2
        assert view.duration == pytest.approx(0.9)
        assert view.phase_seconds("recovery.await_server") == pytest.approx(0.4)
        assert view.phase_seconds(
            "recovery.phase1.virtual_session"
        ) == pytest.approx(0.3)
        assert view.phase_seconds("recovery.phase2.sql_state") == pytest.approx(0.2)

    def test_corr_filter_excludes_other_sessions(self):
        records = _synthetic_recovery_records("s0-c1")
        timeline = RecoveryTimeline.from_records(records, corr="s0-c9")
        assert timeline.recoveries == []

    def test_render_mentions_phases(self):
        timeline = RecoveryTimeline.from_records(_synthetic_recovery_records())
        text = timeline.render()
        assert "phase 1: virtual session" in text
        assert "phase 2: SQL state" in text
        assert "2 ping(s)" in text

    def test_render_tree_shows_hierarchy_and_corr(self):
        text = render_tree(_synthetic_recovery_records())
        lines = text.splitlines()
        assert lines[0].startswith("recovery ")
        assert any(line.startswith("  recovery.await_server") for line in lines)
        assert "[s0-c1]" in lines[0]


# ---------------------------------------------------------------------- CLI


class TestObsCli:
    def test_cli_renders_recovery_timeline(self, capsys):
        from repro.obs.__main__ import main

        assert main(["--fault", "crash_before_execute@10", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "recovery" in out
        assert "phase 1: virtual session" in out
        assert "s3-c" in out  # seeded corr ids

    def test_cli_jsonl_export_and_reload(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "t.jsonl"
        assert main(["--export", str(path), "--timeline-only"]) == 0
        capsys.readouterr()
        records = load_jsonl(path)
        assert any(r["name"] == "recovery" for r in records)
        assert main(["--load", str(path)]) == 0
        assert "recovery" in capsys.readouterr().out

    def test_cli_jsonl_mode_emits_parseable_lines(self, capsys):
        from repro.obs.__main__ import main

        assert main(["--jsonl"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines
        for line in lines:
            json.loads(line)


# ------------------------------------------------------------- chaos wiring


class TestChaosTracing:
    def test_run_trace_captures_and_restores_tracer(self):
        from repro.chaos.trace import probe_dml_trace, run_trace

        before = get_tracer()
        tracer = Tracer(enabled=True, seed=5)
        record = run_trace(
            probe_dml_trace(),
            ((10, FaultKind.CRASH_BEFORE_EXECUTE),),
            tracer=tracer,
        )
        assert get_tracer() is before
        assert record.completed
        assert record.recoveries == 1
        timeline = RecoveryTimeline.from_records(tracer.records)
        assert len(timeline.recoveries) == 1
        assert timeline.recoveries[0].outcome == "rebuilt"
