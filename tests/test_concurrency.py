"""Concurrent serving: threaded dispatch, waiting locks, deadlock victims,
parallel recovery, and multi-client crash traces.

The engine used to simulate one statement at a time; these tests pin the
behaviours that make genuinely concurrent clients safe — per-session FIFO
ordering through the dispatcher, blocking lock waits with a waits-for-graph
deadlock detector, Phoenix's transparent deadlock retry, ``recover_all``'s
parallel fleet rebuild, and the multi-client chaos oracle.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.chaos.multi import check_multi_run, run_multi_trace
from repro.core.parallel import recover_all
from repro.engine.dispatch import SessionDispatcher
from repro.engine.locks import LockManager, LockMode
from repro.errors import DeadlockError, LockError, ServerCrashedError
from repro.net.faults import FaultKind


# ---------------------------------------------------------------- lock waits


def test_wait_until_holder_releases():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.EXCLUSIVE)

    acquired = threading.Event()

    def waiter():
        locks.acquire(2, "t", LockMode.EXCLUSIVE, timeout=5.0)
        acquired.set()

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    assert not acquired.is_set()  # still parked behind txn 1
    assert locks.waiting() == {2: {1}}
    locks.release_all(1)
    thread.join(timeout=5)
    assert acquired.is_set()
    assert locks.held(2, "t") is LockMode.EXCLUSIVE
    assert locks.stats.waits == 1


def test_wait_budget_expires_as_lock_error():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    started = time.monotonic()
    with pytest.raises(LockError, match="lock wait timeout"):
        locks.acquire(2, "t", LockMode.EXCLUSIVE, timeout=0.05)
    assert time.monotonic() - started >= 0.05
    assert locks.stats.wait_timeouts == 1


def test_standalone_manager_still_fails_fast():
    # the historical no-wait behaviour: default_timeout 0 outside the server
    locks = LockManager()
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    started = time.monotonic()
    with pytest.raises(LockError):
        locks.acquire(2, "t", LockMode.SHARED)
    assert time.monotonic() - started < 0.05


def test_no_wait_window_overrides_timeout():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    with locks.no_wait():
        with pytest.raises(LockError):
            locks.acquire(2, "t", LockMode.EXCLUSIVE, timeout=5.0)


def test_invalidate_wakes_sleepers_with_server_crashed():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    failure: list[Exception] = []

    def waiter():
        try:
            locks.acquire(2, "t", LockMode.EXCLUSIVE, timeout=30.0)
        except Exception as exc:
            failure.append(exc)

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    locks.invalidate()
    thread.join(timeout=5)
    assert len(failure) == 1
    assert isinstance(failure[0], ServerCrashedError)


# ------------------------------------------------------- S->X upgrade (pinned)


def test_upgrade_still_granted_when_sole_holder_after_reentry():
    # regression pin: the upgrader's own re-entrant shares never block it
    locks = LockManager()
    locks.acquire(1, "t", LockMode.SHARED)
    locks.acquire(1, "t", LockMode.SHARED)
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    assert locks.held(1, "t") is LockMode.EXCLUSIVE


def test_upgrade_waits_for_other_reader_then_succeeds():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.SHARED)
    locks.acquire(2, "t", LockMode.SHARED)
    upgraded = threading.Event()

    def upgrader():
        locks.acquire(1, "t", LockMode.EXCLUSIVE, timeout=5.0)
        upgraded.set()

    thread = threading.Thread(target=upgrader)
    thread.start()
    time.sleep(0.05)
    assert not upgraded.is_set()
    locks.release_all(2)
    thread.join(timeout=5)
    assert upgraded.is_set()
    assert locks.held(1, "t") is LockMode.EXCLUSIVE


# ---------------------------------------------------------------- deadlocks


def test_waits_for_cycle_kills_the_requester():
    locks = LockManager()
    locks.acquire(1, "a", LockMode.EXCLUSIVE)
    locks.acquire(2, "b", LockMode.EXCLUSIVE)
    parked = threading.Event()
    outcome: list = []

    def waiter():
        parked.set()
        try:
            locks.acquire(1, "b", LockMode.EXCLUSIVE, timeout=30.0)
            outcome.append("granted")
        except DeadlockError:
            outcome.append("deadlock")

    thread = threading.Thread(target=waiter)
    thread.start()
    parked.wait(timeout=5)
    for _ in range(100):  # txn 1's waits-for edge must be registered
        if locks.waiting().get(1) == {2}:
            break
        time.sleep(0.01)
    # txn 2 closing the cycle is the victim: it raises, txn 1 keeps waiting
    with pytest.raises(DeadlockError, match="victim"):
        locks.acquire(2, "a", LockMode.EXCLUSIVE, timeout=30.0)
    assert locks.stats.deadlocks == 1
    locks.release_all(2)  # the victim's abort frees txn 1
    thread.join(timeout=5)
    assert outcome == ["granted"]


def test_phoenix_retries_deadlock_victim_transparently(system):
    """Classic AB/BA cross-order transactions: the victim's transaction is
    aborted server-side and Phoenix replays it — both applications see only
    success."""
    a = system.phoenix.connect(system.DSN, user="alice")
    b = system.phoenix.connect(system.DSN, user="bob")
    setup = a.cursor()
    setup.execute("CREATE TABLE ab (k INT PRIMARY KEY, v INT)")
    setup.execute("INSERT INTO ab VALUES (1, 0)")
    setup.execute("CREATE TABLE ba (k INT PRIMARY KEY, v INT)")
    setup.execute("INSERT INTO ba VALUES (1, 0)")
    for conn in (a, b):
        conn._set_option("lock_timeout", 10000)

    first_held = threading.Barrier(2)
    failures: list[str] = []

    def run(conn, first, second):
        try:
            cursor = conn.cursor()
            conn.begin()
            cursor.execute(f"UPDATE {first} SET v = v + 1 WHERE k = 1")
            first_held.wait(timeout=10)  # both hold their first table's X
            cursor.execute(f"UPDATE {second} SET v = v + 1 WHERE k = 1")
            conn.commit()
        except Exception as exc:
            failures.append(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=run, args=(a, "ab", "ba")),
        threading.Thread(target=run, args=(b, "ba", "ab")),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert failures == []
    assert a.stats.deadlock_retries + b.stats.deadlock_retries >= 1
    check = a.cursor()
    check.execute("SELECT v FROM ab")
    assert check.fetchone() == (2,)
    check.execute("SELECT v FROM ba")
    assert check.fetchone() == (2,)
    a.close()
    b.close()


# ---------------------------------------------------------------- dispatcher


def test_dispatcher_preserves_per_key_order():
    dispatcher = SessionDispatcher()
    seen: list[int] = []
    lock = threading.Lock()

    def submit(i):
        def fn():
            with lock:
                seen.append(i)

        dispatcher.run("s1", fn)

    threads = []
    for i in range(20):
        thread = threading.Thread(target=submit, args=(i,))
        thread.start()
        time.sleep(0.002)  # stagger submissions so FIFO order is defined
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=10)
    assert seen == list(range(20))
    dispatcher.close()


def test_dispatcher_runs_different_keys_concurrently():
    dispatcher = SessionDispatcher()
    both_inside = threading.Barrier(2, action=lambda: None)
    met: list[bool] = []

    def fn():
        both_inside.wait(timeout=5)  # only passes if both run at once
        met.append(True)

    threads = [
        threading.Thread(target=dispatcher.run, args=(key, fn))
        for key in ("s1", "s2")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert met == [True, True]
    dispatcher.close()


def test_concurrent_clients_on_shared_table(system):
    """Several clients hammer one table through the full wire stack; every
    wrapped DML lands exactly once."""
    clients = 4
    per_client = 6
    setup = system.phoenix.connect(system.DSN, user="setup")
    setup.cursor().execute("CREATE TABLE tally (k INT PRIMARY KEY, v INT)")
    connections = [
        system.phoenix.connect(system.DSN, user=f"c{i}") for i in range(clients)
    ]
    failures: list[str] = []

    def run(i, conn):
        try:
            cursor = conn.cursor()
            for j in range(per_client):
                cursor.execute(f"INSERT INTO tally VALUES ({i * 100 + j}, {i})")
        except Exception as exc:
            failures.append(f"client {i}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=run, args=(i, conn))
        for i, conn in enumerate(connections)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert failures == []
    check = setup.cursor()
    check.execute("SELECT count(*) FROM tally")
    assert check.fetchone() == (clients * per_client,)
    for conn in connections:
        conn.close()
    setup.close()


# ---------------------------------------------------------------- parallel recovery


def _build_fleet(system, sessions):
    loader = system.server.connect(user="loader")
    system.server.execute(
        loader, "CREATE TABLE fleet_t (k INT PRIMARY KEY, v INT)"
    )
    system.server.disconnect(loader)
    fleet = []
    cursors = []
    for i in range(sessions):
        connection = system.phoenix.connect(system.DSN, user=f"f{i}")
        cursor = connection.cursor()
        base = 10 * (i + 1)
        cursor.execute(
            f"INSERT INTO fleet_t VALUES ({base}, 1), ({base + 1}, 2), ({base + 2}, 3)"
        )
        cursor.execute(
            f"SELECT k FROM fleet_t WHERE k >= {base} AND k <= {base + 2} ORDER BY k"
        )
        cursor.fetchone()  # leave the delivery open mid-result
        fleet.append(connection)
        cursors.append(cursor)
    return fleet, cursors


def test_recover_all_parallel_rebuilds_every_session(system):
    fleet, cursors = _build_fleet(system, sessions=5)
    system.server.crash()
    system.endpoint.restart_server()
    outcomes = recover_all(fleet, max_workers=4)
    assert [o.error for o in outcomes] == [None] * 5
    assert all(o.rebuilt for o in outcomes)
    for i, cursor in enumerate(cursors):
        base = 10 * (i + 1)
        # the half-fetched delivery resumes from its saved position
        assert [row[0] for row in cursor.fetchall()] == [base + 1, base + 2]
    for connection in fleet:
        connection.close()


def test_recover_all_is_idempotent_when_server_survived(system):
    fleet, _cursors = _build_fleet(system, sessions=3)
    outcomes = recover_all(fleet, max_workers=2)  # nothing actually crashed
    assert [o.error for o in outcomes] == [None] * 3
    assert not any(o.rebuilt for o in outcomes)  # probe: sessions survived
    for connection in fleet:
        connection.close()


# ---------------------------------------------------------------- multi-client chaos


def test_multi_client_golden_trace_is_clean():
    golden = run_multi_trace(2)
    assert golden.completed, [c.error for c in golden.clients]
    assert golden.orphan_sessions == 0
    assert golden.leftover_tables == ()
    assert check_multi_run(golden, run_multi_trace(2)) == []


def test_multi_client_positional_crash_recovers_exactly_once():
    golden = run_multi_trace(2)
    crashed = run_multi_trace(
        2, schedule=((golden.requests_seen // 2, FaultKind.CRASH_BEFORE_EXECUTE),)
    )
    assert crashed.fired == ("crash_before_execute",)
    assert check_multi_run(golden, crashed) == []


def test_multi_client_targeted_commit_crash_recovers_exactly_once():
    golden = run_multi_trace(3)
    crashed = run_multi_trace(3, crash_victim=0)
    assert crashed.fired == ("crash_before_execute",)
    assert check_multi_run(golden, crashed) == []
    # every client was mid-transaction: all of them recovered
    assert sum(c.recoveries for c in crashed.clients) >= 3
