"""PEP 249 (DB-API 2.0) conformance for the module-level front door.

``repro`` itself is the driver module: ``repro.connect(dsn)``, the three
module globals, and the full error hierarchy at top level.  Both connection
flavours (Phoenix and plain) expose the same DB-API surface; the tests run
the shared parts against both so the front door stays honest whichever
switch the application picks.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.errors import (
    DatabaseError,
    Error,
    InterfaceError,
    OperationalError,
    ProgrammingError,
)

# ---------------------------------------------------------------- module shape


def test_module_globals():
    assert repro.apilevel == "2.0"
    # threads may share the module but not connections (each connection's
    # cursors/txn-log/recovery state is not internally locked)
    assert repro.threadsafety == 1
    assert repro.paramstyle == "qmark"


def test_error_hierarchy_at_module_level():
    assert issubclass(repro.Warning, Exception)
    assert issubclass(repro.Error, Exception)
    assert issubclass(repro.InterfaceError, repro.Error)
    assert issubclass(repro.DatabaseError, repro.Error)
    for leaf in (
        repro.DataError,
        repro.OperationalError,
        repro.IntegrityError,
        repro.InternalError,
        repro.ProgrammingError,
        repro.NotSupportedError,
    ):
        assert issubclass(leaf, repro.DatabaseError)


def test_connect_by_dsn_string(system):
    conn = repro.connect(system.DSN)
    try:
        cursor = conn.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
    finally:
        conn.close()


def test_connect_unknown_dsn_raises_interface_error():
    with pytest.raises(InterfaceError):
        repro.connect("no-such-dsn-ever-registered")


def test_connect_phoenix_flag_selects_stack(system):
    persistent = repro.connect(system, phoenix=True)
    plain = repro.connect(system, phoenix=False)
    try:
        assert isinstance(persistent, repro.PhoenixConnection)
        assert isinstance(plain, repro.Connection)
    finally:
        persistent.close()
        plain.close()


def test_errors_reachable_as_connection_attributes(system):
    conn = repro.connect(system)
    try:
        # multi-driver code writes `except conn.Error:` without importing
        # the driver module (PEP 249 optional extension)
        assert conn.Error is Error
        assert conn.InterfaceError is InterfaceError
        assert conn.DatabaseError is DatabaseError
        assert conn.ProgrammingError is ProgrammingError
        assert conn.OperationalError is OperationalError
    finally:
        conn.close()


# -------------------------------------------------------------- both flavours


@pytest.fixture(params=["phoenix", "plain"])
def conn(request, system):
    connection = repro.connect(system, phoenix=request.param == "phoenix")
    yield connection
    if not connection.closed:
        connection.close()


def test_qmark_binding_roundtrip(conn):
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE q (k INT PRIMARY KEY, v VARCHAR(20))")
    cursor.execute("INSERT INTO q VALUES (?, ?)", [1, "one"])
    cursor.execute("SELECT v FROM q WHERE k = ?", [1])
    assert cursor.fetchall() == [("one",)]


def test_executemany_binds_each_row(conn):
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE em (k INT PRIMARY KEY, v INT)")
    cursor.executemany("INSERT INTO em VALUES (?, ?)", [[i, i * 10] for i in range(5)])
    assert cursor.rowcount == 5
    cursor.execute("SELECT COUNT(*) FROM em")
    assert cursor.fetchone() == (5,)


def test_too_few_bound_values_is_an_error(conn):
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE tf (k INT PRIMARY KEY, v INT)")
    with pytest.raises(ProgrammingError):
        cursor.execute("INSERT INTO tf VALUES (?, ?)", [1])


def test_description_and_rowcount(conn):
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE dr (k INT PRIMARY KEY, v VARCHAR(10))")
    cursor.execute("INSERT INTO dr VALUES (?, ?)", [1, "x"])
    assert cursor.rowcount == 1
    cursor.execute("SELECT k, v FROM dr")
    assert cursor.description is not None
    assert [d[0] for d in cursor.description] == ["k", "v"]
    # each description entry is the PEP 249 7-tuple
    assert all(len(d) == 7 for d in cursor.description)


def test_fetch_interface(conn):
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE f (k INT PRIMARY KEY)")
    cursor.executemany("INSERT INTO f VALUES (?)", [[i] for i in range(10)])
    cursor.execute("SELECT k FROM f ORDER BY k")
    assert cursor.fetchone() == (0,)
    assert cursor.fetchmany(3) == [(1,), (2,), (3,)]
    cursor.arraysize = 4
    assert cursor.fetchmany() == [(4,), (5,), (6,), (7,)]
    assert cursor.fetchall() == [(8,), (9,)]
    assert cursor.fetchone() is None


def test_cursor_context_manager_closes(conn):
    with conn.cursor() as cursor:
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
    with pytest.raises(InterfaceError):
        cursor.execute("SELECT 1")


def test_connection_context_manager_closes(system):
    with repro.connect(system) as conn:
        conn.cursor().execute("SELECT 1")
    assert conn.closed
    with pytest.raises(InterfaceError):
        conn.cursor()


def test_operations_on_closed_connection_raise(conn):
    conn.close()
    with pytest.raises(InterfaceError):
        conn.cursor()
    # close() is idempotent per PEP 249 common practice
    conn.close()


def test_commit_without_begin_raises(conn):
    # documented deviation: sessions are autocommit, commit()/rollback()
    # require an explicit begin() rather than silently pretending
    with pytest.raises(ProgrammingError):
        conn.commit()


def test_begin_commit_rollback(conn):
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE bc (k INT PRIMARY KEY)")
    conn.begin()
    cursor.execute("INSERT INTO bc VALUES (1)")
    conn.commit()
    conn.begin()
    cursor.execute("INSERT INTO bc VALUES (2)")
    conn.rollback()
    cursor.execute("SELECT k FROM bc")
    assert cursor.fetchall() == [(1,)]


def test_setinputsizes_and_setoutputsize_are_noops(conn):
    cursor = conn.cursor()
    cursor.setinputsizes([None])
    cursor.setoutputsize(128)
    cursor.execute("SELECT 1")
    assert cursor.fetchone() == (1,)


def test_set_option_deprecated_but_functional(conn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        conn.set_option("lock_timeout", 5000)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


def test_plan_cache_shared_across_qmark_bindings(system):
    """Qmark templates hit the server plan cache on the template, not the
    bound values — N different bindings, one cached plan.

    The plain stack ships the template plus out-of-band bindings, so the
    server caches on the template text.  (Phoenix inlines bindings before
    its statement rewriting — its wrapped-DML batches and replay log need
    literal SQL — so it deliberately trades this away.)
    """
    conn = repro.connect(system, phoenix=False)
    try:
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE pc (k INT PRIMARY KEY, v INT)")
        cursor.executemany("INSERT INTO pc VALUES (?, ?)", [[i, i] for i in range(8)])
        before = system.server.engine_metrics.plan_hits
        for i in range(8):
            cursor.execute("SELECT v FROM pc WHERE k = ?", [i])
            assert cursor.fetchone() == (i,)
        hits = system.server.engine_metrics.plan_hits - before
        assert hits >= 7  # first SELECT may miss; the rest share its plan
    finally:
        conn.close()
