"""The docs link checker: the repo's own docs stay clean, and the checker
actually catches what it claims to (dead paths, dead anchors)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_doc_links", REPO_ROOT / "scripts" / "check_doc_links.py"
)
check_doc_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_doc_links)


def test_repo_docs_have_no_dead_links(capsys):
    assert check_doc_links.main(["check_doc_links.py", str(REPO_ROOT)]) == 0, (
        capsys.readouterr().out
    )


def test_slugify_matches_github_rules():
    assert check_doc_links.slugify("Story 1: the crash") == "story-1-the-crash"
    assert check_doc_links.slugify("Chaos & fault model") == "chaos--fault-model"
    assert check_doc_links.slugify("`restore_to`: rewinding") == "restore_to-rewinding"


def test_checker_flags_dead_path_and_anchor(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (tmp_path / "README.md").write_text(
        "# Title\n\n## A Real Heading\n\n"
        "[ok](docs/GUIDE.md) [ok too](#a-real-heading)\n"
        "[dead file](docs/MISSING.md) [dead anchor](docs/GUIDE.md#nope)\n",
        encoding="utf-8",
    )
    (docs / "GUIDE.md").write_text("# Guide\n", encoding="utf-8")
    assert check_doc_links.main(["check_doc_links.py", str(tmp_path)]) == 1


def test_checker_ignores_external_links_and_code_fences(tmp_path):
    (tmp_path / "README.md").write_text(
        "# T\n\n[ext](https://example.com/x)\n\n"
        "```\n[not a link](nowhere.md)\n```\n",
        encoding="utf-8",
    )
    assert check_doc_links.main(["check_doc_links.py", str(tmp_path)]) == 0
