"""Executor tests: DML, DDL, procedures, SET, and temp-object semantics."""

from __future__ import annotations

import pytest

from repro.errors import (
    CatalogError,
    IntegrityError,
    ProgrammingError,
    TransactionError,
)
from tests.conftest import execute


# ---------------------------------------------------------------- INSERT

def test_insert_rowcount(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    assert execute(server, sid, "INSERT INTO t VALUES (1), (2), (3)") == 3


def test_insert_with_column_subset_fills_nulls(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5), n INT)")
    execute(server, sid, "INSERT INTO t (k) VALUES (1)")
    assert execute(server, sid, "SELECT * FROM t") == [(1, None, None)]


def test_insert_column_subset_missing_not_null_rejected(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5) NOT NULL)")
    with pytest.raises(IntegrityError):
        execute(server, sid, "INSERT INTO t (k) VALUES (1)")


def test_insert_wrong_arity_rejected(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT, v INT)")
    with pytest.raises(ProgrammingError):
        execute(server, sid, "INSERT INTO t VALUES (1)")


def test_insert_select(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE src (k INT)")
    execute(server, sid, "CREATE TABLE dst (k INT)")
    execute(server, sid, "INSERT INTO src VALUES (1), (2)")
    assert execute(server, sid, "INSERT INTO dst SELECT k * 10 FROM src") == 2
    assert execute(server, sid, "SELECT k FROM dst ORDER BY k") == [(10,), (20,)]


def test_insert_duplicate_pk_aborts_whole_statement(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    with pytest.raises(IntegrityError):
        execute(server, sid, "INSERT INTO t VALUES (1), (1)")
    # autocommit: the statement's own transaction aborted, nothing applied
    assert execute(server, sid, "SELECT count(*) FROM t") == [(0,)]


# ---------------------------------------------------------------- UPDATE / DELETE

def test_update_sees_pre_statement_values(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    execute(server, sid, "INSERT INTO t VALUES (1, 1), (2, 2)")
    # swap-style update must not chase its own writes
    execute(server, sid, "UPDATE t SET v = v + 10 WHERE v < 10")
    assert execute(server, sid, "SELECT v FROM t ORDER BY k") == [(11,), (12,)]


def test_update_rowcount(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    execute(server, sid, "INSERT INTO t VALUES (1, 0), (2, 0), (3, 1)")
    assert execute(server, sid, "UPDATE t SET v = 9 WHERE v = 0") == 2


def test_update_pk_change(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "UPDATE t SET k = 2")
    assert execute(server, sid, "SELECT k FROM t") == [(2,)]


def test_delete_rowcount_and_where(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1), (2), (3)")
    assert execute(server, sid, "DELETE FROM t WHERE k >= 2") == 2
    assert execute(server, sid, "SELECT k FROM t") == [(1,)]


def test_delete_all(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "INSERT INTO t VALUES (1), (2)")
    assert execute(server, sid, "DELETE FROM t") == 2


def test_select_into_creates_table(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE src (k INT PRIMARY KEY, v VARCHAR(5))")
    execute(server, sid, "INSERT INTO src VALUES (1, 'a'), (2, 'b')")
    execute(server, sid, "SELECT k, upper(v) AS vv INTO copy FROM src")
    assert execute(server, sid, "SELECT * FROM copy ORDER BY k") == [(1, "A"), (2, "B")]


def test_select_into_existing_table_rejected(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE src (k INT)")
    with pytest.raises(CatalogError):
        execute(server, sid, "SELECT k INTO src FROM src")


# ---------------------------------------------------------------- transactions

def test_begin_commit_visibility(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "COMMIT")
    assert execute(server, sid, "SELECT count(*) FROM t") == [(1,)]


def test_rollback_discards(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "ROLLBACK")
    assert execute(server, sid, "SELECT count(*) FROM t") == [(0,)]


def test_nested_begin_rejected(session):
    server, sid = session
    execute(server, sid, "BEGIN")
    with pytest.raises(TransactionError):
        execute(server, sid, "BEGIN")


def test_commit_without_begin_rejected(session):
    server, sid = session
    with pytest.raises(TransactionError):
        execute(server, sid, "COMMIT")


def test_disconnect_aborts_open_txn(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    server.disconnect(sid)
    sid2 = server.connect()
    assert execute(server, sid2, "SELECT count(*) FROM t") == [(0,)]


# ---------------------------------------------------------------- procedures

def test_procedure_roundtrip(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT, v VARCHAR(10))")
    execute(server, sid, "CREATE PROCEDURE add_row (@k INT, @v VARCHAR(10)) AS INSERT INTO t VALUES (@k, @v)")
    execute(server, sid, "EXEC add_row 1, 'x'")
    execute(server, sid, "EXEC add_row 2, 'y'")
    assert execute(server, sid, "SELECT * FROM t ORDER BY k") == [(1, "x"), (2, "y")]


def test_procedure_param_coercion(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "CREATE PROCEDURE p (@k INT) AS INSERT INTO t VALUES (@k)")
    execute(server, sid, "EXEC p '42'")
    assert execute(server, sid, "SELECT k FROM t") == [(42,)]


def test_procedure_wrong_arity_rejected(session):
    server, sid = session
    execute(server, sid, "CREATE PROCEDURE p (@a INT) AS SELECT 1")
    with pytest.raises(ProgrammingError):
        execute(server, sid, "EXEC p 1, 2")


def test_procedure_returning_rows(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "INSERT INTO t VALUES (5)")
    execute(server, sid, "CREATE PROCEDURE get_all AS SELECT k FROM t")
    assert execute(server, sid, "EXEC get_all") == [(5,)]


def test_procedure_is_atomic_in_autocommit(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (2)")
    execute(
        server, sid,
        "CREATE PROCEDURE double_insert AS BEGIN "
        "INSERT INTO t VALUES (1); INSERT INTO t VALUES (2) END",
    )
    with pytest.raises(IntegrityError):
        execute(server, sid, "EXEC double_insert")
    # the first inner insert rolled back with the procedure's transaction
    assert execute(server, sid, "SELECT k FROM t") == [(2,)]


def test_unknown_procedure(session):
    server, sid = session
    with pytest.raises(CatalogError):
        execute(server, sid, "EXEC nope")


def test_duplicate_procedure_rejected(session):
    server, sid = session
    execute(server, sid, "CREATE PROCEDURE p AS SELECT 1")
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE PROCEDURE p AS SELECT 2")


# ---------------------------------------------------------------- temp objects

def test_temp_table_shadowing_and_session_scope(server):
    a = server.connect()
    b = server.connect()
    execute(server, a, "CREATE TABLE shared (k INT)")
    execute(server, a, "INSERT INTO shared VALUES (1)")
    execute(server, a, "CREATE TABLE #shared (k INT)")  # session-A shadow
    execute(server, a, "INSERT INTO #shared VALUES (99)")
    assert execute(server, a, "SELECT k FROM #shared") == [(99,)]
    with pytest.raises(CatalogError):
        execute(server, b, "SELECT k FROM #shared")  # invisible to B


def test_temp_table_dml_not_logged(server):
    sid = server.connect()
    records_before = server.database.wal.records_written
    execute(server, sid, "CREATE TABLE #w (k INT)")
    execute(server, sid, "INSERT INTO #w VALUES (1)")
    execute(server, sid, "UPDATE #w SET k = 2")
    execute(server, sid, "DELETE FROM #w")
    # only the implicit BEGIN/COMMIT frames hit the log, no data records
    data_records = [
        r for r in server.database.wal.read_all() if r.table == "#w"
    ]
    assert data_records == []


def test_temp_procedure_session_scope(server):
    a = server.connect()
    b = server.connect()
    execute(server, a, "CREATE TABLE t (k INT)")
    execute(server, a, "CREATE PROCEDURE #p AS INSERT INTO t VALUES (1)")
    execute(server, a, "EXEC #p")
    with pytest.raises(CatalogError):
        execute(server, b, "EXEC #p")


def test_drop_temp_table(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE #w (k INT)")
    execute(server, sid, "DROP TABLE #w")
    with pytest.raises(CatalogError):
        execute(server, sid, "SELECT * FROM #w")


# ---------------------------------------------------------------- SET / misc

def test_set_option_stored_in_session(server):
    sid = server.connect()
    execute(server, sid, "SET query_timeout 30")
    assert server.sessions[sid].options["query_timeout"] == 30


def test_rowcount_function_tracks_last_dml(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "INSERT INTO t VALUES (1), (2), (3)")
    assert execute(server, sid, "SELECT rowcount()") == [(3,)]


def test_batch_rowcounts_collected(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT)")
    result = server.execute(
        sid, "BEGIN; INSERT INTO t VALUES (1), (2); INSERT INTO t VALUES (3); COMMIT"
    )
    assert result.extra["batch_rowcounts"] == [2, 1]


def test_placeholders_bind_positionally(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT, v VARCHAR(5))")
    server.execute(sid, "INSERT INTO t VALUES (?, ?)", placeholders=[7, "x"])
    result = server.execute(sid, "SELECT v FROM t WHERE k = ?", placeholders=[7])
    assert result.result_set.rows == [("x",)]


def test_unbound_placeholder_rejected(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT)")
    with pytest.raises(ProgrammingError):
        server.execute(sid, "SELECT * FROM t WHERE k = ?", placeholders=[])
