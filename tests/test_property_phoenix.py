"""Property-based end-to-end test of Phoenix transparency under crashes.

The headline theorem of the paper, as a property: *for any workload and any
placement of server crashes between requests, an application on Phoenix
observes exactly what it would have observed with no crashes at all.*
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import repro

# a workload step: (kind, key, value)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 14), st.integers(-99, 99)),
        st.tuples(st.just("update"), st.integers(0, 14), st.integers(-99, 99)),
        st.tuples(st.just("delete"), st.integers(0, 14)),
        st.tuples(st.just("query")),
        st.tuples(st.just("temp_insert"), st.integers(0, 99)),
    ),
    min_size=1,
    max_size=10,
)
# crash before step i for each i in this set
crash_points = st.sets(st.integers(0, 9), max_size=4)


def run_workload(connection, workload, crash_before=frozenset(), system=None):
    """Run the steps; returns the list of observable outcomes."""
    observations = []
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE w (k INT PRIMARY KEY, v INT)")
    cursor.execute("CREATE TABLE #scratch (x INT)")
    for index, step in enumerate(workload):
        if index in crash_before and system is not None:
            system.server.crash()
            system.endpoint.restart_server()
        kind = step[0]
        if kind == "insert":
            _, k, v = step
            try:
                cursor.execute(f"INSERT INTO w VALUES ({k}, {v})")
                observations.append(("rc", cursor.rowcount))
            except repro.errors.IntegrityError:
                observations.append(("dup", k))
        elif kind == "update":
            _, k, v = step
            cursor.execute(f"UPDATE w SET v = {v} WHERE k = {k}")
            observations.append(("rc", cursor.rowcount))
        elif kind == "delete":
            _, k = step
            cursor.execute(f"DELETE FROM w WHERE k = {k}")
            observations.append(("rc", cursor.rowcount))
        elif kind == "query":
            cursor.execute("SELECT k, v FROM w ORDER BY k")
            observations.append(("rows", tuple(cursor.fetchall())))
        elif kind == "temp_insert":
            _, x = step
            cursor.execute(f"INSERT INTO #scratch VALUES ({x})")
            cursor.execute("SELECT count(*) FROM #scratch")
            observations.append(("scratch", cursor.fetchone()))
    cursor.execute("SELECT k, v FROM w ORDER BY k")
    observations.append(("final", tuple(cursor.fetchall())))
    return observations


@settings(max_examples=25, deadline=None)
@given(workload=steps, crashes=crash_points)
def test_phoenix_with_crashes_equals_plain_without(workload, crashes):
    # reference: plain ODBC, no failures
    reference_system = repro.make_system()
    reference = run_workload(
        reference_system.plain.connect(reference_system.DSN), workload
    )

    # subject: Phoenix, with crashes injected between steps
    system = repro.make_system()
    connection = system.phoenix.connect(system.DSN)
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    subject = run_workload(connection, workload, crashes, system)

    assert subject == reference
