"""AST rendering: ``node.sql()`` must re-parse to an equivalent tree.

Phoenix's whole rewriting strategy is parse → transform → render, so
round-tripping is a load-bearing property, not cosmetics.
"""

from __future__ import annotations

import pytest

from repro.sql import ast, parse, parse_script
from repro.sql.ast import quote_ident, quote_literal

ROUND_TRIP_STATEMENTS = [
    "SELECT 1",
    "SELECT DISTINCT a, b AS x FROM t",
    "SELECT * FROM t WHERE (a > 1)",
    "SELECT t.* FROM t",
    "SELECT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1",
    "SELECT a, count(*) FROM t GROUP BY a HAVING (count(*) > 2)",
    "SELECT * FROM a INNER JOIN b ON (a.x = b.y)",
    "SELECT * FROM a LEFT JOIN b ON (a.x = b.y)",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT * FROM (SELECT a FROM t) sub",
    "SELECT CASE WHEN (a > 1) THEN 'x' ELSE 'y' END FROM t",
    "SELECT CAST(a AS VARCHAR(5)) FROM t",
    "SELECT EXTRACT(YEAR FROM d) FROM t",
    "SELECT SUBSTRING(p FROM 1 FOR 2) FROM t",
    "SELECT a FROM t WHERE (b IN (1, 2))",
    "SELECT a FROM t WHERE (b NOT IN (SELECT c FROM s))",
    "SELECT a FROM t WHERE (b BETWEEN 1 AND 2)",
    "SELECT a FROM t WHERE (b LIKE 'x%')",
    "SELECT a FROM t WHERE (b IS NOT NULL)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s)",
    "SELECT a INTO x FROM t",
    "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
    "INSERT INTO t (a, b) SELECT x, y FROM s",
    "UPDATE t SET a = (a + 1) WHERE (k = 3)",
    "DELETE FROM t WHERE (k = 3)",
    "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10))",
    "CREATE TABLE t (a INT NOT NULL PRIMARY KEY, b FLOAT)",
    "DROP TABLE IF EXISTS t",
    "CREATE PROCEDURE p (@a INT) AS INSERT INTO t VALUES (@a)",
    "DROP PROCEDURE p",
    "EXEC p 1, 'x'",
    "BEGIN TRANSACTION",
    "COMMIT",
    "ROLLBACK",
    "SET timeout 30",
    "CHECKPOINT",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_render_is_stable_fixpoint(sql):
    """parse(s).sql() re-parses and re-renders to the identical string."""
    once = parse(sql).sql()
    twice = parse(once).sql()
    assert once == twice


def test_select_renders_all_clauses_in_order():
    sql = (
        "SELECT DISTINCT a FROM t WHERE (a > 0) GROUP BY a "
        "HAVING (count(*) > 1) ORDER BY a LIMIT 5 OFFSET 2"
    )
    rendered = parse(sql).sql()
    positions = [rendered.index(word) for word in
                 ["SELECT", "FROM", "WHERE", "GROUP BY", "HAVING", "ORDER BY", "LIMIT", "OFFSET"]]
    assert positions == sorted(positions)


def test_quote_literal_escapes_quotes():
    assert quote_literal("it's") == "'it''s'"
    assert quote_literal(None) == "NULL"
    assert quote_literal(True) == "TRUE"
    assert quote_literal(3) == "3"


def test_quote_ident_keywords_and_odd_names():
    assert quote_ident("count") == '"count"'
    assert quote_ident("my col") == '"my col"'
    assert quote_ident("plain_name") == "plain_name"
    assert quote_ident("#temp1") == "#temp1"


def test_create_table_with_keyword_column_round_trips():
    sql = 'CREATE TABLE t ("count" INT, "sum" FLOAT)'
    stmt = parse(sql)
    again = parse(stmt.sql())
    assert [c.name for c in again.columns] == ["count", "sum"]


def test_interval_renders():
    stmt = parse("SELECT a FROM t WHERE (d < (DATE '1998-12-01' - INTERVAL '90' DAY))")
    assert "INTERVAL '90' DAY" in stmt.sql()


def test_nested_subquery_renders():
    sql = "SELECT a FROM t WHERE (b = (SELECT max(c) FROM s WHERE (s.k = t.k)))"
    assert parse(parse(sql).sql()).sql() == parse(sql).sql()


def test_str_dunder_equals_sql():
    stmt = parse("SELECT 1")
    assert str(stmt) == stmt.sql()


def test_temp_table_create_keeps_hash_name():
    stmt = parse("CREATE TABLE #w (a INT)")
    assert stmt.sql().startswith("CREATE TABLE #w")


def test_table_level_pk_renders_when_composite():
    stmt = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
    assert "PRIMARY KEY (a, b)" in stmt.sql()


def test_script_round_trip():
    script = "BEGIN; INSERT INTO t VALUES (1); COMMIT"
    rendered = "; ".join(s.sql() for s in parse_script(script))
    assert [type(s).__name__ for s in parse_script(rendered)] == [
        "BeginTransaction", "Insert", "Commit",
    ]
