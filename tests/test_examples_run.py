"""Integration: the example scripts must run to completion.

The examples double as end-to-end acceptance tests: each exercises the full
stack (engine, wire, ODBC, Phoenix) through the public API exactly the way
a user would.  Slow benchmark-style examples run with reduced parameters.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "resumed row: (2, 'world')" in out
    assert "rows now: 4" in out
    assert "recoveries performed behind the scenes: 1" in out


def test_customer_orders():
    out = run_example("customer_orders.py")
    assert "SERVER CRASH" in out
    assert "fetched 10 orders" in out
    assert "invoice total matches the database: OK" in out


def test_fault_tolerance_demo():
    out = run_example("fault_tolerance_demo.py")
    assert "balance now 90.0 (applied exactly once)" in out
    assert "NOT 80: no double-execution" in out
    assert "spurious timeouts detected: 1" in out
    assert "transactions replayed: 1" in out


@pytest.mark.slow
def test_tpch_power_small():
    out = run_example("tpch_power.py", "0.0005", "1")
    assert "Total Query" in out
    assert "total query ratio" in out
