"""Tests for the reporting CLI (fast: runners are stubbed)."""

from __future__ import annotations

import pytest

from repro.bench import harness, reporting
from repro.bench.harness import Fig2Point, Fig2Series, Table1Row


@pytest.fixture()
def stubbed(monkeypatch):
    rows = [
        Table1Row("Q1", 6, 0.05, 0.052),
        Table1Row("Total Query", 6, 0.05, 0.052),
    ]
    series = Fig2Series(points=[Fig2Point(100, 0.0004, 0.001, 0.0001, 0.05)])
    monkeypatch.setattr(reporting, "run_table1_power_comparison", lambda **kw: rows)
    monkeypatch.setattr(reporting, "run_fig2_recovery_sweep", lambda **kw: series)
    return rows, series


def test_cli_table1(stubbed, capsys):
    assert reporting.main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Q1" in out


def test_cli_fig2(stubbed, capsys):
    assert reporting.main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out and "virtual session" in out


def test_cli_all(stubbed, capsys):
    assert reporting.main(["all"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Figure 2" in out


def test_cli_rejects_unknown_artifact(stubbed):
    with pytest.raises(SystemExit):
        reporting.main(["table7"])


def test_render_table1_handles_nan_ratio():
    text = reporting.render_table1([Table1Row("Q0", 0, 0.0, 0.1)])
    assert "nan" in text


def test_render_fig2_bar_scale_never_divides_by_zero():
    series = Fig2Series(points=[Fig2Point(1, 0.0, 0.0, 0.0, 0.0)])
    text = reporting.render_fig2(series)
    assert "Figure 2" in text


def test_round_trip_row_projection():
    row = harness.RoundTripRow("Q1", native_trips=1, phoenix_trips=4,
                               native_bytes=100, phoenix_bytes=300)
    assert row.projected_overhead_seconds(0.03) == pytest.approx(0.09)
