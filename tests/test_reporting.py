"""Tests for the reporting CLI (fast: runners are stubbed)."""

from __future__ import annotations

import pytest

from repro.bench import harness, reporting
from repro.bench.harness import Fig2Point, Fig2Series, PlanCacheRun, Table1Row


def _stub_metrics(hits: int, misses: int) -> dict:
    total = hits + misses
    return {
        "parse_hits": hits, "parse_misses": misses,
        "parse_hit_rate": hits / total if total else 0.0,
        "plan_hits": hits, "plan_misses": misses,
        "plan_hit_rate": hits / total if total else 0.0,
        "plan_invalidations": 0,
    }


@pytest.fixture()
def stubbed(monkeypatch):
    rows = [
        Table1Row("Q1", 6, 0.05, 0.052),
        Table1Row("Total Query", 6, 0.05, 0.052),
    ]
    series = Fig2Series(points=[Fig2Point(100, 0.0004, 0.001, 0.0001, 0.05)])
    runs = [
        PlanCacheRun("tpch_power", "on", 0.5, 25, 1234, _stub_metrics(24, 1)),
        PlanCacheRun("tpch_power", "off", 1.0, 25, 1234, _stub_metrics(0, 0)),
    ]
    monkeypatch.setattr(reporting, "run_table1_power_comparison", lambda **kw: rows)
    monkeypatch.setattr(reporting, "run_fig2_recovery_sweep", lambda **kw: series)
    monkeypatch.setattr(reporting, "run_plan_cache_ablation", lambda **kw: runs)
    return rows, series


def test_cli_table1(stubbed, capsys):
    assert reporting.main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Q1" in out


def test_cli_fig2(stubbed, capsys):
    assert reporting.main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out and "virtual session" in out


def test_cli_all(stubbed, capsys):
    assert reporting.main(["all"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Figure 2" in out


def test_cli_plancache(stubbed, capsys):
    assert reporting.main(["plancache"]) == 0
    out = capsys.readouterr().out
    assert "Ablation" in out
    assert "speedup 2.00x" in out
    assert "identical" in out


def test_cli_json_artifact(stubbed, capsys, tmp_path):
    path = tmp_path / "BENCH_plan_cache.json"
    assert reporting.main(["plancache", "--json", str(path)]) == 0
    import json

    payload = json.loads(path.read_text())
    runs = payload["plancache"]
    assert {run["cache"] for run in runs} == {"on", "off"}
    assert runs[0]["metrics"]["parse_hit_rate"] == pytest.approx(24 / 25)


def test_cli_rejects_unknown_artifact(stubbed):
    with pytest.raises(SystemExit):
        reporting.main(["table7"])


def test_render_table1_handles_nan_ratio():
    text = reporting.render_table1([Table1Row("Q0", 0, 0.0, 0.1)])
    assert "nan" in text


def test_render_fig2_bar_scale_never_divides_by_zero():
    series = Fig2Series(points=[Fig2Point(1, 0.0, 0.0, 0.0, 0.0)])
    text = reporting.render_fig2(series)
    assert "Figure 2" in text


def test_round_trip_row_projection():
    row = harness.RoundTripRow("Q1", native_trips=1, phoenix_trips=4,
                               native_bytes=100, phoenix_bytes=300)
    assert row.projected_overhead_seconds(0.03) == pytest.approx(0.09)
