"""Restart recovery tests: every crash timing the engine must survive.

Pattern: drive a server, ``crash()``, ``restart()``, assert the database
equals exactly the committed state.  These are the substrate guarantees the
whole Phoenix layer leans on (DESIGN.md §2, substitution table).
"""

from __future__ import annotations

import pytest

from repro.errors import CatalogError
from repro.engine import DatabaseServer
from repro.engine.storage import FileStableStorage, InMemoryStableStorage

from tests.conftest import execute


def crashed_and_restarted(server: DatabaseServer) -> DatabaseServer:
    server.crash()
    server.restart()
    return server


def rows(server, sql):
    sid = server.connect()
    try:
        return execute(server, sid, sql)
    finally:
        server.disconnect(sid)


def test_committed_insert_survives(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1), (2)")
    crashed_and_restarted(server)
    assert rows(server, "SELECT count(*) FROM t") == [(2,)]


def test_uncommitted_txn_rolled_back_by_crash(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (2)")
    execute(server, sid, "DELETE FROM t WHERE k = 1")
    crashed_and_restarted(server)
    assert rows(server, "SELECT k FROM t") == [(1,)]


def test_committed_update_and_delete_survive(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10))")
    execute(server, sid, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    execute(server, sid, "UPDATE t SET v = 'B' WHERE k = 2")
    execute(server, sid, "DELETE FROM t WHERE k = 3")
    crashed_and_restarted(server)
    assert rows(server, "SELECT v FROM t ORDER BY k") == [("a",), ("B",)]


def test_committed_ddl_survives(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE a (x INT)")
    execute(server, sid, "CREATE TABLE b (y INT)")
    execute(server, sid, "DROP TABLE a")
    crashed_and_restarted(server)
    assert server.table_names() == ["b"]


def test_procedures_survive(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "CREATE PROCEDURE add_one (@k INT) AS INSERT INTO t VALUES (@k)")
    crashed_and_restarted(server)
    sid = server.connect()
    execute(server, sid, "EXEC add_one 7")
    assert execute(server, sid, "SELECT k FROM t") == [(7,)]


def test_volatile_state_lost(server):
    """The other half of the contract: sessions, temp objects, cursors die."""
    sid = server.connect()
    execute(server, sid, "CREATE TABLE #tmp (x INT)")
    execute(server, sid, "CREATE PROCEDURE #tp AS DELETE FROM #tmp")
    result = server.execute(sid, "SELECT 1", cursor_type="keyset")
    crashed_and_restarted(server)
    assert not server.session_exists(sid)
    sid2 = server.connect()
    with pytest.raises(CatalogError):
        execute(server, sid2, "SELECT * FROM #tmp")
    with pytest.raises(CatalogError):
        execute(server, sid2, "EXEC #tp")


def test_checkpoint_then_more_work(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    server.checkpoint()
    execute(server, sid, "INSERT INTO t VALUES (2)")
    execute(server, sid, "DELETE FROM t WHERE k = 1")
    crashed_and_restarted(server)
    assert rows(server, "SELECT k FROM t") == [(2,)]


def test_quiescent_checkpoint_truncates_log(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    for i in range(20):
        execute(server, sid, f"INSERT INTO t VALUES ({i})")
    size_before = server.storage.log_size() - server.storage.log_base
    server.checkpoint()
    retained = server.storage.log_size() - server.storage.log_base
    assert retained < size_before
    crashed_and_restarted(server)
    assert rows(server, "SELECT count(*) FROM t") == [(20,)]


def test_checkpoint_with_active_txn_keeps_needed_log(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (2)")
    server.checkpoint()  # fuzzy: txn still active, snapshot includes row 2
    crashed_and_restarted(server)  # loser: row 2 must be undone
    assert rows(server, "SELECT k FROM t") == [(1,)]


def test_loser_txn_spanning_checkpoint_committing_after(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    server.checkpoint()
    execute(server, sid, "INSERT INTO t VALUES (2)")
    execute(server, sid, "COMMIT")
    crashed_and_restarted(server)
    assert rows(server, "SELECT count(*) FROM t") == [(2,)]


def test_explicit_rollback_before_crash(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "ROLLBACK")
    execute(server, sid, "INSERT INTO t VALUES (2)")
    crashed_and_restarted(server)
    assert rows(server, "SELECT k FROM t") == [(2,)]


def test_rollback_then_checkpoint_then_crash(server):
    """Aborted-before-checkpoint txns must not be re-undone at restart."""
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    execute(server, sid, "INSERT INTO t VALUES (1, 10)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "UPDATE t SET v = 99 WHERE k = 1")
    execute(server, sid, "ROLLBACK")
    server.checkpoint()
    crashed_and_restarted(server)
    assert rows(server, "SELECT v FROM t") == [(10,)]


def test_drop_and_recreate_same_name(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "DROP TABLE t")
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, extra INT)")
    execute(server, sid, "INSERT INTO t VALUES (5, 50)")
    crashed_and_restarted(server)
    assert rows(server, "SELECT * FROM t") == [(5, 50)]


def test_drop_recreate_around_checkpoint(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    server.checkpoint()
    execute(server, sid, "DROP TABLE t")
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (2)")
    crashed_and_restarted(server)
    assert rows(server, "SELECT k FROM t") == [(2,)]


def test_uncommitted_drop_restored(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1), (2)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "DROP TABLE t")
    crashed_and_restarted(server)
    assert rows(server, "SELECT count(*) FROM t") == [(2,)]


def test_uncommitted_create_removed(server):
    sid = server.connect()
    execute(server, sid, "BEGIN")
    execute(server, sid, "CREATE TABLE ghost (k INT)")
    execute(server, sid, "INSERT INTO ghost VALUES (1)")
    crashed_and_restarted(server)
    assert server.table_names() == []


def test_double_crash_is_idempotent(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (2)")
    server.crash()
    server.restart()  # undo of the loser runs here
    crashed_and_restarted(server)  # and recovery must be stable under repeat
    crashed_and_restarted(server)
    assert rows(server, "SELECT k FROM t") == [(1,)]


def test_many_crash_cycles_with_interleaved_commits(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    for i in range(5):
        sid = server.connect()
        execute(server, sid, f"INSERT INTO t VALUES ({i})")
        execute(server, sid, "BEGIN")
        execute(server, sid, f"INSERT INTO t VALUES ({100 + i})")  # always lost
        crashed_and_restarted(server)
    assert rows(server, "SELECT count(*) FROM t") == [(5,)]


def test_uncommitted_unforced_txn_simply_vanishes(server):
    """A loser whose records never reached the durable log (no force after
    them) leaves no trace — the WAL buffer died with the server."""
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (2)")
    server.crash()
    report = server.restart()
    assert report.loser_txns == []
    assert rows(server, "SELECT count(*) FROM t") == [(0,)]


def test_recovery_report_contents(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (2)")
    # another session's commit forces the WAL, making the open transaction's
    # records durable — at restart it becomes a genuine loser to undo
    other = server.connect()
    execute(server, other, "CREATE TABLE other_t (x INT)")
    server.crash()
    report = server.restart()
    assert report.loser_txns  # the open txn
    assert report.records_redone >= 2
    assert report.records_scanned > 0
    assert rows(server, "SELECT count(*) FROM t") == [(1,)]


def test_restart_requires_down_server(server):
    from repro.errors import OperationalError

    with pytest.raises(OperationalError):
        server.restart()


def test_file_backed_recovery(tmp_path):
    path = str(tmp_path / "db")
    server = DatabaseServer(FileStableStorage(path))
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))")
    execute(server, sid, "INSERT INTO t VALUES (1, 'a')")
    server.checkpoint()
    execute(server, sid, "INSERT INTO t VALUES (2, 'b')")
    server.crash()
    # a completely new process over the same files
    reborn = DatabaseServer(FileStableStorage(path))
    assert rows(reborn, "SELECT count(*) FROM t") == [(2,)]


def test_shutdown_is_clean(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    server.shutdown()
    server2 = DatabaseServer(server.storage)
    assert rows(server2, "SELECT count(*) FROM t") == [(1,)]


def test_stats_track_crashes_and_restarts(server):
    sid = server.connect()
    execute(server, sid, "SELECT 1")
    crashed_and_restarted(server)
    crashed_and_restarted(server)
    assert server.stats.crashes == 2
    assert server.stats.restarts == 2


# ------------------------------------------------------ REDO-only restart


def test_redo_only_skips_losers_without_undo(server):
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))")
    execute(server, sid, "INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    execute(server, sid, "BEGIN")
    execute(server, sid, "UPDATE t SET v = 'X' WHERE k = 1")
    execute(server, sid, "UPDATE t SET v = 'Y' WHERE k = 2")
    # force makes the loser's records durable without committing it
    other = server.connect()
    execute(server, other, "CREATE TABLE other_t (x INT)")
    server.crash()
    report = server.restart()
    # the loser's records were never inspected, let alone undone
    assert report.loser_txns
    assert report.records_skipped >= 2
    assert rows(server, "SELECT v FROM t ORDER BY k") == [("a",), ("b",)]


def test_losers_closed_with_abort_records(server):
    from repro.engine.wal import RecordType, scan_log

    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    other = server.connect()
    execute(server, other, "CREATE TABLE other_t (x INT)")
    server.crash()
    report = server.restart()
    (loser,) = report.loser_txns
    records, _ = scan_log(server.storage.read_log())
    closing = [
        r for r in records if r.type is RecordType.ABORT and r.txn_id == loser
    ]
    assert len(closing) == 1
    # a *bare* abort — no per-record compensation images were generated
    assert closing[0].table is None
    # and the next restart sees the transaction terminated, not a loser again
    server.crash()
    assert server.restart().loser_txns == []


def test_fast_and_undo_walk_restart_agree_without_checkpoints(server):
    # with no checkpoint overlapping anything, the retired undo-walking path
    # is still correct — pin that both restarts produce identical state
    from repro.engine.recovery import recover

    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))")
    execute(server, sid, "INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    execute(server, sid, "UPDATE t SET v = 'B' WHERE k = 2")
    execute(server, sid, "BEGIN")
    execute(server, sid, "DELETE FROM t WHERE k = 1")
    other = server.connect()
    execute(server, other, "CREATE TABLE other_t (x INT)")
    server.crash()
    # recovery closes losers by appending to the log, so each mode gets its
    # own copy of the crashed storage
    import copy

    fast, _ = recover(copy.deepcopy(server.storage), fast_restart=True)
    slow, _ = recover(copy.deepcopy(server.storage), fast_restart=False)
    assert (
        fast.get_table("t").data.rows == slow.get_table("t").data.rows
    ) and fast.get_table("t").data.rows


def test_rowids_never_reused_after_loser_skipped(server):
    # the loser's insert consumed rowids; the REDO-only pass must still
    # burn them (next_rowid above every rowid seen in the log) so post-
    # restart inserts can't collide with anything
    sid = server.connect()
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute(server, sid, "INSERT INTO t VALUES (1)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (2), (3), (4)")
    other = server.connect()
    execute(server, other, "CREATE TABLE other_t (x INT)")
    server.crash()
    server.restart()
    assert server.database.get_table("t").data.next_rowid >= 5
    sid = server.connect()
    execute(server, sid, "INSERT INTO t VALUES (9)")
    assert rows(server, "SELECT k FROM t ORDER BY k") == [(1,), (9,)]
