"""Statement/plan cache behavior: reuse, invalidation, volatility.

The caches must be invisible except in the counters: every test here pairs
a reuse assertion (hits accrue) with a correctness assertion (results match
what an uncached engine would produce).
"""

from __future__ import annotations

import pytest

import repro
from repro.engine.expressions import like_to_regex
from repro.engine.plancache import EngineMetrics, LRUCache, ParseCache, PlanCache
from repro.engine.schema import TableSchema, Column
from repro.engine.storage import InMemoryStableStorage, TableData
from repro.engine.values import SqlType
from repro.engine.server import DatabaseServer


@pytest.fixture()
def server():
    server = DatabaseServer()
    sid = server.connect()
    server.execute(sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(20))")
    server.execute(sid, "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
    return server, sid


def rows(result):
    return result.result_set.rows


# ---------------------------------------------------------------- parse cache


def test_parse_cache_hits_on_repeated_text(server):
    server, sid = server
    metrics = server.engine_metrics
    base_hits = metrics.parse_hits
    base_misses = metrics.parse_misses
    for _ in range(4):
        server.execute(sid, "SELECT v FROM t WHERE k = 2")
    assert metrics.parse_misses == base_misses + 1
    assert metrics.parse_hits == base_hits + 3


def test_parse_cache_shared_across_sessions(server):
    server, sid = server
    other = server.connect()
    metrics = server.engine_metrics
    server.execute(sid, "SELECT k FROM t")
    base_hits = metrics.parse_hits
    server.execute(other, "SELECT k FROM t")
    assert metrics.parse_hits == base_hits + 1


def test_parse_errors_are_not_cached(server):
    server, sid = server
    size_before = len(server._parse_cache)
    with pytest.raises(Exception):
        server.execute(sid, "SELEKT nonsense FROM")
    assert len(server._parse_cache) == size_before


# ----------------------------------------------------------------- plan cache


def test_plan_cache_hits_on_repeated_select(server):
    server, sid = server
    metrics = server.engine_metrics
    first = rows(server.execute(sid, "SELECT k, v FROM t ORDER BY k"))
    base_hits = metrics.plan_hits
    again = rows(server.execute(sid, "SELECT k, v FROM t ORDER BY k"))
    assert metrics.plan_hits == base_hits + 1
    assert again == first


def test_cached_plan_sees_intervening_dml(server):
    server, sid = server
    sql = "SELECT count(*) AS n FROM t"
    assert rows(server.execute(sid, sql)) == [(3,)]
    server.execute(sid, "INSERT INTO t VALUES (4, 'four')")
    assert rows(server.execute(sid, sql)) == [(4,)]
    server.execute(sid, "DELETE FROM t WHERE k = 1")
    assert rows(server.execute(sid, sql)) == [(3,)]


def test_cached_plan_sees_dml_from_other_session(server):
    server, sid = server
    other = server.connect()
    sql = "SELECT count(*) AS n FROM t"
    assert rows(server.execute(sid, sql)) == [(3,)]
    server.execute(other, "INSERT INTO t VALUES (99, 'intruder')")
    assert rows(server.execute(sid, sql)) == [(4,)]


def test_uncorrelated_subquery_recomputes_across_executions(server):
    server, sid = server
    sql = "SELECT k FROM t WHERE k IN (SELECT k FROM t WHERE v LIKE 't%') ORDER BY k"
    assert rows(server.execute(sid, sql)) == [(2,), (3,)]
    # make the plan hot so the next run reuses the compiled closures
    assert rows(server.execute(sid, sql)) == [(2,), (3,)]
    server.execute(sid, "INSERT INTO t VALUES (5, 'ten')")
    assert rows(server.execute(sid, sql)) == [(2,), (3,), (5,)]


def test_uncorrelated_scalar_subquery_recomputes(server):
    server, sid = server
    sql = "SELECT k FROM t WHERE k = (SELECT max(k) FROM t)"
    assert rows(server.execute(sid, sql)) == [(3,)]
    server.execute(sid, "INSERT INTO t VALUES (7, 'seven')")
    assert rows(server.execute(sid, sql)) == [(7,)]


def test_view_reference_recomputes_across_executions(server):
    server, sid = server
    server.execute(sid, "CREATE VIEW big AS SELECT k, v FROM t WHERE k >= 2")
    sql = "SELECT count(*) AS n FROM big"
    assert rows(server.execute(sid, sql)) == [(2,)]
    assert rows(server.execute(sid, sql)) == [(2,)]
    server.execute(sid, "INSERT INTO t VALUES (8, 'eight')")
    assert rows(server.execute(sid, sql)) == [(3,)]


def test_placeholder_template_hits_plan_cache(server):
    # qmark templates are cached on the parsed template: re-executing with
    # different bound values rebinds the compiled plan instead of replanning
    server, sid = server
    metrics = server.engine_metrics
    misses_before = metrics.plan_misses
    hits_before = metrics.plan_hits
    result = server.execute(sid, "SELECT v FROM t WHERE k = ?", placeholders=[2])
    assert rows(result) == [("two",)]
    assert metrics.plan_misses == misses_before + 1
    result = server.execute(sid, "SELECT v FROM t WHERE k = ?", placeholders=[1])
    assert rows(result) == [("one",)]
    assert metrics.plan_hits == hits_before + 1


# ------------------------------------------------------------- invalidation


def test_ddl_invalidates_cached_plan(server):
    server, sid = server
    metrics = server.engine_metrics
    assert rows(server.execute(sid, "SELECT * FROM t WHERE k = 1")) == [(1, "one")]
    server.execute(sid, "DROP TABLE t")
    server.execute(
        sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(20), extra INT)"
    )
    server.execute(sid, "INSERT INTO t VALUES (1, 'one', 10)")
    base_invalidations = metrics.plan_invalidations
    assert rows(server.execute(sid, "SELECT * FROM t WHERE k = 1")) == [(1, "one", 10)]
    assert metrics.plan_invalidations == base_invalidations + 1


def test_phx_table_churn_bumps_catalog_version(server):
    server, sid = server
    version = server.database.catalog_version
    server.execute(sid, "CREATE TABLE phx_result_1 (k INT PRIMARY KEY)")
    assert server.database.catalog_version > version
    version = server.database.catalog_version
    server.execute(sid, "DROP TABLE phx_result_1")
    assert server.database.catalog_version > version


def test_view_and_procedure_churn_bumps_catalog_version(server):
    server, sid = server
    version = server.database.catalog_version
    server.execute(sid, "CREATE VIEW phx_v AS SELECT k FROM t")
    assert server.database.catalog_version > version
    version = server.database.catalog_version
    server.execute(sid, "DROP VIEW phx_v")
    assert server.database.catalog_version > version
    version = server.database.catalog_version
    server.execute(
        sid, "CREATE PROCEDURE phx_fill () AS BEGIN SELECT k FROM t END"
    )
    assert server.database.catalog_version > version
    version = server.database.catalog_version
    server.execute(sid, "DROP PROCEDURE phx_fill")
    assert server.database.catalog_version > version


def test_ddl_rollback_bumps_catalog_version(server):
    server, sid = server
    server.execute(sid, "BEGIN TRANSACTION")
    server.execute(sid, "CREATE TABLE rolled (k INT PRIMARY KEY)")
    version = server.database.catalog_version
    server.execute(sid, "ROLLBACK")
    assert server.database.catalog_version > version


def test_temp_table_redirection_invalidates(server):
    server, sid = server
    session = server.sessions[sid]
    version = session.temp_version
    server.execute(sid, "CREATE TABLE #t (k INT PRIMARY KEY, v VARCHAR(20))")
    assert session.temp_version > version
    server.execute(sid, "INSERT INTO #t VALUES (1, 'only')")
    sql = "SELECT count(*) AS n FROM #t"
    assert rows(server.execute(sid, sql)) == [(1,)]
    assert rows(server.execute(sid, sql)) == [(1,)]  # plan is hot now
    metrics = server.engine_metrics
    base_invalidations = metrics.plan_invalidations
    version = session.temp_version
    server.execute(sid, "DROP TABLE #t")
    assert session.temp_version > version
    server.execute(sid, "CREATE TABLE #t (k INT PRIMARY KEY, v VARCHAR(20))")
    # the hot plan was compiled against the *old* #t: it must be evicted
    assert rows(server.execute(sid, sql)) == [(0,)]
    assert metrics.plan_invalidations > base_invalidations


def test_temp_procedure_churn_bumps_temp_version(server):
    server, sid = server
    session = server.sessions[sid]
    version = session.temp_version
    server.execute(sid, "CREATE PROCEDURE #p () AS BEGIN SELECT k FROM t END")
    assert session.temp_version > version
    version = session.temp_version
    server.execute(sid, "DROP PROCEDURE #p")
    assert session.temp_version > version


def test_temp_recreate_with_different_schema(server):
    server, sid = server
    server.execute(sid, "CREATE TABLE #s (a INT PRIMARY KEY)")
    server.execute(sid, "INSERT INTO #s VALUES (1)")
    assert rows(server.execute(sid, "SELECT * FROM #s")) == [(1,)]
    server.execute(sid, "DROP TABLE #s")
    server.execute(sid, "CREATE TABLE #s (a INT PRIMARY KEY, b INT)")
    server.execute(sid, "INSERT INTO #s VALUES (1, 2)")
    assert rows(server.execute(sid, "SELECT * FROM #s")) == [(1, 2)]


# ---------------------------------------------------------------- volatility


def test_caches_rebuild_cold_after_crash(server):
    server, sid = server
    metrics = server.engine_metrics
    server.execute(sid, "CHECKPOINT")
    server.execute(sid, "SELECT v FROM t WHERE k = 1")
    server.execute(sid, "SELECT v FROM t WHERE k = 1")
    assert metrics.parse_hits > 0
    server.crash()
    assert server._parse_cache is None
    server.restart()
    sid = server.connect()
    base_misses = metrics.parse_misses
    server.execute(sid, "SELECT v FROM t WHERE k = 1")
    # same SQL text that used to hit now misses: the cache started cold
    assert metrics.parse_misses == base_misses + 1


def test_plan_cache_can_be_disabled():
    server = DatabaseServer(plan_cache=False)
    sid = server.connect()
    server.execute(sid, "CREATE TABLE d (k INT PRIMARY KEY)")
    server.execute(sid, "INSERT INTO d VALUES (1)")
    for _ in range(3):
        assert rows(server.execute(sid, "SELECT k FROM d")) == [(1,)]
    snapshot = server.engine_metrics.snapshot()
    assert snapshot["parse_hits"] == 0
    assert snapshot["plan_hits"] == 0


def test_make_system_passes_plan_cache_flag():
    system = repro.make_system(plan_cache=False)
    assert system.server.plan_cache_enabled is False
    assert system.server._parse_cache is None
    system = repro.make_system()
    assert system.server.plan_cache_enabled is True


# ---------------------------------------------------------------- fast paths


def test_like_to_regex_is_memoized():
    first = like_to_regex("abc%", None)
    second = like_to_regex("abc%", None)
    assert first is second
    assert first.match("abcdef")
    assert not first.match("abX")


def test_constant_false_is_folded_in_explain(server):
    server, sid = server
    result = server.execute(sid, "EXPLAIN SELECT * FROM t WHERE 0 = 1")
    plan_lines = [r[0] for r in rows(result)]
    assert any("ConstantFilter" in line for line in plan_lines)
    assert rows(server.execute(sid, "SELECT * FROM t WHERE 0 = 1")) == []


def test_folded_plan_skips_scan_but_repeats_correctly(server):
    server, sid = server
    sql = "SELECT k FROM t WHERE 1 = 2"
    assert rows(server.execute(sid, sql)) == []
    assert rows(server.execute(sid, sql)) == []


def test_rowcount_conjunct_is_not_folded(server):
    server, sid = server
    sql = "SELECT k FROM t WHERE rowcount() = 1"
    server.execute(sid, "UPDATE t SET v = 'uno' WHERE k = 1")  # rowcount -> 1
    assert len(rows(server.execute(sid, sql))) == 3
    server.execute(sid, "UPDATE t SET v = 'x' WHERE k < 3")  # rowcount -> 2
    assert rows(server.execute(sid, sql)) == []


def test_division_by_zero_still_raises_at_run_time(server):
    server, sid = server
    with pytest.raises(Exception):
        server.execute(sid, "SELECT k FROM t WHERE 1 / 0 = 1")


# --------------------------------------------------------------- cow storage


def _schema() -> TableSchema:
    return TableSchema(
        name="cow",
        columns=(
            Column("k", SqlType.INT),
            Column("v", SqlType.VARCHAR, length=10),
        ),
        primary_key=("k",),
    )


def test_snapshot_isolates_structure():
    data = TableData(schema=_schema(), rows={1: (1, "a")}, next_rowid=2)
    snap = data.snapshot()
    data.rows[2] = (2, "b")
    data.next_rowid = 3
    assert snap.rows == {1: (1, "a")}
    assert snap.next_rowid == 2


def test_storage_roundtrip_is_isolated():
    storage = InMemoryStableStorage()
    data = TableData(schema=_schema(), rows={1: (1, "a")}, next_rowid=2)
    storage.write_table_file("cow", data)
    data.rows[1] = (1, "mutated")
    read = storage.read_table_file("cow")
    assert read.rows[1] == (1, "a")
    read.rows[1] = (1, "changed")
    assert storage.read_table_file("cow").rows[1] == (1, "a")


# -------------------------------------------------------------------- units


def test_lru_cache_evicts_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh a
    cache.put("c", 3)  # evicts b
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3


def test_plan_cache_counts_invalidation_and_miss():
    metrics = EngineMetrics()
    cache = PlanCache()
    stmt = object()
    cache.store(stmt, (1, 0), "runner")
    assert cache.lookup(stmt, (1, 0), metrics) == "runner"
    assert cache.lookup(stmt, (2, 0), metrics) is None
    assert metrics.plan_invalidations == 1
    assert metrics.plan_hits == 1
    assert metrics.plan_misses == 1
    assert len(cache) == 0


def test_parse_cache_returns_same_objects():
    cache = ParseCache()
    stmts = (object(), object())
    cache.put("SELECT 1", stmts)
    got = cache.get("SELECT 1")
    assert got[0] is stmts[0] and got[1] is stmts[1]
