"""Property: Phoenix transparency under arbitrary mid-request fault plans.

Stronger than the between-steps property test: here hypothesis chooses
*which wire requests* die and *how* (in-flight loss vs executed-but-reply-
lost vs hang), so faults land inside Phoenix's own materialization, probe,
and recovery traffic — not just between application statements.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import repro
from repro.net import FaultKind

WORKLOAD = [
    ("ddl", "CREATE TABLE w (k INT PRIMARY KEY, v INT)"),
    ("dml", "INSERT INTO w VALUES (1, 10), (2, 20), (3, 30)"),
    ("query", "SELECT k, v FROM w ORDER BY k"),
    ("dml", "UPDATE w SET v = v + 1 WHERE k <= 2"),
    ("query", "SELECT sum(v) FROM w"),
    ("dml", "DELETE FROM w WHERE k = 3"),
    ("query", "SELECT count(*) FROM w"),
]

fault_kinds = st.sampled_from(
    [FaultKind.CRASH_BEFORE_EXECUTE, FaultKind.CRASH_AFTER_EXECUTE, FaultKind.HANG]
)
#: (after_n_matching_requests, kind) — requests counted across the whole run
fault_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=60), fault_kinds),
    max_size=4,
)


def run(fault_plan) -> tuple[list, list]:
    system = repro.make_system()
    connection = system.phoenix.connect(system.DSN)
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    for after, kind in fault_plan:
        system.faults.schedule(kind, after=after)
    observations = []
    cursor = connection.cursor()
    for kind, sql in WORKLOAD:
        cursor.execute(sql)
        if kind == "query":
            observations.append(("rows", tuple(cursor.fetchall())))
        elif kind == "dml":
            observations.append(("rc", cursor.rowcount))
    # final ground truth read server-side, bypassing the client stack
    if not system.server.up:
        system.endpoint.restart_server()
    sid = system.server.connect()
    final = system.server.execute(sid, "SELECT k, v FROM w ORDER BY k").result_set.rows
    return observations, final


@settings(max_examples=30, deadline=None)
@given(fault_plans)
def test_observations_match_fault_free_run(fault_plan):
    reference_obs, reference_final = run([])
    subject_obs, subject_final = run(fault_plan)
    assert subject_obs == reference_obs
    assert subject_final == reference_final


TXN_WORKLOAD = [(10, True), (20, False), (5, True)]  # (amount, commit?)


def run_transfers(fault_plan) -> list:
    system = repro.make_system()
    connection = system.phoenix.connect(system.DSN)
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    for after, kind in fault_plan:
        system.faults.schedule(kind, after=after)
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE acct (id INT PRIMARY KEY, bal FLOAT)")
    cursor.execute("INSERT INTO acct VALUES (1, 100.0), (2, 100.0)")
    for amount, commit in TXN_WORKLOAD:
        connection.begin()
        cursor.execute(f"UPDATE acct SET bal = bal - {amount} WHERE id = 1")
        cursor.execute(f"UPDATE acct SET bal = bal + {amount} WHERE id = 2")
        if commit:
            connection.commit()
        else:
            connection.rollback()
    cursor.execute("SELECT id, bal FROM acct ORDER BY id")
    return cursor.fetchall()


@settings(max_examples=30, deadline=None)
@given(fault_plans)
def test_explicit_transactions_under_fault_schedules(fault_plan):
    """Transfers + a rollback under arbitrary faults: exactly-once commits,
    exactly-zero for the rollback, money conserved."""
    assert run_transfers(fault_plan) == [(1, 85.0), (2, 115.0)]


def test_regression_hang_during_in_txn_statement():
    """Spurious timeout mid-transaction must NOT trigger replay (the
    session — and its open transaction — survived)."""
    assert run_transfers([(11, FaultKind.HANG)]) == [(1, 85.0), (2, 115.0)]


def test_regression_crash_during_replay():
    """A second crash interrupting the transaction replay must restart the
    whole replay, never re-apply a prefix on top of it."""
    plan = [(4, FaultKind.CRASH_BEFORE_EXECUTE), (10, FaultKind.CRASH_BEFORE_EXECUTE)]
    assert run_transfers(plan) == [(1, 85.0), (2, 115.0)]


def test_regression_crash_during_commit_probe_recovery():
    """CRASH_AFTER_EXECUTE lands the commit but kills the reply; a second
    crash then hits the recovery's own wire traffic, so the status probe
    runs a *nested* recovery that replays the (already committed)
    transaction.  The probe hit must discard that replayed transaction —
    leaving it open double-applies it on the next commit."""
    plan = [(5, FaultKind.CRASH_AFTER_EXECUTE), (10, FaultKind.CRASH_BEFORE_EXECUTE)]
    assert run_transfers(plan) == [(1, 85.0), (2, 115.0)]


def test_regression_crash_after_retried_commit():
    """A CRASH_AFTER_EXECUTE on a *retried* commit batch: the commit landed,
    so the per-round status probe must prevent a double replay+commit."""
    plan = [
        (12, FaultKind.CRASH_BEFORE_EXECUTE),
        (18, FaultKind.CRASH_AFTER_EXECUTE),
    ]
    assert run_transfers(plan) == [(1, 85.0), (2, 115.0)]


def run_temp_objects(fault_plan) -> tuple:
    system = repro.make_system()
    connection = system.phoenix.connect(system.DSN)
    connection.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    for after, kind in fault_plan:
        system.faults.schedule(kind, after=after)
    cursor = connection.cursor()
    cursor.execute("SET mode 'x'")
    cursor.execute("CREATE TABLE #w (k INT PRIMARY KEY, v INT)")
    cursor.execute("INSERT INTO #w VALUES (1, 10), (2, 20)")
    cursor.execute("CREATE PROCEDURE #bump AS UPDATE #w SET v = v + 1")
    cursor.execute("EXEC #bump")
    cursor.execute("SELECT k INTO #copy FROM #w")
    cursor.execute("SELECT count(*) FROM #copy")
    n_copy = cursor.fetchone()
    cursor.execute("DROP TABLE #copy")
    cursor.execute("SELECT k, v FROM #w ORDER BY k")
    rows = cursor.fetchall()
    cursor.execute("DROP PROCEDURE #bump")
    cursor.execute("DROP TABLE #w")
    connection.close()
    if not system.server.up:
        system.endpoint.restart_server()
    leftovers = [t for t in system.server.table_names() if t.startswith("phx_")]
    return n_copy, rows, leftovers


@settings(max_examples=25, deadline=None)
@given(fault_plans)
def test_temp_objects_under_fault_schedules(fault_plan):
    """Redirected temp objects behave like temp objects through arbitrary
    faults, and clean close leaves zero phx_* objects behind."""
    n_copy, rows, leftovers = run_temp_objects(fault_plan)
    assert n_copy == (2,)
    assert rows == [(1, 11), (2, 21)]
    assert leftovers == []


def test_regression_lost_reply_on_redirected_create():
    """A lost reply on the redirected CREATE TABLE #x must retry cleanly
    (the create is DROP-prefixed, hence idempotent)."""
    n_copy, rows, leftovers = run_temp_objects([(6, FaultKind.CRASH_AFTER_EXECUTE)])
    assert rows == [(1, 11), (2, 21)] and leftovers == []


def test_regression_faults_inside_close_cleanup():
    """Faults landing inside close()'s cleanup traffic: cleanup retries
    through them and still removes every phx_* object."""
    plan = [(19, FaultKind.HANG), (0, FaultKind.HANG), (19, FaultKind.CRASH_BEFORE_EXECUTE)]
    _n, _rows, leftovers = run_temp_objects(plan)
    assert leftovers == []
