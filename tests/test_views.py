"""Tests for views: DDL, expansion, recovery, and Q15 support."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError
from tests.conftest import execute


@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE sales (sk INT, amount FLOAT)")
    execute(
        server, sid,
        "INSERT INTO sales VALUES (1, 10.0), (1, 5.0), (2, 20.0), (3, 1.0)",
    )
    execute(
        server, sid,
        "CREATE VIEW totals (supplier, total) AS "
        "SELECT sk, sum(amount) FROM sales GROUP BY sk",
    )
    return server, sid


def test_view_query_with_declared_columns(db):
    server, sid = db
    rows = execute(server, sid, "SELECT supplier, total FROM totals ORDER BY supplier")
    assert rows == [(1, 15.0), (2, 20.0), (3, 1.0)]


def test_view_without_column_list(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT, v INT)")
    execute(server, sid, "INSERT INTO t VALUES (1, 2)")
    execute(server, sid, "CREATE VIEW doubled AS SELECT k, v * 2 AS v2 FROM t")
    assert execute(server, sid, "SELECT v2 FROM doubled") == [(4,)]


def test_view_with_alias_in_from(db):
    server, sid = db
    rows = execute(server, sid, "SELECT x.total FROM totals x WHERE x.supplier = 2")
    assert rows == [(20.0,)]


def test_view_joins_base_table(db):
    server, sid = db
    rows = execute(
        server, sid,
        "SELECT count(*) FROM sales, totals WHERE sales.sk = totals.supplier",
    )
    assert rows == [(4,)]


def test_view_sees_current_data(db):
    server, sid = db
    execute(server, sid, "INSERT INTO sales VALUES (2, 100.0)")
    rows = execute(server, sid, "SELECT total FROM totals WHERE supplier = 2")
    assert rows == [(120.0,)]


def test_view_in_subquery(db):
    server, sid = db
    rows = execute(
        server, sid,
        "SELECT supplier FROM totals WHERE total = (SELECT max(total) FROM totals)",
    )
    assert rows == [(2,)]


def test_nested_views(db):
    server, sid = db
    execute(server, sid, "CREATE VIEW big_totals AS SELECT * FROM totals WHERE total > 10")
    rows = execute(server, sid, "SELECT supplier FROM big_totals ORDER BY supplier")
    assert rows == [(1,), (2,)]


def test_view_column_count_mismatch_rejected(db):
    server, sid = db
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE VIEW bad (a, b, c) AS SELECT sk FROM sales")


def test_view_over_missing_table_rejected_at_create(session):
    server, sid = session
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE VIEW v AS SELECT * FROM nope")


def test_duplicate_view_name_rejected(db):
    server, sid = db
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE VIEW totals AS SELECT 1")
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE VIEW sales AS SELECT 1")  # clashes with table


def test_drop_view(db):
    server, sid = db
    execute(server, sid, "DROP VIEW totals")
    with pytest.raises(CatalogError):
        execute(server, sid, "SELECT * FROM totals")
    execute(server, sid, "DROP VIEW IF EXISTS totals")  # idempotent form
    with pytest.raises(CatalogError):
        execute(server, sid, "DROP VIEW totals")


def test_view_survives_crash(db):
    server, sid = db
    server.crash()
    server.restart()
    sid = server.connect()
    rows = execute(server, sid, "SELECT count(*) FROM totals")
    assert rows == [(3,)]


def test_view_survives_checkpointed_crash(db):
    server, sid = db
    server.checkpoint()
    execute(server, sid, "CREATE VIEW second AS SELECT sk FROM sales")
    server.crash()
    server.restart()
    sid = server.connect()
    assert execute(server, sid, "SELECT count(*) FROM second") == [(4,)]
    assert execute(server, sid, "SELECT count(*) FROM totals") == [(3,)]


def test_uncommitted_view_ddl_rolled_back(db):
    server, sid = db
    execute(server, sid, "BEGIN")
    execute(server, sid, "CREATE VIEW ghost AS SELECT 1")
    execute(server, sid, "DROP VIEW totals")
    execute(server, sid, "ROLLBACK")
    with pytest.raises(CatalogError):
        execute(server, sid, "SELECT * FROM ghost")
    assert execute(server, sid, "SELECT count(*) FROM totals") == [(3,)]


def test_batch_result_set_survives_trailing_statements(db):
    """The Q15 shape: CREATE VIEW; SELECT; DROP VIEW in one batch."""
    server, sid = db
    result = server.execute(
        sid,
        "CREATE VIEW q15v AS SELECT sk FROM sales; "
        "SELECT count(*) FROM q15v; "
        "DROP VIEW q15v",
    )
    assert result.result_set.rows == [(4,)]


def test_q15_through_both_managers(system):
    from repro.workloads.tpch import populate, query_sql

    data = populate(system, sf=0.0005, seed=5)
    results = []
    for manager in (system.plain, system.phoenix):
        conn = manager.connect(system.DSN)
        cur = conn.cursor()
        cur.execute(query_sql("Q15", data.sf))
        results.append(cur.fetchall())
        conn.close()
    assert results[0] == results[1]
    assert results[0], "Q15 should select the top-revenue supplier"


def test_view_through_phoenix_with_crash(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES (1), (2), (3)")
    cur.execute("CREATE VIEW odd AS SELECT k FROM t WHERE k % 2 = 1")
    system.server.crash()
    system.endpoint.restart_server()
    cur.execute("SELECT k FROM odd ORDER BY k")
    assert cur.fetchall() == [(1,), (3,)]


def test_explain_shows_view_as_source(db):
    server, sid = db
    lines = [r[0] for r in execute(server, sid, "EXPLAIN SELECT * FROM totals")]
    assert lines[0].startswith("Scan totals")
