"""Unit tests for the SQL value model (coercion, 3VL compare, dates)."""

from __future__ import annotations

import datetime

import pytest

from repro.errors import DataError
from repro.engine.values import (
    SqlType,
    add_interval,
    coerce_value,
    compare,
    parse_date,
    sort_key,
    sql_equal,
    type_from_python,
)


# ---------------------------------------------------------------- coercion

def test_null_passes_through_every_type():
    for sql_type in SqlType:
        assert coerce_value(None, sql_type) is None


def test_int_coercions():
    assert coerce_value(3.9, SqlType.INT) == 3
    assert coerce_value("42", SqlType.INT) == 42
    assert coerce_value(True, SqlType.INT) == 1


def test_int_rejects_garbage():
    with pytest.raises(DataError):
        coerce_value("abc", SqlType.INT)


def test_float_coercions():
    assert coerce_value(3, SqlType.FLOAT) == 3.0
    assert coerce_value(" 2.5 ", SqlType.FLOAT) == 2.5
    assert isinstance(coerce_value(1, SqlType.DECIMAL), float)


def test_varchar_length_enforced():
    with pytest.raises(DataError):
        coerce_value("toolong", SqlType.VARCHAR, length=3)


def test_char_truncates_instead_of_raising():
    assert coerce_value("toolong", SqlType.CHAR, length=3) == "too"


def test_text_unbounded():
    assert coerce_value("x" * 1000, SqlType.TEXT) == "x" * 1000


def test_date_from_string_and_date():
    d = datetime.date(1998, 12, 1)
    assert coerce_value("1998-12-01", SqlType.DATE) == d
    assert coerce_value(d, SqlType.DATE) is d


def test_date_rejects_bad_format():
    with pytest.raises(DataError):
        coerce_value("12/01/1998", SqlType.DATE)


def test_date_renders_to_text():
    assert coerce_value(datetime.date(2000, 1, 2), SqlType.VARCHAR) == "2000-01-02"


@pytest.mark.parametrize("text,expected", [
    ("TRUE", True), ("f", False), ("1", True), ("off", False), ("YES", True),
])
def test_boolean_words(text, expected):
    assert coerce_value(text, SqlType.BOOLEAN) is expected


def test_boolean_rejects_garbage():
    with pytest.raises(DataError):
        coerce_value("maybe", SqlType.BOOLEAN)


# ---------------------------------------------------------------- comparison

def test_compare_is_three_valued():
    assert compare(None, 1) is None
    assert compare(1, None) is None
    assert compare(None, None) is None


def test_compare_numbers():
    assert compare(1, 2) == -1
    assert compare(2.0, 2) == 0
    assert compare(3, 2.5) == 1


def test_compare_date_with_iso_string():
    assert compare(datetime.date(1998, 1, 1), "1998-06-01") == -1
    assert compare("1998-06-01", datetime.date(1998, 1, 1)) == 1


def test_compare_number_with_numeric_string():
    assert compare(10, "9.5") == 1


def test_compare_number_with_non_numeric_string_raises():
    with pytest.raises(DataError):
        compare(10, "abc")


def test_compare_bool_with_number():
    assert compare(True, 1) == 0
    assert compare(False, 0.0) == 0


def test_compare_incomparable_types_raise():
    with pytest.raises(DataError):
        compare(datetime.date(2000, 1, 1), 5)


def test_sql_equal():
    assert sql_equal(1, 1.0) is True
    assert sql_equal("a", "b") is False
    assert sql_equal(None, 1) is None


# ---------------------------------------------------------------- intervals

def test_add_interval_days():
    assert add_interval(datetime.date(1998, 12, 1), 90, "DAY", -1) == datetime.date(1998, 9, 2)


def test_add_interval_months_clamps_day():
    assert add_interval(datetime.date(1999, 1, 31), 1, "MONTH") == datetime.date(1999, 2, 28)


def test_add_interval_year():
    assert add_interval(datetime.date(1996, 2, 29), 1, "YEAR") == datetime.date(1997, 2, 28)


def test_add_interval_accepts_iso_string():
    assert add_interval("1994-01-01", 1, "YEAR") == datetime.date(1995, 1, 1)


def test_add_interval_rejects_non_date():
    with pytest.raises(DataError):
        add_interval(5, 1, "DAY")


def test_add_interval_unknown_unit():
    with pytest.raises(DataError):
        add_interval(datetime.date(2000, 1, 1), 1, "FORTNIGHT")


# ---------------------------------------------------------------- misc

def test_sort_key_nulls_first():
    values = [3, None, 1, None, 2]
    assert sorted(values, key=sort_key) == [None, None, 1, 2, 3]


def test_parse_date_error_mentions_literal():
    with pytest.raises(DataError, match="not-a-date"):
        parse_date("not-a-date")


def test_type_from_python():
    assert type_from_python(1) is SqlType.INT
    assert type_from_python(1.5) is SqlType.FLOAT
    assert type_from_python(True) is SqlType.BOOLEAN
    assert type_from_python("x") is SqlType.VARCHAR
    assert type_from_python(datetime.date(2000, 1, 1)) is SqlType.DATE
    assert type_from_python(None) is SqlType.VARCHAR


def test_type_from_python_rejects_unknown():
    with pytest.raises(DataError):
        type_from_python(object())
