"""Faults during recovery itself, and the adaptive ping backoff.

Recovery is the one code path that *must* work while everything around it
is failing.  These tests aim faults at the recovery machinery directly:
pings that die, crashes between the two recovery phases, a second crash in
the middle of transaction replay — plus the backoff/jitter/deadline
behaviour of ``_await_server``.
"""

from __future__ import annotations

import pytest

from repro.core.config import PhoenixConfig
from repro.errors import (
    CommunicationError,
    RecoveryError,
    ServerCrashedError,
    TimeoutError,
)
from repro.net import FaultKind


def crash_restart(system):
    system.server.crash()
    system.endpoint.restart_server()


# ----------------------------------------------------------------- backoff

def collecting_config(**overrides) -> tuple[PhoenixConfig, list[float]]:
    """A config whose sleep records every wait instead of sleeping."""
    waits: list[float] = []
    config = PhoenixConfig(**overrides)
    config.sleep = waits.append
    return config, waits


def test_ping_backoff_is_exponential_and_capped(system):
    config, waits = collecting_config(
        ping_interval=1.0,
        ping_backoff_factor=2.0,
        ping_max_interval=8.0,
        ping_jitter=0.0,
        max_ping_attempts=6,
    )
    connection = system.phoenix.connect(system.DSN, config=config)
    system.server.crash()
    cause = CommunicationError("boom")
    with pytest.raises(CommunicationError) as excinfo:
        connection.recovery._await_server(cause)
    assert excinfo.value is cause  # the original error surfaces, per paper
    assert waits == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]
    assert connection.stats.recovery_pings == 6


def test_ping_backoff_jitter_is_deterministic_and_bounded(system):
    def run(seed: int) -> list[float]:
        config, waits = collecting_config(
            ping_interval=1.0,
            ping_backoff_factor=2.0,
            ping_max_interval=4.0,
            ping_jitter=0.25,
            jitter_seed=seed,
            max_ping_attempts=5,
        )
        connection = system.phoenix.connect(system.DSN, config=config)
        system.server.crash()
        with pytest.raises(CommunicationError):
            connection.recovery._await_server(CommunicationError("x"))
        system.endpoint.restart_server()
        return waits

    first, second, other = run(7), run(7), run(8)
    assert first == second  # same seed, same schedule
    assert first != other
    for wait, base in zip(first, [1.0, 2.0, 4.0, 4.0, 4.0]):
        assert base * 0.75 <= wait <= base * 1.25  # jitter stays in ±25%


def test_recovery_deadline_bounds_total_wait(system):
    now = [0.0]
    config, waits = collecting_config(
        ping_interval=1.0,
        ping_backoff_factor=2.0,
        ping_max_interval=64.0,
        ping_jitter=0.0,
        max_ping_attempts=50,
        recovery_deadline=10.0,
    )
    config.clock = lambda: now[0]
    real_sleep = waits.append

    def sleep(seconds: float) -> None:
        real_sleep(seconds)
        now[0] += seconds

    config.sleep = sleep
    connection = system.phoenix.connect(system.DSN, config=config)
    system.server.crash()
    with pytest.raises(CommunicationError):
        connection.recovery._await_server(CommunicationError("down"))
    # 1+2+4+8 = 15 >= 10: the deadline cuts the loop long before 50 pings
    assert len(waits) == 4
    assert connection.stats.recovery_pings == 5


def test_no_deadline_means_full_ping_budget(system):
    config, waits = collecting_config(
        ping_interval=0.5, ping_jitter=0.0, max_ping_attempts=7
    )
    connection = system.phoenix.connect(system.DSN, config=config)
    system.server.crash()
    with pytest.raises(CommunicationError):
        connection.recovery._await_server(CommunicationError("down"))
    assert len(waits) == 7


def test_await_server_returns_after_restart_mid_backoff(system):
    config = PhoenixConfig(ping_jitter=0.0, max_ping_attempts=10)
    restores: list[float] = []

    def sleep(seconds: float) -> None:
        restores.append(seconds)
        if len(restores) == 3:
            system.endpoint.restart_server()

    config.sleep = sleep
    connection = system.phoenix.connect(system.DSN, config=config)
    system.server.crash()
    connection.recovery._await_server(CommunicationError("down"))  # no raise
    assert len(restores) == 3


# ------------------------------------------------- faults during recovery

@pytest.fixture()
def ready(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES (1), (2), (3)")
    return system, phoenix_conn, cur


def test_drop_connection_on_recovery_ping(ready):
    system, conn, cur = ready
    crash_restart(system)
    # the recovery ping itself meets a dropped connection; the next ping
    # attempt (after backoff) succeeds and recovery completes normally
    system.faults.schedule(FaultKind.DROP_CONNECTION, matcher=_is_ping)
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (3,)
    assert conn.stats.recoveries == 1
    assert conn.stats.recovery_pings >= 1


def test_crash_between_recovery_phases(ready):
    system, conn, cur = ready
    crash_restart(system)
    # phase 1 rebuilds connections (ConnectRequests); crash the server
    # again on the private rebuild's status-table statement — recovery
    # restarts wholesale and still converges
    system.faults.schedule_on_sql(
        FaultKind.CRASH_BEFORE_EXECUTE, "CREATE TABLE IF NOT EXISTS"
    )
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (3,)
    assert conn.stats.recoveries == 1


def test_second_crash_mid_transaction_replay(ready):
    system, conn, cur = ready
    conn.begin()
    cur.execute("UPDATE t SET k = 10 WHERE k = 1")
    crash_restart(system)
    # the replayed UPDATE meets another crash; replay restarts from scratch
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "UPDATE t")
    conn.commit()
    cur.execute("SELECT k FROM t ORDER BY k")
    assert [r[0] for r in cur.fetchall()] == [2, 3, 10]  # applied exactly once


def test_max_recovery_attempts_bounds_repeated_crashes(system):
    config = PhoenixConfig(max_recovery_attempts=3, max_ping_attempts=2)
    config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    connection = system.phoenix.connect(system.DSN, config=config)
    cur = connection.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    # every rebuilt connection dies immediately, forever
    system.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE, repeat=True)
    with pytest.raises((RecoveryError, CommunicationError)):
        cur.execute("INSERT INTO t VALUES (1)")
    # bounded: no completed recovery, and the loop stopped (we got here)
    assert connection.stats.recoveries == 0


def test_recovery_error_carries_causal_chain(system):
    config = PhoenixConfig(max_recovery_attempts=2, max_ping_attempts=1)
    config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    connection = system.phoenix.connect(system.DSN, config=config)
    cur = connection.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    system.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE, repeat=True)
    with pytest.raises(Exception) as excinfo:
        cur.execute("INSERT INTO t VALUES (1)")
    chain = []
    exc: BaseException | None = excinfo.value
    while exc is not None:
        chain.append(type(exc))
        exc = exc.__cause__
    # whatever the outermost type, a concrete wire error must be in the chain
    assert any(
        issubclass(t, (CommunicationError, ServerCrashedError)) for t in chain
    ), chain


def test_hang_mid_recovery_is_survivable(ready):
    system, conn, cur = ready
    crash_restart(system)
    system.faults.schedule(FaultKind.HANG, matcher=_is_ping)
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (3,)


def _is_ping(request) -> bool:
    return type(request).__name__ == "PingRequest"
