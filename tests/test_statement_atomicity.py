"""Statement-level atomicity inside explicit transactions (savepoint-like
partial rollback with compensation records)."""

from __future__ import annotations

import pytest

from repro.errors import IntegrityError
from repro.engine.wal import RecordType
from tests.conftest import execute


@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    return server, sid


def test_failed_statement_in_txn_rolls_back_only_itself(db):
    server, sid = db
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (1, 0)")
    with pytest.raises(IntegrityError):
        execute(server, sid, "INSERT INTO t VALUES (2, 0), (2, 0)")
    execute(server, sid, "INSERT INTO t VALUES (3, 0)")
    execute(server, sid, "COMMIT")
    assert execute(server, sid, "SELECT k FROM t ORDER BY k") == [(1,), (3,)]


def test_failed_update_in_txn(db):
    server, sid = db
    execute(server, sid, "INSERT INTO t VALUES (1, 0), (2, 0)")
    execute(server, sid, "BEGIN")
    with pytest.raises(IntegrityError):
        # PK collision happens on the second row touched
        execute(server, sid, "UPDATE t SET k = 9 WHERE k <= 2")
    execute(server, sid, "COMMIT")
    assert execute(server, sid, "SELECT k FROM t ORDER BY k") == [(1,), (2,)]


def test_rollback_after_failed_statement_still_works(db):
    server, sid = db
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (1, 0)")
    with pytest.raises(IntegrityError):
        execute(server, sid, "INSERT INTO t VALUES (1, 0)")
    execute(server, sid, "ROLLBACK")
    assert execute(server, sid, "SELECT count(*) FROM t") == [(0,)]


def test_failed_ddl_in_txn(db):
    server, sid = db
    from repro.errors import CatalogError

    execute(server, sid, "BEGIN")
    execute(server, sid, "CREATE TABLE fresh (x INT)")
    with pytest.raises(CatalogError):
        execute(server, sid, "CREATE TABLE t (x INT)")  # exists
    execute(server, sid, "COMMIT")
    assert "fresh" in server.table_names()


def test_compensated_records_not_double_undone_after_crash(db):
    """The crash-safety core: statement CLRs are in the durable log; the
    loser's undo must skip the records they compensate."""
    server, sid = db
    execute(server, sid, "INSERT INTO t VALUES (1, 0)")
    execute(server, sid, "BEGIN")
    execute(server, sid, "INSERT INTO t VALUES (10, 0)")
    with pytest.raises(IntegrityError):
        execute(server, sid, "INSERT INTO t VALUES (11, 0), (11, 0)")
    server.database.wal.force()  # everything durable, txn still open
    server.crash()
    server.restart()
    sid = server.connect()
    assert execute(server, sid, "SELECT k FROM t ORDER BY k") == [(1,)]


def test_clrs_carry_compensates_ids(db):
    server, sid = db
    execute(server, sid, "BEGIN")
    with pytest.raises(IntegrityError):
        execute(server, sid, "INSERT INTO t VALUES (1, 0), (1, 0)")
    server.database.wal.force()
    records = server.database.wal.read_all()
    clrs = [r for r in records if r.is_clr]
    assert clrs, "statement rollback must log CLRs"
    assert all(r.compensates for r in clrs)
    data = [r for r in records if not r.is_clr and r.type is RecordType.INSERT]
    assert {r.compensates for r in clrs} <= {r.rec_id for r in data}
    execute(server, sid, "COMMIT")


def test_multiple_failed_statements_one_txn(db):
    server, sid = db
    execute(server, sid, "BEGIN")
    for i in range(3):
        execute(server, sid, f"INSERT INTO t VALUES ({i}, 0)")
        with pytest.raises(IntegrityError):
            execute(server, sid, f"INSERT INTO t VALUES ({i}, 1)")
    execute(server, sid, "COMMIT")
    assert execute(server, sid, "SELECT count(*) FROM t") == [(3,)]


def test_phoenix_sees_statement_atomicity_in_replayed_txn(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    phoenix_conn.begin()
    cur.execute("INSERT INTO t VALUES (1)")
    with pytest.raises(IntegrityError):
        cur.execute("INSERT INTO t VALUES (1)")
    cur.execute("INSERT INTO t VALUES (2)")
    phoenix_conn.commit()
    cur.execute("SELECT k FROM t ORDER BY k")
    assert cur.fetchall() == [(1,), (2,)]
