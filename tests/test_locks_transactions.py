"""Unit tests for the lock manager and transaction machinery on Database."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, IntegrityError, LockError, TransactionError
from repro.engine.database import Database
from repro.engine.locks import LockManager, LockMode
from repro.engine.schema import Column, TableSchema
from repro.engine.storage import InMemoryStableStorage
from repro.engine.values import SqlType
from repro.engine.wal import RecordType


# ---------------------------------------------------------------- locks

def test_shared_locks_coexist():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.SHARED)
    locks.acquire(2, "t", LockMode.SHARED)
    assert locks.held(1, "t") is LockMode.SHARED


def test_exclusive_conflicts_with_any_other_holder():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.SHARED)
    with pytest.raises(LockError):
        locks.acquire(2, "t", LockMode.EXCLUSIVE)


def test_shared_blocked_by_exclusive():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    with pytest.raises(LockError):
        locks.acquire(2, "t", LockMode.SHARED)


def test_upgrade_when_sole_holder():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.SHARED)
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    assert locks.held(1, "t") is LockMode.EXCLUSIVE


def test_upgrade_blocked_by_other_reader():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.SHARED)
    locks.acquire(2, "t", LockMode.SHARED)
    with pytest.raises(LockError):
        locks.acquire(1, "t", LockMode.EXCLUSIVE)


def test_exclusive_is_reentrant():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    locks.acquire(1, "t", LockMode.EXCLUSIVE)
    locks.acquire(1, "t", LockMode.SHARED)  # already covered


def test_release_all_frees_everything():
    locks = LockManager()
    locks.acquire(1, "a", LockMode.EXCLUSIVE)
    locks.acquire(1, "b", LockMode.SHARED)
    locks.release_all(1)
    locks.acquire(2, "a", LockMode.EXCLUSIVE)
    assert locks.holders("b") == {}


# ---------------------------------------------------------------- database txns

def make_db() -> Database:
    return Database(InMemoryStableStorage())


def schema(name: str = "t") -> TableSchema:
    return TableSchema(
        name, (Column("k", SqlType.INT, not_null=True), Column("v", SqlType.VARCHAR)),
        primary_key=("k",),
    )


def test_commit_forces_wal():
    db = make_db()
    txn = db.begin()
    db.create_table(txn, schema())
    db.insert_row(txn, "t", [1, "a"])
    db.commit(txn)
    types = [r.type for r in db.wal.read_all()]
    assert types == [
        RecordType.BEGIN, RecordType.CREATE_TABLE, RecordType.INSERT, RecordType.COMMIT,
    ]


def test_abort_undoes_insert():
    db = make_db()
    setup = db.begin()
    db.create_table(setup, schema())
    db.commit(setup)
    txn = db.begin()
    db.insert_row(txn, "t", [1, "a"])
    db.abort(txn)
    assert db.get_table("t").row_count() == 0


def test_abort_undoes_delete_restoring_rowid():
    db = make_db()
    setup = db.begin()
    db.create_table(setup, schema())
    rowid = db.insert_row(setup, "t", [1, "a"])
    db.commit(setup)
    txn = db.begin()
    db.delete_row(txn, "t", rowid)
    db.abort(txn)
    assert db.get_table("t").get(rowid) == (1, "a")


def test_abort_undoes_update():
    db = make_db()
    setup = db.begin()
    db.create_table(setup, schema())
    rowid = db.insert_row(setup, "t", [1, "a"])
    db.commit(setup)
    txn = db.begin()
    db.update_row(txn, "t", rowid, [1, "changed"])
    db.abort(txn)
    assert db.get_table("t").get(rowid) == (1, "a")


def test_abort_undoes_create_table():
    db = make_db()
    txn = db.begin()
    db.create_table(txn, schema())
    db.insert_row(txn, "t", [1, "a"])
    db.abort(txn)
    assert not db.has_table("t")


def test_abort_undoes_drop_table_with_rows():
    db = make_db()
    setup = db.begin()
    db.create_table(setup, schema())
    db.insert_row(setup, "t", [1, "a"])
    db.commit(setup)
    txn = db.begin()
    db.drop_table(txn, "t")
    db.abort(txn)
    assert db.get_table("t").row_count() == 1


def test_abort_undoes_procedures():
    db = make_db()
    setup = db.begin()
    db.create_procedure(setup, "p", "CREATE PROCEDURE p AS DELETE FROM t")
    db.commit(setup)
    txn = db.begin()
    db.drop_procedure(txn, "p")
    db.create_procedure(txn, "q", "CREATE PROCEDURE q AS DELETE FROM t")
    db.abort(txn)
    assert db.has_procedure("p") and not db.has_procedure("q")


def test_abort_writes_clr_batch_and_abort_record():
    db = make_db()
    setup = db.begin()
    db.create_table(setup, schema())
    db.commit(setup)
    txn = db.begin()
    db.insert_row(txn, "t", [1, "a"])
    db.abort(txn)
    records = db.wal.read_all()
    clrs = [r for r in records if r.is_clr]
    assert len(clrs) == 1 and clrs[0].type is RecordType.DELETE
    assert records[-1].type is RecordType.ABORT


def test_double_commit_rejected():
    db = make_db()
    txn = db.begin()
    db.commit(txn)
    with pytest.raises(TransactionError):
        db.commit(txn)


def test_operations_on_finished_txn_rejected():
    db = make_db()
    setup = db.begin()
    db.create_table(setup, schema())
    db.commit(setup)
    with pytest.raises(TransactionError):
        db.insert_row(setup, "t", [1, "a"])


def test_failed_insert_leaves_no_log_record():
    db = make_db()
    txn = db.begin()
    db.create_table(txn, schema())
    db.insert_row(txn, "t", [1, "a"])
    with pytest.raises(IntegrityError):
        db.insert_row(txn, "t", [1, "dup"])
    inserts = [r for r in txn.records if r.type is RecordType.INSERT]
    assert len(inserts) == 1  # the failed insert logged nothing


def test_delete_unknown_rowid_is_catalog_error():
    db = make_db()
    txn = db.begin()
    db.create_table(txn, schema())
    with pytest.raises(CatalogError):
        db.delete_row(txn, "t", 42)


def test_create_existing_table_rejected():
    db = make_db()
    txn = db.begin()
    db.create_table(txn, schema())
    with pytest.raises(CatalogError):
        db.create_table(txn, schema())


def test_cross_txn_inserts_no_longer_conflict():
    """Row-granularity locking: two transactions inserting different rows
    into the same table hold compatible IX table locks plus X locks on
    their own fresh rowids — neither blocks the other."""
    db = make_db()
    setup = db.begin()
    db.create_table(setup, schema())
    db.commit(setup)
    t1 = db.begin()
    t2 = db.begin()
    db.insert_row(t1, "t", [1, "a"])
    db.insert_row(t2, "t", [2, "b"])  # concurrent insert: IX + IX coexist
    db.commit(t1)
    db.commit(t2)
    assert db.get_table("t").row_count() == 2


def test_cross_txn_same_row_write_conflict():
    """The write-write conflict the old table lock caught still exists at
    row granularity: two transactions updating the *same* row collide."""
    db = make_db()
    setup = db.begin()
    db.create_table(setup, schema())
    rowid = db.insert_row(setup, "t", [1, "a"])
    db.commit(setup)
    t1 = db.begin()
    t2 = db.begin()
    db.update_row(t1, "t", rowid, [1, "t1"])
    with pytest.raises(LockError):
        db.update_row(t2, "t", rowid, [1, "t2"])
    db.commit(t1)
    db.update_row(t2, "t", rowid, [1, "t2"])  # row lock released by commit
    db.commit(t2)
    assert db.get_table("t").get(rowid) == (1, "t2")


def test_txn_ids_resume_after_recovery():
    from repro.engine.recovery import recover

    db = make_db()
    txn = db.begin()
    db.create_table(txn, schema())
    db.commit(txn)
    recovered, _report = recover(db.storage)
    fresh = recovered.begin()
    assert fresh.txn_id > txn.txn_id
