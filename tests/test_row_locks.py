"""Row-granularity locking under table intent locks (multi-granularity).

Pins the compatibility matrix, row S→X upgrades, lock escalation, deadlock
cycles that pass through row locks, and — at the SQL level — that keyed DML
locks only the touched rows while non-keyed scans keep the whole-table
fallback.  Companion to ``test_locks_transactions.py`` (which pins the
table-level semantics the engine started with).
"""

import threading

import pytest

import repro
from repro.engine.locks import LockManager, LockMode, LockStats
from repro.errors import DeadlockError, LockError


# ------------------------------------------------------------ compatibility


#: the standard multi-granularity matrix: (held, requested) -> compatible
_MATRIX = {
    ("IS", "IS"): True, ("IS", "IX"): True, ("IS", "S"): True,
    ("IS", "SIX"): True, ("IS", "X"): False,
    ("IX", "IS"): True, ("IX", "IX"): True, ("IX", "S"): False,
    ("IX", "SIX"): False, ("IX", "X"): False,
    ("S", "IS"): True, ("S", "IX"): False, ("S", "S"): True,
    ("S", "SIX"): False, ("S", "X"): False,
    ("SIX", "IS"): True, ("SIX", "IX"): False, ("SIX", "S"): False,
    ("SIX", "SIX"): False, ("SIX", "X"): False,
    ("X", "IS"): False, ("X", "IX"): False, ("X", "S"): False,
    ("X", "SIX"): False, ("X", "X"): False,
}


@pytest.mark.parametrize("held,requested", sorted(_MATRIX))
def test_intent_compatibility_matrix(held, requested):
    locks = LockManager()
    locks.acquire(1, "t", LockMode(held))
    if _MATRIX[(held, requested)]:
        locks.acquire(2, "t", LockMode(requested))
        assert locks.held(2, "t") is LockMode(requested)
    else:
        with pytest.raises(LockError):
            locks.acquire(2, "t", LockMode(requested))


def test_supremum_after_rerequest():
    # holding IX and asking S must leave the txn at SIX, which then blocks
    # another txn's IX (plain S would not be enough to model "reads all,
    # writes some")
    locks = LockManager()
    locks.acquire(1, "t", LockMode.IX)
    locks.acquire(1, "t", LockMode.S)
    assert locks.held(1, "t") is LockMode.SIX
    with pytest.raises(LockError):
        locks.acquire(2, "t", LockMode.IX)


# ------------------------------------------------------------ row locks


def test_row_locks_under_intents_coexist():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.IX)
    locks.acquire(1, "t", LockMode.X, row=1)
    locks.acquire(2, "t", LockMode.IX)
    locks.acquire(2, "t", LockMode.X, row=2)  # different row: fine
    with pytest.raises(LockError):
        locks.acquire(2, "t", LockMode.X, row=1)  # same row: conflict


def test_row_shared_to_exclusive_upgrade():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.IS)
    locks.acquire(1, "t", LockMode.S, row=7)
    locks.acquire(1, "t", LockMode.IX)
    locks.acquire(1, "t", LockMode.X, row=7)  # own upgrade never self-blocks
    assert locks.held(1, "t", row=7) is LockMode.X


def test_row_upgrade_blocked_by_other_reader():
    locks = LockManager()
    for txn in (1, 2):
        locks.acquire(txn, "t", LockMode.IS)
        locks.acquire(txn, "t", LockMode.S, row=7)
    locks.acquire(1, "t", LockMode.IX)
    with pytest.raises(LockError):
        locks.acquire(1, "t", LockMode.X, row=7)


def test_table_x_covers_row_requests():
    locks = LockManager()
    locks.acquire(1, "t", LockMode.X)
    locks.acquire(1, "t", LockMode.X, row=3)
    # covered by the table lock: no row resource materializes
    assert locks.held(1, "t", row=3) is None
    assert locks.row_locks_held(1, "t") == 0


def test_row_locking_off_degrades_to_table_locks():
    locks = LockManager()
    locks.row_locking = False
    locks.acquire(1, "t", LockMode.X, row=1)
    assert locks.held(1, "t") is LockMode.X  # the ablation baseline
    with pytest.raises(LockError):
        locks.acquire(2, "t", LockMode.X, row=2)


# ------------------------------------------------------------ escalation


def test_escalation_past_threshold():
    stats = LockStats()
    locks = LockManager(stats=stats)
    locks.escalation_threshold = 4
    locks.acquire(1, "t", LockMode.IX)
    for row in range(4):
        locks.acquire(1, "t", LockMode.X, row=row)
    assert locks.row_locks_held(1, "t") == 4
    locks.acquire(1, "t", LockMode.X, row=99)  # the threshold-crossing one
    assert stats.escalations == 1
    assert locks.held(1, "t") is LockMode.X
    assert locks.row_locks_held(1, "t") == 0  # row locks traded away
    # and the table lock keeps covering later row requests without re-escalating
    locks.acquire(1, "t", LockMode.X, row=100)
    assert stats.escalations == 1


def test_escalation_blocked_by_other_intent():
    locks = LockManager()
    locks.escalation_threshold = 2
    locks.acquire(1, "t", LockMode.IX)
    locks.acquire(1, "t", LockMode.X, row=1)
    locks.acquire(1, "t", LockMode.X, row=2)
    locks.acquire(2, "t", LockMode.IX)
    locks.acquire(2, "t", LockMode.X, row=50)
    # txn 1's escalation needs table X, which txn 2's intent blocks
    with pytest.raises(LockError):
        locks.acquire(1, "t", LockMode.X, row=3)
    # nothing was half-escalated: existing row locks survive
    assert locks.row_locks_held(1, "t") == 2


# ------------------------------------------------------------ deadlock


def test_deadlock_cycle_through_row_locks():
    locks = LockManager()
    locks.default_timeout = 10.0  # the detector should fire long before this
    locks.acquire(1, "t", LockMode.IX)
    locks.acquire(1, "t", LockMode.X, row=1)
    locks.acquire(2, "t", LockMode.IX)
    locks.acquire(2, "t", LockMode.X, row=2)

    outcome: dict[str, object] = {}

    def second_waiter() -> None:
        try:
            locks.acquire(2, "t", LockMode.X, row=1)
            outcome["granted"] = True
        except Exception as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=second_waiter)
    thread.start()
    for _ in range(1000):
        if 2 in locks.waiting():
            break
        threading.Event().wait(0.001)
    # txn 1 -> row 2 closes the cycle; the requester is the victim
    with pytest.raises(DeadlockError):
        locks.acquire(1, "t", LockMode.X, row=2)
    locks.release_all(1)  # victim aborts; txn 2's wait is granted
    thread.join(timeout=5)
    assert outcome.get("granted") is True
    locks.release_all(2)


def test_deadlock_cycle_across_row_and_table_granularity():
    locks = LockManager()
    locks.default_timeout = 10.0
    locks.acquire(1, "t", LockMode.IX)
    locks.acquire(1, "t", LockMode.X, row=1)
    locks.acquire(2, "u", LockMode.X)

    outcome: dict[str, object] = {}

    def second_waiter() -> None:
        try:
            locks.acquire(2, "t", LockMode.X, row=1)  # row wait on one side...
            outcome["granted"] = True
        except Exception as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=second_waiter)
    thread.start()
    for _ in range(1000):
        if 2 in locks.waiting():
            break
        threading.Event().wait(0.001)
    with pytest.raises(DeadlockError):
        locks.acquire(1, "u", LockMode.S)  # ...table wait on the other
    locks.release_all(1)
    thread.join(timeout=5)
    assert outcome.get("granted") is True
    locks.release_all(2)


def test_waits_for_graph_labels_row_resources():
    locks = LockManager()
    locks.default_timeout = 10.0
    locks.acquire(1, "t", LockMode.IX)
    locks.acquire(1, "t", LockMode.X, row=5)

    seen: list[list[dict]] = []

    def waiter() -> None:
        try:
            locks.acquire(2, "t", LockMode.X, row=5, timeout=0.5)
        except LockError:
            pass

    thread = threading.Thread(target=waiter)
    thread.start()
    for _ in range(1000):
        graph = locks.waits_for_graph()
        if graph:
            seen.append(graph)
            break
        threading.Event().wait(0.001)
    locks.release_all(1)
    thread.join(timeout=5)
    assert seen, "waiter never appeared in the waits-for graph"
    (entry,) = seen[0]
    assert entry["txn"] == 2
    assert entry["waits_for"] == [1]
    assert entry["table"] == "t"
    assert entry["row"] == 5
    assert entry["mode"] == "X"
    locks.release_all(2)


# ------------------------------------------------------------ SQL level


def _system_with_rows():
    system = repro.make_system()
    setup = repro.connect(system, user="setup")
    cursor = setup.cursor()
    cursor.execute("CREATE TABLE acct (k INT PRIMARY KEY, v VARCHAR(10))")
    cursor.execute("INSERT INTO acct VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    setup.close()
    return system


def test_keyed_updates_to_disjoint_rows_coexist():
    system = _system_with_rows()
    c1 = repro.connect(system, user="u1")
    c2 = repro.connect(system, user="u2")
    c1.begin()
    c2.begin()
    c1.cursor().execute("UPDATE acct SET v = 'x' WHERE k = 1")
    # a different row of the same table: compatible under IX + row X
    c2.cursor().execute("UPDATE acct SET v = 'y' WHERE k = 2")
    c1.commit()
    c2.commit()
    check = repro.connect(system, user="check").cursor()
    check.execute("SELECT v FROM acct WHERE k <= 2 ORDER BY k")
    assert [row[0] for row in check.fetchall()] == ["x", "y"]


def test_non_keyed_update_takes_whole_table_lock():
    # regression pin: a scan whose predicate isn't a key probe must keep the
    # whole-table X fallback — row locks only cover rows the executor can
    # name *before* modifying them
    system = _system_with_rows()
    c1 = repro.connect(system, user="u1")
    c2 = repro.connect(system, user="u2")
    c1.begin()
    c1.cursor().execute("UPDATE acct SET v = 'x' WHERE v = 'a'")  # non-keyed
    assert system.server.database.locks.held(
        _only_txn(system), "acct"
    ) is LockMode.X
    c2.begin()
    with pytest.raises(LockError):
        c2.cursor().execute("UPDATE acct SET v = 'y' WHERE k = 3")
    c1.commit()
    c2.rollback()


def test_keyed_update_locks_only_touched_row():
    system = _system_with_rows()
    c1 = repro.connect(system, user="u1")
    c1.begin()
    c1.cursor().execute("UPDATE acct SET v = 'x' WHERE k = 2")
    locks = system.server.database.locks
    txn = _only_txn(system)
    assert locks.held(txn, "acct") is LockMode.IX
    assert locks.row_locks_held(txn, "acct") == 1
    c1.commit()


def _only_txn(system) -> int:
    active = system.server.database.txns.active_ids()
    assert len(active) == 1
    return next(iter(active))


def test_lock_stats_in_registry_snapshot():
    system = _system_with_rows()
    snapshot = system.registry.snapshot()["locks"]
    assert snapshot["acquires"] > 0
    assert snapshot["row_acquires"] > 0
    assert snapshot["deadlocks"] == 0
