"""Phoenix interceptor tests: classification, rewriting, batch builders."""

from __future__ import annotations

import pytest

from repro.core.interceptor import (
    StatementClass,
    build_dml_batch,
    build_fill_batch,
    classify,
    inline_placeholders,
    redirect_names,
    referenced_tables,
    with_false_where,
)
from repro.core.naming import NameAllocator, PROXY_TABLE
from repro.errors import ProgrammingError
from repro.sql import ast, parse, parse_script


# ---------------------------------------------------------------- classify

@pytest.mark.parametrize("sql,expected", [
    ("SELECT 1", StatementClass.QUERY),
    ("SELECT a INTO t FROM s", StatementClass.DML),
    ("INSERT INTO t VALUES (1)", StatementClass.DML),
    ("UPDATE t SET a = 1", StatementClass.DML),
    ("DELETE FROM t", StatementClass.DML),
    ("BEGIN", StatementClass.TXN_BEGIN),
    ("COMMIT", StatementClass.TXN_COMMIT),
    ("ROLLBACK", StatementClass.TXN_ROLLBACK),
    ("SET x 1", StatementClass.SET_OPTION),
    ("CREATE TABLE #w (a INT)", StatementClass.CREATE_TEMP_TABLE),
    ("CREATE TEMPORARY TABLE w (a INT)", StatementClass.CREATE_TEMP_TABLE),
    ("CREATE TABLE w (a INT)", StatementClass.DDL),
    ("DROP TABLE #w", StatementClass.DROP_TEMP_TABLE),
    ("DROP TABLE w", StatementClass.DDL),
    ("CREATE PROCEDURE #p AS SELECT 1", StatementClass.CREATE_TEMP_PROC),
    ("CREATE PROCEDURE p AS SELECT 1", StatementClass.DDL),
    ("DROP PROCEDURE #p", StatementClass.DROP_TEMP_PROC),
    ("DROP PROCEDURE p", StatementClass.DDL),
    ("EXEC p", StatementClass.EXEC),
    ("CHECKPOINT", StatementClass.OTHER),
])
def test_classify(sql, expected):
    assert classify(parse(sql)) is expected


# ---------------------------------------------------------------- false where

def test_false_where_without_existing_where():
    probe = with_false_where(parse("SELECT a FROM t"))
    assert "(0 = 1)" in probe.sql()


def test_false_where_conjoins_existing_where():
    probe = with_false_where(parse("SELECT a FROM t WHERE a > 1"))
    assert "AND (0 = 1)" in probe.sql()
    assert "(a > 1)" in probe.sql()


def test_false_where_drops_order_by():
    probe = with_false_where(parse("SELECT a FROM t ORDER BY a"))
    assert "ORDER BY" not in probe.sql()


def test_false_where_preserves_grouping():
    probe = with_false_where(parse("SELECT a, count(*) FROM t GROUP BY a"))
    assert "GROUP BY" in probe.sql()


# ---------------------------------------------------------------- redirect

def redirect(sql: str, mapping: dict, procs: dict | None = None) -> str:
    return redirect_names(parse(sql), mapping, procs).sql()


def test_redirect_table_in_from():
    assert "phx_w" in redirect("SELECT * FROM #w", {"#w": "phx_w"})


def test_redirect_is_case_insensitive():
    assert "phx_w" in redirect("SELECT * FROM #W", {"#w": "phx_w"})


def test_redirect_in_join_and_subqueries():
    sql = (
        "SELECT * FROM #a JOIN base_t ON #a.x = base_t.x "
        "WHERE y IN (SELECT y FROM #b) AND EXISTS (SELECT 1 FROM #c)"
    )
    rewritten = redirect(sql, {"#a": "pa", "#b": "pb", "#c": "pc"})
    for name in ("pa", "pb", "pc"):
        assert name in rewritten
    assert "#a" not in rewritten and "base_t" in rewritten


def test_redirect_dml_targets():
    assert "pw" in redirect("INSERT INTO #w VALUES (1)", {"#w": "pw"})
    assert "pw" in redirect("UPDATE #w SET a = 1", {"#w": "pw"})
    assert "pw" in redirect("DELETE FROM #w", {"#w": "pw"})


def test_redirect_select_into_target():
    assert "pw" in redirect("SELECT a INTO #w FROM t", {"#w": "pw"})


def test_redirect_derived_table():
    rewritten = redirect("SELECT * FROM (SELECT a FROM #w) d", {"#w": "pw"})
    assert "pw" in rewritten


def test_redirect_procedure_names():
    rewritten = redirect("EXEC #p 1", {}, {"#p": "pp"})
    assert rewritten == "EXEC pp 1"


def test_redirect_procedure_body():
    rewritten = redirect(
        "CREATE PROCEDURE q AS INSERT INTO #w VALUES (1)", {"#w": "pw"}
    )
    assert "pw" in rewritten


def test_redirect_untouched_names_stay():
    assert redirect("SELECT * FROM normal", {"#w": "pw"}) == "SELECT * FROM normal"


def test_referenced_tables_walks_everything():
    names = referenced_tables(parse(
        "SELECT * FROM a JOIN b ON a.x = b.x WHERE y IN (SELECT y FROM c)"
    ))
    assert {"a", "b", "c"} <= names


# ---------------------------------------------------------------- placeholders

def test_inline_placeholders_in_where():
    stmt = parse("SELECT a FROM t WHERE k = ? AND v = ?")
    inline_placeholders(stmt, [5, "x"])
    assert "(k = 5)" in stmt.sql() and "(v = 'x')" in stmt.sql()


def test_inline_placeholders_in_insert_values():
    stmt = parse("INSERT INTO t VALUES (?, ?)")
    inline_placeholders(stmt, [1, "a"])
    assert stmt.sql() == "INSERT INTO t VALUES (1, 'a')"


def test_inline_placeholders_in_update_assignments():
    stmt = parse("UPDATE t SET v = ? WHERE k = ?")
    inline_placeholders(stmt, ["new", 3])
    assert "v = 'new'" in stmt.sql() and "(k = 3)" in stmt.sql()


def test_inline_placeholders_escapes_strings():
    stmt = parse("SELECT a FROM t WHERE v = ?")
    inline_placeholders(stmt, ["o'brien"])
    assert "'o''brien'" in stmt.sql()


def test_inline_placeholders_missing_value_raises():
    stmt = parse("SELECT a FROM t WHERE k = ?")
    with pytest.raises(ProgrammingError):
        inline_placeholders(stmt, [])


def test_inline_placeholders_in_subquery():
    stmt = parse("SELECT a FROM t WHERE k IN (SELECT k FROM s WHERE v = ?)")
    inline_placeholders(stmt, [9])
    assert "(v = 9)" in stmt.sql()


# ---------------------------------------------------------------- batch builders

def test_dml_batch_structure():
    batch = build_dml_batch("UPDATE t SET a = 1", "phx_status", 7)
    statements = parse_script(batch)
    kinds = [type(s).__name__ for s in statements]
    assert kinds == ["BeginTransaction", "Update", "Insert", "Commit"]
    insert = statements[2]
    assert insert.table == "phx_status"
    assert "rowcount()" in insert.sql()


def test_fill_batch_via_procedure_is_idempotent_script():
    batch = build_fill_batch("phx_fill", "phx_res", "SELECT a FROM t", via_procedure=True)
    statements = parse_script(batch)
    kinds = [type(s).__name__ for s in statements]
    assert kinds == ["DropProcedure", "CreateProcedure", "ExecProcedure"]
    assert statements[0].if_exists


def test_fill_batch_plain_insert():
    batch = build_fill_batch("p", "phx_res", "SELECT a FROM t", via_procedure=False)
    assert batch == "INSERT INTO phx_res SELECT a FROM t"


# ---------------------------------------------------------------- naming

def test_name_allocator_unique_per_connection():
    a, b = NameAllocator(), NameAllocator()
    assert a.client_id != b.client_id
    assert a.status_table != b.status_table


def test_name_allocator_sequences():
    names = NameAllocator()
    assert names.next_seq() == 1
    assert names.next_seq() == 2
    assert names.result_table(3) != names.keys_table(3)


def test_redirected_names_strip_hash():
    names = NameAllocator()
    assert "#" not in names.redirected_table("#Work")
    assert names.redirected_table("#Work").endswith("_tmp_work")
    assert "#" not in names.redirected_procedure("#p")


def test_proxy_table_is_a_real_temp_name():
    assert PROXY_TABLE.startswith("#")
