"""TPC-H workload tests: generator determinism, schema integrity, query
sanity, refresh functions, and the power-test driver."""

from __future__ import annotations

import datetime

import pytest

import repro
from repro.workloads.tpch import (
    QUERIES,
    ddl_statements,
    generate,
    populate,
    query_sql,
    rf1_statements,
    rf2_statements,
)
from repro.workloads.tpch.power import run_power_test
from repro.workloads.tpch.queries import QUERY_ORDER
from repro.workloads.tpch.refresh import reload_deleted, undo_rf1_statements

SF = 0.0005  # extra small: tests should be quick


@pytest.fixture(scope="module")
def data():
    return generate(sf=SF, seed=7)


@pytest.fixture(scope="module")
def loaded():
    system = repro.make_system()
    data = populate(system, sf=SF, seed=7)
    return system, data


def q(system, sql):
    sid = system.server.connect()
    try:
        result = system.server.execute(sid, sql)
        if result.result_set is not None:
            return result.result_set.rows
        return result.rowcount
    finally:
        system.server.disconnect(sid)


# ---------------------------------------------------------------- generator

def test_generation_is_deterministic():
    a = generate(sf=SF, seed=7)
    b = generate(sf=SF, seed=7)
    assert a.rows == b.rows
    assert a.rf2_order_keys == b.rf2_order_keys


def test_different_seeds_differ():
    a = generate(sf=SF, seed=1)
    b = generate(sf=SF, seed=2)
    assert a.rows["orders"] != b.rows["orders"]


def test_row_count_ratios(data):
    counts = data.counts()
    assert counts["region"] == 5
    assert counts["nation"] == 25
    assert counts["partsupp"] == 4 * counts["part"]
    # lineitems per order between 1 and 7
    ratio = counts["lineitem"] / counts["orders"]
    assert 1 <= ratio <= 7


def test_primary_keys_unique(data):
    orders = [row[0] for row in data.rows["orders"]]
    assert len(set(orders)) == len(orders)
    lineitem_pk = [(row[0], row[3]) for row in data.rows["lineitem"]]
    assert len(set(lineitem_pk)) == len(lineitem_pk)


def test_foreign_keys_resolve(data):
    customer_keys = {row[0] for row in data.rows["customer"]}
    assert all(row[1] in customer_keys for row in data.rows["orders"])
    order_keys = {row[0] for row in data.rows["orders"]}
    assert all(row[0] in order_keys for row in data.rows["lineitem"])
    nation_keys = {row[0] for row in data.rows["nation"]}
    assert all(row[3] in nation_keys for row in data.rows["supplier"])


def test_some_customers_have_no_orders(data):
    """Spec: only ~2/3 of customers place orders (drives Q13/Q22)."""
    with_orders = {row[1] for row in data.rows["orders"]}
    all_customers = {row[0] for row in data.rows["customer"]}
    assert with_orders < all_customers


def test_dates_within_spec_range(data):
    for row in data.rows["orders"]:
        assert datetime.date(1992, 1, 1) <= row[4] <= datetime.date(1998, 8, 2)


def test_rf_data_disjoint_from_base(data):
    base = {row[0] for row in data.rows["orders"]}
    new = {row[0] for row in data.rows["new_orders"]}
    assert not base & new
    assert set(data.rf2_order_keys) <= base


def test_ddl_statements_parse():
    from repro.sql import parse

    for ddl in ddl_statements():
        parse(ddl)


# ---------------------------------------------------------------- loading & queries

def test_populate_loads_everything(loaded):
    system, data = loaded
    for table, rows in data.rows.items():
        assert q(system, f"SELECT count(*) FROM {table}") == [(len(rows),)]


@pytest.mark.parametrize("query_id", QUERY_ORDER)
def test_every_query_executes(loaded, query_id):
    system, data = loaded
    rows = q(system, query_sql(query_id, data.sf))
    assert isinstance(rows, list)


def test_q1_aggregates_are_consistent(loaded):
    system, data = loaded
    rows = q(system, query_sql("Q1", data.sf))
    for row in rows:
        flag, status, sum_qty, sum_base, sum_disc, sum_charge, avg_qty, avg_price, avg_disc, n = row
        assert n > 0
        assert abs(avg_qty - sum_qty / n) < 1e-6
        assert sum_disc <= sum_base  # discounts only reduce
        assert sum_charge >= sum_disc  # tax only adds


def test_q6_equals_manual_computation(loaded):
    system, data = loaded
    got = q(system, query_sql("Q6", data.sf))[0][0]
    expected = sum(
        row[5] * row[6]
        for row in data.rows["lineitem"]
        if datetime.date(1994, 1, 1) <= row[10] < datetime.date(1995, 1, 1)
        and 0.05 <= row[6] <= 0.07
        and row[4] < 24
    )
    if got is None:
        assert expected == 0
    else:
        assert abs(got - expected) < 1e-6


def test_q13_counts_every_customer(loaded):
    system, data = loaded
    rows = q(system, query_sql("Q13", data.sf))
    assert sum(dist for _count, dist in rows) == len(data.rows["customer"])


def test_queries_named_in_paper_exist():
    # the rows the paper's Table 1 excerpt names
    for query_id in ("Q16",):
        assert query_id in QUERIES


# ---------------------------------------------------------------- refresh

def test_rf1_inserts_then_undo_restores(loaded):
    system, data = loaded
    before = q(system, "SELECT count(*) FROM orders")
    sid = system.server.connect()
    for txn in rf1_statements(data):
        system.server.execute(sid, "BEGIN")
        for sql in txn:
            system.server.execute(sid, sql)
        system.server.execute(sid, "COMMIT")
    added = len(data.rows["new_orders"])
    assert q(system, "SELECT count(*) FROM orders") == [(before[0][0] + added,)]
    for sql in undo_rf1_statements(data):
        system.server.execute(sid, sql)
    system.server.disconnect(sid)
    assert q(system, "SELECT count(*) FROM orders") == before


def test_rf2_deletes_then_reload_restores(loaded):
    system, data = loaded
    before_orders = q(system, "SELECT count(*) FROM orders")
    before_items = q(system, "SELECT count(*) FROM lineitem")
    sid = system.server.connect()
    for txn in rf2_statements(data):
        system.server.execute(sid, "BEGIN")
        for sql in txn:
            system.server.execute(sid, sql)
        system.server.execute(sid, "COMMIT")
    assert q(system, "SELECT count(*) FROM orders") == [
        (before_orders[0][0] - len(data.rf2_order_keys),)
    ]
    reload_deleted(data, lambda sql: system.server.execute(sid, sql))
    system.server.disconnect(sid)
    assert q(system, "SELECT count(*) FROM orders") == before_orders
    assert q(system, "SELECT count(*) FROM lineitem") == before_items


def test_rf_transactions_split_in_two(data):
    assert len(rf1_statements(data)) == 2
    assert len(rf2_statements(data)) == 2


# ---------------------------------------------------------------- power test

def test_power_test_reports_all_items(loaded):
    system, data = loaded
    connection = system.plain.connect(system.DSN)
    report = run_power_test(connection, data, queries=["Q1", "Q6"])
    connection.close()
    names = [r.name for r in report.results]
    assert names == ["Q1", "Q6", "RF1", "RF2"]
    assert report.total_query_seconds > 0
    assert all(r.seconds >= 0 for r in report.results)


def test_power_test_leaves_data_unchanged(loaded):
    system, data = loaded
    before = q(system, "SELECT count(*) FROM orders")
    connection = system.plain.connect(system.DSN)
    run_power_test(connection, data, queries=["Q6"])
    connection.close()
    assert q(system, "SELECT count(*) FROM orders") == before


def test_power_test_phoenix_equals_native_rows(loaded):
    system, data = loaded
    native = system.plain.connect(system.DSN)
    phoenix = system.phoenix.connect(system.DSN)
    report_native = run_power_test(native, data, queries=["Q1", "Q3"], include_refresh=False)
    report_phoenix = run_power_test(phoenix, data, queries=["Q1", "Q3"], include_refresh=False)
    native.close()
    phoenix.close()
    assert [r.rows for r in report_native.results] == [
        r.rows for r in report_phoenix.results
    ]
