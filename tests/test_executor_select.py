"""Executor tests: SELECT semantics end to end through the server."""

from __future__ import annotations

import datetime

import pytest

from repro.errors import DataError, ProgrammingError
from tests.conftest import execute


@pytest.fixture()
def db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10), n FLOAT)")
    execute(
        server, sid,
        "INSERT INTO t VALUES (1, 'a', 10.0), (2, 'b', 20.0), (3, 'a', 30.0), (4, NULL, NULL)",
    )
    return server, sid


def q(db, sql):
    server, sid = db
    return execute(server, sid, sql)


# ---------------------------------------------------------------- projection

def test_select_star_order_and_width(db):
    rows = q(db, "SELECT * FROM t WHERE k = 1")
    assert rows == [(1, "a", 10.0)]


def test_select_expressions(db):
    rows = q(db, "SELECT k + 1, n / 2 FROM t WHERE k = 2")
    assert rows == [(3, 10.0)]


def test_select_constant_no_from(db):
    assert q(db, "SELECT 1 + 1") == [(2,)]


def test_column_aliases_visible_in_order_by(db):
    rows = q(db, "SELECT k * 10 AS big FROM t WHERE k <= 2 ORDER BY big DESC")
    assert rows == [(20,), (10,)]


def test_qualified_star(db):
    rows = q(db, "SELECT a.* FROM t a WHERE a.k = 1")
    assert rows == [(1, "a", 10.0)]


def test_unknown_column_raises(db):
    with pytest.raises(ProgrammingError):
        q(db, "SELECT missing FROM t")


def test_ambiguous_column_raises(db):
    with pytest.raises(ProgrammingError):
        q(db, "SELECT k FROM t a, t b")


# ---------------------------------------------------------------- where / 3VL

def test_where_null_comparison_excludes_row(db):
    # row 4 has v NULL; v = 'a' is UNKNOWN there → filtered out
    rows = q(db, "SELECT k FROM t WHERE v = 'a'")
    assert [r[0] for r in rows] == [1, 3]


def test_where_is_null(db):
    assert q(db, "SELECT k FROM t WHERE v IS NULL") == [(4,)]


def test_where_is_not_null(db):
    assert [r[0] for r in q(db, "SELECT k FROM t WHERE v IS NOT NULL")] == [1, 2, 3]


def test_not_of_unknown_is_not_true(db):
    assert q(db, "SELECT k FROM t WHERE NOT (v = 'a')") == [(2,)]


def test_or_short_circuit_with_null(db):
    # UNKNOWN OR TRUE = TRUE: row 4 matches via k = 4
    rows = q(db, "SELECT k FROM t WHERE v = 'a' OR k = 4")
    assert [r[0] for r in rows] == [1, 3, 4]


def test_between(db):
    assert [r[0] for r in q(db, "SELECT k FROM t WHERE k BETWEEN 2 AND 3")] == [2, 3]


def test_not_between(db):
    assert [r[0] for r in q(db, "SELECT k FROM t WHERE k NOT BETWEEN 2 AND 3")] == [1, 4]


def test_in_list_with_null_operand(db):
    assert q(db, "SELECT k FROM t WHERE v IN ('a', 'b') AND k = 4") == []


def test_like_patterns(db):
    assert q(db, "SELECT k FROM t WHERE v LIKE 'a%' AND k = 1") == [(1,)]
    assert q(db, "SELECT k FROM t WHERE v LIKE '_'") != []


def test_like_escape(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE s (x VARCHAR(10))")
    execute(server, sid, "INSERT INTO s VALUES ('50%'), ('50x')")
    rows = execute(server, sid, "SELECT x FROM s WHERE x LIKE '50!%' ESCAPE '!'")
    assert rows == [("50%",)]


def test_division_by_zero_raises(db):
    with pytest.raises(DataError):
        q(db, "SELECT 1 / 0")


def test_string_concat(db):
    assert q(db, "SELECT 'x' || 'y'") == [("xy",)]


# ---------------------------------------------------------------- aggregates

def test_count_star_vs_count_column(db):
    assert q(db, "SELECT count(*), count(v) FROM t") == [(4, 3)]


def test_sum_avg_skip_nulls(db):
    rows = q(db, "SELECT sum(n), avg(n) FROM t")
    assert rows == [(60.0, 20.0)]


def test_min_max(db):
    assert q(db, "SELECT min(k), max(k) FROM t") == [(1, 4)]


def test_aggregate_over_empty_input_yields_one_row(db):
    assert q(db, "SELECT count(*), sum(n) FROM t WHERE k > 100") == [(0, None)]


def test_count_distinct(db):
    assert q(db, "SELECT count(DISTINCT v) FROM t") == [(2,)]


def test_group_by_basic(db):
    rows = q(db, "SELECT v, count(*) FROM t GROUP BY v ORDER BY v")
    assert rows == [(None, 1), ("a", 2), ("b", 1)]


def test_group_by_expression(db):
    rows = q(db, "SELECT k % 2 AS parity, count(*) FROM t GROUP BY k % 2 ORDER BY parity")
    assert rows == [(0, 2), (1, 2)]


def test_group_by_alias(db):
    rows = q(db, "SELECT k % 2 AS parity, count(*) FROM t GROUP BY parity ORDER BY parity")
    assert rows == [(0, 2), (1, 2)]


def test_having_filters_groups(db):
    rows = q(db, "SELECT v, count(*) AS c FROM t GROUP BY v HAVING count(*) > 1")
    assert rows == [("a", 2)]


def test_having_without_group_rejected(db):
    with pytest.raises(ProgrammingError):
        q(db, "SELECT k FROM t HAVING k > 1")


def test_aggregate_in_where_rejected(db):
    with pytest.raises(ProgrammingError):
        q(db, "SELECT k FROM t WHERE count(*) > 1")


def test_aggregate_inside_expression(db):
    rows = q(db, "SELECT sum(n) * 2 + count(*) FROM t")
    assert rows == [(124.0,)]


def test_order_by_aggregate(db):
    rows = q(db, "SELECT v, sum(n) FROM t WHERE v IS NOT NULL GROUP BY v ORDER BY sum(n) DESC")
    assert rows == [("a", 40.0), ("b", 20.0)]


# ---------------------------------------------------------------- order / distinct / limit

def test_order_by_multiple_keys(db):
    rows = q(db, "SELECT v, k FROM t ORDER BY v DESC, k DESC")
    assert rows[0] == ("b", 2)
    assert rows[-1] == (None, 4)  # NULLs sort first ascending → last when DESC


def test_order_by_position(db):
    rows = q(db, "SELECT k, v FROM t ORDER BY 1 DESC")
    assert [r[0] for r in rows] == [4, 3, 2, 1]


def test_order_by_position_out_of_range(db):
    with pytest.raises(ProgrammingError):
        q(db, "SELECT k FROM t ORDER BY 5")


def test_distinct(db):
    rows = q(db, "SELECT DISTINCT v FROM t ORDER BY v")
    assert rows == [(None,), ("a",), ("b",)]


def test_limit_offset(db):
    rows = q(db, "SELECT k FROM t ORDER BY k LIMIT 2 OFFSET 1")
    assert rows == [(2,), (3,)]


def test_top(db):
    assert len(q(db, "SELECT TOP 3 k FROM t")) == 3


# ---------------------------------------------------------------- joins

@pytest.fixture()
def join_db(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE c (ck INT PRIMARY KEY, name VARCHAR(10))")
    execute(server, sid, "CREATE TABLE o (ok INT PRIMARY KEY, ck INT, amount FLOAT)")
    execute(server, sid, "INSERT INTO c VALUES (1, 'ann'), (2, 'bob'), (3, 'cyd')")
    execute(server, sid, "INSERT INTO o VALUES (10, 1, 5.0), (11, 1, 7.0), (12, 2, 9.0)")
    return server, sid


def test_inner_join_on(join_db):
    rows = q(join_db, "SELECT name, amount FROM c JOIN o ON c.ck = o.ck ORDER BY amount")
    assert rows == [("ann", 5.0), ("ann", 7.0), ("bob", 9.0)]


def test_comma_join_with_where_equals_inner_join(join_db):
    a = q(join_db, "SELECT name, amount FROM c, o WHERE c.ck = o.ck ORDER BY amount")
    b = q(join_db, "SELECT name, amount FROM c JOIN o ON c.ck = o.ck ORDER BY amount")
    assert a == b


def test_left_join_pads_nulls(join_db):
    rows = q(join_db, "SELECT name, ok FROM c LEFT JOIN o ON c.ck = o.ck ORDER BY name, ok")
    assert ("cyd", None) in rows
    assert len(rows) == 4


def test_left_join_where_on_right_column_filters_nulls(join_db):
    rows = q(join_db, "SELECT name FROM c LEFT JOIN o ON c.ck = o.ck WHERE amount > 6 ORDER BY name")
    assert rows == [("ann",), ("bob",)]


def test_cross_join_counts(join_db):
    assert q(join_db, "SELECT count(*) FROM c CROSS JOIN o") == [(9,)]


def test_join_null_keys_never_match(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE a (x INT)")
    execute(server, sid, "CREATE TABLE b (x INT)")
    execute(server, sid, "INSERT INTO a VALUES (NULL), (1)")
    execute(server, sid, "INSERT INTO b VALUES (NULL), (1)")
    assert execute(server, sid, "SELECT count(*) FROM a JOIN b ON a.x = b.x") == [(1,)]


def test_self_join_with_aliases(join_db):
    rows = q(join_db, "SELECT a.ok, b.ok FROM o a, o b WHERE a.ck = b.ck AND a.ok < b.ok")
    assert rows == [(10, 11)]


def test_three_way_join_with_pushdown(join_db):
    server, sid = join_db
    execute(server, sid, "CREATE TABLE r (ck INT, region VARCHAR(5))")
    execute(server, sid, "INSERT INTO r VALUES (1, 'east'), (2, 'west')")
    rows = q(
        join_db,
        "SELECT region, sum(amount) FROM c, o, r "
        "WHERE c.ck = o.ck AND c.ck = r.ck AND amount > 5 "
        "GROUP BY region ORDER BY region",
    )
    assert rows == [("east", 7.0), ("west", 9.0)]


def test_derived_table(join_db):
    rows = q(
        join_db,
        "SELECT name, total FROM c JOIN "
        "(SELECT ck AS k2, sum(amount) AS total FROM o GROUP BY ck) s ON c.ck = s.k2 "
        "ORDER BY total DESC",
    )
    assert rows == [("bob", 9.0), ("ann", 12.0)][::-1] or rows == [("ann", 12.0), ("bob", 9.0)]


# ---------------------------------------------------------------- subqueries

def test_uncorrelated_in_subquery(join_db):
    rows = q(join_db, "SELECT name FROM c WHERE ck IN (SELECT ck FROM o) ORDER BY name")
    assert rows == [("ann",), ("bob",)]


def test_not_in_subquery(join_db):
    assert q(join_db, "SELECT name FROM c WHERE ck NOT IN (SELECT ck FROM o)") == [("cyd",)]


def test_not_in_subquery_with_null_is_empty(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE a (x INT)")
    execute(server, sid, "CREATE TABLE b (x INT)")
    execute(server, sid, "INSERT INTO a VALUES (1)")
    execute(server, sid, "INSERT INTO b VALUES (2), (NULL)")
    # NOT IN with a NULL in the subquery is UNKNOWN for every row
    assert execute(server, sid, "SELECT x FROM a WHERE x NOT IN (SELECT x FROM b)") == []


def test_correlated_exists(join_db):
    rows = q(
        join_db,
        "SELECT name FROM c WHERE EXISTS (SELECT * FROM o WHERE o.ck = c.ck) ORDER BY name",
    )
    assert rows == [("ann",), ("bob",)]


def test_correlated_not_exists(join_db):
    assert q(
        join_db,
        "SELECT name FROM c WHERE NOT EXISTS (SELECT * FROM o WHERE o.ck = c.ck)",
    ) == [("cyd",)]


def test_correlated_scalar_subquery(join_db):
    rows = q(
        join_db,
        "SELECT name, (SELECT sum(amount) FROM o WHERE o.ck = c.ck) AS total "
        "FROM c ORDER BY name",
    )
    assert rows == [("ann", 12.0), ("bob", 9.0), ("cyd", None)]


def test_scalar_subquery_multiple_rows_raises(join_db):
    with pytest.raises(ProgrammingError):
        q(join_db, "SELECT (SELECT ok FROM o) FROM c")


def test_scalar_subquery_in_having(join_db):
    rows = q(
        join_db,
        "SELECT ck, sum(amount) FROM o GROUP BY ck "
        "HAVING sum(amount) > (SELECT avg(amount) FROM o)",
    )
    assert rows == [(1, 12.0), (2, 9.0)]


def test_constant_false_where_short_circuits(db):
    server, sid = db
    before = server.stats.rows_returned
    rows = q(db, "SELECT k, v FROM t WHERE 0 = 1")
    assert rows == []


def test_dates_round_trip(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE d (when_ DATE)")
    execute(server, sid, "INSERT INTO d VALUES ('1998-12-01')")
    rows = execute(server, sid, "SELECT when_ - INTERVAL '90' DAY FROM d")
    assert rows == [(datetime.date(1998, 9, 2),)]


def test_extract_and_case(session):
    server, sid = session
    execute(server, sid, "CREATE TABLE d (when_ DATE)")
    execute(server, sid, "INSERT INTO d VALUES ('1998-12-01'), ('1997-01-15')")
    rows = execute(
        server, sid,
        "SELECT CASE WHEN EXTRACT(YEAR FROM when_) = 1998 THEN 'new' ELSE 'old' END "
        "FROM d ORDER BY when_",
    )
    assert rows == [("old",), ("new",)]
