"""Phoenix edge cases: configuration ablations, error paths, placeholders,
SELECT INTO, EXEC wrapping, and cursor corner cases."""

from __future__ import annotations

import pytest

from repro.core import PhoenixConfig
from repro.errors import IntegrityError, ProgrammingError
from repro.net import FaultKind
from repro.odbc.constants import CursorType, StatementAttr


@pytest.fixture()
def ready(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10))")
    cur.execute("INSERT INTO t VALUES " + ", ".join(f"({i}, 'v{i}')" for i in range(1, 21)))
    return system, phoenix_conn, cur


# ---------------------------------------------------------------- error paths

def test_sql_error_leaves_connection_usable(ready):
    _system, conn, cur = ready
    with pytest.raises(IntegrityError):
        cur.execute("INSERT INTO t VALUES (1, 'dup')")
    cur.execute("INSERT INTO t VALUES (100, 'ok')")
    assert cur.rowcount == 1
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (21,)


def test_consecutive_sql_errors(ready):
    _system, conn, cur = ready
    for _ in range(3):
        with pytest.raises(IntegrityError):
            cur.execute("INSERT INTO t VALUES (1, 'dup')")
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (20,)


def test_error_in_wrapped_ddl(ready):
    _system, conn, cur = ready
    from repro.errors import CatalogError

    with pytest.raises(CatalogError):
        cur.execute("CREATE TABLE t (k INT)")  # exists
    cur.execute("CREATE TABLE t2 (k INT)")  # wrapper txn was cleaned up


def test_drop_unknown_temp_table(ready):
    _system, conn, cur = ready
    with pytest.raises(ProgrammingError):
        cur.execute("DROP TABLE #never_created")


def test_begin_twice_rejected(ready):
    _system, conn, cur = ready
    conn.begin()
    with pytest.raises(ProgrammingError):
        conn.begin()
    conn.rollback()


def test_commit_without_begin_rejected(ready):
    _system, conn, cur = ready
    with pytest.raises(ProgrammingError):
        conn.commit()


# ---------------------------------------------------------------- placeholders

def test_placeholders_through_phoenix_query(ready):
    _system, conn, cur = ready
    cur.execute("SELECT v FROM t WHERE k = ?", [7])
    assert cur.fetchone() == ("v7",)


def test_placeholders_through_phoenix_dml(ready):
    system, conn, cur = ready
    cur.execute("INSERT INTO t VALUES (?, ?)", [500, "via-ph"])
    assert cur.rowcount == 1
    cur.execute("SELECT v FROM t WHERE k = 500")
    assert cur.fetchone() == ("via-ph",)


def test_placeholder_dml_survives_crash(ready):
    system, conn, cur = ready
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "600")
    cur.execute("INSERT INTO t VALUES (?, ?)", [600, "crash"])
    assert cur.rowcount == 1
    cur.execute("SELECT count(*) FROM t WHERE k = 600")
    assert cur.fetchone() == (1,)


# ---------------------------------------------------------------- other statements

def test_select_into_through_phoenix(ready):
    _system, conn, cur = ready
    cur.execute("SELECT k, v INTO snapshot FROM t WHERE k <= 3")
    assert cur.rowcount == 3
    cur.execute("SELECT count(*) FROM snapshot")
    assert cur.fetchone() == (3,)


def test_select_into_temp_through_phoenix(ready):
    system, conn, cur = ready
    cur.execute("SELECT k INTO #snap FROM t WHERE k <= 5")
    cur.execute("SELECT count(*) FROM #snap")
    assert cur.fetchone() == (5,)
    # redirected, hence persistent on the server
    assert conn.temp_table_map.get("#snap") is None or True


def test_exec_wrapped_with_status(ready):
    system, conn, cur = ready
    cur.execute("CREATE PROCEDURE bump (@k INT) AS UPDATE t SET v = 'bumped' WHERE k = @k")
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "EXEC bump")
    cur.execute("EXEC bump 3")
    cur.execute("SELECT v FROM t WHERE k = 3")
    assert cur.fetchone() == ("bumped",)
    # exactly once: the probe resolved the lost reply
    assert conn.stats.probe_hits >= 1


def test_checkpoint_passthrough(ready):
    _system, conn, cur = ready
    cur.execute("CHECKPOINT")
    assert any("CHECKPOINT" in m for m in cur.messages)


def test_batch_through_phoenix(ready):
    _system, conn, cur = ready
    cur.execute("INSERT INTO t VALUES (300, 'a'); SELECT v FROM t WHERE k = 300")
    assert cur.fetchone() == ("a",)


# ---------------------------------------------------------------- cursors

def test_keyset_with_order_by(ready):
    _system, conn, cur = ready
    ks = conn.cursor()
    ks.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    ks.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 4)
    ks.execute("SELECT k FROM t WHERE k <= 10 ORDER BY k DESC")
    assert [r[0] for r in ks.fetchall()] == list(range(10, 0, -1))


def test_dynamic_with_order_by_downgrades(ready):
    _system, conn, cur = ready
    dyn = conn.cursor()
    dyn.set_attr(StatementAttr.CURSOR_TYPE, CursorType.DYNAMIC)
    dyn.execute("SELECT k FROM t ORDER BY k DESC")
    assert dyn.effective_cursor_type == CursorType.FORWARD_ONLY
    assert [r[0] for r in dyn.fetchall()] == list(range(20, 0, -1))


def test_keyset_empty_result(ready):
    _system, conn, cur = ready
    ks = conn.cursor()
    ks.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    ks.execute("SELECT k FROM t WHERE k > 1000")
    assert ks.fetchall() == []


def test_keyset_all_rows_deleted_mid_cursor(ready):
    _system, conn, cur = ready
    ks = conn.cursor()
    ks.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    ks.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 5)
    ks.execute("SELECT k, v FROM t WHERE k <= 10")
    ks.fetchmany(5)
    cur.execute("DELETE FROM t WHERE k BETWEEN 6 AND 10")
    assert ks.fetchall() == []  # nothing but holes left


def test_empty_result_set_fetch(ready):
    _system, conn, cur = ready
    cur.execute("SELECT * FROM t WHERE 0 = 1")
    assert cur.fetchall() == []
    assert cur.fetchone() is None
    assert cur.description is not None  # metadata still present


def test_fetch_on_ddl_returns_nothing(ready):
    _system, conn, cur = ready
    cur.execute("CREATE TABLE other (x INT)")
    assert cur.fetchall() == []


# ---------------------------------------------------------------- configs

def test_dml_status_off_is_at_most_once(system):
    conn = system.phoenix.connect(
        system.DSN, config=PhoenixConfig(persist_dml_status=False)
    )
    conn.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    assert conn.stats.dml_wrapped == 0
    cur.execute("INSERT INTO t VALUES (1)")
    assert cur.rowcount == 1
    conn.close()


def test_client_side_materialization_same_results(system):
    conn = system.phoenix.connect(
        system.DSN, config=PhoenixConfig(materialize_via_procedure=False)
    )
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10))")
    cur.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    cur.execute("SELECT * FROM t ORDER BY k")
    assert cur.fetchall() == [(1, "a"), (2, "b")]
    conn.close()


def test_metadata_via_execute_same_results(system):
    conn = system.phoenix.connect(
        system.DSN, config=PhoenixConfig(metadata_via_false_where=False)
    )
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES (1), (2)")
    cur.execute("SELECT k FROM t ORDER BY k")
    assert cur.fetchall() == [(1,), (2,)]
    conn.close()


def test_client_side_reposition_recovers_correctly(system):
    conn = system.phoenix.connect(
        system.DSN, config=PhoenixConfig(reposition_server_side=False)
    )
    conn.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES " + ", ".join(f"({i})" for i in range(1, 31)))
    cur.execute("SELECT k FROM t ORDER BY k")
    first = cur.fetchmany(12)
    system.server.crash()
    system.endpoint.restart_server()
    conn.cursor().execute("SELECT 1")  # trigger recovery (rebuffered mode)
    rest = cur.fetchall()
    assert [r[0] for r in first + rest] == list(range(1, 31))
    conn.close()


def test_result_with_duplicate_output_names(ready):
    """sum(v)-style duplicate column names must materialize fine."""
    _system, conn, cur = ready
    cur.execute("SELECT count(*), count(*) FROM t")
    assert cur.fetchone() == (20, 20)
    assert [d[0] for d in cur.description] == ["count", "count"]


def test_result_with_keyword_column_name(ready):
    _system, conn, cur = ready
    cur.execute("SELECT k AS key, count(*) AS count FROM t GROUP BY k ORDER BY k LIMIT 1")
    assert cur.fetchone() == (1, 1)
