"""ODBC client-stack tests: driver, driver manager, statements."""

from __future__ import annotations

import pytest

from repro import errors
from repro.engine import DatabaseServer
from repro.net import FaultKind, ServerEndpoint
from repro.odbc import DriverManager, NativeDriver
from repro.odbc.constants import CursorType, StatementAttr


@pytest.fixture()
def stack():
    server = DatabaseServer()
    endpoint = ServerEndpoint(server)
    manager = DriverManager()
    manager.register_dsn("db", NativeDriver(endpoint))
    return server, endpoint, manager


@pytest.fixture()
def conn(stack):
    _server, _endpoint, manager = stack
    connection = manager.connect("db")
    yield connection
    if not connection.closed:
        try:
            connection.close()
        except errors.Error:
            pass


def test_unknown_dsn_rejected(stack):
    *_rest, manager = stack
    with pytest.raises(errors.InterfaceError):
        manager.connect("nope")


def test_execute_and_fetch_paths(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))")
    cur.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    assert cur.rowcount == 3
    cur.execute("SELECT * FROM t ORDER BY k")
    assert cur.fetchone() == (1, "a")
    assert cur.fetchmany(1) == [(2, "b")]
    assert cur.fetchall() == [(3, "c")]
    assert cur.fetchone() is None
    assert cur.rows_read == 3


def test_description_present_for_queries(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(5))")
    cur.execute("SELECT k, v FROM t")
    names = [d[0] for d in cur.description]
    assert names == ["k", "v"]
    assert cur.description[0][1] == "INT"


def test_ddl_leaves_no_description(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT)")
    assert cur.description is None
    assert cur.fetchall() == []


def test_execute_resets_previous_result(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT)")
    cur.execute("INSERT INTO t VALUES (1), (2)")
    cur.execute("SELECT k FROM t")
    cur.fetchone()
    cur.execute("SELECT k FROM t WHERE k = 2")
    assert cur.fetchall() == [(2,)]


def test_statement_attrs_validated(conn):
    cur = conn.cursor()
    with pytest.raises(errors.ProgrammingError):
        cur.set_attr("bogus", 1)


def test_keyset_cursor_block_fetching(stack, conn):
    server, _endpoint, _manager = stack
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES " + ", ".join(f"({i})" for i in range(1, 26)))
    cur2 = conn.cursor()
    cur2.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    cur2.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 10)
    cur2.execute("SELECT k FROM t")
    assert cur2.effective_cursor_type == CursorType.KEYSET
    assert len(cur2.fetchall()) == 25


def test_placeholders(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT, v VARCHAR(5))")
    cur.execute("INSERT INTO t VALUES (?, ?)", [5, "five"])
    cur.execute("SELECT v FROM t WHERE k = ?", [5])
    assert cur.fetchone() == ("five",)


def test_transactions_via_connection(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT)")
    conn.begin()
    cur.execute("INSERT INTO t VALUES (1)")
    conn.rollback()
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (0,)


def test_set_option_applies_server_side(stack, conn):
    server, *_ = stack
    conn.set_option("app_name", "repro-tests")
    session = next(iter(server.sessions.values()))
    assert session.options["app_name"] == "repro-tests"


def test_closed_connection_rejects_use(conn):
    conn.close()
    with pytest.raises(errors.InterfaceError):
        conn.cursor()


def test_closed_statement_rejects_use(conn):
    cur = conn.cursor()
    cur.close()
    with pytest.raises(errors.InterfaceError):
        cur.execute("SELECT 1")


def test_connection_context_manager(stack):
    *_rest, manager = stack
    with manager.connect("db") as connection:
        cur = connection.cursor()
        cur.execute("SELECT 1")
        assert cur.fetchone() == (1,)
    assert connection.closed


def test_close_disconnects_server_session(stack, conn):
    server, *_ = stack
    assert len(server.sessions) == 1
    conn.close()
    assert len(server.sessions) == 0


def test_native_stack_exposes_crash_to_app(stack, conn):
    """The baseline behavior Phoenix exists to fix (paper §2)."""
    server, endpoint, _manager = stack
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT)")
    endpoint.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE)
    with pytest.raises(errors.CommunicationError):
        cur.execute("SELECT * FROM t")
    # and the connection is unusable afterwards
    with pytest.raises(errors.CommunicationError):
        cur.execute("SELECT 1")


def test_native_cursor_lost_on_crash(stack, conn):
    server, endpoint, _manager = stack
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES (1), (2), (3)")
    cur2 = conn.cursor()
    cur2.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    cur2.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 1)
    cur2.execute("SELECT k FROM t")
    assert cur2.fetchone() == (1,)
    server.crash()
    endpoint.restart_server()
    with pytest.raises(errors.Error):
        cur2.fetchmany(5)  # server cursor gone with the session


def test_driver_ping_uses_throwaway_channel(stack):
    server, endpoint, manager = stack
    driver = manager.driver_for("db")
    assert driver.ping().server_epoch == 0
    server.crash()
    with pytest.raises(errors.ServerCrashedError):
        driver.ping()
    endpoint.restart_server()
    assert driver.ping().server_epoch == 1  # fresh channel each time


def test_table_schema_catalog_call(stack, conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
    schema = conn._driver_connection.table_schema("t")
    assert schema.primary_key == ("a", "b")
