"""Phoenix/ODBC under failures: the paper's core claims.

Every test crashes the server at a specific point and asserts the
application observes nothing but latency — results complete and exact,
DML applied exactly once, session context reinstalled.
"""

from __future__ import annotations

import pytest

from repro.errors import CommunicationError, RecoveryError
from repro.net import FaultKind
from repro.odbc.constants import CursorType, StatementAttr


@pytest.fixture()
def ready(system, phoenix_conn):
    cur = phoenix_conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10))")
    cur.execute(
        "INSERT INTO t VALUES " + ", ".join(f"({i}, 'v{i}')" for i in range(1, 51))
    )
    return system, phoenix_conn, cur


def crash_restart(system):
    system.server.crash()
    system.endpoint.restart_server()


# ------------------------------------------------------------------ queries

def test_crash_between_statements_is_invisible(ready):
    system, conn, cur = ready
    crash_restart(system)
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (50,)
    assert conn.stats.recoveries == 1


def test_crash_during_metadata_probe(ready):
    system, conn, cur = ready
    system.faults.schedule_on_sql(FaultKind.CRASH_BEFORE_EXECUTE, "(0 = 1)")
    cur.execute("SELECT k, v FROM t ORDER BY k")
    assert len(cur.fetchall()) == 50
    assert conn.stats.recoveries == 1


def test_crash_during_materialization_fill(ready):
    system, conn, cur = ready
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "EXEC phx_")
    cur.execute("SELECT k FROM t ORDER BY k")
    rows = cur.fetchall()
    assert [r[0] for r in rows] == list(range(1, 51))  # no duplicates from refill


def test_crash_during_delivery_open(ready):
    system, conn, cur = ready
    system.faults.schedule(
        FaultKind.CRASH_AFTER_EXECUTE,
        matcher=lambda r: getattr(r, "sql", "").startswith("SELECT * FROM phx_"),
    )
    cur.execute("SELECT k FROM t ORDER BY k")
    rows = cur.fetchall()
    assert len(rows) == len(set(rows)) == 50


def test_mid_fetch_crash_resumes_at_exact_position(ready):
    system, conn, cur = ready
    cur.execute("SELECT k FROM t ORDER BY k")
    first = cur.fetchmany(20)
    crash_restart(system)
    # any server interaction triggers recovery; then the open result is
    # repositioned at delivered=20
    conn.cursor().execute("SELECT 1")
    rest = cur.fetchall()
    assert [r[0] for r in first + rest] == list(range(1, 51))


def test_double_crash_during_one_result(ready):
    system, conn, cur = ready
    cur.execute("SELECT k FROM t ORDER BY k")
    got = cur.fetchmany(10)
    crash_restart(system)
    conn.cursor().execute("SELECT 1")
    got += cur.fetchmany(10)
    crash_restart(system)
    conn.cursor().execute("SELECT 1")
    got += cur.fetchall()
    assert [r[0] for r in got] == list(range(1, 51))
    assert conn.stats.recoveries == 2


def test_crash_while_recovering_is_survived(ready):
    system, conn, cur = ready
    cur.execute("SELECT k FROM t ORDER BY k")
    cur.fetchmany(5)
    crash_restart(system)
    # arm a second crash that fires during recovery's verification phase
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "count(*) FROM phx_")
    conn.cursor().execute("SELECT 1")
    assert len(cur.fetchall()) == 45
    assert conn.stats.recoveries >= 1


def test_recovery_verifies_materialized_state(ready):
    system, conn, cur = ready
    cur.execute("SELECT k FROM t ORDER BY k")
    state = cur._state
    # sabotage: drop the materialized table behind Phoenix's back, then crash
    vandal = system.server.connect()
    system.server.execute(vandal, f"DROP TABLE {state.table}")
    crash_restart(system)
    with pytest.raises(RecoveryError):
        conn.recovery.recover(CommunicationError("test"))


# ------------------------------------------------------------------ session context

def test_options_replayed_in_order(ready):
    system, conn, cur = ready
    conn.set_option("a", 1)
    cur.execute("SET b 2")
    crash_restart(system)
    cur.execute("SELECT 1")  # trigger recovery
    app_session = system.server.sessions[conn.app.session_id]
    assert app_session.options["a"] == 1
    assert app_session.options["b"] == 2


def test_proxy_recreated_after_recovery(ready):
    system, conn, cur = ready
    crash_restart(system)
    cur.execute("SELECT 1")
    app_session = system.server.sessions[conn.app.session_id]
    assert "#phx_proxy" in app_session.temp_tables


def test_temp_table_survives_crash(ready):
    system, conn, cur = ready
    cur.execute("CREATE TABLE #w (x INT)")
    cur.execute("INSERT INTO #w VALUES (7)")
    crash_restart(system)
    cur.execute("SELECT x FROM #w")
    assert cur.fetchone() == (7,)


def test_temp_procedure_survives_crash(ready):
    system, conn, cur = ready
    cur.execute("CREATE TABLE #w (x INT)")
    cur.execute("CREATE PROCEDURE #p AS INSERT INTO #w VALUES (9)")
    crash_restart(system)
    cur.execute("EXEC #p")
    cur.execute("SELECT x FROM #w")
    assert cur.fetchone() == (9,)


# ------------------------------------------------------------------ failure detection

def test_spurious_timeout_retries_without_recovery(ready):
    system, conn, cur = ready
    system.faults.schedule_on_sql(FaultKind.HANG, "count(*)")
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (50,)
    assert conn.stats.spurious_timeouts == 1
    assert conn.stats.recoveries == 0


def test_dropped_connection_without_crash_rebuilds_session(ready):
    system, conn, cur = ready
    system.faults.schedule_on_sql(FaultKind.DROP_CONNECTION, "count(*)")
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (50,)
    # server never died, but the session had to be rebuilt
    assert system.server.stats.crashes == 0
    assert conn.stats.recoveries == 1


def test_fast_restart_between_requests_detected_via_session_loss(ready):
    system, conn, cur = ready
    crash_restart(system)  # client saw nothing; session ids now invalid
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (50,)
    assert conn.stats.recoveries == 1


def test_ping_exhaustion_surfaces_original_error(system):
    conn = system.phoenix.connect(system.DSN)
    conn.config.sleep = lambda _s: None  # never restart the server
    conn.config.max_ping_attempts = 3
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT)")
    system.server.crash()
    with pytest.raises(CommunicationError):
        cur.execute("SELECT count(*) FROM t")


def test_epoch_bumps_per_recovery(ready):
    system, conn, cur = ready
    assert conn.session_epoch == 0
    crash_restart(system)
    cur.execute("SELECT 1")
    assert conn.session_epoch == 1


# ------------------------------------------------------------------ transactions

def test_open_transaction_replayed(ready):
    system, conn, cur = ready
    conn.begin()
    cur.execute("INSERT INTO t VALUES (100, 'tx1')")
    crash_restart(system)
    cur.execute("INSERT INTO t VALUES (101, 'tx2')")  # triggers recovery+replay
    conn.commit()
    cur.execute("SELECT count(*) FROM t WHERE k >= 100")
    assert cur.fetchone() == (2,)
    assert conn.stats.replayed_txns == 1


def test_commit_reply_lost_is_not_replayed(ready):
    system, conn, cur = ready
    conn.begin()
    cur.execute("INSERT INTO t VALUES (100, 'tx')")
    system.faults.schedule_on_sql(FaultKind.CRASH_AFTER_EXECUTE, "COMMIT")
    conn.commit()  # reply lost, but the commit landed
    cur.execute("SELECT count(*) FROM t WHERE k = 100")
    assert cur.fetchone() == (1,)
    assert conn.stats.probe_hits == 1
    assert conn.stats.replayed_txns == 0


def test_commit_lost_before_execute_is_replayed(ready):
    system, conn, cur = ready
    conn.begin()
    cur.execute("INSERT INTO t VALUES (100, 'tx')")
    system.faults.schedule_on_sql(FaultKind.CRASH_BEFORE_EXECUTE, "COMMIT")
    conn.commit()  # txn lost entirely → replay + commit again
    cur.execute("SELECT count(*) FROM t WHERE k = 100")
    assert cur.fetchone() == (1,)
    assert conn.stats.replayed_txns == 1


def test_rollback_during_crash_equals_rollback(ready):
    system, conn, cur = ready
    conn.begin()
    cur.execute("INSERT INTO t VALUES (100, 'tx')")
    system.faults.schedule_on_sql(FaultKind.CRASH_BEFORE_EXECUTE, "ROLLBACK")
    conn.rollback()
    cur.execute("SELECT count(*) FROM t WHERE k = 100")
    assert cur.fetchone() == (0,)
    assert not conn.in_transaction


def test_queries_inside_replayed_transaction(ready):
    system, conn, cur = ready
    conn.begin()
    cur.execute("INSERT INTO t VALUES (100, 'tx')")
    cur.execute("SELECT count(*) FROM t WHERE k = 100")
    assert cur.fetchone() == (1,)
    crash_restart(system)
    cur.execute("SELECT count(*) FROM t WHERE k = 100")  # recovery + replay
    assert cur.fetchone() == (1,)
    conn.commit()


# ------------------------------------------------------------------ cursors

def test_keyset_cursor_survives_crash(ready):
    system, conn, cur = ready
    ks = conn.cursor()
    ks.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    ks.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 10)
    ks.execute("SELECT k, v FROM t WHERE k <= 30")
    first = ks.fetchmany(10)
    crash_restart(system)
    rest = ks.fetchall()
    assert [r[0] for r in first + rest] == list(range(1, 31))


def test_keyset_cursor_sees_post_crash_updates(ready):
    system, conn, cur = ready
    ks = conn.cursor()
    ks.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    ks.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 5)
    ks.execute("SELECT k, v FROM t WHERE k <= 10")
    ks.fetchmany(5)
    cur.execute("UPDATE t SET v = 'CHANGED' WHERE k = 8")
    crash_restart(system)
    rest = ks.fetchall()
    assert (8, "CHANGED") in rest


def test_dynamic_cursor_survives_crash_and_sees_inserts(ready):
    system, conn, cur = ready
    dyn = conn.cursor()
    dyn.set_attr(StatementAttr.CURSOR_TYPE, CursorType.DYNAMIC)
    dyn.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 5)
    dyn.execute("SELECT k FROM t WHERE k BETWEEN 20 AND 40")
    first = dyn.fetchmany(5)
    cur.execute("INSERT INTO t VALUES (33, 'late')") if False else None
    crash_restart(system)
    cur.execute("INSERT INTO t VALUES (90, 'outside')")  # outside range
    rest = dyn.fetchall()
    keys = [r[0] for r in first + rest]
    assert keys == sorted(keys)
    assert set(keys) == set(range(20, 41))


def test_recovery_timings_recorded(ready):
    system, conn, cur = ready
    cur.execute("SELECT k FROM t ORDER BY k")
    cur.fetchmany(10)
    crash_restart(system)
    conn.recovery.recover(CommunicationError("test"))
    assert conn.stats.last_virtual_session_seconds > 0
    assert conn.stats.last_sql_state_seconds > 0


def test_many_crashes_across_workload(ready):
    """Soak: a small workload with a crash between every step."""
    system, conn, cur = ready
    for i in range(5):
        crash_restart(system)
        cur.execute(f"INSERT INTO t VALUES ({200 + i}, 'x{i}')")
        crash_restart(system)
        cur.execute(f"SELECT count(*) FROM t WHERE k >= 200")
        assert cur.fetchone() == (i + 1,)
    assert conn.stats.recoveries == 10


def test_second_crash_inside_post_recovery_fetch(ready):
    """Regression (found by the fault-schedule property soak): a crash
    during delivery-open flips the result to server-cursor mode; a *second*
    crash during the very first post-recovery FETCH triggers recovery
    inside the guarded fetch call.  The rows that fetch finally returns are
    post-recovery fresh — the cursor must adopt the new epoch instead of
    discarding them (the re-opened server cursor has already moved past
    them, so discarding loses rows for good)."""
    system, conn, cur = ready
    system.faults.schedule(
        FaultKind.CRASH_AFTER_EXECUTE,
        matcher=lambda r: getattr(r, "sql", "").startswith("SELECT * FROM phx_"),
    )
    from repro.net.protocol import FetchRequest

    system.faults.schedule(
        FaultKind.CRASH_BEFORE_EXECUTE,
        matcher=lambda r: isinstance(r, FetchRequest),
    )
    cur.execute("SELECT k FROM t ORDER BY k")
    rows = cur.fetchall()
    assert [r[0] for r in rows] == list(range(1, 51))
    assert conn.stats.recoveries == 2


def test_repeated_crashes_on_retried_request(ready):
    """Each retry of an idempotent request may meet a fresh crash; the
    bounded retry loop must ride out several in a row."""
    system, conn, cur = ready
    for i in range(4):
        system.faults.schedule_on_sql(FaultKind.CRASH_BEFORE_EXECUTE, "count(*) FROM t", after=i)
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchone() == (50,)
    assert conn.stats.recoveries >= 2
