"""The real-socket serving tier: framing, TCP parity, recovery over real
sockets, idle-session scale, pooling, and the PEP 249 context managers."""

from __future__ import annotations

import os
import socket

import pytest

import repro
from repro import errors
from repro.chaos.oracle import check_run
from repro.chaos.trace import probe_dml_trace, run_trace
from repro.net import framing
from repro.net.faults import FaultKind
from repro.net.protocol import ConnectRequest, PingRequest, PongResponse
from repro.net.tcp import TcpTransport
from repro.net.transport import InProcessTransport

#: CI runs a reduced soak (REPRO_TCP_SOAK=300); the default is the
#: acceptance-level thousand
SOAK_SESSIONS = int(os.environ.get("REPRO_TCP_SOAK", "1000"))


@pytest.fixture()
def tcp_system():
    """A system with a live TCP listener whose own stack rides the socket."""
    system = repro.make_system(dsn="tcp-test", listen="127.0.0.1:0")
    yield system
    system.close()


def _auto_restart(system, config) -> None:
    """Wire the recovery sleep hook to restart a crashed server (the
    watchdog stand-in every crash test uses)."""
    config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )


# --------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------


def test_frame_roundtrip_single():
    payload = b"hello frames"
    decoder = framing.FrameDecoder()
    frames = decoder.feed(framing.encode_frame(framing.FRAME_REQUEST, payload))
    assert frames == [(framing.FRAME_REQUEST, payload)]
    assert decoder.pending_bytes == 0


def test_frame_split_reads_byte_by_byte():
    payload = bytes(range(64))
    wire = framing.encode_frame(framing.FRAME_RESPONSE, payload)
    decoder = framing.FrameDecoder()
    collected = []
    for i in range(len(wire)):  # worst-case TCP chunking: one byte per read
        collected.extend(decoder.feed(wire[i : i + 1]))
    assert collected == [(framing.FRAME_RESPONSE, payload)]


def test_frame_coalesced_reads():
    frames_in = [
        (framing.FRAME_REQUEST, b"one"),
        (framing.FRAME_RESPONSE, b""),
        (framing.FRAME_TIMEOUT, framing.encode_notice("TimeoutError", "slow")),
        (framing.FRAME_FATAL, framing.encode_notice("ServerCrashedError", "boom")),
    ]
    blob = b"".join(framing.encode_frame(t, p) for t, p in frames_in)
    # everything in one read, split at an arbitrary unaligned boundary
    decoder = framing.FrameDecoder()
    assert decoder.feed(blob) == frames_in
    decoder = framing.FrameDecoder()
    collected = decoder.feed(blob[:7])
    collected += decoder.feed(blob[7:])
    assert collected == frames_in


def test_frame_notice_roundtrip():
    error_type, message = framing.decode_notice(
        framing.encode_notice("ServerCrashedError", "connection reset")
    )
    assert error_type == "ServerCrashedError"
    assert message == "connection reset"


def test_frame_rejects_unknown_type_and_oversize():
    decoder = framing.FrameDecoder()
    with pytest.raises(framing.FrameError):
        decoder.feed(b"\xee\x00\x00\x00\x01x")
    with pytest.raises(framing.FrameError):
        framing.encode_frame(framing.FRAME_REQUEST, b"x" * (framing.MAX_FRAME_BYTES + 1))


# --------------------------------------------------------------------------
# the serving tier
# --------------------------------------------------------------------------


def test_tcp_system_serves_sql(tcp_system):
    connection = repro.connect(tcp_system)
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(10))")
    cursor.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    cursor.execute("SELECT * FROM t ORDER BY k")
    assert cursor.fetchall() == [(1, "a"), (2, "b")]
    connection.close()
    snap = tcp_system.registry.snapshot()["net"]
    assert snap["connections_accepted"] >= 1
    assert snap["frames_received"] > 0
    assert snap["bytes_received"] > 0


def test_url_dsn_reaches_listening_system(tcp_system):
    connection = repro.connect(tcp_system)
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE u (k INT PRIMARY KEY)")
    cursor.execute("INSERT INTO u VALUES (7)")
    connection.close()
    # a second "process" dials the advertised URL instead of the registry
    other = repro.connect(tcp_system.url, phoenix=False)
    cursor = other.cursor()
    cursor.execute("SELECT k FROM u")
    assert cursor.fetchall() == [(7,)]
    other.close()


def test_url_dsn_validation():
    with pytest.raises(errors.InterfaceError):
        repro.connect("tcp://nohost/db")  # no port
    with pytest.raises(errors.InterfaceError):
        repro._parse_url_dsn("udp://127.0.0.1:1/x")


def test_registry_name_dsns_keep_working():
    system = repro.make_system(dsn="plain-name-dsn")
    connection = repro.connect("plain-name-dsn")
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE r (k INT PRIMARY KEY)")
    connection.close()
    assert system.tcp is None
    assert system.transport.name == "inprocess"


def test_transport_matrix_same_driver_surface(tcp_system):
    """The same NativeDriver calls work over either transport."""
    host, port = tcp_system.tcp.address
    for transport in (InProcessTransport(tcp_system.endpoint), TcpTransport(host, port)):
        driver = repro.NativeDriver(transport)
        pong = driver.ping()
        assert isinstance(pong, PongResponse)
        dc = driver.connect("matrix")
        assert dc.execute("SELECT 1").rows == [(1,)]
        dc.disconnect()


def test_ping_bypass_answers_restarting_over_tcp(tcp_system):
    """The drain-window ping bypass crosses the socket tier too."""
    tcp_system.server.begin_drain()
    try:
        driver = repro.NativeDriver(TcpTransport(*tcp_system.tcp.address))
        with pytest.raises(errors.ServerRestartingError):
            driver.ping()
    finally:
        tcp_system.server.crash()
        tcp_system.endpoint.restart_server()


# --------------------------------------------------------------------------
# parity: the full phoenix trace over both transports
# --------------------------------------------------------------------------


def test_golden_trace_fingerprint_parity():
    golden_inprocess = run_trace(probe_dml_trace())
    golden_tcp = run_trace(probe_dml_trace(), transport="tcp")
    assert golden_tcp.completed, golden_tcp.error
    assert golden_tcp.fingerprints == golden_inprocess.fingerprints
    assert golden_tcp.observations == golden_inprocess.observations
    assert golden_tcp.status_rows == golden_inprocess.status_rows


def test_crash_recover_trace_exactly_once_over_tcp():
    """A mid-trace crash over real sockets: the oracle holds, byte-identical
    fingerprints, and recovery actually happened."""
    golden = run_trace(probe_dml_trace())
    for schedule in (
        ((6, FaultKind.CRASH_AFTER_EXECUTE),),
        ((8, FaultKind.CRASH_BEFORE_EXECUTE),),
        ((11, FaultKind.DROP_CONNECTION),),
    ):
        faulted = run_trace(probe_dml_trace(), schedule=schedule, transport="tcp")
        assert faulted.completed, faulted.error
        assert faulted.recoveries >= 1
        assert faulted.fingerprints == golden.fingerprints
        violations = check_run(golden, faulted)
        assert not violations, (schedule, violations)


def test_hang_fault_over_tcp_keeps_socket_usable(tcp_system):
    """HANG arrives as a TIMEOUT frame: TimeoutError, channel NOT broken."""
    driver = repro.NativeDriver(TcpTransport(*tcp_system.tcp.address))
    dc = driver.connect("hang")
    tcp_system.faults.schedule(FaultKind.HANG, after=0)
    with pytest.raises(errors.TimeoutError):
        dc.execute("SELECT 1")
    assert not dc.broken
    assert dc.execute("SELECT 1").rows == [(1,)]  # same socket still serves
    dc.disconnect()


# --------------------------------------------------------------------------
# kill mid-request: CommunicationError + recovery on a *new* socket
# --------------------------------------------------------------------------


def test_server_kill_surfaces_communication_error_over_tcp(tcp_system):
    plain = repro.connect(tcp_system, phoenix=False)
    cursor = plain.cursor()
    cursor.execute("CREATE TABLE k (id INT PRIMARY KEY)")
    tcp_system.faults.schedule(FaultKind.CRASH_AFTER_EXECUTE, after=0)
    with pytest.raises(errors.CommunicationError):
        cursor.execute("INSERT INTO k VALUES (1)")
    # the channel (and its socket) is permanently broken, like in-process
    with pytest.raises(errors.CommunicationError):
        cursor.execute("SELECT * FROM k")
    tcp_system.endpoint.restart_server()


def test_phoenix_recovers_over_new_socket(tcp_system):
    config = tcp_system.phoenix.config
    _auto_restart(tcp_system, config)
    connection = tcp_system.phoenix.connect(tcp_system.DSN)
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE ride (id INT PRIMARY KEY, v FLOAT)")
    cursor.execute("INSERT INTO ride VALUES (1, 1.5)")
    accepted_before = tcp_system.registry.net.connections_accepted
    tcp_system.faults.schedule(FaultKind.CRASH_AFTER_EXECUTE, after=0)
    cursor.execute("INSERT INTO ride VALUES (2, 2.5)")  # rides through
    cursor.execute("SELECT * FROM ride ORDER BY id")
    assert cursor.fetchall() == [(1, 1.5), (2, 2.5)]
    assert connection.stats.recoveries == 1
    # recovery dialed in on fresh sockets: the listener accepted new
    # connections after the crash broke the old ones
    assert tcp_system.registry.net.connections_accepted > accepted_before
    connection.close()


# --------------------------------------------------------------------------
# idle-session soak
# --------------------------------------------------------------------------


def test_idle_session_soak(tcp_system):
    """SOAK_SESSIONS concurrent idle TCP sessions on one event loop:
    connect them all, hold them open, ping every one, 0 errors."""
    host, port = tcp_system.tcp.address
    transport = TcpTransport(host, port)
    metrics = repro.NetworkMetrics()
    channels = []
    try:
        for i in range(SOAK_SESSIONS):
            channel = transport.open_channel(metrics=metrics)
            response = channel.send(ConnectRequest(user=f"idle-{i}", options={}))
            channels.append((channel, response.session_id))
        assert len(tcp_system.server.sessions) >= SOAK_SESSIONS
        snap = tcp_system.registry.snapshot()["net"]
        assert snap["connections_open"] >= SOAK_SESSIONS
        for channel, _session_id in channels:
            pong = channel.send(PingRequest())
            assert isinstance(pong, PongResponse)
        assert metrics.errors == 0
    finally:
        for channel, _session_id in channels:
            channel.close()


# --------------------------------------------------------------------------
# pooling
# --------------------------------------------------------------------------


def test_pool_checkout_exhaustion(tcp_system):
    pool = repro.ConnectionPool(tcp_system.DSN, 2, phoenix=False, checkout_timeout=0.05)
    a = pool.checkout()
    b = pool.checkout()
    with pytest.raises(errors.OperationalError):
        pool.checkout()
    snap = tcp_system.registry.snapshot()["net"]
    assert snap["pool_exhausted"] == 1
    assert snap["pool_in_use"] == 2
    pool.checkin(a)
    c = pool.checkout()  # the freed slot is reusable
    pool.checkin(b)
    pool.checkin(c)
    pool.close()


def test_pool_replaces_broken_connection(tcp_system):
    """A plain connection broken by a server crash fails the checkout
    liveness probe and is replaced with a fresh one."""
    pool = repro.ConnectionPool(tcp_system.DSN, 1, phoenix=False)
    conn = pool.checkout()
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE p (k INT PRIMARY KEY)")
    tcp_system.faults.schedule(FaultKind.CRASH_AFTER_EXECUTE, after=0)
    with pytest.raises(errors.CommunicationError):
        cursor.execute("INSERT INTO p VALUES (1)")
    pool.checkin(conn)  # broken: discarded, slot freed
    tcp_system.endpoint.restart_server()
    replacement = pool.checkout()
    assert replacement is not conn
    assert replacement.cursor().execute("SELECT 1").fetchall() == [(1,)]
    pool.checkin(replacement)
    pool.close()


def test_pool_replaces_stale_session_via_probe(tcp_system):
    """An *idle* pooled connection whose server restarted passes a naive
    server ping but fails the session probe — checkout must replace it."""
    pool = repro.ConnectionPool(tcp_system.DSN, 1, phoenix=False)
    conn = pool.checkout()
    conn.cursor().execute("SELECT 1")
    pool.checkin(conn)
    # crash + restart while the connection sits idle in the pool: its
    # channel never saw the failure, but its server session is gone
    tcp_system.server.crash()
    tcp_system.endpoint.restart_server()
    replacements_before = tcp_system.registry.net.pool_replacements
    fresh = pool.checkout()
    assert tcp_system.registry.net.pool_replacements == replacements_before + 1
    assert fresh.cursor().execute("SELECT 1").fetchall() == [(1,)]
    pool.checkin(fresh)
    pool.close()


def test_phoenix_pool_rides_through_crash_without_replacement(tcp_system):
    """The paper's claim at pool scale: phoenix members pass the same
    probe by recovering — zero replacements."""
    config = tcp_system.phoenix.config
    _auto_restart(tcp_system, config)
    pool = repro.ConnectionPool(tcp_system.DSN, 1, phoenix=True, config=config)
    conn = pool.checkout()
    conn.cursor().execute("CREATE TABLE phx_pool_t (k INT PRIMARY KEY)")
    pool.checkin(conn)
    tcp_system.server.crash()
    tcp_system.endpoint.restart_server()
    again = pool.checkout()  # probe triggers phoenix recovery, not replacement
    assert again is conn
    assert tcp_system.registry.net.pool_replacements == 0
    pool.checkin(again)
    pool.close()


def test_pool_url_dsn_counters_land_in_system_registry(tcp_system):
    """A pool built from a ``tcp://`` URL resolves its counters to the
    owning system's registry via the name embedded in the URL — the
    normal TCP usage must not silo its stats in a private object."""
    pool = repro.ConnectionPool(tcp_system.url, 1, phoenix=False)
    assert pool.stats is tcp_system.registry.net
    checkouts_before = tcp_system.registry.net.pool_checkouts
    conn = pool.checkout()
    assert tcp_system.registry.net.pool_checkouts == checkouts_before + 1
    pool.checkin(conn)
    pool.close()


def test_pool_connection_context_manager_commits(tcp_system):
    pool = repro.ConnectionPool(tcp_system.DSN, 2, phoenix=False)
    with pool.connection() as conn:
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE pc (k INT PRIMARY KEY)")
        conn.begin()
        cursor.execute("INSERT INTO pc VALUES (1)")
        # block exit commits the open transaction and checks the conn in
    with pool.connection() as conn:
        assert conn.cursor().execute("SELECT * FROM pc").fetchall() == [(1,)]
    with pytest.raises(RuntimeError):
        with pool.connection() as conn:
            conn.begin()
            conn.cursor().execute("INSERT INTO pc VALUES (2)")
            raise RuntimeError("abort")
    with pool.connection() as conn:
        assert conn.cursor().execute("SELECT * FROM pc").fetchall() == [(1,)]
    pool.close()


# --------------------------------------------------------------------------
# PEP 249 context managers (both stacks)
# --------------------------------------------------------------------------


@pytest.mark.parametrize("phoenix", [False, True], ids=["plain", "phoenix"])
def test_connection_cm_commits_on_success(tcp_system, phoenix):
    setup = repro.connect(tcp_system, phoenix=phoenix)
    setup.cursor().execute(
        f"CREATE TABLE cm_ok_{int(phoenix)} (k INT PRIMARY KEY)"
    )
    setup.close()
    with repro.connect(tcp_system, phoenix=phoenix) as conn, conn.cursor() as cur:
        conn.begin()
        cur.execute(f"INSERT INTO cm_ok_{int(phoenix)} VALUES (1)")
        assert conn.in_transaction
    assert conn.closed  # historical contract: `with` releases the handle
    check = repro.connect(tcp_system, phoenix=phoenix)
    rows = check.cursor().execute(
        f"SELECT * FROM cm_ok_{int(phoenix)}"
    ).fetchall()
    check.close()
    assert rows == [(1,)]


@pytest.mark.parametrize("phoenix", [False, True], ids=["plain", "phoenix"])
def test_connection_cm_rolls_back_on_exception(tcp_system, phoenix):
    setup = repro.connect(tcp_system, phoenix=phoenix)
    setup.cursor().execute(
        f"CREATE TABLE cm_rb_{int(phoenix)} (k INT PRIMARY KEY)"
    )
    setup.close()
    with pytest.raises(RuntimeError):
        with repro.connect(tcp_system, phoenix=phoenix) as conn:
            conn.begin()
            conn.cursor().execute(f"INSERT INTO cm_rb_{int(phoenix)} VALUES (1)")
            raise RuntimeError("application failure")
    assert conn.closed
    check = repro.connect(tcp_system, phoenix=phoenix)
    rows = check.cursor().execute(
        f"SELECT * FROM cm_rb_{int(phoenix)}"
    ).fetchall()
    check.close()
    assert rows == []


def test_connection_cm_autocommit_block_unchanged(tcp_system):
    """No begin() inside the block: exit just closes, like before."""
    with repro.connect(tcp_system, phoenix=False) as conn:
        conn.cursor().execute("CREATE TABLE cm_auto (k INT PRIMARY KEY)")
        conn.cursor().execute("INSERT INTO cm_auto VALUES (5)")
        assert not conn.in_transaction
    assert conn.closed
    check = repro.connect(tcp_system, phoenix=False)
    assert check.cursor().execute("SELECT * FROM cm_auto").fetchall() == [(5,)]
    check.close()


# --------------------------------------------------------------------------
# lifecycle details
# --------------------------------------------------------------------------


def test_server_stop_closes_client_sockets(tcp_system):
    driver = repro.NativeDriver(TcpTransport(*tcp_system.tcp.address))
    dc = driver.connect("closing")
    tcp_system.close()
    with pytest.raises(errors.CommunicationError):
        dc.execute("SELECT 1")


def test_connect_refused_is_communication_error():
    # bind-then-close guarantees an unused port
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    driver = repro.NativeDriver(TcpTransport("127.0.0.1", port))
    with pytest.raises(errors.CommunicationError):
        driver.ping()
