"""Unit tests for the SQL lexer."""

from __future__ import annotations

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import Token, TokenType, tokenize


def kinds(sql: str) -> list[tuple[TokenType, str]]:
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]  # drop EOF


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_keywords_are_case_insensitive_and_uppercased():
    assert kinds("select SeLeCt SELECT") == [(TokenType.KEYWORD, "SELECT")] * 3


def test_identifiers_keep_their_spelling():
    assert kinds("FooBar") == [(TokenType.IDENT, "FooBar")]


def test_integer_and_float_literals():
    assert kinds("42 3.14 .5 1e3 2.5E-2") == [
        (TokenType.NUMBER, "42"),
        (TokenType.NUMBER, "3.14"),
        (TokenType.NUMBER, ".5"),
        (TokenType.NUMBER, "1e3"),
        (TokenType.NUMBER, "2.5E-2"),
    ]


def test_number_followed_by_dot_does_not_eat_ident():
    # "1.x" lexes as number 1. then ident x — parser rejects; lexer is greedy
    tokens = kinds("1.5x")
    assert tokens[0] == (TokenType.NUMBER, "1.5")
    assert tokens[1] == (TokenType.IDENT, "x")


def test_string_literal_basic():
    assert kinds("'hello'") == [(TokenType.STRING, "hello")]


def test_string_literal_doubled_quote_escape():
    assert kinds("'it''s'") == [(TokenType.STRING, "it's")]


def test_string_literal_empty():
    assert kinds("''") == [(TokenType.STRING, "")]


def test_string_literal_with_newline():
    assert kinds("'a\nb'") == [(TokenType.STRING, "a\nb")]


def test_unterminated_string_raises_with_position():
    with pytest.raises(SQLSyntaxError) as excinfo:
        tokenize("SELECT 'oops")
    assert excinfo.value.position == 7


def test_line_comment_is_skipped():
    assert kinds("SELECT -- comment here\n 1") == [
        (TokenType.KEYWORD, "SELECT"),
        (TokenType.NUMBER, "1"),
    ]


def test_block_comment_is_skipped():
    assert kinds("SELECT /* multi\nline */ 1") == [
        (TokenType.KEYWORD, "SELECT"),
        (TokenType.NUMBER, "1"),
    ]


def test_unterminated_block_comment_raises():
    with pytest.raises(SQLSyntaxError):
        tokenize("SELECT /* never closed")


def test_temp_table_name_lexes_as_single_ident():
    assert kinds("#work") == [(TokenType.IDENT, "#work")]


def test_bare_hash_raises():
    with pytest.raises(SQLSyntaxError):
        tokenize("SELECT # FROM t")


def test_named_parameter():
    assert kinds("@limit") == [(TokenType.PARAM, "limit")]


def test_bare_at_raises():
    with pytest.raises(SQLSyntaxError):
        tokenize("SELECT @ FROM t")


def test_positional_placeholder():
    assert kinds("?") == [(TokenType.PLACEHOLDER, "?")]


def test_quoted_identifier_double_quotes():
    assert kinds('"count"') == [(TokenType.IDENT, "count")]


def test_quoted_identifier_brackets():
    assert kinds("[order]") == [(TokenType.IDENT, "order")]


def test_unterminated_quoted_identifier_raises():
    with pytest.raises(SQLSyntaxError):
        tokenize('"never closed')


@pytest.mark.parametrize("op", ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||"])
def test_operators(op):
    assert kinds(f"a {op} b")[1] == (TokenType.OPERATOR, op)


def test_two_char_operators_win_over_one_char():
    assert kinds("a<=b")[1] == (TokenType.OPERATOR, "<=")


@pytest.mark.parametrize("punct", list("(),.;"))
def test_punctuation(punct):
    assert (TokenType.PUNCT, punct) in kinds(f"a {punct} b")


def test_unknown_character_raises_with_line():
    with pytest.raises(SQLSyntaxError) as excinfo:
        tokenize("SELECT 1\nFROM t WHERE x ~ 2")
    assert excinfo.value.line == 2


def test_line_numbers_tracked():
    tokens = tokenize("SELECT\n1")
    assert tokens[0].line == 1
    assert tokens[1].line == 2


def test_token_matches_helper():
    token = tokenize("SELECT")[0]
    assert token.matches(TokenType.KEYWORD, "SELECT")
    assert not token.matches(TokenType.KEYWORD, "FROM")
    assert token.matches(TokenType.KEYWORD)


def test_full_statement_token_stream():
    sql = "SELECT a.b, count(*) FROM t a WHERE x >= 1.5 AND y LIKE 'z%'"
    types = [t.type for t in tokenize(sql)[:-1]]
    assert TokenType.EOF not in types
    assert types[0] is TokenType.KEYWORD


def test_underscore_identifiers():
    assert kinds("_private my_col2") == [
        (TokenType.IDENT, "_private"),
        (TokenType.IDENT, "my_col2"),
    ]
