"""Tests for the session-trace workload and the availability harness."""

from __future__ import annotations

import pytest

import repro
from repro.net import FaultKind
from repro.workloads.sessions import (
    SessionOutcome,
    generate_traces,
    run_trace,
    setup_workload,
)


@pytest.fixture()
def prepared(system):
    loader = system.server.connect(user="loader")
    setup_workload(lambda sql: system.server.execute(loader, sql))
    system.server.disconnect(loader)
    return system


def test_traces_are_deterministic():
    assert generate_traces(5, seed=3) == generate_traces(5, seed=3)
    assert generate_traces(5, seed=3) != generate_traces(5, seed=4)


def test_trace_shape():
    trace = generate_traces(1)[0]
    kinds = [s.kind for s in trace.steps]
    assert kinds[0] == "query"
    assert "begin" in kinds and "commit" in kinds
    assert kinds.index("begin") < kinds.index("commit")


def test_audit_sequence_numbers_unique():
    traces = generate_traces(10)
    audit_sqls = [
        s.sql for t in traces for s in t.steps if "INSERT INTO audit" in s.sql
    ]
    assert len(set(audit_sqls)) == len(audit_sqls)


def test_trace_runs_clean_on_native(prepared):
    system = prepared
    connection = system.plain.connect(system.DSN)
    outcome = run_trace(connection, generate_traces(1)[0])
    connection.close()
    assert outcome.completed and outcome.error == ""


def test_trace_aborts_on_crash_native(prepared):
    system = prepared
    system.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE, after=2)
    connection = system.plain.connect(system.DSN)
    outcome = run_trace(connection, generate_traces(1)[0])
    assert not outcome.completed
    assert outcome.error in ("CommunicationError", "ServerCrashedError")
    assert outcome.steps_done < len(generate_traces(1)[0].steps)


def test_trace_completes_on_phoenix_despite_crash(prepared):
    system = prepared
    system.phoenix.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    system.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE, after=8)
    connection = system.phoenix.connect(system.DSN)
    outcome = run_trace(connection, generate_traces(1)[0])
    connection.close()
    assert outcome.completed, outcome


def test_money_conserved_across_phoenix_sessions(prepared):
    """The transfer transactions must conserve total balance even with
    crashes sprinkled through the run (exactly-once evidence)."""
    system = prepared
    system.phoenix.config.sleep = lambda _s: (
        system.endpoint.restart_server() if not system.server.up else None
    )
    loader = system.server.connect()
    before = system.server.execute(loader, "SELECT sum(balance) FROM accounts")
    system.server.disconnect(loader)
    system.faults.schedule(FaultKind.CRASH_BEFORE_EXECUTE, every=17)
    for trace in generate_traces(6, seed=11):
        if not system.server.up:
            system.endpoint.restart_server()
        connection = system.phoenix.connect(system.DSN)
        outcome = run_trace(connection, trace)
        assert outcome.completed
        if not system.server.up:
            system.endpoint.restart_server()
        connection.close()
    loader = system.server.connect()
    after = system.server.execute(loader, "SELECT sum(balance) FROM accounts")
    assert abs(before.result_set.rows[0][0] - after.result_set.rows[0][0]) < 1e-6


def test_periodic_fault_fires_every_n(system):
    from repro.net.protocol import PingRequest
    from repro.net.transport import ClientChannel

    fired = []
    system.faults.schedule(FaultKind.HANG, every=3)
    for i in range(7):
        channel = ClientChannel(system.endpoint)
        try:
            channel.send(PingRequest())
            fired.append(False)
        except repro.errors.TimeoutError:
            fired.append(True)
    assert fired == [False, False, True, False, False, True, False]
