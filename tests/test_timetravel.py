"""Time travel from the WAL: AS OF queries and restore_to.

Pins the point-in-time subsystem (docs/TIME_TRAVEL.md):

* AS OF resolves a literal timestamp to the last cut at or below it and
  returns exactly that state — including the edge cuts: before the first
  commit (empty database → ``CatalogError``), between a batch's
  sub-statements (all-or-none: a group force stamps one shared instant),
  and at a moment inside an aborted transaction's window (losers are
  invisible).
* History survives everything that truncates the live log — quiescent
  checkpoints (the archive), a torn-tail crash, a ``restore_to`` below
  the live base — old cuts must keep answering exactly afterward.
* The SQL surface rejects what cannot mean anything: placeholders,
  subquery/view placement, ``SELECT INTO``.
* ``restore_to`` erases post-cut commits, rides clients through, and a
  process death inside either restore window degrades to ordinary crash
  recovery (chaos sweep).
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    CatalogError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    TimeTravelError,
)


def _rows(system, sql: str):
    session = system.server.connect(user="checker")
    try:
        result = system.server.execute(session, sql)
        return sorted(result.result_set.rows)
    finally:
        system.server.disconnect(session)


def _run(system, *statements: str) -> None:
    session = system.server.connect(user="writer")
    try:
        for statement in statements:
            system.server.execute(session, statement)
    finally:
        system.server.disconnect(session)


def _now(system) -> float:
    return system.server.time_travel.clock.now()


# ----------------------------------------------------------------- basic AS OF


def test_as_of_returns_exact_historical_rows(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    pins = []
    for i in range(6):
        _run(system, f"INSERT INTO t VALUES ({i}, {i * 10})")
        pins.append((_now(system), _rows(system, "SELECT * FROM t")))
    _run(system, "UPDATE t SET v = -1 WHERE k = 2", "DELETE FROM t WHERE k = 4")
    for ts, expected in pins:
        assert _rows(system, f"SELECT * FROM t AS OF {ts!r}") == expected


def test_as_of_before_first_commit_is_the_empty_database(system):
    ts = _now(system)
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY)", "INSERT INTO t VALUES (1)")
    with pytest.raises(CatalogError):
        _rows(system, f"SELECT * FROM t AS OF {ts!r}")


def test_as_of_sees_dropped_table(system):
    _run(
        system,
        "CREATE TABLE oops (k INT PRIMARY KEY, v INT)",
        "INSERT INTO oops VALUES (1, 100)",
    )
    ts = _now(system)
    _run(system, "DROP TABLE oops")
    with pytest.raises(CatalogError):
        _rows(system, "SELECT * FROM oops")
    assert _rows(system, f"SELECT * FROM oops AS OF {ts!r}") == [(1, 100)]


def test_aborted_transaction_invisible_at_every_cut(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    _run(system, "INSERT INTO t VALUES (1, 1)")
    session = system.server.connect(user="loser")
    system.server.execute(session, "BEGIN TRANSACTION")
    system.server.execute(session, "INSERT INTO t VALUES (2, 2)")
    mid_txn = _now(system)  # pinned while the txn is open
    system.server.execute(session, "ROLLBACK")
    system.server.disconnect(session)
    _run(system, "INSERT INTO t VALUES (3, 3)")
    assert _rows(system, f"SELECT * FROM t AS OF {mid_txn!r}") == [(1, 1)]
    assert _rows(system, f"SELECT * FROM t AS OF {_now(system)!r}") == [(1, 1), (3, 3)]


def test_temp_tables_invisible_to_as_of(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY)", "INSERT INTO t VALUES (1)")
    session = system.server.connect(user="temper")
    system.server.execute(session, "CREATE TABLE #scratch (k INT PRIMARY KEY)")
    system.server.execute(session, "INSERT INTO #scratch VALUES (9)")
    ts = _now(system)
    with pytest.raises(CatalogError):
        system.server.execute(session, f"SELECT * FROM #scratch AS OF {ts!r}")
    system.server.disconnect(session)


# --------------------------------------------------- batch cuts are all-or-none


def test_no_cut_splits_a_group_forced_batch(phoenix_conn, system):
    """Every sub-statement commit covered by one group force shares one
    commit timestamp, so any AS OF sees the batch whole or not at all."""
    cursor = phoenix_conn.cursor()
    cursor.execute("CREATE TABLE b (k INT PRIMARY KEY, v INT)")
    before = _now(system)
    cursor.executemany("INSERT INTO b VALUES (?, ?)", [[i, i] for i in range(8)])
    after = _now(system)
    assert _rows(system, f"SELECT * FROM b AS OF {before!r}") == []
    assert len(_rows(system, f"SELECT * FROM b AS OF {after!r}")) == 8
    # walk every commit timestamp the log index knows in the window: the
    # batch's rows must appear 0-then-8, never a strict subset
    index = system.server.time_travel.log_index
    sizes = set()
    for ts, _lsn in index.cuts():
        if before <= ts <= after:
            sizes.add(len(_rows(system, f"SELECT * FROM b AS OF {ts!r}")))
    assert sizes <= {0, 8}
    assert 8 in sizes


# ------------------------------------------------- history survives truncation


def test_cuts_survive_checkpoint_truncation(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    pins = []
    for i in range(4):
        _run(system, f"INSERT INTO t VALUES ({i}, {i})")
        pins.append((_now(system), _rows(system, "SELECT * FROM t")))
    system.server.database.checkpoint()  # archives + truncates the live log
    _run(system, "INSERT INTO t VALUES (99, 99)")
    system.server.database.checkpoint()
    for ts, expected in pins:
        assert _rows(system, f"SELECT * FROM t AS OF {ts!r}") == expected


def test_reconstruct_after_torn_wal_tail(system):
    """A torn append + crash truncates the tail; surviving cuts must still
    reconstruct exactly after restart rebuilds the log index."""
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    pins = []
    for i in range(3):
        _run(system, f"INSERT INTO t VALUES ({i}, {i})")
        pins.append((_now(system), _rows(system, "SELECT * FROM t")))
    system.server.storage.inject_append_fault("torn")
    session = system.server.connect(user="victim")
    with pytest.raises(BaseException):  # StorageFault is deliberately out-of-band
        system.server.execute(session, "INSERT INTO t VALUES (50, 50)")
    system.server.crash()
    system.server.restart()
    for ts, expected in pins:
        assert _rows(system, f"SELECT * FROM t AS OF {ts!r}") == expected
    # the clock re-seeded past every stamped commit: new cuts sort after old
    _run(system, "INSERT INTO t VALUES (60, 60)")
    assert len(_rows(system, f"SELECT * FROM t AS OF {_now(system)!r}")) == 4


# ------------------------------------------------------------- SQL surface


def test_as_of_rejects_placeholder(system):
    session = system.server.connect()
    with pytest.raises(ProgrammingError):
        system.server.execute(
            session, "SELECT * FROM t AS OF ?", placeholders=[1.0]
        )


def test_as_of_rejected_in_subquery(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY)")
    session = system.server.connect()
    with pytest.raises(ProgrammingError):
        system.server.execute(
            session, "SELECT * FROM (SELECT * FROM t AS OF 1.0) sub"
        )


def test_as_of_rejected_in_view_definition(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY)")
    session = system.server.connect()
    with pytest.raises(ProgrammingError):
        system.server.execute(session, "CREATE VIEW v AS SELECT * FROM t AS OF 1.0")


def test_select_into_cannot_run_as_of(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY)", "INSERT INTO t VALUES (1)")
    session = system.server.connect()
    with pytest.raises(NotSupportedError):
        system.server.execute(session, f"SELECT * INTO t2 FROM t AS OF {_now(system)!r}")


def test_insert_source_select_may_run_as_of(system):
    _run(
        system,
        "CREATE TABLE t (k INT PRIMARY KEY, v INT)",
        "INSERT INTO t VALUES (1, 10)",
    )
    ts = _now(system)
    _run(
        system,
        "UPDATE t SET v = -1 WHERE k = 1",
        "CREATE TABLE rescue (k INT PRIMARY KEY, v INT)",
        f"INSERT INTO rescue SELECT * FROM t AS OF {ts!r}",
    )
    assert _rows(system, "SELECT * FROM rescue") == [(1, 10)]


def test_phoenix_as_of_query_materializes(phoenix_conn, system):
    cursor = phoenix_conn.cursor()
    cursor.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    cursor.execute("INSERT INTO t VALUES (1, 10)")
    ts = _now(system)
    cursor.execute("UPDATE t SET v = -1 WHERE k = 1")
    cursor.execute(f"SELECT * FROM t AS OF {ts!r}")
    assert cursor.fetchall() == [(1, 10)]


# ---------------------------------------------------------------- restore_to


def test_restore_to_erases_post_cut_commits(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    _run(system, "INSERT INTO t VALUES (1, 1)")
    ts = _now(system)
    _run(system, "INSERT INTO t VALUES (2, 2)", "UPDATE t SET v = 9 WHERE k = 1")
    report = system.server.restore_to(ts)
    assert report.commits_discarded == 2
    assert _rows(system, "SELECT * FROM t") == [(1, 1)]
    # pre-cut history still answers, and new writes grow new cuts
    assert _rows(system, f"SELECT * FROM t AS OF {ts!r}") == [(1, 1)]
    _run(system, "INSERT INTO t VALUES (3, 3)")
    assert _rows(system, f"SELECT * FROM t AS OF {_now(system)!r}") == [(1, 1), (3, 3)]


def test_restore_inside_aborted_txn_window(system):
    """A cut pinned while a doomed transaction was open restores to
    committed state only — the loser's writes never resurrect."""
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    _run(system, "INSERT INTO t VALUES (1, 1)")
    session = system.server.connect(user="loser")
    system.server.execute(session, "BEGIN TRANSACTION")
    system.server.execute(session, "INSERT INTO t VALUES (2, 2)")
    ts = _now(system)
    system.server.execute(session, "ROLLBACK")
    system.server.disconnect(session)
    _run(system, "INSERT INTO t VALUES (3, 3)")
    report = system.server.restore_to(ts)
    assert _rows(system, "SELECT * FROM t") == [(1, 1)]
    assert report.commits_discarded >= 1  # the post-cut INSERT of (3, 3)


def test_restore_below_live_base_after_checkpoint(system):
    """Case B: the cut predates the live log (it lives in the archive);
    restore trims archive segments and the server keeps working —
    including later checkpoints opening a fresh segment past the gap."""
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    _run(system, "INSERT INTO t VALUES (1, 1)")
    ts = _now(system)
    _run(system, "INSERT INTO t VALUES (2, 2)")
    system.server.database.checkpoint()  # cut's commit now sits in the archive
    _run(system, "INSERT INTO t VALUES (3, 3)")
    system.server.restore_to(ts)
    assert _rows(system, "SELECT * FROM t") == [(1, 1)]
    _run(system, "INSERT INTO t VALUES (4, 4)")
    system.server.database.checkpoint()
    _run(system, "INSERT INTO t VALUES (5, 5)")
    assert _rows(system, f"SELECT * FROM t AS OF {ts!r}") == [(1, 1)]
    assert _rows(system, "SELECT * FROM t") == [(1, 1), (4, 4), (5, 5)]


def test_restore_to_unreachable_cut_leaves_storage_untouched(system):
    """restore_to reconstructs *before* discarding anything: if the cut is
    unreachable (its history is gone), it raises and the live database is
    untouched."""
    from repro.engine.database import _META_TT_ARCHIVE

    _run(system, "CREATE TABLE t (k INT PRIMARY KEY)", "INSERT INTO t VALUES (1)")
    early = _now(system)
    system.server.checkpoint()  # archives + truncates the log prefix
    _run(system, "INSERT INTO t VALUES (2)")
    # simulate lost history: throw away the archived prefix out from under
    # the manager, so the early cut predates every replayable byte
    system.server.storage.write_meta(_META_TT_ARCHIVE, [])
    system.server.time_travel._snapshots.clear()
    with pytest.raises(TimeTravelError):
        system.server.restore_to(early)
    assert _rows(system, "SELECT * FROM t") == [(1,), (2,)]


def test_restore_to_now_discards_nothing(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY)", "INSERT INTO t VALUES (1)")
    report = system.server.restore_to(None)
    assert report.commits_discarded == 0
    assert _rows(system, "SELECT * FROM t") == [(1,)]


def test_restore_stats_surface_in_registry(system):
    _run(system, "CREATE TABLE t (k INT PRIMARY KEY)", "INSERT INTO t VALUES (1)")
    system.server.restore_to(None)
    _rows(system, f"SELECT * FROM t AS OF {_now(system)!r}")
    snapshot = system.registry.snapshot()["timetravel"]
    assert snapshot["restores_started"] == 1
    assert snapshot["restores_completed"] == 1
    assert snapshot["as_of_queries"] >= 1
    assert snapshot["reconstructions"] >= 1


def test_phoenix_rides_through_restore_to_now(phoenix_conn, system):
    cursor = phoenix_conn.cursor()
    cursor.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    cursor.execute("INSERT INTO t VALUES (1, 1)")
    system.endpoint.restore_to(None)
    cursor.execute("UPDATE t SET v = 2 WHERE k = 1")  # session recovered
    cursor.execute("SELECT v FROM t WHERE k = 1")
    assert cursor.fetchall() == [(2,)]


# ------------------------------------------------------------------- chaos


def test_crash_mid_restore_sweep_recovers_exactly_once():
    from repro.chaos import ChaosExplorer

    report = ChaosExplorer(seed=0).sweep_restore_faults(stride=5)
    assert report.runs > 0
    assert report.recovered_fraction == 1.0, report.summary()


def test_chaos_golden_run_pins_and_verifies_cuts():
    from repro.chaos.trace import probe_dml_trace, run_trace

    record = run_trace(probe_dml_trace())
    assert record.completed
    assert len(record.time_travel_cuts) > 0
    assert record.time_travel_violations == ()
