"""Chaos engine: trace runner, exactly-once oracle, schedule exploration.

The exhaustive sweep itself runs in CI (``python -m repro.chaos``); here we
pin the machinery — golden determinism, oracle sensitivity (it must *fail*
on tampered records), targeted fault placements, and reproducibility of the
seeded multi-fault mode.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos import ChaosExplorer, check_run, probe_dml_trace, run_trace
from repro.net.faults import STORAGE_FAULTS, WIRE_FAULTS, FaultKind


@pytest.fixture(scope="module")
def explorer() -> ChaosExplorer:
    ex = ChaosExplorer(seed=11)
    ex.golden  # noqa: B018 — prime the cache once per module
    return ex


# ------------------------------------------------------------------ golden run

def test_golden_run_is_clean_and_deterministic(explorer):
    golden = explorer.golden
    assert golden.completed and not golden.error
    assert golden.orphan_sessions == 0 and golden.orphan_cursors == 0
    assert golden.leftover_tables == ()
    assert golden.requests_seen > 20
    again = run_trace(probe_dml_trace())
    assert again.observations == golden.observations
    assert again.status_rows == golden.status_rows
    assert again.fingerprints == golden.fingerprints
    assert again.requests_seen == golden.requests_seen


def test_golden_run_against_itself_passes_oracle(explorer):
    assert check_run(explorer.golden, explorer.golden) == []


# ------------------------------------------------------------------ the oracle

def test_oracle_catches_lost_observation(explorer):
    tampered = dataclasses.replace(
        explorer.golden, observations=explorer.golden.observations[:-1]
    )
    violations = check_run(explorer.golden, tampered)
    assert any("truncated" in v for v in violations)


def test_oracle_catches_duplicated_status_row(explorer):
    rows = set(explorer.golden.status_rows)
    seq = max(s for s, _ in rows)
    rows.add((seq + 1, 99))
    tampered = dataclasses.replace(explorer.golden, status_rows=frozenset(rows))
    violations = check_run(explorer.golden, tampered)
    assert any("duplicated" in v for v in violations)


def test_oracle_catches_lost_status_row(explorer):
    rows = sorted(explorer.golden.status_rows)[:-1]
    tampered = dataclasses.replace(explorer.golden, status_rows=frozenset(rows))
    violations = check_run(explorer.golden, tampered)
    assert any("lost" in v for v in violations)


def test_oracle_catches_fingerprint_divergence(explorer):
    prints = dict(explorer.golden.fingerprints)
    prints["accounts"] = prints["accounts"][:-1]
    tampered = dataclasses.replace(explorer.golden, fingerprints=prints)
    violations = check_run(explorer.golden, tampered)
    assert any("diverged from golden fingerprint" in v for v in violations)


def test_oracle_catches_orphaned_sessions(explorer):
    tampered = dataclasses.replace(explorer.golden, orphan_sessions=2)
    violations = check_run(explorer.golden, tampered)
    assert any("orphaned" in v for v in violations)


# ----------------------------------------------------------- targeted schedules

@pytest.mark.parametrize("kind", WIRE_FAULTS, ids=lambda k: k.value)
def test_each_wire_fault_mid_trace_passes_oracle(explorer, kind):
    # index 20 lands mid-DML, well past connect and before the transaction
    result = explorer.run_schedule(((20, kind),))
    assert result.violations == []
    assert result.fired == (kind.value,)


@pytest.mark.parametrize("kind", STORAGE_FAULTS, ids=lambda k: k.value)
def test_each_storage_fault_mid_trace_passes_oracle(explorer, kind):
    result = explorer.run_schedule(((20, kind),))
    assert result.violations == []
    assert result.fired == (kind.value,)
    assert result.recoveries >= 1  # a storage fault always downs the server


def test_fault_during_connect_sequence_leaves_no_orphans(explorer):
    # requests 0-3 are connect+connect+fixtures: historically these leaked
    # a server session per retry (the chaos sweep's first real find)
    for index in range(4):
        result = explorer.run_schedule(((index, FaultKind.HANG),))
        assert result.violations == [], (index, result.violations)


def test_wrapped_ddl_rowcount_survives_replay(explorer):
    # CRASH_AFTER_EXECUTE on the wrapped CREATE executes it, kills the
    # reply, and forces reconstruction from the status table — the
    # reconstructed rowcount must equal the live one (sweep find #2)
    result = explorer.run_schedule(((5, FaultKind.CRASH_AFTER_EXECUTE),))
    assert result.violations == []


def test_crash_between_transaction_phases(explorer):
    golden = explorer.golden
    # fire at every request of the explicit-transaction window (begin ..
    # commit); exactly-once for the commit is the paper's §3 acid test
    begin_i = next(
        i for i, o in enumerate(golden.observations) if o[0] == "begin"
    )
    assert begin_i > 0
    for index in range(25, 40):
        result = explorer.run_schedule(((index, FaultKind.CRASH_AFTER_EXECUTE),))
        assert result.violations == [], (index, result.violations)


def test_strided_single_fault_sweep(explorer):
    report = explorer.sweep_single_faults(stride=9)
    assert report.runs == 4 * len(range(0, explorer.golden.requests_seen, 9))
    assert report.recovered_fraction == 1.0, report.summary()


def test_strided_storage_sweep(explorer):
    report = explorer.sweep_storage_faults(stride=9)
    assert report.recovered_fraction == 1.0, report.summary()
    assert report.total_recoveries > 0


# -------------------------------------------------------- seeded multi-fault

def test_random_schedules_reproducible_from_seed():
    a = ChaosExplorer(seed=1234)
    b = ChaosExplorer(seed=1234)
    c = ChaosExplorer(seed=4321)
    assert a.random_schedules(6) == b.random_schedules(6)
    assert a.random_schedules(6) != c.random_schedules(6)


def test_random_schedule_shape(explorer):
    schedules = explorer.random_schedules(10, min_faults=2, max_faults=4)
    assert len(schedules) == 10
    for schedule in schedules:
        assert 2 <= len(schedule) <= 4
        assert [i for i, _ in schedule] == sorted(i for i, _ in schedule)


def test_multi_fault_runs_pass_oracle(explorer):
    report = explorer.sweep_random(5)
    assert report.recovered_fraction == 1.0, report.summary()


def test_run_schedule_records_recovery_phase_split(explorer):
    result = explorer.run_schedule(((10, FaultKind.CRASH_BEFORE_EXECUTE),))
    assert result.recoveries >= 1
    assert result.virtual_session_seconds > 0.0
    assert result.sql_state_seconds > 0.0


# ------------------------------------------------------------- session reaping

def test_reap_sessions_disconnects_only_stale(system):
    server = system.server
    old = server.connect("stale")
    cutoff_epoch = server.activity_epoch
    young = server.connect("fresh")
    reaped = server.reap_sessions(older_than_epoch=cutoff_epoch + 1)
    assert reaped == [old]
    assert old not in server.sessions and young in server.sessions


def test_session_activity_epoch_advances_on_use(system):
    server = system.server
    sid = server.connect("worker")
    first = server.sessions[sid].last_epoch
    server.execute(sid, "SELECT 1")
    assert server.sessions[sid].last_epoch > first


def test_drop_mid_txn_leaves_no_lock_holding_orphan(explorer):
    # DROP_CONNECTION while a transaction holds locks: the old session must
    # be reaped during recovery or it would block the replay forever
    result = explorer.run_schedule(((30, FaultKind.DROP_CONNECTION),))
    assert result.violations == []


def test_clean_close_reaps_unacked_disconnects(system):
    connection = system.phoenix.connect(system.DSN)
    system.faults.schedule(FaultKind.DROP_CONNECTION)  # eats one disconnect
    connection.close()
    assert len(system.server.sessions) == 0
    assert connection.stats.sessions_reaped >= 1
