"""Phoenix/ODBC in the absence of failures: full transparency.

Paper §3: "the application program does not detect a difference between
Phoenix/ODBC and a database vendor supplied ODBC driver in the absence of a
database system crash" — so every test here runs the same statements through
both managers and demands identical observable behaviour.
"""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, ProgrammingError
from repro.odbc.constants import CursorType, StatementAttr

SETUP = [
    "CREATE TABLE customer (c_id INT PRIMARY KEY, c_name VARCHAR(20), c_bal FLOAT)",
    "INSERT INTO customer VALUES (1, 'Smith', 10.0), (2, 'Jones', 20.0), (3, 'Smith', 30.0)",
]


@pytest.fixture()
def both(system):
    plain = system.plain.connect(system.DSN)
    phoenix = system.phoenix.connect(system.DSN)
    cur = plain.cursor()
    for sql in SETUP:
        cur.execute(sql)
    yield plain, phoenix
    for connection in (plain, phoenix):
        if not connection.closed:
            connection.close()


def run_both(both, sql, fetch=True):
    plain, phoenix = both
    a = plain.cursor().execute(sql)
    b = phoenix.cursor().execute(sql)
    if fetch:
        return a.fetchall(), b.fetchall()
    return a, b


@pytest.mark.parametrize("sql", [
    "SELECT * FROM customer ORDER BY c_id",
    "SELECT c_name, count(*) FROM customer GROUP BY c_name ORDER BY c_name",
    "SELECT c_name, sum(c_bal) AS total FROM customer GROUP BY c_name HAVING sum(c_bal) > 15 ORDER BY total",
    "SELECT DISTINCT c_name FROM customer ORDER BY c_name",
    "SELECT * FROM customer WHERE c_bal BETWEEN 15 AND 35 ORDER BY c_id",
    "SELECT a.c_id, b.c_id FROM customer a, customer b WHERE a.c_name = b.c_name AND a.c_id < b.c_id",
    "SELECT c_id FROM customer WHERE c_bal > (SELECT avg(c_bal) FROM customer) ORDER BY c_id",
    "SELECT upper(c_name), c_bal * 2 FROM customer ORDER BY c_id",
])
def test_query_results_identical(both, sql):
    native_rows, phoenix_rows = run_both(both, sql)
    assert native_rows == phoenix_rows


def test_description_identical(both):
    plain, phoenix = both
    sql = "SELECT c_id, c_name AS who, c_bal + 1 AS bal1 FROM customer"
    a = plain.cursor().execute(sql)
    b = phoenix.cursor().execute(sql)
    assert [d[0] for d in a.description] == [d[0] for d in b.description]


def test_dml_rowcounts_identical(system, both):
    plain, phoenix = both
    a = plain.cursor()
    b = phoenix.cursor()
    a.execute("UPDATE customer SET c_bal = c_bal + 1 WHERE c_name = 'Smith'")
    count_plain = a.rowcount
    b.execute("UPDATE customer SET c_bal = c_bal - 1 WHERE c_name = 'Smith'")
    assert count_plain == b.rowcount == 2


def test_duplicate_key_error_surfaces_identically(both):
    plain, phoenix = both
    from repro.errors import IntegrityError

    for connection in (plain, phoenix):
        with pytest.raises(IntegrityError):
            connection.cursor().execute("INSERT INTO customer VALUES (1, 'dup', 0.0)")


def test_sql_error_surfaces(both):
    _plain, phoenix = both
    with pytest.raises(CatalogError):
        phoenix.cursor().execute("SELECT * FROM nonexistent")


def test_transactions_behave_identically(both):
    plain, phoenix = both
    for connection in (plain, phoenix):
        cur = connection.cursor()
        connection.begin()
        cur.execute("INSERT INTO customer VALUES (100, 'tx', 0.0)")
        connection.rollback()
        cur.execute("SELECT count(*) FROM customer WHERE c_id = 100")
        assert cur.fetchone() == (0,)
        connection.begin()
        cur.execute("INSERT INTO customer VALUES (100, 'tx', 0.0)")
        connection.commit()
        cur.execute("SELECT count(*) FROM customer WHERE c_id = 100")
        assert cur.fetchone() == (1,)
        cur.execute("DELETE FROM customer WHERE c_id = 100")


def test_queries_inside_transaction_pass_through(system, both):
    _plain, phoenix = both
    materialized_before = phoenix.stats.queries_materialized
    phoenix.begin()
    cur = phoenix.cursor()
    cur.execute("SELECT * FROM customer")
    assert len(cur.fetchall()) == 3
    phoenix.commit()
    assert phoenix.stats.queries_materialized == materialized_before


def test_temp_table_usage_is_transparent(both):
    plain, phoenix = both
    for connection in (plain, phoenix):
        cur = connection.cursor()
        cur.execute("CREATE TABLE #scratch (x INT)")
        cur.execute("INSERT INTO #scratch VALUES (1), (2)")
        cur.execute("SELECT sum(x) FROM #scratch")
        assert cur.fetchone() == (3,)
        cur.execute("DROP TABLE #scratch")
        with pytest.raises((CatalogError, ProgrammingError)):
            cur.execute("SELECT * FROM #scratch")


def test_phoenix_temp_table_redirected_to_persistent(system, both):
    _plain, phoenix = both
    cur = phoenix.cursor()
    cur.execute("CREATE TABLE #scratch (x INT)")
    redirected = phoenix.temp_table_map["#scratch"]
    assert not redirected.startswith("#")
    assert redirected in system.server.table_names()
    cur.execute("DROP TABLE #scratch")
    assert redirected not in system.server.table_names()


def test_temp_procedure_redirected(system, both):
    _plain, phoenix = both
    cur = phoenix.cursor()
    cur.execute("CREATE TABLE #w (x INT)")
    cur.execute("CREATE PROCEDURE #fill AS INSERT INTO #w VALUES (42)")
    cur.execute("EXEC #fill")
    cur.execute("SELECT x FROM #w")
    assert cur.fetchone() == (42,)
    cur.execute("DROP PROCEDURE #fill")
    with pytest.raises(CatalogError):
        cur.execute("EXEC #fill")


def test_set_option_recorded_and_forwarded(system, both):
    _plain, phoenix = both
    phoenix.set_option("app_mode", "strict")
    assert ("app_mode", "strict") in phoenix.set_log
    app_session = system.server.sessions[phoenix.app.session_id]
    assert app_session.options["app_mode"] == "strict"


def test_set_statement_through_cursor_recorded(both):
    _plain, phoenix = both
    phoenix.cursor().execute("SET verbosity 2")
    assert ("verbosity", 2) in phoenix.set_log


def test_close_cleans_up_phoenix_objects(system):
    phoenix = system.phoenix.connect(system.DSN)
    cur = phoenix.cursor()
    cur.execute("CREATE TABLE base (k INT PRIMARY KEY)")
    cur.execute("INSERT INTO base VALUES (1)")
    cur.execute("SELECT * FROM base")  # materializes a result table
    cur.execute("CREATE TABLE #w (x INT)")  # redirected temp
    assert any(name.startswith("phx_") for name in system.server.table_names())
    phoenix.close()
    assert not any(name.startswith("phx_") for name in system.server.table_names())
    assert phoenix.app.closed and phoenix.private.closed


def test_phoenix_uses_two_server_sessions(system):
    phoenix = system.phoenix.connect(system.DSN)
    assert len(system.server.sessions) == 2  # app + private
    phoenix.close()
    assert len(system.server.sessions) == 0


def test_proxy_temp_table_exists_on_app_session_only(system):
    phoenix = system.phoenix.connect(system.DSN)
    app_session = system.server.sessions[phoenix.app.session_id]
    private_session = system.server.sessions[phoenix.private.session_id]
    assert "#phx_proxy" in app_session.temp_tables
    assert "#phx_proxy" not in private_session.temp_tables
    phoenix.close()


def test_cursor_close_releases_result_state(system, both):
    _plain, phoenix = both
    cur = phoenix.cursor()
    cur.execute("SELECT * FROM customer")
    state = cur._state
    assert state.open
    cur.close()
    assert not state.open


def test_multiple_cursors_independent(both):
    _plain, phoenix = both
    c1 = phoenix.cursor()
    c2 = phoenix.cursor()
    c1.execute("SELECT c_id FROM customer ORDER BY c_id")
    c2.execute("SELECT c_name FROM customer ORDER BY c_id")
    assert c1.fetchone() == (1,)
    assert c2.fetchone() == ("Smith",)
    assert c1.fetchone() == (2,)


def test_rows_read_counter(both):
    _plain, phoenix = both
    cur = phoenix.cursor()
    cur.execute("SELECT * FROM customer")
    cur.fetchmany(2)
    assert cur.rows_read == 2


def test_keyset_cursor_through_phoenix(both):
    plain, phoenix = both
    cur = phoenix.cursor()
    cur.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    cur.set_attr(StatementAttr.FETCH_BLOCK_SIZE, 2)
    cur.execute("SELECT c_id, c_name FROM customer")
    assert cur.effective_cursor_type == CursorType.KEYSET
    assert [r[0] for r in cur.fetchall()] == [1, 2, 3]
    assert phoenix.stats.cursors_materialized == 1


def test_keyset_downgrades_on_join(both):
    _plain, phoenix = both
    cur = phoenix.cursor()
    cur.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
    cur.execute("SELECT a.c_id FROM customer a JOIN customer b ON a.c_id = b.c_id")
    assert cur.effective_cursor_type == CursorType.FORWARD_ONLY
    assert len(cur.fetchall()) == 3


def test_persist_results_off_behaves_like_plain(system):
    from repro.core import PhoenixConfig

    phoenix = system.phoenix.connect(
        system.DSN, config=PhoenixConfig(persist_results=False)
    )
    cur = phoenix.cursor()
    cur.execute("CREATE TABLE t (k INT)")
    cur.execute("INSERT INTO t VALUES (1)")
    cur.execute("SELECT * FROM t")
    assert cur.fetchall() == [(1,)]
    assert phoenix.stats.queries_materialized == 0
    phoenix.close()
