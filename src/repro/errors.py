"""Exception hierarchy for the repro package.

The layout follows PEP 249 (the Python DB-API) because the client-facing
driver (:mod:`repro.odbc`) exposes a DB-API-flavoured surface, and because
Phoenix/ODBC's whole point is which of these errors the *application* never
has to see.  Everything derives from :class:`Error` so callers can catch one
base class.
"""

from __future__ import annotations

__all__ = [
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "SQLSyntaxError",
    "CatalogError",
    "TransactionError",
    "LockError",
    "DeadlockError",
    "CommunicationError",
    "TimeoutError",
    "ServerCrashedError",
    "ServerRestartingError",
    "SessionLostError",
    "RecoveryError",
    "TimeTravelError",
]


class Warning(Exception):  # noqa: A001 - DB-API mandated name
    """Important non-fatal condition (DB-API ``Warning``)."""


class Error(Exception):
    """Base class of every error raised by this package (DB-API ``Error``)."""


class InterfaceError(Error):
    """Error in the database *interface* rather than the database itself,
    e.g. using a closed connection handle."""


class DatabaseError(Error):
    """Base class for errors reported by the database engine."""


class DataError(DatabaseError):
    """Problem with the processed data (bad cast, value out of range)."""


class OperationalError(DatabaseError):
    """Error related to the database's operation, not the programmer:
    lost connections, server shutdown, resource limits."""


class IntegrityError(DatabaseError):
    """Constraint violation (duplicate primary key, NOT NULL violation)."""


class InternalError(DatabaseError):
    """The engine hit an inconsistent internal state; a bug if it happens."""


class ProgrammingError(DatabaseError):
    """Application-level misuse: bad SQL, unknown table, wrong arg count."""


class NotSupportedError(DatabaseError):
    """A valid-in-principle feature this engine does not implement."""


class SQLSyntaxError(ProgrammingError):
    """SQL text failed to lex or parse.

    Carries the offending position so tools can point at it.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class CatalogError(ProgrammingError):
    """Reference to a table/column/procedure that does not exist, or an
    attempt to create one that already does."""


class TransactionError(ProgrammingError):
    """Invalid transaction state transition (commit with no transaction,
    nested BEGIN, operating inside an aborted transaction).  A
    :class:`ProgrammingError` per DB-API: the application misused the
    transaction demarcation API."""


class LockError(OperationalError):
    """A lock could not be granted (deadlock or timeout)."""


class DeadlockError(LockError):
    """The waits-for graph closed a cycle and this transaction was chosen as
    the victim.  The victim's transaction has been *aborted* by the server
    (its locks are released so the survivors can proceed), which makes the
    statement safely retryable: Phoenix's interceptor replays it as a fresh
    transaction, exactly like a statement lost to a crash."""


class CommunicationError(OperationalError):
    """The wire between client and server failed: connection refused,
    connection dropped mid-request, reply never arrived.

    This is the error the native ODBC stack surfaces to applications on a
    server crash — and the one Phoenix/ODBC intercepts and hides.
    """


class TimeoutError(CommunicationError):  # noqa: A001 - intentional shadow
    """A request exceeded its timeout.  Phoenix treats this as a *potential*
    server failure to be confirmed by pinging (paper §3, crash recovery)."""


class ServerCrashedError(CommunicationError):
    """Raised inside the transport when the request's server has crashed and
    not yet been restarted."""


class ServerRestartingError(CommunicationError):
    """The server is executing a *planned* restart (drain/swap) rather than
    having crashed.  Statements bounced off the drain barrier had their
    transaction aborted server-side first (like a deadlock victim), so they
    are safely retryable; pings answered with this error carry the advertised
    restart state and expected remaining pause so the client can wait
    politely instead of backing off on crash-tuned intervals."""

    def __init__(self, message: str, *, state: str = "draining", eta_seconds: float = 0.0):
        super().__init__(message)
        self.state = state
        self.eta_seconds = eta_seconds


class SessionLostError(OperationalError):
    """The server is reachable again but the original session (and all its
    volatile state) is gone — the outcome of the temp-table proxy probe."""


class RecoveryError(Error):
    """Phoenix could not rebuild the session (e.g. materialized state missing
    after database recovery, or reconnect retries exhausted)."""


class TimeTravelError(OperationalError):
    """A point-in-time request (``AS OF`` / ``restore_to``) names a moment
    the log can no longer reconstruct — typically a timestamp older than
    the time-travel horizon established when a quiescent checkpoint
    truncated the log prefix (see docs/TIME_TRAVEL.md)."""
