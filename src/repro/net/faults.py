"""Deterministic fault injection on the client/server wire.

A :class:`FaultInjector` sits inside the server endpoint and fires scheduled
faults when a matching request arrives.  The three failure shapes the paper
cares about:

* ``CRASH_BEFORE_EXECUTE`` — the server dies while the request is in
  flight; nothing executed; the client sees a connection reset.  (The
  classic "ODBC function hangs or errors" case of §2.)
* ``CRASH_AFTER_EXECUTE`` — the server executes the request — including any
  commit — and *then* dies before replying.  The client cannot tell this
  from the previous case; distinguishing them is exactly why Phoenix logs
  DML outcomes in a status table ("testable state", §3).
* ``HANG`` — the server stays up but the reply never comes; the client's
  timeout fires.  Phoenix must then ping to decide crash vs. slow network.

Two further shapes live *below* the wire, at the storage device (the fault
classes instant-restore/recovery work injects into the log):

* ``TORN_WAL_TAIL`` — the next WAL append writes only a prefix of its
  payload and the server dies: restart recovery must stop its log scan at
  the first bad frame and truncate the garbage tail.
* ``FORCE_FAIL`` — the next WAL append fails outright (device error) and
  the server dies with nothing of the append on disk.

Both are armed on the storage backend when the scheduled request arrives
and fire at that request's first log append; a request that never appends
(a pure read) leaves the fault armed for the next appending request, and a
crash from any other cause disarms it (a dead server has no pending device
fault).

Faults are one-shot by default and matched by an optional predicate on the
request (e.g. "the third FETCH", "any SQL containing 'invoices'"), which
keeps failure tests exact and repeatable.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.net.protocol import BatchExecuteRequest, Request

__all__ = [
    "FaultKind",
    "ScheduledFault",
    "FaultInjector",
    "WIRE_FAULTS",
    "STORAGE_FAULTS",
    "BATCH_FAULTS",
    "DRAIN_FAULTS",
    "RESTORE_FAULTS",
]


class FaultKind(enum.Enum):
    CRASH_BEFORE_EXECUTE = "crash_before_execute"
    CRASH_AFTER_EXECUTE = "crash_after_execute"
    HANG = "hang"
    DROP_CONNECTION = "drop_connection"  # comm glitch: server stays up
    TORN_WAL_TAIL = "torn_wal_tail"  # storage: partial last append, then crash
    FORCE_FAIL = "force_fail"  # storage: append fails outright, then crash
    #: the server dies *between* a batch request's sub-statements: the
    #: scheduled fault's ``arg`` is how many sub-statements execute before
    #: the kill (default: half).  Their commits were deferred for the group
    #: force, so the crash loses all of them — the sharpest test of
    #: partial-batch replay.  On a non-batch request this degenerates to
    #: CRASH_BEFORE_EXECUTE.
    CRASH_MID_BATCH = "crash_mid_batch"
    #: a planned restart (drain + swap) begins at this request and the
    #: process is killed inside it: ``arg`` 0 dies in the drain window
    #: (nothing checkpointed), ``arg`` 1 during the swap (after the
    #: checkpoint, before the fresh engine boots).  Either way the planned
    #: restart must degrade into the ordinary crash-recovery path with
    #: exactly-once outcomes intact.
    CRASH_MID_DRAIN = "crash_mid_drain"
    #: a ``restore_to`` begins at this request and the process is killed
    #: inside it: ``arg`` 0 dies in the drain window (storage untouched),
    #: ``arg`` 1 after the storage rewrite (a restore *to now*, preserving
    #: all committed state) but before the fresh engine boots.  Either way
    #: the restore must degrade into ordinary crash recovery with
    #: exactly-once outcomes intact.
    CRASH_MID_RESTORE = "crash_mid_restore"


#: faults that fire on the wire itself (the chaos explorer's request sweep)
WIRE_FAULTS = (
    FaultKind.CRASH_BEFORE_EXECUTE,
    FaultKind.CRASH_AFTER_EXECUTE,
    FaultKind.HANG,
    FaultKind.DROP_CONNECTION,
)

#: faults that fire at the stable-storage device, below the wire
STORAGE_FAULTS = (FaultKind.TORN_WAL_TAIL, FaultKind.FORCE_FAIL)

#: faults that target positions *inside* a batched wire request
BATCH_FAULTS = (FaultKind.CRASH_MID_BATCH,)

#: faults that kill the server inside a *planned* restart (drain/swap)
DRAIN_FAULTS = (FaultKind.CRASH_MID_DRAIN,)

#: faults that kill the server inside a ``restore_to`` (drain/rewrite/boot)
RESTORE_FAULTS = (FaultKind.CRASH_MID_RESTORE,)


@dataclass
class ScheduledFault:
    """One armed fault.

    ``matcher`` filters requests (default: match anything).  ``after``
    counts **matching requests only**: a one-shot fault with ``after=N``
    lets the first N requests its matcher accepts through and fires on the
    N+1-th match — requests the matcher rejects never advance the
    countdown.  (With the default match-anything matcher this is simply
    "fire on the N+1-th request the injector inspects".)  ``repeat`` keeps
    the fault armed after it fires (default one-shot — the injector removes
    the fault the first time it fires).  ``every`` makes a repeating fault
    *periodic*: it fires on each Nth matching request — the chaos schedule
    availability experiments use.  :attr:`fires_remaining` and
    :attr:`matches_until_fire` expose the pending state so a schedule
    explorer can introspect what is still armed.
    """

    kind: FaultKind
    matcher: Callable[[Request], bool] | None = None
    after: int = 0
    repeat: bool = False
    every: int | None = None
    #: kind-specific argument — for CRASH_MID_BATCH, the number of
    #: sub-statements executed before the kill (None = half the batch)
    arg: int | None = None
    #: target one virtual session: only requests carrying this
    #: ``session_id`` match (composes with ``matcher``/``after``).  Under
    #: concurrent serving this is how a schedule kills the server while
    #: *client k* is mid-transaction, regardless of how the other clients'
    #: requests interleave around it.
    session_id: int | None = None
    _seen: int = field(default=0, repr=False)
    _fired: int = field(default=0, repr=False)

    def check(self, request: Request) -> bool:
        """True if this fault fires for ``request`` (consumes one-shot)."""
        if self.session_id is not None and getattr(request, "session_id", None) != self.session_id:
            return False
        if self.matcher is not None and not self.matcher(request):
            return False
        self._seen += 1
        if self.every is not None:
            fires = self._seen % self.every == 0
        else:
            fires = self._seen > self.after and (self.repeat or self._fired == 0)
        if fires:
            self._fired += 1
        return fires

    @property
    def fires_remaining(self) -> int | None:
        """How many more times this fault can fire: ``None`` for repeating
        faults (unbounded), else 1 until the one-shot fires, then 0."""
        if self.repeat:
            return None
        return 0 if self._fired else 1

    @property
    def matches_until_fire(self) -> int | None:
        """Matching requests left before the next firing (1 = the next
        match fires).  ``None`` once a one-shot has already fired."""
        if self.every is not None:
            return self.every - (self._seen % self.every)
        if self.fires_remaining == 0:
            return None
        return max(self.after - self._seen, 0) + 1


class FaultInjector:
    """Holds the schedule and decides, per request, what fate it meets."""

    def __init__(self):
        self._faults: list[ScheduledFault] = []
        #: serializes fault decisions under threaded dispatch — the check /
        #: countdown / remove sequence must be atomic per request
        self._lock = threading.Lock()
        self.fired: list[FaultKind] = []
        #: total requests inspected — the chaos explorer's golden run reads
        #: this to learn how many crash points the trace has.
        self.requests_seen = 0
        #: (request_index, sub-statement count) of every BatchExecuteRequest
        #: inspected — the chaos explorer's golden run reads this to learn
        #: which crash points have *interior* positions to sweep.
        self.batch_requests: list[tuple[int, int]] = []
        #: ``arg`` of the most recently fired fault (endpoint reads this to
        #: position a CRASH_MID_BATCH kill)
        self.last_fault_arg: int | None = None

    def schedule(
        self,
        kind: FaultKind,
        *,
        matcher: Callable[[Request], bool] | None = None,
        after: int = 0,
        repeat: bool = False,
        every: int | None = None,
        arg: int | None = None,
        session_id: int | None = None,
    ) -> ScheduledFault:
        if every is not None:
            repeat = True
        fault = ScheduledFault(
            kind=kind,
            matcher=matcher,
            after=after,
            repeat=repeat,
            every=every,
            arg=arg,
            session_id=session_id,
        )
        with self._lock:
            self._faults.append(fault)
        return fault

    def schedule_on_sql(self, kind: FaultKind, needle: str, *, after: int = 0) -> ScheduledFault:
        """Convenience: fire when an ExecuteRequest's SQL contains ``needle``."""

        def matcher(request: Request) -> bool:
            sql = getattr(request, "sql", "")
            return needle.lower() in sql.lower()

        return self.schedule(kind, matcher=matcher, after=after)

    def cancel_all(self) -> None:
        with self._lock:
            self._faults.clear()

    def next_fault(self, request: Request) -> FaultKind | None:
        """The fault (if any) that fires for this request."""
        kind, _arg = self.next_fault_with_arg(request)
        return kind

    def next_fault_with_arg(
        self, request: Request
    ) -> tuple[FaultKind | None, int | None]:
        """Like :meth:`next_fault`, but returns ``(kind, arg)`` atomically —
        under threaded dispatch another request's fault may fire between a
        ``next_fault`` call and a later :attr:`last_fault_arg` read."""
        with self._lock:
            if isinstance(request, BatchExecuteRequest):
                self.batch_requests.append((self.requests_seen, len(request.statements)))
            self.requests_seen += 1
            for fault in self._faults:
                if fault.check(request):
                    if not fault.repeat:
                        self._faults.remove(fault)
                    self.fired.append(fault.kind)
                    self.last_fault_arg = fault.arg
                    return fault.kind, fault.arg
        return None, None

    @property
    def pending(self) -> int:
        return len(self._faults)
