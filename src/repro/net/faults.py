"""Deterministic fault injection on the client/server wire.

A :class:`FaultInjector` sits inside the server endpoint and fires scheduled
faults when a matching request arrives.  The three failure shapes the paper
cares about:

* ``CRASH_BEFORE_EXECUTE`` — the server dies while the request is in
  flight; nothing executed; the client sees a connection reset.  (The
  classic "ODBC function hangs or errors" case of §2.)
* ``CRASH_AFTER_EXECUTE`` — the server executes the request — including any
  commit — and *then* dies before replying.  The client cannot tell this
  from the previous case; distinguishing them is exactly why Phoenix logs
  DML outcomes in a status table ("testable state", §3).
* ``HANG`` — the server stays up but the reply never comes; the client's
  timeout fires.  Phoenix must then ping to decide crash vs. slow network.

Faults are one-shot by default and matched by an optional predicate on the
request (e.g. "the third FETCH", "any SQL containing 'invoices'"), which
keeps failure tests exact and repeatable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.net.protocol import Request

__all__ = ["FaultKind", "ScheduledFault", "FaultInjector"]


class FaultKind(enum.Enum):
    CRASH_BEFORE_EXECUTE = "crash_before_execute"
    CRASH_AFTER_EXECUTE = "crash_after_execute"
    HANG = "hang"
    DROP_CONNECTION = "drop_connection"  # comm glitch: server stays up


@dataclass
class ScheduledFault:
    """One armed fault.

    ``matcher`` filters requests (default: match anything).  ``after``
    skips that many matching requests before firing.  ``repeat`` keeps the
    fault armed after it fires (default one-shot).  ``every`` makes a
    repeating fault *periodic*: it fires on each Nth matching request —
    the chaos schedule availability experiments use.
    """

    kind: FaultKind
    matcher: Callable[[Request], bool] | None = None
    after: int = 0
    repeat: bool = False
    every: int | None = None
    _seen: int = field(default=0, repr=False)

    def check(self, request: Request) -> bool:
        """True if this fault fires for ``request`` (consumes one-shot)."""
        if self.matcher is not None and not self.matcher(request):
            return False
        self._seen += 1
        if self.every is not None:
            return self._seen % self.every == 0
        return self._seen > self.after


class FaultInjector:
    """Holds the schedule and decides, per request, what fate it meets."""

    def __init__(self):
        self._faults: list[ScheduledFault] = []
        self.fired: list[FaultKind] = []

    def schedule(
        self,
        kind: FaultKind,
        *,
        matcher: Callable[[Request], bool] | None = None,
        after: int = 0,
        repeat: bool = False,
        every: int | None = None,
    ) -> ScheduledFault:
        if every is not None:
            repeat = True
        fault = ScheduledFault(
            kind=kind, matcher=matcher, after=after, repeat=repeat, every=every
        )
        self._faults.append(fault)
        return fault

    def schedule_on_sql(self, kind: FaultKind, needle: str, *, after: int = 0) -> ScheduledFault:
        """Convenience: fire when an ExecuteRequest's SQL contains ``needle``."""

        def matcher(request: Request) -> bool:
            sql = getattr(request, "sql", "")
            return needle.lower() in sql.lower()

        return self.schedule(kind, matcher=matcher, after=after)

    def cancel_all(self) -> None:
        self._faults.clear()

    def next_fault(self, request: Request) -> FaultKind | None:
        """The fault (if any) that fires for this request."""
        for fault in self._faults:
            if fault.check(request):
                if not fault.repeat:
                    self._faults.remove(fault)
                self.fired.append(fault.kind)
                return fault.kind
        return None

    @property
    def pending(self) -> int:
        return len(self._faults)
