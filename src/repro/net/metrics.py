"""Network accounting: round trips, bytes, and simulated latency.

The paper's design decisions are round-trip-count decisions (`WHERE 0=1`,
server-side INSERT procedures, server-side repositioning), so the harness
treats round trips as a first-class measurement next to wall-clock time.

Latency is *simulated*: each round trip adds ``latency_seconds`` to
:attr:`simulated_seconds` instead of sleeping, so benchmarks stay fast while
still letting reports show what a 1 ms LAN or 30 ms WAN would do to each
strategy.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["NetworkMetrics", "NetStats"]


@dataclass
class NetworkMetrics:
    """Counters for one channel (or aggregated across channels).

    Reset semantics follow the system-wide contract defined in
    :mod:`repro.obs.metrics`: counters are **cumulative across server
    crashes and restarts** (they describe the simulation's history, not
    server state) and only an explicit :meth:`reset` — an observer action,
    typically via ``MetricsRegistry.reset()`` — zeroes them.
    ``latency_seconds`` is configuration (the simulated per-round-trip
    latency), not a counter, so ``reset()`` leaves it alone.
    """

    round_trips: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    simulated_seconds: float = 0.0
    latency_seconds: float = 0.0
    by_request_type: Counter = field(default_factory=Counter)
    #: BatchExecuteRequests sent (each is one round trip)
    batch_requests: int = 0
    #: statements that travelled inside batch requests — the round trips
    #: batching saved is ``requests_batched - batch_requests``
    requests_batched: int = 0
    errors: int = 0
    #: failed round trips broken down by request type — recovery's ping
    #: storms against a down server show up here as PingRequest errors,
    #: distinguishable from an application statement dying in flight.
    errors_by_request_type: Counter = field(default_factory=Counter)
    #: guards the read-modify-write updates — one metrics object is shared
    #: by every channel of a driver, and under threaded dispatch many client
    #: threads record concurrently
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, request_type: str, sent: int, received: int) -> None:
        with self._lock:
            self.round_trips += 1
            self.bytes_sent += sent
            self.bytes_received += received
            self.simulated_seconds += self.latency_seconds
            self.by_request_type[request_type] += 1

    def record_batch(self, statements: int) -> None:
        """One batch request carrying ``statements`` sub-statements (counted
        once per send attempt, success or not — the trip happened)."""
        with self._lock:
            self.batch_requests += 1
            self.requests_batched += statements

    def record_error(self, request_type: str, sent: int) -> None:
        """A round trip that died in flight still costs a trip out."""
        with self._lock:
            self.round_trips += 1
            self.bytes_sent += sent
            self.simulated_seconds += self.latency_seconds
            self.by_request_type[request_type] += 1
            self.errors += 1
            self.errors_by_request_type[request_type] += 1

    def merge(self, other: "NetworkMetrics") -> None:
        with self._lock:
            self.round_trips += other.round_trips
            self.bytes_sent += other.bytes_sent
            self.bytes_received += other.bytes_received
            self.simulated_seconds += other.simulated_seconds
            self.by_request_type.update(other.by_request_type)
            self.batch_requests += other.batch_requests
            self.requests_batched += other.requests_batched
            self.errors += other.errors
            self.errors_by_request_type.update(other.errors_by_request_type)

    def reset(self) -> None:
        with self._lock:
            self.round_trips = 0
            self.bytes_sent = 0
            self.bytes_received = 0
            self.simulated_seconds = 0.0
            self.by_request_type.clear()
            self.batch_requests = 0
            self.requests_batched = 0
            self.errors = 0
            self.errors_by_request_type.clear()

    def snapshot(self) -> dict:
        return {
            "round_trips": self.round_trips,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "simulated_seconds": self.simulated_seconds,
            "batch_requests": self.batch_requests,
            "requests_batched": self.requests_batched,
            "errors": self.errors,
            "by_request_type": dict(self.by_request_type),
            "errors_by_request_type": dict(self.errors_by_request_type),
        }


class NetStats:
    """Socket-tier and pool counters — the ``net`` slot of the registry.

    Fed by :class:`~repro.net.tcp.TcpServer` (accepts, frames, bytes) and
    :class:`repro.ConnectionPool` (checkouts, pings, replacements).
    Counters follow the system-wide reset contract (cumulative across
    crashes; :meth:`reset` is an observer action).  ``connections_open``
    and ``pool_in_use`` are *gauges* — they describe current state, so
    ``reset()`` leaves them alone.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # socket tier (TcpServer)
        self.connections_accepted = 0
        self.connections_closed = 0
        self.connections_open = 0  # gauge
        self.frames_received = 0
        self.frames_sent = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        #: TIMEOUT/FATAL frames sent — transport-level failures delivered
        #: to clients (in-band SQL errors are ordinary RESPONSE frames)
        self.fatal_frames_sent = 0
        # pool tier (ConnectionPool)
        self.pool_checkouts = 0
        self.pool_checkins = 0
        self.pool_pings = 0
        self.pool_replacements = 0
        self.pool_exhausted = 0
        self.pool_in_use = 0  # gauge

    # -- socket tier ---------------------------------------------------------

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_accepted += 1
            self.connections_open += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_closed += 1
            self.connections_open -= 1

    def frame_received(self, nbytes: int) -> None:
        with self._lock:
            self.frames_received += 1
            self.bytes_received += nbytes

    def frame_sent(self, nbytes: int, *, fatal: bool = False) -> None:
        with self._lock:
            self.frames_sent += 1
            self.bytes_sent += nbytes
            if fatal:
                self.fatal_frames_sent += 1

    # -- pool tier -----------------------------------------------------------

    def pool_checkout(self) -> None:
        with self._lock:
            self.pool_checkouts += 1
            self.pool_in_use += 1

    def pool_checkin(self) -> None:
        with self._lock:
            self.pool_checkins += 1
            self.pool_in_use -= 1

    def pool_ping(self) -> None:
        with self._lock:
            self.pool_pings += 1

    def pool_replacement(self) -> None:
        with self._lock:
            self.pool_replacements += 1

    def pool_exhaustion(self) -> None:
        with self._lock:
            self.pool_exhausted += 1

    # -- contract ------------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self.connections_accepted = 0
            self.connections_closed = 0
            self.frames_received = 0
            self.frames_sent = 0
            self.bytes_received = 0
            self.bytes_sent = 0
            self.fatal_frames_sent = 0
            self.pool_checkouts = 0
            self.pool_checkins = 0
            self.pool_pings = 0
            self.pool_replacements = 0
            self.pool_exhausted = 0
            # connections_open / pool_in_use are gauges: untouched

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "connections_accepted": self.connections_accepted,
                "connections_closed": self.connections_closed,
                "connections_open": self.connections_open,
                "frames_received": self.frames_received,
                "frames_sent": self.frames_sent,
                "bytes_received": self.bytes_received,
                "bytes_sent": self.bytes_sent,
                "fatal_frames_sent": self.fatal_frames_sent,
                "pool_checkouts": self.pool_checkouts,
                "pool_checkins": self.pool_checkins,
                "pool_pings": self.pool_pings,
                "pool_replacements": self.pool_replacements,
                "pool_exhausted": self.pool_exhausted,
                "pool_in_use": self.pool_in_use,
            }
