"""Network accounting: round trips, bytes, and simulated latency.

The paper's design decisions are round-trip-count decisions (`WHERE 0=1`,
server-side INSERT procedures, server-side repositioning), so the harness
treats round trips as a first-class measurement next to wall-clock time.

Latency is *simulated*: each round trip adds ``latency_seconds`` to
:attr:`simulated_seconds` instead of sleeping, so benchmarks stay fast while
still letting reports show what a 1 ms LAN or 30 ms WAN would do to each
strategy.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Counters for one channel (or aggregated across channels).

    Reset semantics follow the system-wide contract defined in
    :mod:`repro.obs.metrics`: counters are **cumulative across server
    crashes and restarts** (they describe the simulation's history, not
    server state) and only an explicit :meth:`reset` — an observer action,
    typically via ``MetricsRegistry.reset()`` — zeroes them.
    ``latency_seconds`` is configuration (the simulated per-round-trip
    latency), not a counter, so ``reset()`` leaves it alone.
    """

    round_trips: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    simulated_seconds: float = 0.0
    latency_seconds: float = 0.0
    by_request_type: Counter = field(default_factory=Counter)
    #: BatchExecuteRequests sent (each is one round trip)
    batch_requests: int = 0
    #: statements that travelled inside batch requests — the round trips
    #: batching saved is ``requests_batched - batch_requests``
    requests_batched: int = 0
    errors: int = 0
    #: failed round trips broken down by request type — recovery's ping
    #: storms against a down server show up here as PingRequest errors,
    #: distinguishable from an application statement dying in flight.
    errors_by_request_type: Counter = field(default_factory=Counter)
    #: guards the read-modify-write updates — one metrics object is shared
    #: by every channel of a driver, and under threaded dispatch many client
    #: threads record concurrently
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, request_type: str, sent: int, received: int) -> None:
        with self._lock:
            self.round_trips += 1
            self.bytes_sent += sent
            self.bytes_received += received
            self.simulated_seconds += self.latency_seconds
            self.by_request_type[request_type] += 1

    def record_batch(self, statements: int) -> None:
        """One batch request carrying ``statements`` sub-statements (counted
        once per send attempt, success or not — the trip happened)."""
        with self._lock:
            self.batch_requests += 1
            self.requests_batched += statements

    def record_error(self, request_type: str, sent: int) -> None:
        """A round trip that died in flight still costs a trip out."""
        with self._lock:
            self.round_trips += 1
            self.bytes_sent += sent
            self.simulated_seconds += self.latency_seconds
            self.by_request_type[request_type] += 1
            self.errors += 1
            self.errors_by_request_type[request_type] += 1

    def merge(self, other: "NetworkMetrics") -> None:
        with self._lock:
            self.round_trips += other.round_trips
            self.bytes_sent += other.bytes_sent
            self.bytes_received += other.bytes_received
            self.simulated_seconds += other.simulated_seconds
            self.by_request_type.update(other.by_request_type)
            self.batch_requests += other.batch_requests
            self.requests_batched += other.requests_batched
            self.errors += other.errors
            self.errors_by_request_type.update(other.errors_by_request_type)

    def reset(self) -> None:
        with self._lock:
            self.round_trips = 0
            self.bytes_sent = 0
            self.bytes_received = 0
            self.simulated_seconds = 0.0
            self.by_request_type.clear()
            self.batch_requests = 0
            self.requests_batched = 0
            self.errors = 0
            self.errors_by_request_type.clear()

    def snapshot(self) -> dict:
        return {
            "round_trips": self.round_trips,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "simulated_seconds": self.simulated_seconds,
            "batch_requests": self.batch_requests,
            "requests_batched": self.requests_batched,
            "errors": self.errors,
            "by_request_type": dict(self.by_request_type),
            "errors_by_request_type": dict(self.errors_by_request_type),
        }
