"""Wire protocol: request/response message types and their serialization.

Messages cross the "wire" as pickled bytes — not because pickle is a great
wire format, but because serializing at all keeps the boundary honest: the
client cannot share live objects with the server, and the metrics layer can
count real message sizes.

Every request carries the session id it operates on (like a TDS connection
carries its login context); ``ConnectRequest`` is the exception.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.engine.schema import Column

__all__ = [
    "Message",
    "Request",
    "Response",
    "ConnectRequest",
    "ExecuteRequest",
    "BatchExecuteRequest",
    "BatchExecuteResponse",
    "FetchRequest",
    "AdvanceRequest",
    "CloseCursorRequest",
    "DisconnectRequest",
    "PingRequest",
    "TableSchemaRequest",
    "TableSchemaResponse",
    "ConnectResponse",
    "ResultResponse",
    "FetchResponse",
    "OkResponse",
    "ErrorResponse",
    "PongResponse",
    "RestartingResponse",
    "encode_message",
    "decode_message",
]


@dataclass
class Message:
    """Base for everything that crosses the wire."""


@dataclass
class Request(Message):
    session_id: int = 0


@dataclass
class Response(Message):
    pass


# ---- requests ---------------------------------------------------------------


@dataclass
class ConnectRequest(Request):
    user: str = "app"
    options: dict[str, Any] = field(default_factory=dict)


@dataclass
class ExecuteRequest(Request):
    sql: str = ""
    placeholders: list = field(default_factory=list)
    cursor_type: str = "default"


@dataclass
class BatchExecuteRequest(Request):
    """N statement batches in one round trip (wire batching).

    Each entry is an independent SQL batch (for Phoenix: one wrapped DML
    with its own status-table seq); the server executes them in order as a
    unit under WAL group commit — one device force covers every
    sub-statement's commit (see :meth:`DatabaseServer.execute_batch`).
    """

    statements: list[str] = field(default_factory=list)


@dataclass
class FetchRequest(Request):
    cursor_id: int = 0
    n: int = 1


@dataclass
class AdvanceRequest(Request):
    """Server-side cursor reposition — no rows travel back."""

    cursor_id: int = 0
    position: int = 0


@dataclass
class CloseCursorRequest(Request):
    cursor_id: int = 0


@dataclass
class DisconnectRequest(Request):
    pass


@dataclass
class PingRequest(Request):
    """Liveness probe (Phoenix's private connection uses this)."""


@dataclass
class TableSchemaRequest(Request):
    """Catalog lookup — the SQLPrimaryKeys/SQLColumns analog real ODBC
    drivers expose.  Phoenix needs the primary key of a cursor's base table
    to persist keyset/dynamic cursor state."""

    table: str = ""


# ---- responses ------------------------------------------------------------------


@dataclass
class ConnectResponse(Response):
    session_id: int = 0
    server_epoch: int = 0


@dataclass
class ResultResponse(Response):
    """Outcome of an ExecuteRequest.

    ``kind`` mirrors :class:`~repro.engine.results.StatementResult`:
    ``rows`` (with either inline ``rows`` for a default result set or a
    ``cursor_id`` for server cursors), ``rowcount``, or ``ok``.
    """

    kind: str = "ok"
    columns: list[Column] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    message: str = ""
    cursor_id: int | None = None
    effective_cursor_type: str = "default"
    #: affected-row counts of every DML statement in the batch, in order —
    #: how a transaction-wrapped batch still reports the inner statement's
    #: rowcount when the final statement is the COMMIT.
    batch_rowcounts: list[int] = field(default_factory=list)


@dataclass
class FetchResponse(Response):
    rows: list[tuple] = field(default_factory=list)
    done: bool = False


@dataclass
class OkResponse(Response):
    message: str = ""


@dataclass
class ErrorResponse(Response):
    """A server-side error, shipped back by class name + message and
    re-raised client-side as the matching exception type."""

    error_type: str = "DatabaseError"
    message: str = ""


@dataclass
class BatchExecuteResponse(Response):
    """Outcome of a :class:`BatchExecuteRequest`.

    ``results`` holds one :class:`ResultResponse` per executed sub-batch,
    in request order.  On a SQL error, ``results`` is the successful prefix
    and ``error``/``error_index`` describe the failing sub-batch; the
    suffix after it was not executed.  Transport-level failures never reach
    this message — they raise on the wire like any other request.  Every
    result here is covered by the batch's group force (the server releases
    no reply before the force that covers it lands).
    """

    results: list[ResultResponse] = field(default_factory=list)
    error: ErrorResponse | None = None
    error_index: int = -1


@dataclass
class PongResponse(Response):
    server_epoch: int = 0
    up_sessions: int = 0


@dataclass
class RestartingResponse(Response):
    """Ping reply while a *planned* restart is in progress.

    The server is alive (this reply proves it) but paused: ``state`` is the
    lifecycle phase (``draining``/``swapping``) and ``eta_seconds`` the
    advertised remaining pause, so the client waits politely at a flat
    interval instead of applying crash-tuned exponential backoff.
    """

    state: str = "draining"
    eta_seconds: float = 0.0
    server_epoch: int = 0


@dataclass
class TableSchemaResponse(Response):
    columns: list[Column] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()


def encode_message(message: Message) -> bytes:
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode_message(raw: bytes) -> Message:
    return pickle.loads(raw)
