"""Real-socket serving tier: asyncio TCP front end + blocking client wire.

:class:`TcpServer` listens on a real TCP socket and speaks the *existing*
:mod:`repro.net.protocol` messages over length-prefixed frames
(:mod:`repro.net.framing`).  One asyncio event loop — running on a
dedicated daemon thread — multiplexes every connection: thousands of
mostly-idle sessions cost one file descriptor each, not one thread each.
The loop never executes engine work; a completed REQUEST frame is handed to
:meth:`~repro.net.transport.ServerEndpoint.submit`, which enqueues it on
the existing :class:`~repro.engine.dispatch.SessionDispatcher` worker pool
(per-session FIFO ordering preserved — the dispatch key is the session id
from the decoded message, exactly as in-process).  The worker's completion
callback posts the reply back onto the loop with
``call_soon_threadsafe``, and the loop writes the frame.  The sync engine
is untouched.

Fault injection keeps working unchanged: the :class:`FaultInjector` fires
inside ``_serve`` on the dispatch worker, behind this front end.  What the
in-process wire surfaces as raised exceptions, the socket wire ships as
control frames — ``TIMEOUT`` for the HANG fault (connection survives,
matching the in-process rule that a client-side timeout doesn't break the
socket) and ``FATAL`` + close for crash/drop faults (the client re-raises
the named :class:`~repro.errors.CommunicationError` subclass and the
channel breaks, exactly like in-process).  Crucially the *listener*
outlives engine crashes — the serving tier is a separate failure domain —
so a recovering Phoenix driver reconnects on a fresh socket to the same
address and finds either a booting engine (``ServerCrashedError`` per
request until restart) or the recovered one.

:class:`TcpTransport` is the client half: a
:class:`~repro.net.transport.Transport` whose channels each own one
blocking socket (lazy-connected on first send, ``TCP_NODELAY``).  The
Phoenix driver opens throwaway channels for pings and a fresh channel per
(re)connect, so recovery exercises genuine reconnects with zero driver
changes.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from collections import deque

from repro import errors
from repro.net import framing
from repro.net.metrics import NetStats, NetworkMetrics
from repro.net.transport import ClientChannel, ServerEndpoint, Transport
from repro.obs.tracer import get_tracer

__all__ = ["TcpServer", "TcpTransport"]

#: client-side cap on waiting for one reply frame.  Generous on purpose:
#: deterministic HANG faults arrive instantly as TIMEOUT frames, so this
#: only fires on a genuinely wedged server, where it surfaces as
#: :class:`~repro.errors.TimeoutError` and the wire refuses reuse (the
#: request/response pairing on the socket is no longer trustworthy).
DEFAULT_REQUEST_TIMEOUT = 30.0
DEFAULT_CONNECT_TIMEOUT = 5.0

_RECV_CHUNK = 65536


# --------------------------------------------------------------------------
# server side
# --------------------------------------------------------------------------


class _ServerConnection(asyncio.Protocol):
    """One accepted socket: frame reassembly + request handoff."""

    def __init__(self, owner: "TcpServer"):
        self.owner = owner
        self.decoder = framing.FrameDecoder()
        self.transport: asyncio.Transport | None = None
        self.peer = None

    # asyncio callbacks — all run on the server's event loop

    def connection_made(self, transport) -> None:
        self.transport = transport
        self.peer = transport.get_extra_info("peername")
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        self.owner._connection_made(self)

    def connection_lost(self, exc) -> None:
        self.owner._connection_lost(self)

    def data_received(self, data: bytes) -> None:
        try:
            frames = self.decoder.feed(data)
        except framing.FrameError as exc:
            # corrupt stream: nothing downstream can be trusted — notify + drop
            self.owner._send_error(
                self, errors.CommunicationError(f"protocol error: {exc}")
            )
            return
        for frame_type, payload in frames:
            if frame_type != framing.FRAME_REQUEST:
                self.owner._send_error(
                    self,
                    errors.CommunicationError(
                        f"unexpected client frame type 0x{frame_type:02x}"
                    ),
                )
                return
            self.owner._request_received(self, payload)


class TcpServer:
    """The asyncio front end over a :class:`ServerEndpoint`.

    ``start()`` spins up the event loop on a daemon thread and binds the
    listener (``port=0`` picks a free port; the bound address is then in
    :attr:`address` / :attr:`url`).  The server is a *front end*, not the
    engine: it keeps accepting while the engine is crashed or draining, so
    clients always reach something that can tell them what is wrong —
    which is what makes reconnect-and-ping recovery work over real
    sockets.
    """

    def __init__(
        self,
        endpoint: ServerEndpoint,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        stats: NetStats | None = None,
    ):
        self.endpoint = endpoint
        self.stats = stats if stats is not None else NetStats()
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        #: live connections — touched only on the loop thread
        self._connections: set[_ServerConnection] = set()
        #: ``(host, port)`` actually bound; set by :meth:`start`
        self.address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "TcpServer":
        if self._thread is not None:
            raise errors.InterfaceError("TcpServer is already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="tcp-serve", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self._open_listener(), self._loop).result(
            timeout=10
        )
        return self

    def stop(self) -> None:
        """Close the listener and every connection, then stop the loop."""
        loop, thread = self._loop, self._thread
        if loop is None:
            return
        self._loop = None
        self._thread = None
        try:
            asyncio.run_coroutine_threadsafe(self._close_all(), loop).result(timeout=10)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=10)
            loop.close()

    @property
    def url(self) -> str:
        if self.address is None:
            raise errors.InterfaceError("TcpServer is not started")
        host, port = self.address
        return f"tcp://{host}:{port}"

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _open_listener(self) -> None:
        self._server = await self._loop.create_server(
            lambda: _ServerConnection(self), self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])

    async def _close_all(self) -> None:
        for conn in list(self._connections):
            if conn.transport is not None:
                conn.transport.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- per-connection plumbing (loop thread unless noted) -------------------

    def _connection_made(self, conn: _ServerConnection) -> None:
        self._connections.add(conn)
        self.stats.connection_opened()
        get_tracer().event("net.accept", peer=str(conn.peer))

    def _connection_lost(self, conn: _ServerConnection) -> None:
        if conn in self._connections:
            self._connections.discard(conn)
            self.stats.connection_closed()

    def _request_received(self, conn: _ServerConnection, payload: bytes) -> None:
        self.stats.frame_received(len(payload))
        self.endpoint.submit(
            payload,
            lambda value, exc, conn=conn: self._post_reply(conn, value, exc),
            frame_attrs={"peer": str(conn.peer), "bytes_in": len(payload)},
        )

    def _post_reply(self, conn: _ServerConnection, value, exc) -> None:
        # runs on a dispatch worker (or synchronously on the loop for the
        # ping bypass): hop back to the loop, the only thread that writes
        loop = self._loop
        if loop is None:
            return  # server stopped while the request was in flight
        try:
            loop.call_soon_threadsafe(self._deliver, conn, value, exc)
        except RuntimeError:
            pass  # loop closed under us: the client sees EOF instead

    def _deliver(self, conn: _ServerConnection, value, exc) -> None:
        transport = conn.transport
        if transport is None or transport.is_closing():
            return  # client went away while the request ran
        if exc is None:
            frame = framing.encode_frame(framing.FRAME_RESPONSE, value)
            transport.write(frame)
            self.stats.frame_sent(len(frame))
            return
        if isinstance(exc, errors.TimeoutError):
            # HANG: the reply is abandoned but the connection survives —
            # the socket analogue of the in-process timeout contract
            frame = framing.encode_frame(
                framing.FRAME_TIMEOUT,
                framing.encode_notice(type(exc).__name__, str(exc)),
            )
            transport.write(frame)
            self.stats.frame_sent(len(frame), fatal=True)
            return
        self._send_error(conn, exc)

    def _send_error(self, conn: _ServerConnection, exc: BaseException) -> None:
        """FATAL notice + close: the socket analogue of a raised
        CommunicationError (crash, drop, protocol corruption)."""
        transport = conn.transport
        if transport is None or transport.is_closing():
            return
        name = type(exc).__name__ if isinstance(exc, errors.Error) else "InternalError"
        frame = framing.encode_frame(
            framing.FRAME_FATAL, framing.encode_notice(name, str(exc))
        )
        transport.write(frame)
        self.stats.frame_sent(len(frame), fatal=True)
        transport.close()


# --------------------------------------------------------------------------
# client side
# --------------------------------------------------------------------------


def _notice_error(name: str, message: str, fallback: type) -> errors.Error:
    """Rebuild a control-frame notice as its original exception class."""
    error_class = getattr(errors, name, fallback)
    if not (isinstance(error_class, type) and issubclass(error_class, errors.Error)):
        error_class = fallback
    return error_class(message)


class _TcpWire:
    """One blocking client socket speaking the frame protocol.

    Lazy-connects on the first round trip.  Any socket-level failure (EOF,
    reset, refused, real timeout) permanently kills the wire — the
    request/response pairing on a half-broken socket can't be trusted —
    which is exactly the broken-channel contract :class:`ClientChannel`
    already enforces one layer up.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._sock: socket.socket | None = None
        self._decoder = framing.FrameDecoder()
        self._frames: deque[tuple[int, bytes]] = deque()
        self._dead = False

    def roundtrip(self, raw_request: bytes) -> bytes:
        if self._dead:
            raise errors.CommunicationError("socket is closed (previous failure)")
        try:
            if self._sock is None:
                self._connect()
            self._sock.sendall(
                framing.encode_frame(framing.FRAME_REQUEST, raw_request)
            )
            frame_type, payload = self._read_frame()
        except socket.timeout as exc:
            self._teardown()
            raise errors.TimeoutError(
                f"request timed out after {self.request_timeout}s (socket)"
            ) from exc
        except framing.FrameError as exc:
            self._teardown()
            raise errors.CommunicationError(f"protocol error: {exc}") from exc
        except OSError as exc:
            self._teardown()
            raise errors.CommunicationError(
                f"connection reset by peer (socket: {exc})"
            ) from exc
        if frame_type == framing.FRAME_RESPONSE:
            return payload
        if frame_type == framing.FRAME_TIMEOUT:
            # reply abandoned server-side; the socket itself stays usable
            name, message = framing.decode_notice(payload)
            raise _notice_error(name, message, errors.TimeoutError)
        if frame_type == framing.FRAME_FATAL:
            self._teardown()
            name, message = framing.decode_notice(payload)
            raise _notice_error(name, message, errors.CommunicationError)
        self._teardown()
        raise errors.CommunicationError(f"unexpected frame type 0x{frame_type:02x}")

    def close(self) -> None:
        self._teardown()

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.request_timeout)
        self._sock = sock

    def _read_frame(self) -> tuple[int, bytes]:
        if self._frames:
            return self._frames.popleft()
        while True:
            data = self._sock.recv(_RECV_CHUNK)
            if not data:
                # EOF without a FATAL notice (the notice itself was lost):
                # degrade to the generic broken-connection error
                raise ConnectionResetError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
            if self._frames:
                return self._frames.popleft()

    def _teardown(self) -> None:
        self._dead = True
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class TcpTransport(Transport):
    """Client transport over real TCP: each channel is one socket."""

    name = "tcp"

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout

    def open_channel(self, metrics: NetworkMetrics | None = None) -> ClientChannel:
        wire = _TcpWire(
            self.host,
            self.port,
            connect_timeout=self.connect_timeout,
            request_timeout=self.request_timeout,
        )
        return ClientChannel(wire, metrics=metrics)

    def describe(self) -> str:
        return f"tcp://{self.host}:{self.port}"
