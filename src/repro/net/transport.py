"""Transport: the request/response channel between clients and the server.

:class:`ServerEndpoint` wraps a :class:`~repro.engine.DatabaseServer` and is
the *only* way clients reach it — every call serializes a request, consults
the fault injector, dispatches, and serializes a response.

:class:`ClientChannel` is one client connection.  Once a channel observes a
communication failure it is *broken* — further sends fail immediately, like
a closed socket — and the client must open a fresh channel (reconnect).
That matches what Phoenix has to deal with: the old ODBC connection is dead
even if the server is back.

The channel's byte round trip is pluggable: a :class:`Transport` opens
channels over some wire, and the channel delegates ``raw bytes -> raw
bytes`` to the wire object behind it.  :class:`InProcessTransport` is the
direct ``endpoint.handle`` call (zero-copy, same process);
:class:`~repro.net.tcp.TcpTransport` is a real socket to a
:class:`~repro.net.tcp.TcpServer`.  Everything above the wire — metrics,
tracing, the broken-channel contract, in-band SQL error rebuilding — is
shared, so the Phoenix driver, the plain ODBC stack, chaos traces, and the
benches run unchanged over either transport.
"""

from __future__ import annotations

import itertools
import time

from repro import errors
from repro.engine.server import DatabaseServer
from repro.engine.storage import StorageFault
from repro.net.faults import FaultInjector, FaultKind
from repro.net.metrics import NetworkMetrics
from repro.obs.tracer import get_tracer
from repro.net.protocol import (
    AdvanceRequest,
    BatchExecuteRequest,
    BatchExecuteResponse,
    CloseCursorRequest,
    ConnectRequest,
    ConnectResponse,
    DisconnectRequest,
    ErrorResponse,
    ExecuteRequest,
    FetchRequest,
    FetchResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    Request,
    Response,
    RestartingResponse,
    ResultResponse,
    TableSchemaRequest,
    TableSchemaResponse,
    decode_message,
    encode_message,
)

__all__ = ["ServerEndpoint", "ClientChannel", "Transport", "InProcessTransport"]


class ServerEndpoint:
    """The server side of the wire: dispatch + fault injection.

    Requests are routed through the server's
    :class:`~repro.engine.dispatch.SessionDispatcher`: one session's
    requests run strictly in order, while different sessions' requests run
    on worker threads and interleave inside the engine.  The calling client
    thread blocks for its reply — the wire keeps its synchronous
    request/response shape, and N concurrent clients simply call in from N
    threads.

    ``latency`` simulates wire transit by *sleeping* on the client's thread
    (half outbound, half for the reply).  It defaults to zero — unit tests
    and the chaos explorer stay instant — and the concurrency bench turns
    it on, which is exactly where concurrent serving pays: while one
    client's request is in transit, the server serves everybody else.
    """

    def __init__(
        self,
        server: DatabaseServer,
        faults: FaultInjector | None = None,
        *,
        latency: float = 0.0,
    ):
        self.server = server
        self.faults = faults if faults is not None else FaultInjector()
        #: simulated one-way-and-back wire transit per request, seconds
        self.latency = latency
        #: bumped every restart so clients can see "same server, new life"
        self.epoch = 0

    def restart_server(self):
        """Restart the crashed server and bump the epoch."""
        report = self.server.restart()
        self.epoch += 1
        return report

    def drain_and_restart(self, policy=None):
        """Planned restart (drain + engine swap) and bump the epoch."""
        report = self.server.drain_and_restart(policy)
        self.epoch += 1
        return report

    def restore_to(self, ts=None, policy=None):
        """Restore the database to its state as of ``ts`` (drain + storage
        rewrite + fresh boot; see ``DatabaseServer.restore_to``) and bump
        the epoch — to clients this is a planned restart they ride through."""
        report = self.server.restore_to(ts, policy=policy)
        self.epoch += 1
        return report

    # -- the wire ------------------------------------------------------------

    def handle(self, raw_request: bytes) -> bytes:
        """Process one serialized request; returns the serialized response.

        Raises :class:`~repro.errors.CommunicationError` subclasses for
        transport-level failures (crash, hang, drop) — exactly what a real
        socket layer would surface.  SQL-level errors travel *in-band* as
        :class:`ErrorResponse`.
        """
        request, key, corr = self._prepare(raw_request)
        if self.latency:
            time.sleep(self.latency / 2)
        try:
            bypass = self._restarting_bypass(request)
            if bypass is not None:
                return bypass
            return self.server.dispatcher.run(key, lambda: self._serve(request, corr))
        finally:
            if self.latency:
                time.sleep(self.latency / 2)

    def submit(
        self,
        raw_request: bytes,
        callback,
        *,
        frame_attrs: dict | None = None,
    ) -> None:
        """Non-blocking :meth:`handle` for the asyncio serving tier.

        The TCP front end's event loop must never park in the dispatcher,
        so the request is enqueued and ``callback(raw_response, exc)`` is
        invoked on the dispatch worker once it has run (check ``exc``
        first; it carries the CommunicationError subclasses that
        :meth:`handle` would raise).  The planned-restart ping bypass and
        decode failures invoke the callback synchronously on the caller.

        ``frame_attrs`` (the TCP server passes peer + byte counts) opens a
        ``net.frame`` span around the server-side body so the socket tier
        shows up in traces and the ``net.frame`` latency histogram.
        Simulated ``latency`` is *not* applied here: a real socket has real
        transit time.
        """
        try:
            request, key, corr = self._prepare(raw_request)
            bypass = self._restarting_bypass(request)
        except Exception as exc:
            callback(None, exc)
            return
        if bypass is not None:
            callback(bypass, None)
            return

        if frame_attrs is None:
            fn = lambda: self._serve(request, corr)  # noqa: E731
        else:
            def fn():
                with get_tracer().span(
                    "net.frame",
                    corr=corr,
                    request=type(request).__name__,
                    **frame_attrs,
                ) as span:
                    raw_response = self._serve(request, corr)
                    span.set(bytes_out=len(raw_response))
                    return raw_response

        try:
            self.server.dispatcher.submit(key, fn, callback)
        except RuntimeError as exc:  # dispatcher closed under us
            callback(None, errors.ServerCrashedError(f"dispatcher rejected request: {exc}"))

    def _prepare(self, raw_request: bytes):
        """Decode + session key + caller correlation — shared by
        :meth:`handle` and :meth:`submit`."""
        request = decode_message(raw_request)
        assert isinstance(request, Request)
        # session-scoped requests serialize per session; connects and pings
        # carry no session and dispatch independently (unique key)
        key = getattr(request, "session_id", None)
        if key is None:
            key = object()
        # correlation crosses the thread hop explicitly: the worker's span
        # stack is its own, so inheritance alone would drop the session chain
        caller_span = get_tracer().current
        corr = caller_span.corr if caller_span is not None else None
        return request, key, corr

    def _restarting_bypass(self, request: Request) -> bytes | None:
        # Pings bypass the dispatcher while a *planned* restart is in
        # progress: parked behind the drain barrier they could tell the
        # client nothing until the swap is over — answered here, they
        # advertise RESTARTING + the expected remaining pause, which is
        # what lets the driver back off politely instead of treating
        # the pause as a crash.
        if isinstance(request, PingRequest) and self.server.up:
            state = self.server.lifecycle
            if state != "running":
                return encode_message(
                    RestartingResponse(
                        state=state,
                        eta_seconds=self.server.restart_eta_seconds(),
                        server_epoch=self.epoch,
                    )
                )
        return None

    def _serve(self, request: Request, corr: str | None = None) -> bytes:
        """The server-side body of one request (runs on a dispatch worker)."""
        tracer = get_tracer()
        with tracer.span("server.dispatch", corr=corr, request=type(request).__name__):
            if not self.server.up:
                raise errors.ServerCrashedError("connection refused: server is down")

            fault, fault_arg = self.faults.next_fault_with_arg(request)
            if fault is not None:
                tracer.event("fault.fired", fault=fault.value)
            if fault is FaultKind.CRASH_BEFORE_EXECUTE:
                self.server.crash()
                raise errors.CommunicationError("connection reset by peer (server crashed)")
            if fault is FaultKind.HANG:
                raise errors.TimeoutError("request timed out (server not responding)")
            if fault is FaultKind.DROP_CONNECTION:
                raise errors.CommunicationError("connection reset by peer (network glitch)")
            if fault is FaultKind.CRASH_MID_BATCH:
                # the server dies *between* a batch's sub-statements: the
                # fault's arg says how many executed before the kill (their
                # commits were deferred for the group force, so the crash
                # loses all of them).  On a non-batch request this is just
                # CRASH_BEFORE_EXECUTE.
                if isinstance(request, BatchExecuteRequest) and request.statements:
                    executed = (
                        len(request.statements) // 2 if fault_arg is None else fault_arg
                    )
                    executed = max(0, min(executed, len(request.statements)))
                    try:
                        self.server.execute_batch(
                            request.session_id, request.statements, stop_after=executed
                        )
                    except (errors.Error, StorageFault):
                        pass  # the kill swallows whatever the prefix raised
                self.server.crash()
                raise errors.CommunicationError(
                    "connection reset by peer (server crashed mid-batch)"
                )
            if fault is FaultKind.CRASH_MID_DRAIN:
                # A planned restart begins while this request is already on
                # a worker, and the process is killed inside it: arg 0 dies
                # in the drain window (before the checkpoint), arg 1 during
                # the swap (after the checkpoint, before the fresh engine
                # boots).  Either way the planned restart degrades into the
                # unplanned crash path — crash() lifts the drain barrier so
                # parked requests observe the dead server and recover.
                try:
                    self.server.begin_drain()
                except errors.OperationalError:
                    pass  # already draining/down — the kill below still lands
                if fault_arg:
                    try:
                        self.server.checkpoint()
                    except errors.Error:
                        pass
                self.server.crash()
                raise errors.CommunicationError(
                    "connection reset by peer (server crashed mid-drain)"
                )
            if fault is FaultKind.CRASH_MID_RESTORE:
                # A restore_to begins while this request is already on a
                # worker, and the process is killed inside it: arg 0 dies in
                # the drain window (storage untouched), arg 1 after the
                # storage rewrite — a restore *to now*, so every committed
                # transaction survives and the exactly-once oracle still
                # applies — but before the fresh engine boots.  Either way
                # the restore degrades into the unplanned crash path.
                try:
                    self.server.begin_drain()
                except errors.OperationalError:
                    pass  # already draining/down — the kill below still lands
                if fault_arg:
                    try:
                        self.server.restore_storage_to(None)
                    except errors.Error:
                        pass
                self.server.crash()
                raise errors.CommunicationError(
                    "connection reset by peer (server crashed mid-restore)"
                )
            if fault is FaultKind.TORN_WAL_TAIL:
                # armed on the device; fires at this request's first log append
                # (or a later request's, if this one never appends)
                self.server.storage.inject_append_fault("torn")
            if fault is FaultKind.FORCE_FAIL:
                self.server.storage.inject_append_fault("fail")

            try:
                response = self._dispatch(request)
            except StorageFault as exc:
                # the log device failed under the server: that is a process
                # kill, not an SQL error — nothing in-band can describe it
                self.server.crash()
                raise errors.CommunicationError(
                    f"connection reset by peer (server crashed: {exc})"
                ) from exc
            except errors.Error as exc:
                response = ErrorResponse(error_type=type(exc).__name__, message=str(exc))

            if fault is FaultKind.CRASH_AFTER_EXECUTE:
                # The work (commits and all) happened; the reply is lost.
                self.server.crash()
                raise errors.CommunicationError(
                    "connection reset by peer (server crashed before replying)"
                )
            return encode_message(response)

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, request: Request) -> Response:
        server = self.server
        if isinstance(request, ConnectRequest):
            session_id = server.connect(request.user, request.options)
            return ConnectResponse(session_id=session_id, server_epoch=self.epoch)
        if isinstance(request, ExecuteRequest):
            result = server.execute(
                request.session_id,
                request.sql,
                placeholders=request.placeholders,
                cursor_type=request.cursor_type,
            )
            return _result_response(result)
        if isinstance(request, BatchExecuteRequest):
            with get_tracer().span(
                "wire.batch", statements=len(request.statements)
            ) as span:
                results, error, error_index = server.execute_batch(
                    request.session_id, request.statements
                )
                span.set(executed=len(results), error_index=error_index)
            return BatchExecuteResponse(
                results=[_result_response(r) for r in results],
                error=(
                    ErrorResponse(error_type=type(error).__name__, message=str(error))
                    if error is not None
                    else None
                ),
                error_index=error_index,
            )
        if isinstance(request, FetchRequest):
            rows, done = server.fetch(request.session_id, request.cursor_id, request.n)
            return FetchResponse(rows=rows, done=done)
        if isinstance(request, AdvanceRequest):
            server.advance(request.session_id, request.cursor_id, request.position)
            return OkResponse(message="advanced")
        if isinstance(request, CloseCursorRequest):
            server.close_cursor(request.session_id, request.cursor_id)
            return OkResponse(message="cursor closed")
        if isinstance(request, DisconnectRequest):
            server.disconnect(request.session_id)
            return OkResponse(message="bye")
        if isinstance(request, PingRequest):
            return PongResponse(server_epoch=self.epoch, up_sessions=len(server.sessions))
        if isinstance(request, TableSchemaRequest):
            schema = server.table_schema(request.session_id, request.table)
            return TableSchemaResponse(
                columns=list(schema.columns), primary_key=schema.primary_key
            )
        raise errors.InterfaceError(f"unknown request type {type(request).__name__}")


def _result_response(result) -> ResultResponse:
    """Convert a :class:`StatementResult` into its wire shape."""
    if result.kind == "rows":
        if result.cursor_id is not None:
            return ResultResponse(
                kind="rows",
                columns=result.extra["columns"],
                cursor_id=result.cursor_id,
                effective_cursor_type=result.extra["effective_cursor_type"],
            )
        return ResultResponse(
            kind="rows",
            columns=result.result_set.columns,
            rows=result.result_set.rows,
        )
    if result.kind == "rowcount":
        return ResultResponse(
            kind="rowcount",
            rowcount=result.rowcount,
            message=result.message,
            batch_rowcounts=result.extra.get("batch_rowcounts", []),
        )
    return ResultResponse(
        kind="ok",
        message=result.message,
        batch_rowcounts=result.extra.get("batch_rowcounts", []),
    )


_channel_ids = itertools.count(1)


class Transport:
    """Client-side wire factory: where channels come from.

    One transport represents one way of reaching one server; every channel
    it opens shares that destination.  Subclasses implement
    :meth:`open_channel`; the returned :class:`ClientChannel` owns all
    client-side bookkeeping (metrics, tracing, the broken flag) while the
    transport-specific *wire* object behind it does the raw byte round
    trip.
    """

    #: short name for logs/benches ("inprocess", "tcp")
    name = "abstract"

    def open_channel(self, metrics: NetworkMetrics | None = None) -> "ClientChannel":
        raise NotImplementedError

    def close(self) -> None:
        """Release transport-wide resources (channels close individually)."""

    def describe(self) -> str:
        return self.name


class _InProcessWire:
    """The zero-copy wire: a direct call into the endpoint."""

    __slots__ = ("endpoint",)

    def __init__(self, endpoint: ServerEndpoint):
        self.endpoint = endpoint

    def roundtrip(self, raw_request: bytes) -> bytes:
        return self.endpoint.handle(raw_request)

    def close(self) -> None:
        pass


class InProcessTransport(Transport):
    """Today's direct ``endpoint.handle`` call behind the Transport API."""

    name = "inprocess"

    def __init__(self, endpoint: ServerEndpoint):
        self.endpoint = endpoint

    def open_channel(self, metrics: NetworkMetrics | None = None) -> "ClientChannel":
        return ClientChannel(self.endpoint, metrics=metrics)


class ClientChannel:
    """One client connection over some wire.

    Not a session by itself — the session is created by sending a
    ``ConnectRequest`` — but the channel mirrors a socket's lifecycle:
    usable until the first communication error, then permanently broken.

    ``wire`` is either a :class:`ServerEndpoint` (the historical
    constructor shape, wrapped in the in-process wire) or any object with
    ``roundtrip(bytes) -> bytes`` and ``close()``.
    """

    def __init__(
        self,
        wire,
        metrics: NetworkMetrics | None = None,
    ):
        self.channel_id = next(_channel_ids)
        if isinstance(wire, ServerEndpoint):
            wire = _InProcessWire(wire)
        self.wire = wire
        #: the endpoint behind an in-process wire; ``None`` over a socket
        self.endpoint = getattr(wire, "endpoint", None)
        self.metrics = metrics if metrics is not None else NetworkMetrics()
        self.broken = False

    def send(self, request: Request) -> Response:
        """One round trip.  Raises CommunicationError subclasses on
        transport failure and re-raises SQL errors shipped in-band."""
        if self.broken:
            raise errors.CommunicationError("channel is broken (previous failure)")
        raw = encode_message(request)
        request_type = type(request).__name__
        if isinstance(request, BatchExecuteRequest):
            # counted per send attempt: the trip happens whether or not the
            # reply makes it back
            self.metrics.record_batch(len(request.statements))
        with get_tracer().span(
            "wire.send", request=request_type, channel=self.channel_id
        ) as span:
            try:
                raw_response = self.wire.roundtrip(raw)
            except errors.TimeoutError:
                # a client-side timeout abandons the request but not the socket:
                # the server may just be slow (Phoenix probes to find out)
                self.metrics.record_error(request_type, len(raw))
                raise
            except errors.CommunicationError:
                self.broken = True
                self.metrics.record_error(request_type, len(raw))
                raise
            response = decode_message(raw_response)
            self.metrics.record(request_type, len(raw), len(raw_response))
            span.set(bytes_out=len(raw), bytes_in=len(raw_response))
            if isinstance(response, ErrorResponse):
                raise _rebuild_error(response)
            return response

    def close(self) -> None:
        self.broken = True
        self.wire.close()


def _rebuild_error(response: ErrorResponse) -> errors.Error:
    """Re-raise a server error as its original exception class."""
    error_class = getattr(errors, response.error_type, errors.DatabaseError)
    if not (isinstance(error_class, type) and issubclass(error_class, errors.Error)):
        error_class = errors.DatabaseError
    return error_class(response.message)
