"""Length-prefixed framing for the TCP wire.

One frame is a 5-byte header — frame type (1 byte) + payload length
(4 bytes, big-endian) — followed by the payload.  The payload of REQUEST
and RESPONSE frames is a :mod:`repro.net.protocol` message, encoded exactly
as the in-process wire encodes it (``encode_message``), so the framing
layer adds transport, never semantics.

Two control frames let the server express the transport-level outcomes the
in-process :class:`~repro.net.transport.ServerEndpoint` raises as
exceptions:

* ``TIMEOUT`` — the reply is *abandoned* (the HANG fault): a real client's
  request timer would have fired long ago.  Shipping the abandonment as an
  in-band frame keeps the chaos schedules deterministic — no real clocks —
  while preserving the in-process semantics that a timeout does **not**
  break the connection (the server discarded the request; the
  request/response pairing on the socket stays intact).
* ``FATAL`` — a transport-level failure (server crashed mid-request,
  injected connection drop).  The payload names the exception class so the
  client re-raises exactly what the in-process wire would have raised; the
  server closes the connection immediately after, like the RST a dying
  process produces.  A client that sees a bare EOF instead (the notice
  itself was lost) degrades to a plain ``CommunicationError`` — both paths
  leave the channel broken.

:class:`FrameDecoder` is the incremental parser the asyncio server feeds
from ``data_received`` — it must tolerate frames split across reads and
many frames coalesced into one read, which is exactly what TCP delivers.
"""

from __future__ import annotations

import json
import struct

__all__ = [
    "FRAME_REQUEST",
    "FRAME_RESPONSE",
    "FRAME_TIMEOUT",
    "FRAME_FATAL",
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "encode_notice",
    "decode_notice",
    "FrameDecoder",
]

#: client -> server: one encoded Request
FRAME_REQUEST = 0x01
#: server -> client: one encoded Response
FRAME_RESPONSE = 0x02
#: server -> client: the request was abandoned (HANG); connection survives
FRAME_TIMEOUT = 0x03
#: server -> client: transport failure notice; connection closes after this
FRAME_FATAL = 0x04

_KNOWN_TYPES = frozenset((FRAME_REQUEST, FRAME_RESPONSE, FRAME_TIMEOUT, FRAME_FATAL))

_HEADER = struct.Struct("!BI")

#: backstop against a corrupt length prefix walking the decoder off a cliff
#: (no legitimate message in this system approaches it)
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(Exception):
    """The byte stream is not a valid frame sequence (corruption bug —
    never an expected runtime condition)."""


def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """Header + payload, ready for one ``write``/``sendall``."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds cap")
    return _HEADER.pack(frame_type, len(payload)) + payload


def encode_notice(error_type: str, message: str) -> bytes:
    """Payload of a TIMEOUT/FATAL frame: exception class name + message."""
    return json.dumps([error_type, message]).encode("utf-8")


def decode_notice(payload: bytes) -> tuple[str, str]:
    error_type, message = json.loads(payload.decode("utf-8"))
    return str(error_type), str(message)


class FrameDecoder:
    """Incremental frame parser over an arbitrary chunking of the stream.

    ``feed(data)`` returns every frame completed by ``data`` as
    ``(frame_type, payload)`` pairs — zero when a frame is still split
    across reads, several when one read coalesced multiple frames.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        self._buffer.extend(data)
        frames: list[tuple[int, bytes]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            frame_type, length = _HEADER.unpack_from(self._buffer)
            if frame_type not in _KNOWN_TYPES:
                raise FrameError(f"unknown frame type 0x{frame_type:02x}")
            if length > MAX_FRAME_BYTES:
                raise FrameError(f"frame length {length} exceeds cap")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return frames
            frames.append((frame_type, bytes(self._buffer[_HEADER.size:end])))
            del self._buffer[:end]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)
