"""Client/server network substrate.

A deterministic stand-in for the TCP/TDS link the paper's prototype used.
The boundary is real in the ways that matter to Phoenix:

* every client-visible operation is one serialized request/response round
  trip (:mod:`repro.net.protocol`), counted and sized by
  :class:`~repro.net.metrics.NetworkMetrics`;
* failures are the ones ODBC applications actually observe — connection
  reset when the server dies mid-request, a reply lost after the server
  committed, and hangs that surface as client-side timeouts — injected
  deterministically by :class:`~repro.net.faults.FaultInjector`.
"""

from repro.net.faults import FaultInjector, FaultKind
from repro.net.metrics import NetStats, NetworkMetrics
from repro.net.transport import (
    ClientChannel,
    InProcessTransport,
    ServerEndpoint,
    Transport,
)
from repro.net.tcp import TcpServer, TcpTransport

__all__ = [
    "ClientChannel",
    "ServerEndpoint",
    "Transport",
    "InProcessTransport",
    "TcpServer",
    "TcpTransport",
    "FaultInjector",
    "FaultKind",
    "NetworkMetrics",
    "NetStats",
]
