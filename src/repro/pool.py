"""Client-side connection pooling over the PEP 249 front door.

A :class:`ConnectionPool` owns up to ``size`` live connections to one DSN
(registry name, ``tcp://`` URL, or a :class:`repro.System`) and hands them
out with bounded blocking checkout.  Every checkout runs a liveness probe
(``SELECT 1`` through the connection's *own* session — a server-reachable
ping is not enough, because a restarted server answers pings while the
pooled session is gone) and transparently replaces connections that fail
it.  That replacement policy is where the paper's comparison shows up in
miniature: a pool of plain connections replaces every member after a
server crash, while a pool of Phoenix connections passes the same probe by
*recovering* — same pool, zero replacements.

Checkin rolls back any transaction the borrower left open (pool hygiene:
the next borrower must never inherit someone else's transaction) and
discards broken or closed connections so the pool heals back to capacity
on demand.  Counters land in the owning system's
``MetricsRegistry.snapshot()["net"]`` when the DSN resolves to a
registered system — by name or via the name in a ``tcp://host:port/name``
URL (pass ``stats=`` explicitly otherwise).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager

import repro as _repro
from repro import errors
from repro.net.metrics import NetStats

__all__ = ["ConnectionPool"]

DEFAULT_CHECKOUT_TIMEOUT = 5.0


class ConnectionPool:
    """A bounded pool of PEP 249 connections to one DSN."""

    def __init__(
        self,
        dsn,
        size: int,
        *,
        phoenix: bool = True,
        user: str = "app",
        options: dict | None = None,
        config=None,
        checkout_timeout: float = DEFAULT_CHECKOUT_TIMEOUT,
        ping_on_checkout: bool = True,
        stats: NetStats | None = None,
    ):
        if size < 1:
            raise errors.InterfaceError(f"pool size must be >= 1, got {size}")
        self.dsn = dsn
        self.size = size
        self.checkout_timeout = checkout_timeout
        self.ping_on_checkout = ping_on_checkout
        self.stats = stats if stats is not None else _resolve_stats(dsn)
        self._phoenix = phoenix
        self._user = user
        self._options = options
        self._config = config
        self._cond = threading.Condition()
        self._idle: deque = deque()
        self._in_use = 0
        self._closed = False

    # -- checkout / checkin ----------------------------------------------------

    def checkout(self, timeout: float | None = None):
        """Borrow a live connection; blocks up to ``timeout`` seconds when
        all ``size`` slots are out, then raises
        :class:`~repro.errors.OperationalError`."""
        if timeout is None:
            timeout = self.checkout_timeout
        deadline = time.monotonic() + timeout
        with self._cond:
            self._require_open()
            while not self._idle and self._in_use >= self.size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats.pool_exhaustion()
                    raise errors.OperationalError(
                        f"connection pool exhausted: {self.size}/{self.size} "
                        f"checked out after waiting {timeout:.3g}s"
                    )
                self._cond.wait(remaining)
                self._require_open()
            conn = self._idle.popleft() if self._idle else None
            self._in_use += 1  # the slot is reserved before any wire work
        try:
            if conn is None:
                conn = self._connect()
            elif self.ping_on_checkout and not self._is_live(conn):
                self.stats.pool_replacement()
                self._discard(conn)
                conn = self._connect()
        except BaseException:
            with self._cond:
                self._in_use -= 1
                self._cond.notify()
            raise
        self.stats.pool_checkout()
        return conn

    def checkin(self, conn) -> None:
        """Return a borrowed connection.  Open transactions roll back;
        closed or broken connections are discarded (the slot frees up and
        the next checkout creates a replacement)."""
        self.stats.pool_checkin()
        returnable = not conn.closed and not self._closed
        if returnable and getattr(conn, "in_transaction", False):
            try:
                conn.rollback()  # the next borrower never inherits a txn
            except errors.Error:
                returnable = False
        if returnable:
            driver_connection = getattr(conn, "_driver_connection", None)
            if driver_connection is not None and driver_connection.broken:
                returnable = False
        if not returnable:
            self._discard(conn)
        with self._cond:
            self._in_use -= 1
            if returnable and not self._closed:
                self._idle.append(conn)
            self._cond.notify()

    @contextmanager
    def connection(self, timeout: float | None = None):
        """``with pool.connection() as conn:`` — checkout/checkin with the
        PEP 249 block semantics (commit an open transaction on success,
        roll it back on exception)."""
        conn = self.checkout(timeout)
        try:
            yield conn
        except BaseException:
            if not conn.closed and getattr(conn, "in_transaction", False):
                try:
                    conn.rollback()
                except errors.Error:
                    pass  # checkin discards what rollback can't clean
            self.checkin(conn)
            raise
        else:
            try:
                if not conn.closed and getattr(conn, "in_transaction", False):
                    conn.commit()  # a failed commit must not pass silently
            finally:
                self.checkin(conn)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection and refuse further checkouts.
        Borrowed connections are discarded as they come back."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._cond.notify_all()
        for conn in idle:
            self._discard(conn)

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def in_use(self) -> int:
        with self._cond:
            return self._in_use

    @property
    def idle(self) -> int:
        with self._cond:
            return len(self._idle)

    # -- internals -------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise errors.InterfaceError("connection pool is closed")

    def _connect(self):
        return _repro.connect(
            self.dsn,
            phoenix=self._phoenix,
            user=self._user,
            options=self._options,
            config=self._config,
        )

    def _is_live(self, conn) -> bool:
        """Probe the connection's own session, not just the server."""
        if conn.closed:
            return False
        self.stats.pool_ping()
        cursor = None
        try:
            cursor = conn.cursor()
            cursor.execute("SELECT 1")
            cursor.fetchall()
            return True
        except errors.Error:
            return False
        finally:
            if cursor is not None:
                try:
                    cursor.close()
                except errors.Error:
                    pass

    @staticmethod
    def _discard(conn) -> None:
        try:
            conn.close()
        except errors.Error:
            pass  # closing a dead connection is best-effort


def _resolve_stats(dsn) -> NetStats:
    """Default counters: the owning system's ``registry.net`` when the DSN
    resolves to a registered system — by name, or by the name embedded in
    a ``tcp://host:port/name`` URL — else a private object."""
    system = None
    if isinstance(dsn, _repro.System):
        system = dsn
    elif isinstance(dsn, str):
        name = dsn
        if dsn.startswith("tcp://"):
            try:
                _host, _port, name = _repro._parse_url_dsn(dsn)
            except errors.Error:
                name = None
        if name is not None:
            system = _repro._systems.get(name)
    if system is not None:
        return system.registry.net
    return NetStats()
