"""Chaos engine: systematic crash-schedule exploration for Phoenix sessions.

The paper claims a Phoenix session survives *any* server crash with
exactly-once semantics.  Hand-picked crash positions cannot prove that —
this package does it systematically:

* :mod:`repro.chaos.trace` — a deterministic probe/DML workload trace and a
  runner that executes it against a fresh system, recording everything the
  application observed plus server-side ground truth (status-table rows,
  direct table fingerprints, orphaned sessions).
* :mod:`repro.chaos.oracle` — compares a faulted run against the fault-free
  golden run: every DML applied exactly once, no lost or duplicated commit
  replies, result sets gap-free and duplicate-free at their recorded
  offsets, no orphaned server-side state after clean close.
* :mod:`repro.chaos.explorer` — counts the golden run's wire requests, then
  re-runs the trace once per (crash point × fault kind) — all four wire
  faults and both storage faults at every request index — plus a seeded
  random multi-fault mode (2+ faults per run) whose schedules are
  reproducible from the printed seed.

``python -m repro.chaos --seed N`` runs the full sweep (the CI smoke job).
"""

from repro.chaos.explorer import ChaosExplorer, ChaosReport, ChaosRunResult
from repro.chaos.oracle import check_run
from repro.chaos.trace import ChaosTrace, Step, TraceRecord, probe_dml_trace, run_trace

__all__ = [
    "ChaosExplorer",
    "ChaosReport",
    "ChaosRunResult",
    "ChaosTrace",
    "Step",
    "TraceRecord",
    "check_run",
    "probe_dml_trace",
    "run_trace",
]
