"""Systematic crash-schedule exploration.

:class:`ChaosExplorer` first executes the trace fault-free and counts how
many wire requests the whole run makes (the *golden* run).  Every request
index is then a crash point: the single-fault sweep re-runs the trace once
per ``(fault kind, request index)`` pair — all four wire faults and both
storage faults at every index — and the oracle compares each run against
the golden record.  A seeded random mode layers 2+ faults per run on top;
its schedules derive from ``random.Random(seed)`` only, so any failure
reproduces from the printed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import cached_property

from repro.chaos.oracle import check_run
from repro.chaos.trace import ChaosTrace, TraceRecord, probe_dml_trace, run_trace
from repro.net.faults import (
    DRAIN_FAULTS,
    RESTORE_FAULTS,
    STORAGE_FAULTS,
    WIRE_FAULTS,
    FaultKind,
)

__all__ = ["ChaosExplorer", "ChaosReport", "ChaosRunResult"]

#: entries are (request_index, kind) or (request_index, kind, arg)
Schedule = tuple[tuple, ...]


@dataclass
class ChaosRunResult:
    """One faulted run, judged against the golden record."""

    schedule: Schedule
    violations: list[str]
    completed: bool
    fired: tuple[str, ...]
    recoveries: int
    requests_seen: int
    virtual_session_seconds: float
    sql_state_seconds: float
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        parts = []
        for entry in self.schedule:
            after, kind = entry[0], entry[1]
            arg = entry[2] if len(entry) > 2 else None
            suffix = f"[{arg}]" if arg is not None else ""
            parts.append(f"{kind.value}{suffix}@{after}")
        return f"[{', '.join(parts)}]"


@dataclass
class ChaosReport:
    """Aggregate of a sweep: every run plus the recovery-time split."""

    golden_requests: int
    results: list[ChaosRunResult] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> list[ChaosRunResult]:
        return [r for r in self.results if not r.ok]

    @property
    def recovered_fraction(self) -> float:
        if not self.results:
            return 1.0
        return sum(1 for r in self.results if r.ok) / len(self.results)

    @property
    def total_recoveries(self) -> int:
        return sum(r.recoveries for r in self.results)

    @property
    def mean_virtual_session_seconds(self) -> float:
        """Mean phase-1 (virtual session rebuild) time per recovery."""
        n = self.total_recoveries
        return sum(r.virtual_session_seconds for r in self.results) / n if n else 0.0

    @property
    def mean_sql_state_seconds(self) -> float:
        """Mean phase-2 (SQL state restoration) time per recovery."""
        n = self.total_recoveries
        return sum(r.sql_state_seconds for r in self.results) / n if n else 0.0

    def merge(self, other: "ChaosReport") -> "ChaosReport":
        self.results.extend(other.results)
        return self

    def summary(self) -> dict:
        return {
            "golden_requests": self.golden_requests,
            "runs": self.runs,
            "recovered_fraction": self.recovered_fraction,
            "total_recoveries": self.total_recoveries,
            "mean_virtual_session_seconds": self.mean_virtual_session_seconds,
            "mean_sql_state_seconds": self.mean_sql_state_seconds,
            "failures": [
                {"schedule": r.describe(), "violations": r.violations}
                for r in self.failures
            ],
        }


class ChaosExplorer:
    """Drives sweeps of one trace and judges every run against its golden."""

    def __init__(self, trace: ChaosTrace | None = None, *, seed: int = 0):
        self.trace = trace if trace is not None else probe_dml_trace()
        self.seed = seed

    @cached_property
    def golden(self) -> TraceRecord:
        record = run_trace(self.trace)
        if not record.completed:
            raise RuntimeError(f"golden run failed: {record.error}")
        if record.fired:
            raise RuntimeError(f"golden run saw faults fire: {record.fired}")
        return record

    # -- running ------------------------------------------------------------

    def run_schedule(self, schedule: Schedule, *, tracer=None) -> ChaosRunResult:
        """Run one faulted schedule; pass a ``repro.obs.Tracer`` to capture
        the run as a span trace (see :func:`repro.chaos.trace.run_trace`)."""
        record = run_trace(self.trace, schedule, tracer=tracer)
        return ChaosRunResult(
            schedule=tuple(schedule),
            violations=check_run(self.golden, record),
            completed=record.completed,
            fired=record.fired,
            recoveries=record.recoveries,
            requests_seen=record.requests_seen,
            virtual_session_seconds=record.virtual_session_seconds,
            sql_state_seconds=record.sql_state_seconds,
            error=record.error,
        )

    def _sweep(self, kinds: tuple[FaultKind, ...], *, stride: int = 1) -> ChaosReport:
        report = ChaosReport(golden_requests=self.golden.requests_seen)
        for kind in kinds:
            for index in range(0, self.golden.requests_seen, stride):
                report.results.append(self.run_schedule(((index, kind),)))
        return report

    def sweep_single_faults(
        self,
        kinds: tuple[FaultKind, ...] = WIRE_FAULTS,
        *,
        stride: int = 1,
    ) -> ChaosReport:
        """One wire fault per run, at every crash point (``stride`` thins
        the index grid for quick smoke runs)."""
        return self._sweep(kinds, stride=stride)

    def sweep_storage_faults(self, *, stride: int = 1) -> ChaosReport:
        """Torn WAL tail and failed force, armed at every request index."""
        return self._sweep(STORAGE_FAULTS, stride=stride)

    def sweep_batch_faults(self, *, stride: int = 1) -> ChaosReport:
        """CRASH_MID_BATCH at every interior position of every batch request.

        The golden run records each BatchExecuteRequest's index and size;
        for an N-statement batch the kill is placed after 0..N executed
        sub-statements (N = every sub-statement ran but the group force has
        not — all its commits are still deferred and die with the server).
        Every position must recover to the same exactly-once outcome.
        """
        report = ChaosReport(golden_requests=self.golden.requests_seen)
        for index, size in self.golden.batch_requests:
            for executed in range(0, size + 1, stride):
                report.results.append(
                    self.run_schedule(((index, FaultKind.CRASH_MID_BATCH, executed),))
                )
        return report

    def sweep_drain_faults(self, *, stride: int = 1) -> ChaosReport:
        """CRASH_MID_DRAIN at every request index, at both kill positions.

        A planned restart begins while the scheduled request is in flight
        and the process dies inside it: arg 0 kills during the drain window
        (nothing checkpointed by the drain), arg 1 during the swap (after
        the checkpoint, before the fresh engine boots).  Both must degrade
        into the ordinary crash-recovery path with exactly-once outcomes —
        a planned restart must never be *less* safe than a crash.
        """
        report = ChaosReport(golden_requests=self.golden.requests_seen)
        for kind in DRAIN_FAULTS:
            for index in range(0, self.golden.requests_seen, stride):
                for arg in (0, 1):
                    report.results.append(self.run_schedule(((index, kind, arg),)))
        return report

    def sweep_restore_faults(self, *, stride: int = 1) -> ChaosReport:
        """CRASH_MID_RESTORE at every request index, at both kill positions.

        A ``restore_to`` begins while the scheduled request is in flight and
        the process dies inside it: arg 0 kills during the drain window
        (storage untouched), arg 1 after the storage rewrite — a restore *to
        now*, which preserves every committed transaction, so the golden
        comparison stays valid — but before the fresh engine boots.  Both
        must degrade into ordinary crash recovery with exactly-once
        outcomes: a restore must never be *less* safe than a crash.
        """
        report = ChaosReport(golden_requests=self.golden.requests_seen)
        for kind in RESTORE_FAULTS:
            for index in range(0, self.golden.requests_seen, stride):
                for arg in (0, 1):
                    report.results.append(self.run_schedule(((index, kind, arg),)))
        return report

    # -- seeded multi-fault mode --------------------------------------------

    def random_schedules(
        self, count: int, *, min_faults: int = 2, max_faults: int = 4
    ) -> list[Schedule]:
        """``count`` reproducible multi-fault schedules from ``self.seed``.

        Indexes range 20% past the golden request count because recovery
        traffic makes faulted runs longer than the golden run; a fault
        scheduled past the run's actual end simply never fires.
        """
        rng = random.Random(self.seed)
        kinds = WIRE_FAULTS + STORAGE_FAULTS
        horizon = int(self.golden.requests_seen * 1.2) + 1
        schedules = []
        for _ in range(count):
            n_faults = rng.randint(min_faults, max_faults)
            schedule = tuple(
                sorted(
                    ((rng.randrange(horizon), rng.choice(kinds)) for _ in range(n_faults)),
                    key=lambda pair: (pair[0], pair[1].value),
                )
            )
            schedules.append(schedule)
        return schedules

    def sweep_random(
        self, count: int, *, min_faults: int = 2, max_faults: int = 4
    ) -> ChaosReport:
        report = ChaosReport(golden_requests=self.golden.requests_seen)
        for schedule in self.random_schedules(
            count, min_faults=min_faults, max_faults=max_faults
        ):
            report.results.append(self.run_schedule(schedule))
        return report
