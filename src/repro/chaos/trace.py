"""The chaos workload trace and its runner.

A :class:`ChaosTrace` is a deterministic application script covering every
Phoenix mechanism the paper describes: SET options, wrapped DDL/DML,
materialized default result sets with partial fetches, a keyset cursor,
temp-object redirection, explicit transactions (committed and rolled
back), and clean close.  :func:`run_trace` executes it against a fresh
:func:`repro.make_system` deployment — optionally under a fault schedule —
and returns a :class:`TraceRecord`:

* ``observations`` — everything the *application* saw, in order (row blocks
  at their delivered offsets, DML rowcounts, commit acknowledgements);
* ``status_rows`` — the Phoenix status table read server-side (bypassing
  the wire, so the read cannot meet a scheduled fault);
* ``fingerprints`` — each user table's full content, read server-side and
  canonically sorted;
* post-close hygiene: orphaned sessions/cursors and leftover ``phx_*``
  objects on the server.

The oracle (:mod:`repro.chaos.oracle`) compares a faulted run's record
against the fault-free golden record field by field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import repro
from repro import errors
from repro.net.faults import FaultKind
from repro.obs.tracer import Tracer, use_tracer
from repro.odbc.constants import CursorType, StatementAttr

__all__ = ["Step", "ChaosTrace", "TraceRecord", "probe_dml_trace", "run_trace"]


@dataclass(frozen=True)
class Step:
    """One application action.  ``op`` selects the shape:

    * ``set`` — ``connection.set_option(name, value)``
    * ``ddl`` / ``dml`` — ``cursor.execute(sql)`` (autocommit, wrapped)
    * ``query`` — execute ``sql`` then ``fetchmany(n)`` for each n in
      ``fetches`` (a short list leaves the delivery open mid-result)
    * ``cursor_query`` — same, through a keyset server cursor
    * ``begin`` / ``commit`` / ``rollback`` — explicit transaction control
    * ``txn`` — ``cursor.execute(sql)`` inside the open transaction
    * ``executemany`` — ``cursor.executemany(sql, rows)`` with the wire
      batch size set to ``batch_size`` (exercises BatchExecuteRequest +
      WAL group commit, including partial-batch replay under faults)
    """

    op: str
    sql: str = ""
    name: str = ""
    value: Any = None
    fetches: tuple[int, ...] = ()
    rows: tuple[tuple, ...] = ()
    batch_size: int = 0


@dataclass(frozen=True)
class ChaosTrace:
    steps: tuple[Step, ...]
    #: user tables to fingerprint (must survive the trace)
    tables: tuple[str, ...]


def probe_dml_trace() -> ChaosTrace:
    """The canonical probe/DML trace the chaos sweep explores."""
    return ChaosTrace(
        steps=(
            Step("set", name="lock_timeout", value=1000),
            Step("ddl", sql="CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT)"),
            Step(
                "dml",
                sql="INSERT INTO accounts VALUES "
                "(1, 100.0), (2, 200.0), (3, 300.0), (4, 400.0)",
            ),
            Step("query", sql="SELECT id, balance FROM accounts ORDER BY id", fetches=(2, 10)),
            Step("cursor_query", sql="SELECT id, balance FROM accounts", fetches=(2, 2, 10)),
            Step("dml", sql="UPDATE accounts SET balance = balance + 5 WHERE id <= 2"),
            Step("ddl", sql="CREATE TABLE #scratch (k INT PRIMARY KEY, note VARCHAR(10))"),
            Step("dml", sql="INSERT INTO #scratch VALUES (1, 'a'), (2, 'b')"),
            Step("query", sql="SELECT k, note FROM #scratch ORDER BY k", fetches=(10,)),
            Step("begin"),
            Step("txn", sql="UPDATE accounts SET balance = balance - 25 WHERE id = 1"),
            Step("txn", sql="UPDATE accounts SET balance = balance + 25 WHERE id = 3"),
            Step("commit"),
            Step("begin"),
            Step("txn", sql="UPDATE accounts SET balance = 0 WHERE id = 4"),
            Step("rollback"),
            Step("dml", sql="DELETE FROM accounts WHERE id = 2"),
            Step("ddl", sql="DROP TABLE #scratch"),
            Step("query", sql="SELECT sum(balance) FROM accounts", fetches=(1,)),
            Step(
                "query",
                sql="SELECT id, balance FROM accounts ORDER BY id",
                fetches=(1, 2, 5),
            ),
            # batched-executemany segment: 6 wrapped INSERTs in 2 wire
            # batches of 3 — mid-batch faults land between sub-statements,
            # and a storage fault scheduled at a batch request tears the WAL
            # tail under the *group* force
            Step(
                "executemany",
                sql="INSERT INTO accounts VALUES (?, ?)",
                rows=(
                    (10, 10.0),
                    (11, 11.0),
                    (12, 12.0),
                    (13, 13.0),
                    (14, 14.0),
                    (15, 15.0),
                ),
                batch_size=3,
            ),
            Step(
                "query",
                sql="SELECT count(*), sum(balance) FROM accounts",
                fetches=(1,),
            ),
        ),
        tables=("accounts",),
    )


@dataclass
class TraceRecord:
    """Everything one run of a trace produced — the oracle's raw material."""

    #: ordered application-visible events: ("rows", step, offset, rows),
    #: ("dml", step, rowcount), ("commit", step), ("rollback", step), ...
    observations: list[tuple] = field(default_factory=list)
    #: (stmt_seq, n_rows) rows of the Phoenix status table, read
    #: server-side; None = the table did not exist
    status_rows: frozenset | None = None
    #: table name -> canonically sorted tuple of its rows (server-side read)
    fingerprints: dict[str, tuple] = field(default_factory=dict)
    completed: bool = False
    error: str = ""
    #: wire requests the fault injector inspected over the whole run
    requests_seen: int = 0
    #: (request_index, sub-statement count) of every BatchExecuteRequest —
    #: the explorer sweeps CRASH_MID_BATCH over each interior position
    batch_requests: tuple[tuple[int, int], ...] = ()
    #: fault kinds that actually fired (names, in firing order)
    fired: tuple[str, ...] = ()
    orphan_sessions: int = 0
    orphan_cursors: int = 0
    leftover_tables: tuple[str, ...] = ()
    recoveries: int = 0
    spurious_timeouts: int = 0
    sessions_reaped: int = 0
    recovery_pings: int = 0
    virtual_session_seconds: float = 0.0
    sql_state_seconds: float = 0.0
    #: (step_index, ts) moments pinned between steps while the run executed
    time_travel_cuts: tuple = ()
    #: end-of-run ``AS OF`` replay failures: each pinned moment must
    #: reproduce the table fingerprints captured when it was pinned
    time_travel_violations: tuple[str, ...] = ()


def run_trace(
    trace: ChaosTrace,
    schedule: tuple[tuple, ...] = (),
    *,
    tracer: Tracer | None = None,
    transport: str = "inprocess",
) -> TraceRecord:
    """Run ``trace`` on a fresh system under ``schedule`` and record it.

    ``schedule`` is a tuple of ``(request_index, FaultKind)`` pairs — or
    ``(request_index, FaultKind, arg)`` triples for kinds that take an
    argument (CRASH_MID_BATCH's sub-statement position); each
    becomes a one-shot fault armed before the first request, so index *i*
    fires on the i-th wire request (0-based).  The injected ``sleep``
    restarts a downed server, standing in for the operator/watchdog the
    paper assumes — recovery waits out the outage and proceeds.

    Pass a ``tracer`` (:class:`repro.obs.Tracer`) to capture the whole run
    as a span trace — it is installed process-wide for the run's duration
    and restored after; read the records off ``tracer.records`` or render
    them with :func:`repro.obs.render_tree`.

    ``transport="tcp"`` runs the identical trace over real sockets: the
    fresh system gets an asyncio TCP listener on a free port and the
    Phoenix stack rides :class:`~repro.net.tcp.TcpTransport`.  The fault
    injector sits server-side behind the listener, so the same schedule
    fires at the same request indices — the parity tests assert the record
    (fingerprints included) is byte-identical to the in-process run.
    """
    if tracer is not None:
        with use_tracer(tracer):
            return _run_trace(trace, schedule, transport)
    return _run_trace(trace, schedule, transport)


def _run_trace(
    trace: ChaosTrace,
    schedule: tuple[tuple, ...],
    transport: str = "inprocess",
) -> TraceRecord:
    if transport == "tcp":
        system = repro.make_system(listen="127.0.0.1:0")
    else:
        system = repro.make_system(transport=transport)
    try:
        return _run_trace_on(system, trace, schedule)
    finally:
        system.close()  # stops the TCP listener; no-op in-process


def _run_trace_on(
    system, trace: ChaosTrace, schedule: tuple[tuple, ...]
) -> TraceRecord:
    config = system.phoenix.config

    def sleep(_seconds: float) -> None:
        if not system.server.up:
            system.endpoint.restart_server()

    config.sleep = sleep
    for entry in schedule:
        after, kind = entry[0], entry[1]
        arg = entry[2] if len(entry) > 2 else None
        system.faults.schedule(kind, after=after, arg=arg)

    record = TraceRecord()
    connection = None
    tt_cuts: list[tuple[int, float, dict[str, tuple]]] = []
    try:
        connection = system.phoenix.connect(system.DSN)
        cursor = connection.cursor()
        for index, step in enumerate(trace.steps):
            _run_step(record, connection, cursor, index, step)
            _pin_time_travel_cut(system, connection, trace, index, tt_cuts)
        record.completed = True
    except Exception as exc:  # the oracle reports it; nothing may escape
        record.error = f"{type(exc).__name__}: {exc}"

    # --- server-side ground truth, read off the wire (fault-immune) --------
    _ensure_up(system)
    if connection is not None:
        record.status_rows = _read_status(system, connection.names.status_table)
    for table in trace.tables:
        record.fingerprints[table] = _fingerprint(system, table)
    record.time_travel_cuts = tuple((index, ts) for index, ts, _ in tt_cuts)
    record.time_travel_violations = tuple(_replay_time_travel_cuts(system, tt_cuts))

    # --- clean close, then post-close hygiene ------------------------------
    if connection is not None:
        try:
            connection.close()
        except Exception as exc:
            if record.completed:
                record.completed = False
                record.error = f"close failed: {type(exc).__name__}: {exc}"
        record.recoveries = connection.stats.recoveries
        record.spurious_timeouts = connection.stats.spurious_timeouts
        record.sessions_reaped = connection.stats.sessions_reaped
        record.recovery_pings = connection.stats.recovery_pings
        record.virtual_session_seconds = connection.stats.virtual_session_seconds_total
        record.sql_state_seconds = connection.stats.sql_state_seconds_total
    _ensure_up(system)
    record.orphan_sessions = len(system.server.sessions)
    record.orphan_cursors = sum(
        len(s.cursors) for s in system.server.sessions.values()
    )
    record.leftover_tables = tuple(
        name for name in system.server.table_names() if name.startswith("phx_")
    )
    record.requests_seen = system.faults.requests_seen
    record.batch_requests = tuple(system.faults.batch_requests)
    record.fired = tuple(kind.value for kind in system.faults.fired)
    return record


def _run_step(record, connection, cursor, index, step) -> None:
    if step.op == "set":
        connection._set_option(step.name, step.value)
        record.observations.append(("set", index))
        return
    if step.op == "begin":
        connection.begin()
        record.observations.append(("begin", index))
        return
    if step.op == "commit":
        connection.commit()
        record.observations.append(("commit", index))
        return
    if step.op == "rollback":
        connection.rollback()
        record.observations.append(("rollback", index))
        return
    if step.op in ("query", "cursor_query"):
        if step.op == "cursor_query":
            cursor.set_attr(StatementAttr.CURSOR_TYPE, CursorType.KEYSET)
        else:
            cursor.set_attr(StatementAttr.CURSOR_TYPE, CursorType.FORWARD_ONLY)
        cursor.execute(step.sql)
        offset = 0
        for n in step.fetches:
            rows = cursor.fetchmany(n)
            record.observations.append(("rows", index, offset, tuple(rows)))
            offset += len(rows)
        return
    if step.op == "executemany":
        cursor.set_attr(StatementAttr.CURSOR_TYPE, CursorType.FORWARD_ONLY)
        if step.batch_size:
            cursor.set_attr(StatementAttr.BATCH_SIZE, step.batch_size)
        cursor.executemany(step.sql, [list(row) for row in step.rows])
        record.observations.append(("executemany", index, cursor.rowcount))
        return
    # ddl / dml / txn: one statement through the cursor
    cursor.set_attr(StatementAttr.CURSOR_TYPE, CursorType.FORWARD_ONLY)
    cursor.execute(step.sql)
    record.observations.append((step.op, index, cursor.rowcount))


def _pin_time_travel_cut(system, connection, trace, index, cuts) -> None:
    """Stamp a moment strictly between this step's commits and the next
    step's (the commit clock is shared and strictly monotonic, so the stamp
    is a guaranteed-valid cut) and fingerprint every user table server-side.
    At the end of the run ``AS OF <stamp>`` must reproduce each fingerprint
    exactly — the log is the time machine (docs/TIME_TRAVEL.md).  Best
    effort: a server that is down or mid-drain pins nothing, and neither
    does a step inside an open application transaction — the live
    fingerprint would see that transaction's uncommitted rows, which no
    cut may ever show (``AS OF`` reads committed state only)."""
    if not system.server.up:
        return
    if connection.in_transaction:
        return
    try:
        ts = system.server.time_travel.clock.now()
        fps = {table: _fingerprint(system, table) for table in trace.tables}
    except errors.Error:
        return  # crashed/draining under a fault: no cut to pin
    cuts.append((index, ts, fps))


def _replay_time_travel_cuts(system, cuts) -> list[str]:
    """End-of-run check: every pinned moment must still reconstruct to the
    fingerprints captured live — across every crash, recovery, checkpoint
    truncation, and restore the run performed in between."""
    violations: list[str] = []
    for index, ts, fps in cuts:
        for table, expected in fps.items():
            session_id = _server_session(system)
            try:
                result = system.server.execute(
                    session_id, f"SELECT * FROM {table} AS OF {ts!r}"
                )
                actual = tuple(sorted(result.result_set.rows))
            except errors.CatalogError:
                actual = ("<missing>",)
            except errors.Error as exc:
                violations.append(
                    f"cut after step {index} not reconstructible for "
                    f"{table}: {type(exc).__name__}: {exc}"
                )
                continue
            finally:
                system.server.disconnect(session_id)
            if actual != expected:
                violations.append(
                    f"cut after step {index} diverged for {table}: "
                    f"expected {len(expected)} rows, got {len(actual)}"
                )
    return violations


def _ensure_up(system) -> None:
    if not system.server.up:
        system.endpoint.restart_server()


def _server_session(system):
    return system.server.connect("chaos-oracle")


def _read_status(system, status_table: str) -> frozenset | None:
    """The status table's rows, read through a direct server session (no
    wire, no faults).  None when the table does not exist."""
    session_id = _server_session(system)
    try:
        result = system.server.execute(
            session_id, f"SELECT stmt_seq, n_rows FROM {status_table}"
        )
        return frozenset(result.result_set.rows)
    except errors.CatalogError:
        return None
    finally:
        system.server.disconnect(session_id)


def _fingerprint(system, table: str) -> tuple:
    """Canonical content fingerprint of ``table`` (sorted row tuples);
    ("<missing>",) when the table does not exist."""
    session_id = _server_session(system)
    try:
        result = system.server.execute(session_id, f"SELECT * FROM {table}")
        return tuple(sorted(result.result_set.rows))
    except errors.CatalogError:
        return ("<missing>",)
    finally:
        system.server.disconnect(session_id)
