"""CLI sweep driver: ``python -m repro.chaos [--seed N] [--stride K] ...``.

Runs the exhaustive single-fault wire sweep, the storage-fault sweep, the
mid-batch crash sweep (every interior position of every batched request),
the mid-drain crash sweep (a planned restart killed during its drain window
and during its swap), and a batch of seeded multi-fault schedules, then
prints a summary.  Exits 1 on
any oracle violation, printing the seed and the exact failing schedule so
the run reproduces with ``ChaosExplorer(seed=N).run_schedule(schedule)``.
With ``--trace-dir DIR`` every failing schedule is re-run under a tracer
and its span trace written to ``DIR`` as JSONL — the violation report names
the file, and ``python -m repro.obs --load FILE`` renders the timeline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.chaos.explorer import ChaosExplorer
from repro.obs.tracer import Tracer, dump_jsonl


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Systematic crash-schedule sweep with the exactly-once oracle.",
    )
    parser.add_argument("--seed", type=int, default=0, help="multi-fault RNG seed")
    parser.add_argument(
        "--stride", type=int, default=1, help="crash-point stride (1 = exhaustive)"
    )
    parser.add_argument(
        "--random-runs", type=int, default=24, help="seeded multi-fault run count"
    )
    parser.add_argument("--json", action="store_true", help="emit the summary as JSON")
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="re-run each failing schedule traced; write span traces here",
    )
    args = parser.parse_args(argv)

    explorer = ChaosExplorer(seed=args.seed)
    golden = explorer.golden
    print(
        f"golden run: {golden.requests_seen} wire requests, "
        f"{len(golden.observations)} observations",
        file=sys.stderr,
    )

    report = explorer.sweep_single_faults(stride=args.stride)
    report.merge(explorer.sweep_storage_faults(stride=args.stride))
    report.merge(explorer.sweep_batch_faults(stride=args.stride))
    report.merge(explorer.sweep_drain_faults(stride=args.stride))
    report.merge(explorer.sweep_random(args.random_runs))

    summary = report.summary()
    summary["seed"] = args.seed
    summary["stride"] = args.stride
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"{report.runs} runs, {report.recovered_fraction:.1%} passed the oracle, "
            f"{report.total_recoveries} recoveries "
            f"(phase 1 mean {report.mean_virtual_session_seconds * 1e3:.3f} ms, "
            f"phase 2 mean {report.mean_sql_state_seconds * 1e3:.3f} ms)"
        )
    if report.failures:
        print(f"seed={args.seed} — {len(report.failures)} FAILING SCHEDULE(S):")
        for i, result in enumerate(report.failures):
            print(f"  {result.describe()}")
            for violation in result.violations:
                print(f"    - {violation}")
            if args.trace_dir is not None:
                # deterministic re-run under a tracer: same trace, same
                # schedule, so the captured spans show the failing timeline
                args.trace_dir.mkdir(parents=True, exist_ok=True)
                tracer = Tracer(enabled=True, seed=args.seed)
                explorer.run_schedule(result.schedule, tracer=tracer)
                path = args.trace_dir / f"failure-{i}.jsonl"
                dump_jsonl(tracer.records, path)
                print(f"    trace: {path} (render: python -m repro.obs --load {path})")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
