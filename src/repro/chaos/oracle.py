"""The exactly-once oracle: golden run vs. faulted run.

Each check maps to one of the paper's guarantees:

* **observations** — everything the application saw must be bit-identical
  to the golden run: result-set blocks at their recorded offsets (gap-free
  and duplicate-free delivery), DML rowcounts, commit/rollback
  acknowledgements in order.  A lost or duplicated commit reply, a skipped
  or re-delivered row, or an application-visible error all surface here.
* **status rows** — the Phoenix status table is the server-side truth of
  which wrapped statements and commits ran; set equality with the golden
  run means every DML applied exactly once (no row: lost; extra or
  diverging row: duplicated/diverged).
* **fingerprints** — direct table content comparison, independent of the
  status table, so a bug that fooled the testable-state machinery is still
  caught.
* **hygiene** — after a clean close the server must hold no orphaned
  sessions or cursors and no leftover ``phx_*`` objects.
* **time travel** — moments pinned between steps while the run executed
  must still reconstruct (``AS OF``) to the fingerprints captured live,
  across every crash, recovery, and checkpoint truncation in between
  (the run carries its violations in ``time_travel_violations``).
"""

from __future__ import annotations

from repro.chaos.trace import TraceRecord

__all__ = ["check_run"]


def check_run(golden: TraceRecord, run: TraceRecord) -> list[str]:
    """Compare ``run`` against ``golden``; returns violations (empty = pass)."""
    violations: list[str] = []

    if not run.completed:
        violations.append(f"run did not complete cleanly: {run.error}")

    if run.observations != golden.observations:
        violations.append(_first_divergence(golden.observations, run.observations))

    if run.status_rows != golden.status_rows:
        violations.extend(_status_diff(golden.status_rows, run.status_rows))

    for table, expected in golden.fingerprints.items():
        actual = run.fingerprints.get(table)
        if actual != expected:
            violations.append(
                f"table {table} diverged from golden fingerprint: "
                f"expected {len(expected)} rows, got "
                f"{'<absent>' if actual is None else len(actual)} "
                f"(first diff: {_first_row_diff(expected, actual)})"
            )

    violations.extend(run.time_travel_violations)

    if run.orphan_sessions:
        violations.append(
            f"{run.orphan_sessions} orphaned server session(s) "
            f"({run.orphan_cursors} cursor(s)) after clean close"
        )
    if run.leftover_tables != golden.leftover_tables:
        violations.append(
            f"leftover phx_* objects after close: {sorted(run.leftover_tables)}"
        )
    return violations


def _first_divergence(golden: list, run: list) -> str:
    for i, (expected, actual) in enumerate(zip(golden, run)):
        if expected != actual:
            return (
                f"observation {i} diverged: expected {expected!r}, got {actual!r}"
            )
    if len(run) < len(golden):
        return (
            f"observations truncated at {len(run)}/{len(golden)}: "
            f"next expected {golden[len(run)]!r}"
        )
    return (
        f"extra observations past {len(golden)}: first extra {run[len(golden)]!r}"
    )


def _status_diff(golden: frozenset | None, run: frozenset | None) -> list[str]:
    if golden is None or run is None:
        return [
            f"status table presence diverged: golden "
            f"{'present' if golden is not None else 'absent'}, run "
            f"{'present' if run is not None else 'absent'}"
        ]
    out = []
    lost = golden - run
    if lost:
        out.append(f"status rows lost (statement never applied): {sorted(lost)}")
    extra = run - golden
    if extra:
        out.append(f"status rows diverged/duplicated: {sorted(extra)}")
    return out


def _first_row_diff(expected: tuple, actual: tuple | None) -> str:
    if actual is None:
        return "table absent"
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            return f"row {i}: expected {e!r}, got {a!r}"
    return f"length {len(expected)} vs {len(actual)}"
