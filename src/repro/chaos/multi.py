"""Multi-client chaos: k concurrent sessions, a crash, exactly-once each.

The single-client explorer (:mod:`repro.chaos.explorer`) sweeps crash
positions over one session's wire trace.  Under concurrent serving the
sharper question is: when the server dies while *k* clients are mid-flight
— several of them inside explicit transactions — does **every** client
still observe exactly-once execution?

Determinism under concurrency needs care: the global interleaving of wire
requests is scheduler-dependent, so there is no meaningful global golden
trace.  What *is* deterministic is each client's own story — every client
works a disjoint key range of one shared table, its requests are ordered
per-session by the dispatcher, and its statement sequence numbers are
allocated client-side.  The oracle therefore compares **per client**:
observations (row blocks, DML rowcounts, commit acks, in order), the
client's own status-table rows, and finally the shared table's content
fingerprint (the union of the disjoint ranges is interleaving-independent).

Two crash shapes:

* **positional** — a one-shot crash on the N-th wire request, whoever sent
  it (the classic explorer sweep, now racing k clients);
* **targeted** — a :class:`~repro.net.faults.ScheduledFault` with
  ``session_id`` set so the server dies exactly when the victim client's
  COMMIT arrives, while a barrier guarantees every other client is holding
  an open transaction at that moment.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import repro
from repro.chaos.trace import Step, _ensure_up, _fingerprint, _read_status, _run_step
from repro.net.faults import FaultKind

__all__ = [
    "SHARED_TABLE",
    "ClientRecord",
    "MultiTraceRecord",
    "client_steps",
    "run_multi_trace",
    "check_multi_run",
    "sweep_multi",
]

SHARED_TABLE = "chaos_accounts"


def wallet_table(index: int) -> str:
    """Client ``index``'s private table.  Historically load-bearing: with
    table-granular locks an explicit transaction that held the *shared*
    table's X lock across the barrier would starve every other client (an
    application-level deadlock between the lock and the barrier).  Row
    locking has since removed that hazard — clients touch disjoint key
    ranges, so their explicit transactions would coexist on the shared
    table under IX — but per-client wallets stay: they keep the oracle's
    per-client golden traces independent of sibling clients by
    construction, and preserve the shared-vs-private coverage split (all k
    clients mid-transaction at the crash instant on wallets, autocommit
    DML contending on the shared table)."""
    return f"chaos_wallet_{index}"


def client_steps(index: int) -> tuple[tuple[Step, ...], tuple[Step, ...]]:
    """Client ``index``'s deterministic workload over its own key range,
    split at the mid-transaction barrier point (between the two halves the
    client holds an open explicit transaction on its wallet table)."""
    base = 100 * (index + 1)
    wallet = wallet_table(index)
    pre = (
        Step(
            "ddl",
            sql=f"CREATE TABLE {wallet} (id INT PRIMARY KEY, balance FLOAT)",
        ),
        Step("dml", sql=f"INSERT INTO {wallet} VALUES (1, 50.0), (2, 50.0)"),
        Step(
            "dml",
            sql=f"INSERT INTO {SHARED_TABLE} VALUES "
            f"({base + 1}, 10.0), ({base + 2}, 20.0), ({base + 3}, 30.0)",
        ),
        Step(
            "query",
            sql=f"SELECT id, balance FROM {SHARED_TABLE} "
            f"WHERE id >= {base + 1} AND id <= {base + 3} ORDER BY id",
            fetches=(2, 5),
        ),
        Step("begin"),
        Step(
            "txn",
            sql=f"UPDATE {wallet} SET balance = balance - 5 WHERE id = 1",
        ),
    )
    post = (
        Step(
            "txn",
            sql=f"UPDATE {wallet} SET balance = balance + 5 WHERE id = 2",
        ),
        Step("commit"),
        Step(
            "dml",
            sql=f"UPDATE {SHARED_TABLE} SET balance = balance * 2 WHERE id = {base + 3}",
        ),
        Step(
            "executemany",
            sql=f"INSERT INTO {SHARED_TABLE} VALUES (?, ?)",
            rows=(
                (base + 4, 4.0),
                (base + 5, 5.0),
                (base + 6, 6.0),
                (base + 7, 7.0),
            ),
            batch_size=2,
        ),
        Step("dml", sql=f"DELETE FROM {SHARED_TABLE} WHERE id = {base + 4}"),
        Step(
            "query",
            sql=f"SELECT count(*), sum(balance) FROM {SHARED_TABLE} "
            f"WHERE id >= {base + 1} AND id <= {base + 7}",
            fetches=(1,),
        ),
        Step(
            "query",
            sql=f"SELECT sum(balance) FROM {wallet}",
            fetches=(1,),
        ),
    )
    return pre, post


@dataclass
class ClientRecord:
    """One client's deterministic story, as it saw it."""

    index: int
    observations: list[tuple] = field(default_factory=list)
    status_rows: frozenset | None = None
    completed: bool = False
    error: str = ""
    recoveries: int = 0
    deadlock_retries: int = 0


@dataclass
class MultiTraceRecord:
    """Everything one multi-client run produced."""

    clients: list[ClientRecord] = field(default_factory=list)
    #: table name -> canonically sorted rows: the shared table plus every
    #: client's wallet table (server-side reads)
    fingerprints: dict[str, tuple] = field(default_factory=dict)
    requests_seen: int = 0
    fired: tuple[str, ...] = ()
    orphan_sessions: int = 0
    orphan_cursors: int = 0
    leftover_tables: tuple[str, ...] = ()

    @property
    def completed(self) -> bool:
        return all(c.completed for c in self.clients)


def run_multi_trace(
    clients: int,
    *,
    schedule: tuple[tuple, ...] = (),
    crash_victim: int | None = None,
) -> MultiTraceRecord:
    """Run ``clients`` concurrent sessions of the multi-client workload.

    ``schedule`` arms positional one-shot faults (``(request_index,
    FaultKind)`` pairs, like :func:`repro.chaos.trace.run_trace`).
    ``crash_victim`` instead arms a *session-targeted* crash after the
    barrier: the server dies when that client's COMMIT request arrives,
    with every client mid-transaction.
    """
    system = repro.make_system()
    config = system.phoenix.config
    # concurrent clients conflict on the shared table's lock: give the
    # no-wait batch resubmission a deep retry budget and transactions a
    # generous server-side wait before a conflict surfaces to the app
    config.max_deadlock_retries = 64
    options = {"lock_timeout": 30000}

    restart_lock = threading.Lock()

    def sleep(_seconds: float) -> None:
        # the operator/watchdog stand-in; locked so concurrent recoveries
        # don't double-restart (a second restart would wipe the sessions
        # the first restart's recoveries just rebuilt)
        with restart_lock:
            if not system.server.up:
                system.endpoint.restart_server()

    config.sleep = sleep
    for entry in schedule:
        after, kind = entry[0], entry[1]
        arg = entry[2] if len(entry) > 2 else None
        system.faults.schedule(kind, after=after, arg=arg)

    # the shared table exists before any client starts (direct server
    # session: off the wire, immune to the fault schedule)
    loader = system.server.connect(user="chaos-loader")
    system.server.execute(
        loader, f"CREATE TABLE {SHARED_TABLE} (id INT PRIMARY KEY, balance FLOAT)"
    )
    system.server.disconnect(loader)

    records = [ClientRecord(index=i) for i in range(clients)]
    connections: list = [None] * clients
    barrier = threading.Barrier(clients + 1)
    go = threading.Event()

    def run_client(i: int) -> None:
        record = records[i]
        pre, post = client_steps(i)
        cursor = None
        try:
            connections[i] = system.phoenix.connect(
                system.DSN, user=f"client{i}", options=dict(options)
            )
            cursor = connections[i].cursor()
            for index, step in enumerate(pre):
                _run_step(record, connections[i], cursor, index, step)
        except Exception as exc:
            record.error = f"{type(exc).__name__}: {exc}"
        finally:
            try:
                barrier.wait(timeout=60)
            except threading.BrokenBarrierError:
                pass
        go.wait(timeout=60)
        if record.error or cursor is None:
            return
        try:
            for index, step in enumerate(post):
                _run_step(record, connections[i], cursor, len(pre) + index, step)
            record.completed = True
        except Exception as exc:
            record.error = f"{type(exc).__name__}: {exc}"

    threads = [
        threading.Thread(target=run_client, args=(i,), name=f"chaos-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    try:
        barrier.wait(timeout=60)
    except threading.BrokenBarrierError:
        pass
    if crash_victim is not None and connections[crash_victim] is not None:
        victim = connections[crash_victim]
        system.faults.schedule(
            FaultKind.CRASH_BEFORE_EXECUTE,
            session_id=victim.app.session_id,
            matcher=lambda request: "COMMIT" in getattr(request, "sql", ""),
        )
    go.set()
    for thread in threads:
        thread.join(timeout=120)

    # --- server-side ground truth, read off the wire ------------------------
    _ensure_up(system)
    for i, connection in enumerate(connections):
        if connection is None:
            continue
        records[i].status_rows = _read_status(system, connection.names.status_table)
        records[i].recoveries = connection.stats.recoveries
        records[i].deadlock_retries = connection.stats.deadlock_retries

    record = MultiTraceRecord(clients=records)
    record.fingerprints[SHARED_TABLE] = _fingerprint(system, SHARED_TABLE)
    for i in range(clients):
        record.fingerprints[wallet_table(i)] = _fingerprint(system, wallet_table(i))

    # --- clean close, then post-close hygiene ------------------------------
    for i, connection in enumerate(connections):
        if connection is None:
            continue
        try:
            connection.close()
        except Exception as exc:
            if records[i].completed:
                records[i].completed = False
                records[i].error = f"close failed: {type(exc).__name__}: {exc}"
    _ensure_up(system)
    record.orphan_sessions = len(system.server.sessions)
    record.orphan_cursors = sum(len(s.cursors) for s in system.server.sessions.values())
    record.leftover_tables = tuple(
        name for name in system.server.table_names() if name.startswith("phx_")
    )
    record.requests_seen = system.faults.requests_seen
    record.fired = tuple(kind.value for kind in system.faults.fired)
    return record


def check_multi_run(golden: MultiTraceRecord, run: MultiTraceRecord) -> list[str]:
    """Per-client exactly-once comparison; returns violations (empty = pass)."""
    violations: list[str] = []
    for expected, actual in zip(golden.clients, run.clients):
        prefix = f"client {actual.index}"
        if not actual.completed:
            violations.append(f"{prefix} did not complete cleanly: {actual.error}")
        if actual.observations != expected.observations:
            violations.append(
                f"{prefix} observations diverged: "
                f"{_first_diff(expected.observations, actual.observations)}"
            )
        if actual.status_rows != expected.status_rows:
            violations.append(
                f"{prefix} status rows diverged (lost or duplicated statements): "
                f"golden {sorted(expected.status_rows or ())}, "
                f"run {sorted(actual.status_rows or ())}"
            )
    for table, expected_rows in golden.fingerprints.items():
        actual_rows = run.fingerprints.get(table)
        if actual_rows != expected_rows:
            violations.append(
                f"table {table} diverged: golden {len(expected_rows)} rows, "
                f"run {len(actual_rows or ())} rows"
            )
    if run.orphan_sessions:
        violations.append(
            f"{run.orphan_sessions} orphaned server session(s) after clean close"
        )
    if run.leftover_tables != golden.leftover_tables:
        violations.append(
            f"leftover phx_* objects after close: {sorted(run.leftover_tables)}"
        )
    return violations


def _first_diff(golden: list, run: list) -> str:
    for i, (expected, actual) in enumerate(zip(golden, run)):
        if expected != actual:
            return f"observation {i}: expected {expected!r}, got {actual!r}"
    if len(run) < len(golden):
        return f"truncated at {len(run)}/{len(golden)}"
    return f"extra observations past {len(golden)}"


def sweep_multi(
    clients: tuple[int, ...] = (1, 4, 16),
    *,
    positions: tuple[float, ...] = (0.25, 0.5, 0.75),
) -> dict[int, dict]:
    """The multi-client crash sweep: for each client count, a golden run,
    positional crashes at fractions of the golden request trace, and one
    targeted crash on a commit with everyone mid-transaction.

    Returns ``{k: {"runs", "recovered", "recovered_fraction", "crashes",
    "recoveries", "deadlock_retries", "violations"}}``.
    """
    summary: dict[int, dict] = {}
    for k in clients:
        golden = run_multi_trace(k)
        if not golden.completed:
            failed = [c for c in golden.clients if not c.completed]
            raise RuntimeError(
                f"golden run with {k} clients failed: "
                + "; ".join(f"client {c.index}: {c.error}" for c in failed)
            )
        runs: list[MultiTraceRecord] = []
        for fraction in positions:
            after = max(1, int(golden.requests_seen * fraction))
            runs.append(
                run_multi_trace(
                    k, schedule=((after, FaultKind.CRASH_BEFORE_EXECUTE),)
                )
            )
        runs.append(run_multi_trace(k, crash_victim=0))
        violations: list[str] = []
        recovered = 0
        for run in runs:
            bad = check_multi_run(golden, run)
            if bad:
                violations.extend(bad)
            else:
                recovered += 1
        summary[k] = {
            "runs": len(runs),
            "recovered": recovered,
            "recovered_fraction": recovered / len(runs),
            "crashes": sum(len(run.fired) for run in runs),
            "recoveries": sum(c.recoveries for run in runs for c in run.clients),
            "deadlock_retries": sum(
                c.deadlock_retries for run in runs for c in run.clients
            ),
            "violations": violations,
        }
    return summary
