"""Session-trace workload: the availability experiment's raw material.

The paper's introduction frames the problem as *application availability*:
"if a database server crashes, volatile server state associated with a
client application's session is lost and applications may require
operator-assisted restart."  This module generates deterministic
order-entry-style application sessions (the §2 shape: look up, fetch
through results, update) and runs them against either driver manager,
counting how many complete when the server keeps crashing underneath.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import errors

__all__ = ["SessionStep", "SessionTrace", "generate_traces", "SessionOutcome", "run_trace"]

SETUP_SQL = [
    "CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT)",
    "CREATE TABLE audit (seq INT PRIMARY KEY, account INT, delta FLOAT)",
]


def setup_workload(execute, accounts: int = 50) -> None:
    """Create and populate the schema the traces run against."""
    for sql in SETUP_SQL:
        execute(sql)
    values = ", ".join(f"({i}, {100.0 + i})" for i in range(1, accounts + 1))
    execute(f"INSERT INTO accounts VALUES {values}")


@dataclass(frozen=True)
class SessionStep:
    """One application request: kind + rendered SQL (or fetch count)."""

    kind: str  # "query" | "dml" | "fetch" | "begin" | "commit"
    sql: str = ""
    fetch_rows: int = 0


@dataclass
class SessionTrace:
    """One application session: an ordered list of steps."""

    trace_id: int
    steps: list[SessionStep] = field(default_factory=list)


def generate_traces(
    count: int = 20, *, seed: int = 7, accounts: int = 50, audit_base: int = 0
) -> list[SessionTrace]:
    """Deterministic order-entry-ish sessions.

    Each session: a scan query, block fetches through it, a transfer
    transaction (two updates + an audit insert), and a verification query.
    """
    rng = random.Random(seed)
    traces: list[SessionTrace] = []
    audit_seq = audit_base
    for trace_id in range(1, count + 1):
        source = rng.randrange(1, accounts + 1)
        target = rng.randrange(1, accounts + 1)
        amount = round(rng.uniform(1.0, 20.0), 2)
        audit_seq += 1
        steps = [
            SessionStep("query", sql="SELECT id, balance FROM accounts ORDER BY id"),
            SessionStep("fetch", fetch_rows=accounts // 2),
            SessionStep("fetch", fetch_rows=accounts),
            SessionStep("begin"),
            SessionStep(
                "dml",
                sql=f"UPDATE accounts SET balance = balance - {amount} WHERE id = {source}",
            ),
            SessionStep(
                "dml",
                sql=f"UPDATE accounts SET balance = balance + {amount} WHERE id = {target}",
            ),
            SessionStep(
                "dml",
                sql=f"INSERT INTO audit VALUES ({audit_seq}, {source}, {amount})",
            ),
            SessionStep("commit"),
            SessionStep("query", sql=f"SELECT balance FROM accounts WHERE id = {source}"),
            SessionStep("fetch", fetch_rows=1),
        ]
        traces.append(SessionTrace(trace_id, steps))
    return traces


@dataclass
class SessionOutcome:
    """How one session fared."""

    trace_id: int
    completed: bool
    steps_done: int
    error: str = ""


def run_trace(connection, trace: SessionTrace) -> SessionOutcome:
    """Run one session on an open connection; a surfaced error aborts it —
    exactly what happens to a real application without failure handling."""
    cursor = connection.cursor()
    steps_done = 0
    try:
        for step in trace.steps:
            if step.kind == "query" or step.kind == "dml":
                cursor.execute(step.sql)
            elif step.kind == "fetch":
                cursor.fetchmany(step.fetch_rows)
            elif step.kind == "begin":
                connection.begin()
            elif step.kind == "commit":
                connection.commit()
            steps_done += 1
    except errors.Error as exc:
        return SessionOutcome(trace.trace_id, False, steps_done, error=type(exc).__name__)
    return SessionOutcome(trace.trace_id, True, steps_done)
