"""TPC-H refresh functions RF1 and RF2, decomposed as in the paper.

§4: "We decomposed each refresh function into two transactions, in which
each receives one-half of the key range that is to be modified.  The tuples
corresponding to new orders and new lineitems were already loaded into the
database, as were the keys corresponding to orders and lineitems to be
deleted.  Hence, the two transactions of refresh function RF1 submit a
total of 4 insert requests to the server ... while the two transactions of
refresh function RF2 submit a total of 4 delete requests."

Both functions return plain SQL statement lists so native ODBC and
Phoenix/ODBC execute exactly the same requests — the difference in Table 1
is then purely Phoenix's wrapper overhead.
"""

from __future__ import annotations

from repro.workloads.tpch.datagen import TpchData

__all__ = ["rf1_statements", "rf2_statements", "undo_rf1_statements", "reload_deleted"]


def _split_range(keys: list[int]) -> tuple[tuple[int, int], tuple[int, int]]:
    """Split a sorted key list into two disjoint [lo, hi] ranges.

    With a single key the second range is empty ((0, -1)), and its
    transaction degenerates to a no-op — still two transactions, matching
    the paper's decomposition.
    """
    middle = (len(keys) + 1) // 2
    first = (keys[0], keys[middle - 1])
    if middle < len(keys):
        second = (keys[middle], keys[-1])
    else:
        second = (0, -1)
    return first, second


def rf1_statements(data: TpchData) -> list[list[str]]:
    """RF1 (new sales): two transactions, each inserting its half of the
    new orders and their lineitems from the staging tables."""
    keys = sorted(row[0] for row in data.rows["new_orders"])
    (lo1, hi1), (lo2, hi2) = _split_range(keys)
    transactions = []
    for lo, hi in ((lo1, hi1), (lo2, hi2)):
        if hi < lo:
            transactions.append([])
            continue
        transactions.append(
            [
                f"INSERT INTO orders SELECT * FROM new_orders "
                f"WHERE o_orderkey BETWEEN {lo} AND {hi}",
                f"INSERT INTO lineitem SELECT * FROM new_lineitem "
                f"WHERE l_orderkey BETWEEN {lo} AND {hi}",
            ]
        )
    return transactions


def rf2_statements(data: TpchData) -> list[list[str]]:
    """RF2 (stale sales): two transactions, each deleting its half of the
    chosen old orders and their lineitems."""
    keys = data.rf2_order_keys
    (lo1, hi1), (lo2, hi2) = _split_range(keys)
    transactions = []
    for lo, hi in ((lo1, hi1), (lo2, hi2)):
        keys_in_range = [k for k in keys if lo <= k <= hi]
        if not keys_in_range:
            transactions.append([])
            continue
        key_list = ", ".join(str(k) for k in keys_in_range)
        transactions.append(
            [
                f"DELETE FROM lineitem WHERE l_orderkey IN ({key_list})",
                f"DELETE FROM orders WHERE o_orderkey IN ({key_list})",
            ]
        )
    return transactions


def undo_rf1_statements(data: TpchData) -> list[str]:
    """Remove RF1's inserts (so the power test can repeat on stable data)."""
    keys = sorted(row[0] for row in data.rows["new_orders"])
    lo, hi = keys[0], keys[-1]
    return [
        f"DELETE FROM lineitem WHERE l_orderkey BETWEEN {lo} AND {hi}",
        f"DELETE FROM orders WHERE o_orderkey BETWEEN {lo} AND {hi}",
    ]


def reload_deleted(data: TpchData, execute) -> None:
    """Re-insert the orders and lineitems RF2 deleted, from generated data."""
    from repro.workloads.tpch.datagen import _render_value

    key_set = set(data.rf2_order_keys)
    orders = [row for row in data.rows["orders"] if row[0] in key_set]
    lineitems = [row for row in data.rows["lineitem"] if row[0] in key_set]
    for table, rows in (("orders", orders), ("lineitem", lineitems)):
        for start in range(0, len(rows), 200):
            chunk = rows[start : start + 200]
            values = ", ".join(
                "(" + ", ".join(_render_value(v) for v in row) + ")" for row in chunk
            )
            execute(f"INSERT INTO {table} VALUES {values}")
