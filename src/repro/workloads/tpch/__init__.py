"""TPC-H workload: schema, deterministic generator, query suite, refresh
functions, and the power-test driver.

The paper evaluates Phoenix/ODBC on TPC-H ("a current variant of the now
obsolete TPC-D benchmark", §4): the power test for overhead (Table 1) and
query Q11 for recovery (Figure 2).  Scale is parameterized by the TPC scale
factor ``sf``; the defaults here are micro-scales suited to a pure-Python
engine (``sf=0.001`` → 1 500 orders / ≈6 000 lineitems), with the row-count
*ratios* of real TPC-H preserved.
"""

from repro.workloads.tpch.datagen import TpchData, generate, load, populate
from repro.workloads.tpch.queries import QUERIES, query_sql
from repro.workloads.tpch.refresh import rf1_statements, rf2_statements
from repro.workloads.tpch.schema import TABLES, ddl_statements

__all__ = [
    "TABLES",
    "ddl_statements",
    "TpchData",
    "generate",
    "load",
    "populate",
    "QUERIES",
    "query_sql",
    "rf1_statements",
    "rf2_statements",
]
