"""TPC-H schema: the eight base tables plus the refresh staging tables.

Column lists follow the TPC-H specification (v2) with DECIMAL carried as
FLOAT (see DESIGN.md substitutions).  The two staging tables hold the
pre-generated refresh data the paper describes: "The tuples corresponding
to new orders and new lineitems were already loaded into the database, as
were the keys corresponding to orders and lineitems to be deleted" (§4).
"""

from __future__ import annotations

__all__ = ["TABLES", "STAGING_TABLES", "INDEX_DDL", "ddl_statements", "ALL_DDL"]

TABLES: dict[str, str] = {
    "region": """
        CREATE TABLE region (
            r_regionkey INT PRIMARY KEY,
            r_name      VARCHAR(25) NOT NULL,
            r_comment   VARCHAR(152)
        )""",
    "nation": """
        CREATE TABLE nation (
            n_nationkey INT PRIMARY KEY,
            n_name      VARCHAR(25) NOT NULL,
            n_regionkey INT NOT NULL,
            n_comment   VARCHAR(152)
        )""",
    "supplier": """
        CREATE TABLE supplier (
            s_suppkey   INT PRIMARY KEY,
            s_name      VARCHAR(25) NOT NULL,
            s_address   VARCHAR(40) NOT NULL,
            s_nationkey INT NOT NULL,
            s_phone     VARCHAR(15) NOT NULL,
            s_acctbal   FLOAT NOT NULL,
            s_comment   VARCHAR(101)
        )""",
    "customer": """
        CREATE TABLE customer (
            c_custkey    INT PRIMARY KEY,
            c_name       VARCHAR(25) NOT NULL,
            c_address    VARCHAR(40) NOT NULL,
            c_nationkey  INT NOT NULL,
            c_phone      VARCHAR(15) NOT NULL,
            c_acctbal    FLOAT NOT NULL,
            c_mktsegment VARCHAR(10) NOT NULL,
            c_comment    VARCHAR(117)
        )""",
    "part": """
        CREATE TABLE part (
            p_partkey     INT PRIMARY KEY,
            p_name        VARCHAR(55) NOT NULL,
            p_mfgr        VARCHAR(25) NOT NULL,
            p_brand       VARCHAR(10) NOT NULL,
            p_type        VARCHAR(25) NOT NULL,
            p_size        INT NOT NULL,
            p_container   VARCHAR(10) NOT NULL,
            p_retailprice FLOAT NOT NULL,
            p_comment     VARCHAR(23)
        )""",
    "partsupp": """
        CREATE TABLE partsupp (
            ps_partkey    INT NOT NULL,
            ps_suppkey    INT NOT NULL,
            ps_availqty   INT NOT NULL,
            ps_supplycost FLOAT NOT NULL,
            ps_comment    VARCHAR(199),
            PRIMARY KEY (ps_partkey, ps_suppkey)
        )""",
    "orders": """
        CREATE TABLE orders (
            o_orderkey      INT PRIMARY KEY,
            o_custkey       INT NOT NULL,
            o_orderstatus   VARCHAR(1) NOT NULL,
            o_totalprice    FLOAT NOT NULL,
            o_orderdate     DATE NOT NULL,
            o_orderpriority VARCHAR(15) NOT NULL,
            o_clerk         VARCHAR(15) NOT NULL,
            o_shippriority  INT NOT NULL,
            o_comment       VARCHAR(79)
        )""",
    "lineitem": """
        CREATE TABLE lineitem (
            l_orderkey      INT NOT NULL,
            l_partkey       INT NOT NULL,
            l_suppkey       INT NOT NULL,
            l_linenumber    INT NOT NULL,
            l_quantity      FLOAT NOT NULL,
            l_extendedprice FLOAT NOT NULL,
            l_discount      FLOAT NOT NULL,
            l_tax           FLOAT NOT NULL,
            l_returnflag    VARCHAR(1) NOT NULL,
            l_linestatus    VARCHAR(1) NOT NULL,
            l_shipdate      DATE NOT NULL,
            l_commitdate    DATE NOT NULL,
            l_receiptdate   DATE NOT NULL,
            l_shipinstruct  VARCHAR(25) NOT NULL,
            l_shipmode      VARCHAR(10) NOT NULL,
            l_comment       VARCHAR(44),
            PRIMARY KEY (l_orderkey, l_linenumber)
        )""",
}

#: foreign-key indexes real TPC-H kits create — they turn the correlated
#: subqueries of Q4/Q17/Q20/Q21 from table scans into index probes.
INDEX_DDL: list[str] = [
    "CREATE INDEX idx_lineitem_orderkey ON lineitem (l_orderkey)",
    "CREATE INDEX idx_lineitem_partkey ON lineitem (l_partkey)",
    "CREATE INDEX idx_orders_custkey ON orders (o_custkey)",
    "CREATE INDEX idx_partsupp_suppkey ON partsupp (ps_suppkey)",
]

#: staging for RF1 (rows to insert) and RF2 (keys already known) — same
#: shapes as their base tables.
STAGING_TABLES: dict[str, str] = {
    "new_orders": TABLES["orders"].replace("orders", "new_orders", 1).replace(
        "CREATE TABLE orders", "CREATE TABLE new_orders"
    ),
    "new_lineitem": TABLES["lineitem"].replace(
        "CREATE TABLE lineitem", "CREATE TABLE new_lineitem"
    ),
}


def ddl_statements(*, staging: bool = True, indexes: bool = True) -> list[str]:
    """Every CREATE TABLE (and index) needed, in dependency order."""
    out = [sql.strip() for sql in TABLES.values()]
    if staging:
        out.extend(sql.strip() for sql in STAGING_TABLES.values())
    if indexes:
        out.extend(INDEX_DDL)
    return out


ALL_DDL = ddl_statements()
