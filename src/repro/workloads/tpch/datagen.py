"""Deterministic TPC-H data generator at micro scale factors.

``generate(sf, seed)`` builds all rows in memory with a seeded RNG, keeping
the specification's row-count *ratios* (so the relative query costs keep
their shape) while the absolute counts stay laptop-friendly for a pure-
Python engine:

========== =================== ===========================
table      spec rows (SF=1)    rows here (scale factor sf)
========== =================== ===========================
region     5                   5
nation     25                  25
supplier   10 000 · SF         max(10, 10000·sf)
customer   150 000 · SF        max(30, 150000·sf)
part       200 000 · SF        max(40, 200000·sf)
partsupp   4 / part            4 / part
orders     1 500 000 · SF      max(150, 1500000·sf)
lineitem   1–7 / order         1–7 / order
========== =================== ===========================

Refresh data (RF1 inserts, RF2 delete keys) follows §4 of the paper: RF1
adds ``0.1% · orders`` new orders with their lineitems (pre-generated into
staging tables); RF2 deletes the same *count* of old orders.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

from repro.workloads.tpch.schema import ddl_statements

__all__ = ["TpchData", "generate", "load", "populate"]

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP JAR"]
_TYPE_SYL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan",
    "green", "forest", "ghost", "goldenrod", "honeydew",
]

_START = datetime.date(1992, 1, 1)
_END = datetime.date(1998, 8, 2)
_DAYS = (_END - _START).days


@dataclass
class TpchData:
    """All generated rows, by table, plus the RF2 delete key list."""

    sf: float
    seed: int
    rows: dict[str, list[tuple]] = field(default_factory=dict)
    #: o_orderkeys RF2 deletes (their lineitems go with them)
    rf2_order_keys: list[int] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self.rows.items()}


def _scaled(base: int, sf: float, floor: int) -> int:
    return max(floor, int(base * sf))


def generate(sf: float = 0.001, seed: int = 42) -> TpchData:
    """Generate a deterministic micro TPC-H database."""
    rng = random.Random(seed)
    data = TpchData(sf=sf, seed=seed)
    rows = data.rows

    rows["region"] = [
        (i, name, f"region {name.lower()}") for i, name in enumerate(_REGIONS)
    ]
    rows["nation"] = [
        (i, name, region, f"nation {name.lower()}")
        for i, (name, region) in enumerate(_NATIONS)
    ]

    n_supplier = _scaled(10_000, sf, 10)
    rows["supplier"] = [
        (
            i,
            f"Supplier#{i:09d}",
            _address(rng),
            (i - 1) % 25,  # round-robin: every nation covered when possible
            _phone(rng, i % 25),
            round(rng.uniform(-999.99, 9999.99), 2),
            _comment(rng, "supplier", special=(
                "Customer Complaints" if rng.random() < 0.05 else None
            )),
        )
        for i in range(1, n_supplier + 1)
    ]

    n_customer = _scaled(150_000, sf, 30)
    rows["customer"] = [
        (
            i,
            f"Customer#{i:09d}",
            _address(rng),
            rng.randrange(25),
            _phone(rng, i % 25),
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(_SEGMENTS),
            _comment(rng, "customer"),
        )
        for i in range(1, n_customer + 1)
    ]

    n_part = _scaled(200_000, sf, 40)
    rows["part"] = [
        (
            i,
            " ".join(rng.sample(_NAME_WORDS, 5)),
            f"Manufacturer#{1 + i % 5}",
            f"Brand#{1 + i % 5}{1 + (i // 5) % 5}",
            f"{rng.choice(_TYPE_SYL1)} {rng.choice(_TYPE_SYL2)} {rng.choice(_TYPE_SYL3)}",
            1 + (i - 1) % 50,  # deterministic size coverage
            rng.choice(_CONTAINERS),
            round(900 + (i % 1000) * 0.1 + (i % 100), 2),
            _comment(rng, "part")[:23],
        )
        for i in range(1, n_part + 1)
    ]

    rows["partsupp"] = [
        (
            part_key,
            1 + (part_key + offset * (n_supplier // 4 + 1)) % n_supplier,
            rng.randrange(1, 10_000),
            round(rng.uniform(1.0, 1000.0), 2),
            _comment(rng, "partsupp"),
        )
        for part_key in range(1, n_part + 1)
        for offset in range(4)
    ]

    n_orders = _scaled(1_500_000, sf, 150)
    order_rows, lineitem_rows = _orders_and_lineitems(
        rng, first_key=1, count=n_orders, n_customer=n_customer,
        n_part=n_part, n_supplier=n_supplier,
    )
    rows["orders"] = order_rows
    rows["lineitem"] = lineitem_rows

    # refresh data: RF1 inserts 0.1% new orders; RF2 deletes 0.1% old ones
    rf_count = max(2, n_orders // 1000)
    new_orders, new_lineitems = _orders_and_lineitems(
        rng, first_key=n_orders + 1, count=rf_count, n_customer=n_customer,
        n_part=n_part, n_supplier=n_supplier,
    )
    rows["new_orders"] = new_orders
    rows["new_lineitem"] = new_lineitems
    data.rf2_order_keys = sorted(rng.sample(range(1, n_orders + 1), rf_count))
    return data


def _orders_and_lineitems(
    rng: random.Random,
    *,
    first_key: int,
    count: int,
    n_customer: int,
    n_part: int,
    n_supplier: int,
) -> tuple[list[tuple], list[tuple]]:
    orders: list[tuple] = []
    lineitems: list[tuple] = []
    for key in range(first_key, first_key + count):
        order_date = _START + datetime.timedelta(days=rng.randrange(_DAYS - 151))
        total = 0.0
        n_lines = rng.randrange(1, 8)
        lines: list[tuple] = []
        for line_number in range(1, n_lines + 1):
            quantity = float(rng.randrange(1, 51))
            part_key = rng.randrange(1, n_part + 1)
            extended = round(quantity * (900 + (part_key % 1000) * 0.1 + part_key % 100), 2)
            discount = round(rng.randrange(0, 11) / 100, 2)
            tax = round(rng.randrange(0, 9) / 100, 2)
            ship_date = order_date + datetime.timedelta(days=rng.randrange(1, 122))
            commit_date = order_date + datetime.timedelta(days=rng.randrange(30, 91))
            receipt_date = ship_date + datetime.timedelta(days=rng.randrange(1, 31))
            return_flag = (
                rng.choice("RA") if receipt_date <= _END - datetime.timedelta(days=80)
                and rng.random() < 0.5 else "N"
            )
            line_status = "F" if ship_date <= datetime.date(1995, 6, 17) else "O"
            lines.append(
                (
                    key,
                    part_key,
                    1 + (part_key + line_number * (n_supplier // 4 + 1)) % n_supplier,
                    line_number,
                    quantity,
                    extended,
                    discount,
                    tax,
                    return_flag,
                    line_status,
                    ship_date,
                    commit_date,
                    receipt_date,
                    rng.choice(_INSTRUCTS),
                    rng.choice(_SHIPMODES),
                    _comment(rng, "lineitem")[:44],
                )
            )
            total += extended * (1 + tax) * (1 - discount)
        status_counts = {"F": 0, "O": 0}
        for line in lines:
            status_counts[line[9]] += 1
        if status_counts["F"] == len(lines):
            order_status = "F"
        elif status_counts["O"] == len(lines):
            order_status = "O"
        else:
            order_status = "P"
        # spec: only 2/3 of customers ever place orders (drives Q13/Q22)
        orders.append(
            (
                key,
                rng.randrange(1, max(2, (n_customer * 2) // 3 + 1)),
                order_status,
                round(total, 2),
                order_date,
                rng.choice(_PRIORITIES),
                f"Clerk#{rng.randrange(1, 1001):09d}",
                0,
                _comment(rng, "orders")[:79],
            )
        )
        lineitems.extend(lines)
    return orders, lineitems


def _address(rng: random.Random) -> str:
    return f"{rng.randrange(1, 999)} {rng.choice(_NAME_WORDS)} st"


def _phone(rng: random.Random, nation: int) -> str:
    return f"{10 + nation}-{rng.randrange(100, 1000)}-{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}"


def _comment(rng: random.Random, kind: str, special: str | None = None) -> str:
    words = " ".join(rng.sample(_NAME_WORDS, 3))
    if special:
        return f"{words} {special} {kind}"
    return f"{words} {kind}"


# ---------------------------------------------------------------------- loading


def _render_value(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    text = str(value).replace("'", "''")
    return f"'{text}'"


def load(execute, data: TpchData, *, batch: int = 500) -> None:
    """Create the schema and insert all rows through ``execute(sql)``.

    ``execute`` is any callable taking one SQL string — a cursor's
    ``execute``, a server-side shortcut, whatever the caller wants to pay
    for.  Inserts are batched multi-row VALUES statements.
    """
    for ddl in ddl_statements():
        execute(ddl)
    for table, rows in data.rows.items():
        for start in range(0, len(rows), batch):
            chunk = rows[start : start + batch]
            values = ", ".join(
                "(" + ", ".join(_render_value(v) for v in row) + ")" for row in chunk
            )
            execute(f"INSERT INTO {table} VALUES {values}")


def populate(system, sf: float = 0.001, seed: int = 42, *, checkpoint: bool = True) -> TpchData:
    """Generate + load into a :class:`repro.System` via a direct server
    session (fast path for benchmark setup), then checkpoint."""
    data = generate(sf, seed)
    session_id = system.server.connect(user="loader")
    try:
        load(lambda sql: system.server.execute(session_id, sql), data)
        if checkpoint:
            system.server.checkpoint()
    finally:
        system.server.disconnect(session_id)
    return data
