"""The TPC-H power test driver (paper §4, Table 1).

"The TPC-H power test executes all queries and update functions defined in
the benchmark one at a time in order and their running time is measured
individually."  :func:`run_power_test` does exactly that through an
arbitrary connection-like object (plain ODBC or Phoenix — same code), then
undoes the refresh functions so repeated runs see identical data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.workloads.tpch.datagen import TpchData
from repro.workloads.tpch.queries import QUERY_ORDER, query_sql
from repro.workloads.tpch.refresh import (
    reload_deleted,
    rf1_statements,
    rf2_statements,
    undo_rf1_statements,
)

__all__ = ["PowerResult", "PowerReport", "run_power_test"]


@dataclass
class PowerResult:
    """One query / refresh function measurement."""

    name: str
    seconds: float
    rows: int  # tuples returned (queries) or modified (updates)


@dataclass
class PowerReport:
    """A full power-test run."""

    results: list[PowerResult] = field(default_factory=list)

    def by_name(self) -> dict[str, PowerResult]:
        return {r.name: r for r in self.results}

    @property
    def total_query_seconds(self) -> float:
        return sum(r.seconds for r in self.results if r.name.startswith("Q"))

    @property
    def total_update_seconds(self) -> float:
        return sum(r.seconds for r in self.results if r.name.startswith("RF"))


def run_power_test(
    connection,
    data: TpchData,
    *,
    queries: list[str] | None = None,
    include_refresh: bool = True,
    undo_refresh: bool = True,
) -> PowerReport:
    """Run the power test on ``connection`` (any object with ``cursor()``).

    Each query is executed and fully fetched (the paper times execution
    plus delivery).  RF1/RF2 run as their two decomposed transactions each.
    With ``undo_refresh`` the data is restored afterwards so back-to-back
    runs (native vs. Phoenix, repeated repetitions) measure the same thing.
    """
    report = PowerReport()
    cursor = connection.cursor()

    for query_id in queries if queries is not None else QUERY_ORDER:
        sql = query_sql(query_id, data.sf)
        started = time.perf_counter()
        cursor.execute(sql)
        rows = cursor.fetchall()
        elapsed = time.perf_counter() - started
        report.results.append(PowerResult(query_id, elapsed, len(rows)))

    if include_refresh:
        for name, transactions in (
            ("RF1", rf1_statements(data)),
            ("RF2", rf2_statements(data)),
        ):
            started = time.perf_counter()
            modified = 0
            for statements in transactions:
                connection.begin()
                for sql in statements:
                    cursor.execute(sql)
                    modified += max(cursor.rowcount, 0)
                connection.commit()
            elapsed = time.perf_counter() - started
            report.results.append(PowerResult(name, elapsed, modified))

        if undo_refresh:
            for sql in undo_rf1_statements(data):
                cursor.execute(sql)
            reload_deleted(data, lambda sql: cursor.execute(sql))

    cursor.close()
    return report
