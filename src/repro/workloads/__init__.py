"""Workloads used by the evaluation: TPC-H (the paper's benchmark) and the
customer/orders/invoices session from the paper's §2 walkthrough."""
