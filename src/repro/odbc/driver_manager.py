"""The plain driver manager: what applications program against.

``DriverManager.connect(dsn)`` returns a :class:`Connection`;
``Connection.cursor()`` returns a :class:`Statement` with a DB-API-flavoured
surface (``execute`` / ``fetchone`` / ``fetchmany`` / ``fetchall`` /
``description`` / ``rowcount``) plus ODBC statement attributes (cursor type,
fetch block size).

This class is deliberately thin — it routes calls to the native driver and
does nothing about failures.  Phoenix/ODBC subclasses the application-facing
API (same classes' duck type) while wrapping the same native driver,
demonstrating the paper's "no changes to app, driver, or server" claim.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro import errors
from repro.errors import InterfaceError, ProgrammingError
from repro.engine.schema import Column
from repro.net.protocol import ResultResponse
from repro.odbc.constants import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_FETCH_BLOCK,
    CursorType,
    StatementAttr,
)
from repro.obs.tracer import get_tracer
from repro.odbc.driver import DriverConnection, NativeDriver

__all__ = ["DriverManager", "Connection", "Statement", "describe_columns"]


def describe_columns(columns: list[Column]) -> list[tuple]:
    """DB-API style 7-tuples from engine column metadata."""
    return [
        (c.name, c.type.value, None, c.length, c.precision, c.scale, not c.not_null)
        for c in columns
    ]


class DriverManager:
    """Registry of DSN → native driver, and the application's entry point."""

    def __init__(self):
        self._drivers: dict[str, NativeDriver] = {}

    def register_dsn(self, dsn: str, driver: NativeDriver) -> None:
        self._drivers[dsn] = driver

    def driver_for(self, dsn: str) -> NativeDriver:
        try:
            return self._drivers[dsn]
        except KeyError:
            raise InterfaceError(f"unknown DSN {dsn!r}") from None

    def connect(
        self, dsn: str, user: str = "app", options: dict[str, Any] | None = None
    ) -> "Connection":
        with get_tracer().span("odbc.connect", dsn=dsn, user=user):
            driver = self.driver_for(dsn)
            driver_connection = driver.connect(user, options)
            return Connection(self, dsn, driver_connection, options or {})


class Connection:
    """An application connection handle."""

    # PEP 249 optional extension: the error hierarchy as connection
    # attributes, so multi-driver code can write `except conn.Error:`
    Warning = errors.Warning
    Error = errors.Error
    InterfaceError = errors.InterfaceError
    DatabaseError = errors.DatabaseError
    DataError = errors.DataError
    OperationalError = errors.OperationalError
    IntegrityError = errors.IntegrityError
    InternalError = errors.InternalError
    ProgrammingError = errors.ProgrammingError
    NotSupportedError = errors.NotSupportedError

    def __init__(
        self,
        manager: DriverManager,
        dsn: str,
        driver_connection: DriverConnection,
        options: dict[str, Any],
    ):
        self.manager = manager
        self.dsn = dsn
        self._driver_connection = driver_connection
        self.options = dict(options)
        self.closed = False
        self._statements: list[Statement] = []
        #: connection-level transaction flag backing :attr:`in_transaction`;
        #: tracks begin()/commit()/rollback() calls on *this* handle (SQL
        #: issued through a cursor is the application's own bookkeeping)
        self._txn_open = False

    # -- DB-API-ish surface ------------------------------------------------------

    def cursor(self) -> "Statement":
        self._require_open()
        statement = Statement(self)
        self._statements.append(statement)
        return statement

    def set_option(self, name: str, value: Any) -> None:
        """Deprecated spelling of ``cursor().execute("SET name value")`` —
        kept because existing applications call it; new code should issue
        the SQL, which travels (and replays) like every other statement."""
        warnings.warn(
            "Connection.set_option is deprecated; execute 'SET <name> <value>' instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._set_option(name, value)

    def _set_option(self, name: str, value: Any) -> None:
        self._require_open()
        self.options[name] = value
        self._driver_connection.set_option(name, value)

    def begin(self) -> None:
        self._execute_raw("BEGIN TRANSACTION")
        self._txn_open = True

    def commit(self) -> None:
        self._execute_raw("COMMIT")
        self._txn_open = False

    def rollback(self) -> None:
        self._execute_raw("ROLLBACK")
        self._txn_open = False

    @property
    def in_transaction(self) -> bool:
        """True between :meth:`begin` and the matching commit/rollback."""
        return self._txn_open

    def close(self) -> None:
        if self.closed:
            return
        for statement in self._statements:
            statement.close()
        self._driver_connection.disconnect()
        self.closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # PEP 249 common extension, then close: a transaction left open by
        # the block commits on success and rolls back on exception, and the
        # handle is released either way (the historical `with` contract
        # here — sessions are autocommit outside an explicit begin()).
        try:
            if (
                self._txn_open
                and not self.closed
                and not self._driver_connection.broken
            ):
                if exc_type is None:
                    self.commit()
                else:
                    self.rollback()
        except errors.Error:
            if exc_type is None:
                raise  # a failed commit must not pass silently
            # an exception is already flying; don't mask it with cleanup
        finally:
            self.close()

    # -- internals -----------------------------------------------------------------

    def _require_open(self) -> None:
        if self.closed:
            raise InterfaceError("connection is closed")

    def _execute_raw(self, sql: str, **kwargs) -> ResultResponse:
        self._require_open()
        return self._driver_connection.execute(sql, **kwargs)

    # The driver-level hooks statements use; Phoenix overrides these.
    def _stmt_execute(
        self, statement: "Statement", sql: str, placeholders: list
    ) -> ResultResponse:
        return self._driver_connection.execute(
            sql, placeholders=placeholders, cursor_type=statement.attrs[StatementAttr.CURSOR_TYPE]
        )

    def _stmt_fetch(self, statement: "Statement", cursor_id: int, n: int):
        return self._driver_connection.fetch(cursor_id, n)

    def _stmt_close_cursor(self, statement: "Statement", cursor_id: int) -> None:
        self._driver_connection.close_cursor(cursor_id)


class Statement:
    """A statement handle: execute once, then fetch.

    For default result sets the whole result arrives with the execute reply
    and fetches drain a client-side buffer (the paper's "the client must
    buffer any rows not used immediately").  For keyset/dynamic cursors each
    exhausted block triggers a FETCH round trip.
    """

    def __init__(self, connection: Connection):
        self.connection = connection
        self.attrs: dict[str, Any] = {
            StatementAttr.CURSOR_TYPE: CursorType.FORWARD_ONLY,
            StatementAttr.FETCH_BLOCK_SIZE: DEFAULT_FETCH_BLOCK,
            StatementAttr.QUERY_TIMEOUT: None,
            # accepted for interface parity with PhoenixCursor; the plain
            # stack has no wire batching, so it never changes behaviour here
            StatementAttr.BATCH_SIZE: DEFAULT_BATCH_SIZE,
        }
        #: PEP 249: default size of a no-argument fetchmany()
        self.arraysize = 1
        self.closed = False
        self._reset_result()

    def _reset_result(self) -> None:
        self.description: list[tuple] | None = None
        self.columns: list[Column] = []
        self.rowcount: int = -1
        self.messages: list[str] = []
        self._buffer: list[tuple] = []
        self._buffer_pos = 0
        self._cursor_id: int | None = None
        self._server_done = True
        self._rows_read = 0
        self.effective_cursor_type: str = CursorType.FORWARD_ONLY

    # -- attributes ----------------------------------------------------------------

    def set_attr(self, name: str, value: Any) -> None:
        if name not in self.attrs:
            raise ProgrammingError(f"unknown statement attribute {name!r}")
        self.attrs[name] = value

    # -- execute -----------------------------------------------------------------------

    def execute(self, sql: str, placeholders: list | None = None) -> "Statement":
        self._require_open()
        self._reset_result()
        response = self.connection._stmt_execute(self, sql, list(placeholders or []))
        self._absorb(response)
        return self

    def _absorb(self, response: ResultResponse) -> None:
        if response.kind == "rows":
            self.columns = response.columns
            self.description = describe_columns(response.columns)
            if response.cursor_id is not None:
                self._cursor_id = response.cursor_id
                self._server_done = False
                self.effective_cursor_type = response.effective_cursor_type
            else:
                self._buffer = list(response.rows)
                self._server_done = True
            self.rowcount = -1
        elif response.kind == "rowcount":
            self.rowcount = response.rowcount
            if response.message:
                self.messages.append(response.message)
        else:
            if response.message:
                self.messages.append(response.message)

    # -- fetch ---------------------------------------------------------------------------

    def executemany(self, sql: str, rows: list[list]) -> "Statement":
        """DB-API executemany: run ``sql`` once per parameter row.

        The statement's ``rowcount`` accumulates across the rows (like most
        drivers): the sum of the non-negative per-row counts — a 0-row
        UPDATE contributes 0, it is not dropped — or -1 when any execution
        reported an unknown count.  The last execution's result shape is
        retained.
        """
        total = 0
        unknown = False
        for row in rows:
            self.execute(sql, list(row))
            if self.rowcount < 0:
                unknown = True
            else:
                total += self.rowcount
        self.rowcount = -1 if unknown else total
        return self

    def fetchone(self) -> tuple | None:
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, n: int | None = None) -> list[tuple]:
        self._require_open()
        if n is None:
            n = max(int(self.arraysize), 1)
        out: list[tuple] = []
        while len(out) < n:
            if self._buffer_pos < len(self._buffer):
                out.append(self._buffer[self._buffer_pos])
                self._buffer_pos += 1
                continue
            if self._server_done or self._cursor_id is None:
                break
            block_size = max(
                int(self.attrs[StatementAttr.FETCH_BLOCK_SIZE]), n - len(out)
            )
            rows, done = self.connection._stmt_fetch(self, self._cursor_id, block_size)
            self._buffer = list(rows)
            self._buffer_pos = 0
            self._server_done = done
            if not rows and done:
                break
        self._rows_read += len(out)
        return out

    def fetchall(self) -> list[tuple]:
        block = max(int(self.attrs[StatementAttr.FETCH_BLOCK_SIZE]), 1)
        out: list[tuple] = []
        while True:
            chunk = self.fetchmany(block)
            if not chunk:
                return out
            out.extend(chunk)

    @property
    def rows_read(self) -> int:
        """How many rows the application has consumed from this statement."""
        return self._rows_read

    # -- PEP 249 odds and ends ---------------------------------------------------------

    def setinputsizes(self, sizes) -> None:
        """DB-API no-op: values are bound with their Python types."""

    def setoutputsize(self, size, column=None) -> None:
        """DB-API no-op: results carry no size limits."""

    def __enter__(self) -> "Statement":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- lifecycle -------------------------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        if self._cursor_id is not None and not self.connection.closed:
            try:
                self.connection._stmt_close_cursor(self, self._cursor_id)
            except Exception:
                pass  # closing against a dead server is best-effort
        self.closed = True

    def _require_open(self) -> None:
        if self.closed:
            raise InterfaceError("statement is closed")
