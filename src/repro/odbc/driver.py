"""The native driver: the vendor client stub.

:class:`NativeDriver` knows how to reach one database server — through a
:class:`~repro.net.transport.Transport` whose channels carry the wire
(in-process endpoint call or a real TCP socket; a bare
:class:`~repro.net.transport.ServerEndpoint` is accepted and wrapped for
the historical constructor shape) — and exposes the low-level connection
operations the driver manager builds statements on.  It performs no
recovery of any kind: a communication error breaks the connection and is
the application's problem — which is the baseline behaviour Phoenix fixes.
"""

from __future__ import annotations

from typing import Any

from repro.errors import InterfaceError, ServerRestartingError, SessionLostError
from repro.net.metrics import NetworkMetrics
from repro.net.protocol import (
    AdvanceRequest,
    BatchExecuteRequest,
    BatchExecuteResponse,
    CloseCursorRequest,
    ConnectRequest,
    DisconnectRequest,
    ExecuteRequest,
    FetchRequest,
    PingRequest,
    PongResponse,
    RestartingResponse,
    ResultResponse,
    TableSchemaRequest,
    TableSchemaResponse,
)
from repro.net.transport import (
    ClientChannel,
    InProcessTransport,
    ServerEndpoint,
    Transport,
)
from repro.obs.tracer import get_tracer

__all__ = ["NativeDriver", "DriverConnection"]


class NativeDriver:
    """Factory for driver connections to one server, over one transport."""

    def __init__(
        self,
        transport: Transport | ServerEndpoint,
        *,
        metrics: NetworkMetrics | None = None,
    ):
        if isinstance(transport, ServerEndpoint):
            transport = InProcessTransport(transport)
        self.transport = transport
        #: the endpoint behind an in-process transport; ``None`` over TCP
        #: (kept because tests and tools reach the fault injector this way)
        self.endpoint = getattr(transport, "endpoint", None)
        #: shared metrics for every channel this driver opens
        self.metrics = metrics if metrics is not None else NetworkMetrics()

    def _open_channel(self) -> ClientChannel:
        return self.transport.open_channel(metrics=self.metrics)

    def connect(self, user: str = "app", options: dict[str, Any] | None = None) -> "DriverConnection":
        with get_tracer().span("driver.connect", user=user) as span:
            channel = self._open_channel()
            response = channel.send(ConnectRequest(user=user, options=dict(options or {})))
            span.set(session_id=response.session_id)
            return DriverConnection(self, channel, response.session_id, user)

    def ping(self) -> PongResponse:
        """Liveness probe on a throwaway channel (so a dead server does not
        break any long-lived connection state).

        A server mid-planned-restart answers with
        :class:`~repro.net.protocol.RestartingResponse`; that surfaces as
        :class:`~repro.errors.ServerRestartingError` carrying the advertised
        state and remaining pause, so the caller's backoff can distinguish
        a polite wait from a crash."""
        channel = self._open_channel()
        try:
            response = channel.send(PingRequest())
            if isinstance(response, RestartingResponse):
                raise ServerRestartingError(
                    f"server restarting ({response.state}), "
                    f"expected back in {response.eta_seconds:.3f}s",
                    state=response.state,
                    eta_seconds=response.eta_seconds,
                )
            assert isinstance(response, PongResponse)
            return response
        finally:
            channel.close()

    def disconnect_session(self, session_id: int) -> None:
        """Disconnect a server session by id over a throwaway channel.

        The session-GC analog of :meth:`ping`: Phoenix uses it to reap a
        session it orphaned (the old connection object is gone or broken,
        but the server may still hold the session).  Raises whatever the
        wire raises — callers decide what is best-effort."""
        channel = self._open_channel()
        try:
            channel.send(DisconnectRequest(session_id=session_id))
        finally:
            channel.close()


class DriverConnection:
    """One live connection (channel + server session)."""

    def __init__(self, driver: NativeDriver, channel: ClientChannel, session_id: int, user: str):
        self.driver = driver
        self.channel = channel
        self.session_id = session_id
        self.user = user
        self.closed = False

    # -- plumbing ---------------------------------------------------------------

    def _require_open(self) -> None:
        if self.closed:
            raise InterfaceError("connection is closed")

    @property
    def broken(self) -> bool:
        return self.channel.broken

    # -- operations ----------------------------------------------------------------

    def execute(
        self,
        sql: str,
        *,
        placeholders: list | None = None,
        cursor_type: str = "default",
    ) -> ResultResponse:
        self._require_open()
        response = self.channel.send(
            ExecuteRequest(
                session_id=self.session_id,
                sql=sql,
                placeholders=list(placeholders or []),
                cursor_type=cursor_type,
            )
        )
        assert isinstance(response, ResultResponse)
        return response

    def execute_batch(self, statements: list[str]) -> BatchExecuteResponse:
        """Ship N statement batches in one round trip (wire batching).

        The server runs them in order under WAL group commit; a SQL error
        comes back *in-band* inside the response (``error``/``error_index``
        with the successful prefix in ``results``) rather than raising, so
        the caller can account for the landed prefix before surfacing it.
        Transport failures raise as usual.
        """
        self._require_open()
        response = self.channel.send(
            BatchExecuteRequest(session_id=self.session_id, statements=list(statements))
        )
        assert isinstance(response, BatchExecuteResponse)
        return response

    def fetch(self, cursor_id: int, n: int) -> tuple[list[tuple], bool]:
        self._require_open()
        response = self.channel.send(
            FetchRequest(session_id=self.session_id, cursor_id=cursor_id, n=n)
        )
        return response.rows, response.done

    def advance(self, cursor_id: int, position: int) -> None:
        self._require_open()
        self.channel.send(
            AdvanceRequest(
                session_id=self.session_id, cursor_id=cursor_id, position=position
            )
        )

    def table_schema(self, table: str) -> TableSchemaResponse:
        """Catalog lookup (the SQLPrimaryKeys/SQLColumns analog)."""
        self._require_open()
        response = self.channel.send(
            TableSchemaRequest(session_id=self.session_id, table=table)
        )
        assert isinstance(response, TableSchemaResponse)
        return response

    def close_cursor(self, cursor_id: int) -> None:
        self._require_open()
        self.channel.send(
            CloseCursorRequest(session_id=self.session_id, cursor_id=cursor_id)
        )

    def set_option(self, name: str, value: Any) -> None:
        """Apply a connection option server-side (``SET name value``)."""
        rendered = value if isinstance(value, (int, float)) else f"'{value}'"
        self.execute(f"SET {name} {rendered}")

    def disconnect(self) -> bool:
        """Best-effort: a session that died in a crash is already gone,
        and close() is the one call that must never raise for that.

        Returns True when the server acknowledged the disconnect (or had
        already lost the session) — False means the request died in flight
        and the session may be orphaned on a surviving server."""
        if self.closed:
            return True
        acked = False
        try:
            if not self.channel.broken:
                self.channel.send(DisconnectRequest(session_id=self.session_id))
                acked = True
        except InterfaceError:
            raise
        except SessionLostError:
            acked = True  # already gone — nothing left to orphan
        except Exception:
            pass
        finally:
            self.channel.close()
            self.closed = True
        return acked
