"""The ODBC-like client stack: native driver + plain driver manager.

Layering mirrors the real ODBC world the paper describes (§2):

* the **application** talks to a :class:`~repro.odbc.driver_manager.DriverManager`
  (``connect(dsn)`` → connection → statements);
* the driver manager routes calls to the **native driver**
  (:mod:`repro.odbc.driver`), the vendor-specific client stub;
* the driver speaks the wire protocol to the database server.

Phoenix/ODBC (:mod:`repro.core`) is an *enhanced driver manager*: it exposes
this same application API, wraps the same native driver, and changes neither
the driver nor the server — the paper's headline deployment property.
"""

from repro.odbc.constants import CursorType, StatementAttr
from repro.odbc.driver import DriverConnection, NativeDriver
from repro.odbc.driver_manager import Connection, DriverManager, Statement

__all__ = [
    "DriverManager",
    "Connection",
    "Statement",
    "NativeDriver",
    "DriverConnection",
    "CursorType",
    "StatementAttr",
]
