"""ODBC-flavoured constants: cursor types, statement attributes, rc codes.

String-valued rather than the standard's integers — the *shape* of the API
(attributes set on a statement before execute decide delivery mode) is what
matters to the reproduction, not binary compatibility.
"""

from __future__ import annotations

__all__ = [
    "CursorType",
    "StatementAttr",
    "ReturnCode",
    "DEFAULT_FETCH_BLOCK",
    "DEFAULT_BATCH_SIZE",
]


class CursorType:
    """Mirror of SQL_ATTR_CURSOR_TYPE values (paper §3 "Result Sets" /
    "Cursors")."""

    FORWARD_ONLY = "default"  # default result set: server ships all rows
    KEYSET = "keyset"
    DYNAMIC = "dynamic"

    ALL = (FORWARD_ONLY, KEYSET, DYNAMIC)


class StatementAttr:
    """Attributes settable on a statement handle before execute."""

    CURSOR_TYPE = "cursor_type"
    FETCH_BLOCK_SIZE = "fetch_block_size"
    QUERY_TIMEOUT = "query_timeout"
    #: statements per wire batch for executemany (the SQL_ATTR_PARAMSET_SIZE
    #: analog); 1 = one round trip per statement
    BATCH_SIZE = "batch_size"


class ReturnCode:
    """SQL/CLI-style return codes surfaced by the handle API."""

    SUCCESS = 0
    SUCCESS_WITH_INFO = 1
    NO_DATA = 100
    ERROR = -1
    INVALID_HANDLE = -2


#: rows per FETCH round trip for server cursors
DEFAULT_FETCH_BLOCK = 100

#: statements per BatchExecuteRequest for executemany
DEFAULT_BATCH_SIZE = 16
