"""Statement and plan caching: stop re-parsing and re-planning hot SQL.

The paper's evaluation repeats statements relentlessly — TPC-H power runs
execute the same 22 query texts over and over, and Phoenix *doubles*
statement traffic with generated probes (``WHERE 0=1``), fill procedures,
and status-table writes.  The seed engine re-lexed, re-parsed, and re-built
a fresh ``_SelectPlan`` for every one of them.  This module provides the
two reuse layers and the counters that prove they work:

* :class:`ParseCache` — server-wide LRU mapping raw SQL text to the parsed
  statement tuple.  Parsing is pure, so entries are shared across sessions.
  The cache lives on the :class:`~repro.engine.server.DatabaseServer` and is
  **volatile**: ``crash()`` discards it and restart recovery starts cold,
  exactly like every other non-logged structure.

* :class:`PlanCache` — per-session (per-:class:`~repro.engine.executor
  .Executor`) LRU mapping a parsed SELECT statement to its compiled plan.
  Keys are object identities of statements returned by the parse cache
  (entries pin the statement, so an id can never be reused while its entry
  lives), which makes hits O(1) with no re-rendering.  Entries are
  validated against a pair of monotonic version counters:

  - ``Database.catalog_version`` — bumped on every persistent DDL (tables,
    views, procedures, indexes), including undo/rollback of DDL.  Phoenix's
    ``phx_*`` result tables, fill procedures, and redirected temp objects
    are ordinary persistent DDL, so their churn invalidates dependent plans
    the moment they land.
  - ``Session.temp_version`` — bumped on every session temp-table or
    temp-procedure create/drop, so a plan compiled against a temp object
    (or against a persistent table a temp object later shadows) can never
    be served stale.

  A version mismatch counts as an *invalidation* and recompiles.

The cache is deliberately conservative: only top-level SELECT / UNION
statements with no bound placeholders or procedure parameters are cached
(placeholder values are baked into compiled closures, so such plans are
single-use by construction).

:class:`EngineMetrics` aggregates the hit/miss/invalidation counters and is
surfaced through the bench harness next to the round-trip counts — the
paper's observability discipline applied to the engine's own hot path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

__all__ = ["EngineMetrics", "ExecutorStats", "LRUCache", "ParseCache", "PlanCache"]

#: Server-wide parse cache capacity (distinct SQL texts).
PARSE_CACHE_CAPACITY = 256
#: Per-session plan cache capacity (distinct cached statements).
PLAN_CACHE_CAPACITY = 128


class EngineMetrics:
    """Cache observability counters for one server.

    Reset semantics follow the system-wide contract defined in
    :mod:`repro.obs.metrics`: like :class:`~repro.engine.server.ServerStats`
    and :class:`~repro.net.metrics.NetworkMetrics`, these are cumulative
    across crashes and restarts — they describe the simulation, not server
    state — and only an explicit :meth:`reset` zeroes them.  The *caches
    themselves* are volatile; the counters let tests prove it (a restart
    shows fresh misses for SQL that used to hit).
    """

    def __init__(self) -> None:
        self.parse_hits = 0
        self.parse_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_invalidations = 0

    @property
    def parse_hit_rate(self) -> float:
        total = self.parse_hits + self.parse_misses
        return self.parse_hits / total if total else 0.0

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0

    def reset(self) -> None:
        self.parse_hits = 0
        self.parse_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_invalidations = 0

    def merge(self, other: "EngineMetrics") -> None:
        """Fold another server's counters in (same surface as
        ``NetworkMetrics.merge`` — multi-system benchmarks aggregate both)."""
        self.parse_hits += other.parse_hits
        self.parse_misses += other.parse_misses
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.plan_invalidations += other.plan_invalidations

    def snapshot(self) -> dict[str, float]:
        return {
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "parse_hit_rate": self.parse_hit_rate,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_hit_rate": self.plan_hit_rate,
            "plan_invalidations": self.plan_invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"EngineMetrics(parse={self.parse_hits}/{self.parse_hits + self.parse_misses}, "
            f"plan={self.plan_hits}/{self.plan_hits + self.plan_misses}, "
            f"invalidations={self.plan_invalidations})"
        )


class ExecutorStats:
    """Access-path and pipeline counters for one server's executors.

    Same reset semantics as :class:`EngineMetrics` (defined in
    :mod:`repro.obs.metrics`): cumulative across crashes and restarts, only
    an explicit :meth:`reset` zeroes them.  The counters are the
    observability surface of the vectorized executor — which access path
    each query actually took (PK probe, secondary equality, secondary
    range, full scan narrowed or not), how many rows it touched versus
    returned, and how often the index-ordered top-k shortcut fired.
    """

    def __init__(self) -> None:
        #: base-table rows read (full scans + probe results + top-k streams)
        self.rows_scanned = 0
        #: rows returned by SELECT plans (subquery and union parts included)
        self.rows_returned = 0
        #: PK / secondary equality probes executed
        self.index_eq_probes = 0
        #: secondary range probes executed (<, <=, >, >=, BETWEEN)
        self.index_range_scans = 0
        #: ORDER BY ... LIMIT served by index-ordered streaming (no sort)
        self.topk_shortcuts = 0
        #: SELECT plans compiled in vectorized (row-closure) mode
        self.compiled_plans = 0

    def reset(self) -> None:
        self.rows_scanned = 0
        self.rows_returned = 0
        self.index_eq_probes = 0
        self.index_range_scans = 0
        self.topk_shortcuts = 0
        self.compiled_plans = 0

    def merge(self, other: "ExecutorStats") -> None:
        """Fold another server's counters in (multi-system benchmarks)."""
        self.rows_scanned += other.rows_scanned
        self.rows_returned += other.rows_returned
        self.index_eq_probes += other.index_eq_probes
        self.index_range_scans += other.index_range_scans
        self.topk_shortcuts += other.topk_shortcuts
        self.compiled_plans += other.compiled_plans

    def snapshot(self) -> dict[str, int]:
        return {
            "rows_scanned": self.rows_scanned,
            "rows_returned": self.rows_returned,
            "index_eq_probes": self.index_eq_probes,
            "index_range_scans": self.index_range_scans,
            "topk_shortcuts": self.topk_shortcuts,
            "compiled_plans": self.compiled_plans,
        }

    def __repr__(self) -> str:
        return (
            f"ExecutorStats(scanned={self.rows_scanned}, "
            f"returned={self.rows_returned}, eq={self.index_eq_probes}, "
            f"range={self.index_range_scans}, topk={self.topk_shortcuts}, "
            f"compiled={self.compiled_plans})"
        )


class LRUCache:
    """Tiny LRU map: get/put/pop with least-recently-used eviction."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def get(self, key: Any) -> Any | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def pop(self, key: Any) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries


class ParseCache:
    """SQL text → parsed statement tuple (server-wide, volatile).

    Statements handed out are shared: the server-side executor treats parsed
    ASTs as immutable (only the *client-side* Phoenix interceptor rewrites
    ASTs, and it parses its own copies), so one parse serves every session
    issuing the same text.
    """

    def __init__(self, capacity: int = PARSE_CACHE_CAPACITY):
        self._cache = LRUCache(capacity)

    def get(self, sql: str) -> tuple | None:
        return self._cache.get(sql)

    def put(self, sql: str, statements: tuple) -> None:
        self._cache.put(sql, tuple(statements))

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


class _PlanEntry:
    __slots__ = ("stmt", "versions", "runner")

    def __init__(self, stmt: Any, versions: tuple[int, int], runner: Any):
        #: strong reference pins the statement object: while this entry is
        #: alive, id(stmt) cannot be reused, so identity keys are sound.
        self.stmt = stmt
        #: (catalog_version, temp_version) the plan was compiled under
        self.versions = versions
        self.runner = runner


class PlanCache:
    """Parsed statement (by identity) → compiled plan, version-validated."""

    def __init__(self, capacity: int = PLAN_CACHE_CAPACITY):
        self._cache = LRUCache(capacity)

    def lookup(self, stmt: Any, versions: tuple[int, int], metrics: EngineMetrics) -> Any | None:
        """Return the cached runner for ``stmt`` if still valid, else None.

        A version mismatch evicts the entry and counts an invalidation (the
        subsequent recompile is counted as a miss by the caller's store).
        """
        entry: _PlanEntry | None = self._cache.get(id(stmt))
        if entry is None or entry.stmt is not stmt:
            metrics.plan_misses += 1
            return None
        if entry.versions != versions:
            self._cache.pop(id(stmt))
            metrics.plan_invalidations += 1
            metrics.plan_misses += 1
            return None
        metrics.plan_hits += 1
        return entry.runner

    def store(self, stmt: Any, versions: tuple[int, int], runner: Any) -> None:
        self._cache.put(id(stmt), _PlanEntry(stmt, versions, runner))

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
