"""Threaded request dispatch: per-session FIFO queues over a worker pool.

:class:`SessionDispatcher` is the concurrency layer between the wire and
the engine.  Each session's requests form a FIFO queue; at most one request
per session is in flight at a time (per-session ordering — a session's
statements never reorder or overlap), while requests from *different*
sessions run on worker threads concurrently and interleave freely inside
the engine, which guards its shared state with the engine-wide mutex (see
:class:`~repro.engine.server.DatabaseServer`) and waits on table locks
(:mod:`repro.engine.locks`).

The pool is **dynamic**: workers spawn lazily when work arrives and no
worker is idle, and die after a short idle timeout.  Lazy spawn keeps the
hundreds of short-lived systems the chaos explorer builds cheap; the
no-idle-worker spawn rule is load-bearing for correctness, not just
latency — a worker sleeping in a lock wait is *pinned*, and the session
holding that lock needs a free worker for the commit that will release it.
A fixed-size pool could pin every worker behind one holder and deadlock
the server against itself.

Callers block in :meth:`run` until their request's turn comes and its
function finishes — the wire keeps its synchronous request/response shape;
concurrency comes from many client threads calling in at once.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = ["SessionDispatcher", "DispatchStats"]

#: hard ceiling on pool size — far above any bench (16 clients × app+private
#: sessions), merely a backstop against runaway spawning
MAX_WORKERS = 64
#: seconds an idle worker lingers before exiting (lazy pools stay small)
IDLE_TIMEOUT = 0.5


class DispatchStats:
    """Observability counters (cumulative, reset semantics as in
    :mod:`repro.obs.metrics`)."""

    def __init__(self) -> None:
        self.dispatched = 0
        self.workers_spawned = 0
        self.peak_workers = 0
        self.peak_queued = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class _WorkItem:
    __slots__ = ("fn", "done", "value", "exc", "callback")

    def __init__(
        self,
        fn: Callable[[], Any],
        callback: Callable[[Any, BaseException | None], None] | None = None,
    ):
        self.fn = fn
        self.done = threading.Event()
        self.value: Any = None
        self.exc: BaseException | None = None
        #: completion hook for :meth:`SessionDispatcher.submit` — invoked on
        #: the worker thread after the item finishes (``done`` already set)
        self.callback = callback


class SessionDispatcher:
    """Per-key FIFO work queues over a dynamic worker pool."""

    def __init__(self, *, max_workers: int = MAX_WORKERS, idle_timeout: float = IDLE_TIMEOUT):
        self.max_workers = max_workers
        self.idle_timeout = idle_timeout
        self._cond = threading.Condition()
        #: key -> pending items; present iff the key has queued *or running*
        #: work (the running item stays at the head until it finishes)
        self._queues: dict[Any, deque[_WorkItem]] = {}
        #: keys whose head item is runnable and unclaimed
        self._ready: deque[Any] = deque()
        self._workers = 0
        self._idle = 0
        self._closed = False
        #: drain barrier: while set, workers claim no new items — submissions
        #: still queue (their callers park in :meth:`run`) and in-flight items
        #: run to completion
        self._paused = False
        #: items currently executing on workers (claimed, not yet finished)
        self._active = 0
        self.stats = DispatchStats()

    # ----------------------------------------------------------- submission

    def run(self, key: Any, fn: Callable[[], Any]) -> Any:
        """Enqueue ``fn`` under ``key`` and block until it has run.

        Returns ``fn``'s result or re-raises its exception in the calling
        thread.  Items under the same key run strictly in submission order,
        one at a time; items under different keys run concurrently.
        """
        item = _WorkItem(fn)
        self._enqueue(key, item)
        item.done.wait()
        if item.exc is not None:
            raise item.exc
        return item.value

    def submit(
        self,
        key: Any,
        fn: Callable[[], Any],
        callback: Callable[[Any, BaseException | None], None],
    ) -> None:
        """Enqueue ``fn`` under ``key`` without blocking the caller.

        The asyncio serving tier's entry point: the event loop must never
        park in :meth:`run`, so completion is delivered by invoking
        ``callback(value, exc)`` on the worker thread that ran the item
        (exactly one of the two is non-``None`` unless ``fn`` returned
        ``None``; check ``exc`` first).  Ordering guarantees are identical
        to :meth:`run` — same-key items run FIFO, one at a time.  A raised
        callback is swallowed: the reply path owns its own error handling
        and must not poison the worker.
        """
        self._enqueue(key, _WorkItem(fn, callback))

    def _enqueue(self, key: Any, item: _WorkItem) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = deque()
                queue.append(item)
                self._ready.append(key)
                if not self._paused:  # paused: resume() restarts the cascade
                    self._ensure_worker()
                    self._cond.notify()
            else:
                # the key is busy (running or queued): the worker finishing
                # its head item re-readies the key — no notify needed
                queue.append(item)
            self.stats.dispatched += 1
            self.stats.peak_queued = max(
                self.stats.peak_queued, sum(len(q) for q in self._queues.values())
            )

    def close(self) -> None:
        """Reject new work and wake idle workers so they exit.  Pending
        items still drain (their callers are blocked on them)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def active_workers(self) -> int:
        with self._cond:
            return self._workers

    # ----------------------------------------------------------- drain barrier

    def pause(self) -> None:
        """Stop claiming new items.  Submissions keep queuing (callers park
        inside :meth:`run`); items already on a worker run to completion."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        """Lift the drain barrier and restart the claim cascade."""
        with self._cond:
            if not self._paused:
                return
            self._paused = False
            if self._ready:
                self._ensure_worker()
            self._cond.notify_all()

    def quiesce(self, timeout: float | None = None) -> bool:
        """Wait (while paused) until no item is executing on any worker.

        Returns ``True`` when in-flight work reached zero, ``False`` on
        timeout.  ``timeout=0`` is a pure poll.  Must be called *after*
        :meth:`pause`; otherwise new claims can race the wait down to a
        meaningless instant.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._active:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
            return True

    def keys_with_pending(self) -> set[Any]:
        """Keys with queued or running work — sessions the reaper must not
        treat as abandoned just because the drain barrier parked them."""
        with self._cond:
            return set(self._queues)

    # ----------------------------------------------------------- pool

    def _ensure_worker(self) -> None:
        # called under the condition lock
        if self._idle == 0 and self._workers < self.max_workers:
            self._workers += 1
            self.stats.workers_spawned += 1
            self.stats.peak_workers = max(self.stats.peak_workers, self._workers)
            thread = threading.Thread(
                target=self._worker,
                name=f"session-dispatch-{self.stats.workers_spawned}",
                daemon=True,
            )
            thread.start()

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._ready or self._paused:
                    if self._closed:
                        self._workers -= 1
                        return
                    self._idle += 1
                    signaled = self._cond.wait(self.idle_timeout)
                    self._idle -= 1
                    if not signaled and (not self._ready or self._paused):
                        self._workers -= 1
                        return
                key = self._ready.popleft()
                item = self._queues[key][0]
                self._active += 1
                if self._ready:
                    # more keys are runnable than workers were woken: two
                    # near-simultaneous submissions can both observe the
                    # same idle worker (neither spawns) while their two
                    # notifies wake it only once — and if this item now
                    # parks in a lock wait, the other key would sit ready
                    # until the wait ends.  Whoever takes work while work
                    # remains re-arms the pool.
                    self._ensure_worker()
                    self._cond.notify()
            try:
                item.value = item.fn()
            except BaseException as exc:  # delivered to the submitting thread
                item.exc = exc
            finally:
                item.done.set()
                if item.callback is not None:
                    try:
                        item.callback(item.value, item.exc)
                    except Exception:
                        pass  # see submit(): the reply path owns its errors
            with self._cond:
                queue = self._queues[key]
                queue.popleft()
                if queue:
                    self._ready.append(key)
                    if not self._paused:
                        self._cond.notify()
                else:
                    del self._queues[key]
                self._active -= 1
                if self._paused and not self._active:
                    self._cond.notify_all()  # wake quiesce() waiters
