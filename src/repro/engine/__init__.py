"""The database engine substrate.

A from-scratch single-node relational engine with the specific properties
Phoenix/ODBC depends on (see DESIGN.md §2):

* committed data survives a crash — write-ahead log + restart recovery over
  an explicit stable-storage boundary (:mod:`repro.engine.wal`,
  :mod:`repro.engine.recovery`, :mod:`repro.engine.storage`);
* volatile session state (temp tables, open cursors, undelivered results)
  dies with the server (:mod:`repro.engine.session`);
* server cursors — default result sets, keyset cursors, dynamic cursors
  (:mod:`repro.engine.cursors`);
* stored procedures (:mod:`repro.engine.procedures`).

:class:`repro.engine.server.DatabaseServer` is the top-level object, with
``crash()`` / ``restart()`` methods the fault-injection layer drives.
"""

from repro.engine.schema import Column, TableSchema
from repro.engine.server import DatabaseServer, DrainStats, RestartPolicy
from repro.engine.values import SqlType

__all__ = [
    "DatabaseServer",
    "RestartPolicy",
    "DrainStats",
    "TableSchema",
    "Column",
    "SqlType",
]
