"""Expression compilation: AST → Python closures.

Expressions are compiled once per statement against a :class:`Scope`
(name→slot resolution) and then evaluated per row against an :class:`Env`
(the flat row values, chained to outer rows for correlated subqueries).
This keeps per-row work to attribute-free closure calls, which is what
makes TPC-H-scale scans tolerable in pure Python.

Three-valued logic: predicate closures return ``True``/``False``/``None``;
the executor treats only ``True`` as satisfying WHERE/HAVING/ON.

Subqueries are compiled through a callback into the executor (to avoid an
import cycle the executor passes itself in as the ``SubqueryRunner``).
Uncorrelated subqueries are detected at compile time — their result is
computed lazily once and cached for the statement.
"""

from __future__ import annotations

import datetime
import functools
import re
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.errors import DataError, ProgrammingError
from repro.engine import functions
from repro.engine.values import add_interval, coerce_value, compare, parse_date
from repro.engine.schema import type_spec_to_sql_type
from repro.sql import ast

__all__ = [
    "Scope",
    "Env",
    "CompiledExpr",
    "ExpressionCompiler",
    "PlaceholderList",
    "SubqueryRunner",
    "like_to_regex",
]

#: A compiled expression: env → value.
CompiledExpr = Callable[["Env"], Any]


class PlaceholderList(list):
    """The shared placeholder container for one plan tree.

    One instance is threaded (by reference) through every compiler and
    subplan of a plan; compiled placeholder reads resolve against it at run
    time, so rebinding a cached plan is ``plan.placeholders[:] = values``.
    Compilation records the template's highest placeholder ordinal in
    :attr:`required`, letting plan entry validate the bound-value count
    before any row is evaluated.
    """

    __slots__ = ("required",)

    def __init__(self, values: Any = ()):
        super().__init__(values)
        #: number of values the compiled template needs (max ?-index + 1)
        self.required = 0

    def check_bound(self) -> None:
        if len(self) < self.required:
            raise ProgrammingError(
                f"statement has placeholder ?{self.required} but only "
                f"{len(self)} values were bound"
            )


@dataclass
class Env:
    """Runtime row environment: flat slot values + optional outer env."""

    values: list
    parent: "Env | None" = None

    def at(self, depth: int, slot: int) -> Any:
        env: Env | None = self
        for _ in range(depth):
            assert env is not None
            env = env.parent
        assert env is not None
        return env.values[slot]


class Scope:
    """Compile-time name resolution over one level of row slots.

    A scope is a sequence of *sources*; each source contributes its columns
    as consecutive slots.  An extra block of anonymous slots can be added
    for aggregate results (see :meth:`add_synthetic_slot`).
    """

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self._sources: list[tuple[str, list[str]]] = []
        self._slot_count = 0
        #: (binding, column) -> slot; column -> [slots] for unqualified lookup
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, list[int]] = {}
        #: set by resolve() when a lookup escaped to the parent scope —
        #: how we detect correlated subqueries.
        self.used_parent = False

    def add_source(self, binding: str, column_names: list[str]) -> None:
        binding = binding.lower()
        if any(b == binding for b, _ in self._sources):
            raise ProgrammingError(f"duplicate table binding {binding!r} in FROM")
        self._sources.append((binding, [c.lower() for c in column_names]))
        for name in column_names:
            slot = self._slot_count
            self._qualified[(binding, name.lower())] = slot
            self._unqualified.setdefault(name.lower(), []).append(slot)
            self._slot_count += 1

    def add_synthetic_slot(self) -> int:
        """Reserve one anonymous slot (aggregate results); returns its index."""
        slot = self._slot_count
        self._slot_count += 1
        return slot

    @property
    def slot_count(self) -> int:
        return self._slot_count

    @property
    def sources(self) -> list[tuple[str, list[str]]]:
        return list(self._sources)

    def columns_of(self, binding: str) -> list[str]:
        binding = binding.lower()
        for b, cols in self._sources:
            if b == binding:
                return list(cols)
        raise ProgrammingError(f"unknown table {binding!r}")

    def try_resolve(self, name: str, table: str | None = None) -> tuple[int, int] | None:
        """Resolve to (depth, slot) or None; marks parent usage."""
        name = name.lower()
        if table is not None:
            slot = self._qualified.get((table.lower(), name))
        else:
            slots = self._unqualified.get(name, [])
            if len(slots) > 1:
                raise ProgrammingError(f"ambiguous column reference {name!r}")
            slot = slots[0] if slots else None
        if slot is not None:
            return (0, slot)
        if self.parent is not None:
            resolved = self.parent.try_resolve(name, table)
            if resolved is not None:
                self.used_parent = True
                depth, upper_slot = resolved
                return (depth + 1, upper_slot)
        return None

    def resolve(self, name: str, table: str | None = None) -> tuple[int, int]:
        resolved = self.try_resolve(name, table)
        if resolved is None:
            qualified = f"{table}.{name}" if table else name
            raise ProgrammingError(f"unknown column {qualified!r}")
        return resolved


class SubqueryRunner(Protocol):
    """The executor-side hook expression compilation needs for subqueries."""

    def prepare_subquery(self, select: ast.Select, scope: Scope):
        """Plan ``select`` once with ``scope`` as its outer level.  Returns
        ``(rows_fn, correlated)`` where ``rows_fn(env)`` re-runs the plan
        for one outer row's environment."""
        ...


@functools.lru_cache(maxsize=512)
def like_to_regex(pattern: str, escape: str | None = None) -> re.Pattern:
    """Translate a SQL LIKE pattern to a compiled anchored regex.

    Memoized: non-literal LIKE patterns (``col LIKE other_col``, computed
    patterns) hit this per *row*, and TPC-H Q13/Q16-style scans repeat the
    same handful of pattern strings millions of times.
    """
    out: list[str] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("".join(out) + r"\Z", re.DOTALL)


def _statement_memo(runner: Any, compute: Callable[[Env], Any]) -> Callable[[Env], Any]:
    """Memoize ``compute`` for the duration of one top-level statement.

    Uncorrelated subquery results are safe to reuse *within* a statement
    but not across statements: with plan caching, the same compiled closure
    now serves many executions, and intervening DML (possibly from another
    session) must be visible.  The executor bumps ``runner._epoch_cell[0]``
    at every top-level statement entry; we recompute whenever the recorded
    epoch no longer matches.  Runners without an epoch cell (plain
    SubqueryRunner implementations in tests) degrade to compute-once, the
    pre-cache behavior.
    """
    epoch_cell = getattr(runner, "_epoch_cell", None) or [0]
    state: dict[str, Any] = {}

    def memoized(env: Env) -> Any:
        token = epoch_cell[0]
        if state.get("epoch") != token or "value" not in state:
            state["value"] = compute(env)
            state["epoch"] = token
        return state["value"]

    return memoized


def _kleene_and(left: Any, right: Any) -> Any:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _kleene_or(left: Any, right: Any) -> Any:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _truthy(value: Any) -> Any:
    """Normalize a value used as a predicate to True/False/None."""
    if value is None:
        return None
    return bool(value)


class ExpressionCompiler:
    """Compiles AST expressions against a scope.

    ``agg_slots`` maps ``id(FuncCall-node) → slot`` for post-group-by
    compilation, where aggregate calls become slot reads instead of being
    evaluated (the group-by executor fills those slots per group).
    ``params`` maps parameter names / placeholder indexes to values bound
    by the client or procedure call.
    """

    def __init__(
        self,
        scope: Scope,
        runner: SubqueryRunner,
        *,
        agg_slots: dict[int, int] | None = None,
        params: dict[str, Any] | None = None,
        placeholders: list | None = None,
    ):
        self.scope = scope
        self.runner = runner
        self.agg_slots = agg_slots or {}
        self.params = params or {}
        # keep the *caller's* list object (even when empty): rebinding a
        # cached plan mutates that shared list in place, and compiled
        # placeholder reads must observe it
        self.placeholders = placeholders if placeholders is not None else []

    # -- entry point ----------------------------------------------------------

    def compile(self, expr: ast.Expr) -> CompiledExpr:
        method = getattr(self, "_compile_" + type(expr).__name__, None)
        if method is None:
            raise ProgrammingError(f"cannot compile expression {type(expr).__name__}")
        return method(expr)

    def compile_predicate(self, expr: ast.Expr) -> CompiledExpr:
        """Compile an expression used as a filter (result normalized to 3VL)."""
        inner = self.compile(expr)
        return lambda env: _truthy(inner(env))

    # -- leaves ------------------------------------------------------------------

    def _compile_Literal(self, expr: ast.Literal) -> CompiledExpr:
        value = parse_date(str(expr.value)) if expr.is_date else expr.value
        return lambda env: value

    def _compile_ColumnRef(self, expr: ast.ColumnRef) -> CompiledExpr:
        depth, slot = self.scope.resolve(expr.name, expr.table)
        if depth == 0:
            return lambda env: env.values[slot]
        return lambda env: env.at(depth, slot)

    def _compile_Param(self, expr: ast.Param) -> CompiledExpr:
        name = expr.name.lower()
        if name not in self.params:
            raise ProgrammingError(f"unbound parameter @{expr.name}")
        value = self.params[name]
        return lambda env: value

    def _compile_Placeholder(self, expr: ast.Placeholder) -> CompiledExpr:
        # Bind at *run* time through the shared placeholder list: the plan
        # keeps one list object for its whole subplan tree, and rebinding
        # (plan-cache reuse of a parameterized template) mutates that list
        # in place — compiled closures see fresh values with no recompile.
        values = self.placeholders
        index = expr.index
        if isinstance(values, PlaceholderList):
            # record the template's requirement on the shared container so
            # plan entry can reject too-few bound values up front (a filter
            # over an empty table would otherwise never evaluate the read)
            values.required = max(values.required, index + 1)

        def _read(env: Env) -> Any:
            if index >= len(values):
                raise ProgrammingError(
                    f"statement has placeholder ?{index + 1} but only "
                    f"{len(values)} values were bound"
                )
            return values[index]

        return _read

    def _compile_Star(self, expr: ast.Star) -> CompiledExpr:
        raise ProgrammingError("'*' is only valid in a select list or COUNT(*)")

    # -- operators -------------------------------------------------------------------

    def _compile_Unary(self, expr: ast.Unary) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.op.upper() == "NOT":
            def _not(env: Env) -> Any:
                value = _truthy(operand(env))
                return None if value is None else not value
            return _not
        if expr.op == "-":
            def _neg(env: Env) -> Any:
                value = operand(env)
                return None if value is None else -value
            return _neg
        raise ProgrammingError(f"unknown unary operator {expr.op}")

    def _compile_Binary(self, expr: ast.Binary) -> CompiledExpr:
        op = expr.op.upper()
        if op in ("+", "-") and isinstance(expr.right, ast.IntervalLiteral):
            # date ± INTERVAL must be folded before the operand compiles
            # (a bare IntervalLiteral has no value of its own)
            base = self.compile(expr.left)
            amount, unit = expr.right.amount, expr.right.unit
            sign = 1 if op == "+" else -1

            def _date_shift(env: Env) -> Any:
                value = base(env)
                return None if value is None else add_interval(value, amount, unit, sign)

            return _date_shift
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "AND":
            return lambda env: _kleene_and(_truthy(left(env)), _truthy(right(env)))
        if op == "OR":
            return lambda env: _kleene_or(_truthy(left(env)), _truthy(right(env)))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._compile_comparison(op, left, right)
        if op in ("+", "-"):
            return self._compile_additive(expr, op, left, right)
        if op == "*":
            return _null_safe_binop(left, right, lambda a, b: a * b)
        if op == "/":
            def _div(a: Any, b: Any) -> Any:
                if b == 0:
                    raise DataError("division by zero")
                return a / b
            return _null_safe_binop(left, right, _div)
        if op == "%":
            return _null_safe_binop(left, right, lambda a, b: a % b)
        if op == "||":
            return _null_safe_binop(left, right, lambda a, b: f"{a}{b}")
        raise ProgrammingError(f"unknown operator {expr.op}")

    @staticmethod
    def _compile_comparison(op: str, left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
        tests: dict[str, Callable[[int], bool]] = {
            "=": lambda c: c == 0,
            "<>": lambda c: c != 0,
            "<": lambda c: c < 0,
            "<=": lambda c: c <= 0,
            ">": lambda c: c > 0,
            ">=": lambda c: c >= 0,
        }
        test = tests[op]

        def _cmp(env: Env) -> Any:
            c = compare(left(env), right(env))
            return None if c is None else test(c)

        return _cmp

    def _compile_additive(
        self, expr: ast.Binary, op: str, left: CompiledExpr, right: CompiledExpr
    ) -> CompiledExpr:
        sign = 1 if op == "+" else -1

        def _add(env: Env) -> Any:
            a = left(env)
            b = right(env)
            if a is None or b is None:
                return None
            if isinstance(a, datetime.date) and isinstance(b, int):
                return a + datetime.timedelta(days=sign * b)
            if op == "-" and isinstance(a, datetime.date) and isinstance(b, datetime.date):
                return (a - b).days
            return a + b if sign > 0 else a - b

        return _add

    def _compile_IntervalLiteral(self, expr: ast.IntervalLiteral) -> CompiledExpr:
        raise ProgrammingError("INTERVAL is only valid in date +/- INTERVAL arithmetic")

    # -- predicates -----------------------------------------------------------------

    def _compile_IsNull(self, expr: ast.IsNull) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None

    def _compile_Between(self, expr: ast.Between) -> CompiledExpr:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def _between(env: Env) -> Any:
            value = operand(env)
            lo = compare(value, low(env))
            hi = compare(value, high(env))
            if lo is None or hi is None:
                return None
            result = lo >= 0 and hi <= 0
            return not result if negated else result

        return _between

    def _compile_InList(self, expr: ast.InList) -> CompiledExpr:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def _in_fixed(env: Env) -> Any:
            value = operand(env)
            if value is None:
                return None
            saw_null = False
            for item in items:
                c = compare(value, item(env))
                if c is None:
                    saw_null = True
                elif c == 0:
                    return True if not negated else False
            if saw_null:
                return None
            return False if not negated else True

        return _in_fixed

    def _compile_Like(self, expr: ast.Like) -> CompiledExpr:
        operand = self.compile(expr.operand)
        negated = expr.negated
        escape_char: str | None = None
        if expr.escape is not None:
            if not isinstance(expr.escape, ast.Literal):
                raise ProgrammingError("ESCAPE must be a string literal")
            escape_char = str(expr.escape.value)
        if isinstance(expr.pattern, ast.Literal):
            regex = like_to_regex(str(expr.pattern.value), escape_char)

            def _like_const(env: Env) -> Any:
                value = operand(env)
                if value is None:
                    return None
                matched = regex.match(str(value)) is not None
                return not matched if negated else matched

            return _like_const
        pattern = self.compile(expr.pattern)

        def _like(env: Env) -> Any:
            value = operand(env)
            pat = pattern(env)
            if value is None or pat is None:
                return None
            matched = like_to_regex(str(pat), escape_char).match(str(value)) is not None
            return not matched if negated else matched

        return _like

    # -- subqueries ---------------------------------------------------------------------

    def _subquery_rows(self, select: ast.Select) -> tuple[Callable[[Env], list[tuple]], bool]:
        """Compile a subquery; returns (rows_fn, correlated).

        The runner plans the subquery exactly once (name resolution doubles
        as the correlation probe: if nothing escaped to this scope, the
        result cannot depend on the outer row and is safe to cache for the
        whole statement); ``rows_fn`` re-runs the compiled plan per call.
        """
        return self.runner.prepare_subquery(select, self.scope)

    def _compile_InSelect(self, expr: ast.InSelect) -> CompiledExpr:
        operand = self.compile(expr.operand)
        rows_fn, correlated = self._subquery_rows(expr.select)
        negated = expr.negated

        def gather(env: Env) -> tuple[set, bool]:
            values = set()
            saw_null = False
            for row in rows_fn(env):
                if len(row) != 1:
                    raise ProgrammingError("IN subquery must return one column")
                if row[0] is None:
                    saw_null = True
                else:
                    values.add(row[0])
            return values, saw_null

        cached_gather = _statement_memo(self.runner, gather)

        def _in_select_fixed(env: Env) -> Any:
            value = operand(env)
            if value is None:
                return None
            if correlated:
                values, saw_null = gather(env)
            else:
                values, saw_null = cached_gather(env)
            if value in values:
                return not negated
            if saw_null:
                return None
            return negated

        return _in_select_fixed

    def _compile_Exists(self, expr: ast.Exists) -> CompiledExpr:
        rows_fn, correlated = self._subquery_rows(expr.select)
        negated = expr.negated
        cached_found = _statement_memo(self.runner, lambda env: bool(rows_fn(env)))

        def _exists(env: Env) -> Any:
            if correlated:
                found = bool(rows_fn(env))
            else:
                found = cached_found(env)
            return not found if negated else found

        return _exists

    def _compile_ScalarSelect(self, expr: ast.ScalarSelect) -> CompiledExpr:
        rows_fn, correlated = self._subquery_rows(expr.select)

        def scalar(env: Env) -> Any:
            rows = rows_fn(env)
            if not rows:
                return None
            if len(rows) > 1:
                raise ProgrammingError("scalar subquery returned more than one row")
            if len(rows[0]) != 1:
                raise ProgrammingError("scalar subquery must return one column")
            return rows[0][0]

        cached_scalar = _statement_memo(self.runner, scalar)

        def _scalar_select(env: Env) -> Any:
            if correlated:
                return scalar(env)
            return cached_scalar(env)

        return _scalar_select

    # -- functions & friends ---------------------------------------------------------------

    def _compile_FuncCall(self, expr: ast.FuncCall) -> CompiledExpr:
        name = expr.name.lower()
        if name == "rowcount" and not expr.args:
            # @@ROWCOUNT analog: affected rows of the session's last DML.
            runner = self.runner
            return lambda env: getattr(runner, "session").last_rowcount
        if name in functions.AGGREGATE_NAMES:
            slot = self.agg_slots.get(id(expr))
            if slot is None:
                raise ProgrammingError(
                    f"aggregate {name}() is not allowed here (no GROUP BY context)"
                )
            return lambda env: env.values[slot]
        fn = functions.SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ProgrammingError(f"unknown function {expr.name}")
        args = [self.compile(a) for a in expr.args]
        return lambda env: fn(*[a(env) for a in args])

    def _compile_CaseExpr(self, expr: ast.CaseExpr) -> CompiledExpr:
        whens = [(self.compile(c), self.compile(r)) for c, r in expr.whens]
        else_ = self.compile(expr.else_) if expr.else_ is not None else None
        if expr.operand is None:
            def _case(env: Env) -> Any:
                for cond, result in whens:
                    if _truthy(cond(env)) is True:
                        return result(env)
                return else_(env) if else_ is not None else None
            return _case
        operand = self.compile(expr.operand)

        def _case_operand(env: Env) -> Any:
            value = operand(env)
            for cond, result in whens:
                if compare(value, cond(env)) == 0:
                    return result(env)
            return else_(env) if else_ is not None else None

        return _case_operand

    def _compile_Cast(self, expr: ast.Cast) -> CompiledExpr:
        operand = self.compile(expr.operand)
        sql_type = type_spec_to_sql_type(expr.type)
        length = expr.type.length
        return lambda env: coerce_value(operand(env), sql_type, length=length)

    def _compile_ExtractExpr(self, expr: ast.ExtractExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)
        part = expr.part.upper()

        def _extract(env: Env) -> Any:
            value = operand(env)
            if value is None:
                return None
            if isinstance(value, str):
                value = parse_date(value)
            if not isinstance(value, datetime.date):
                raise DataError(f"EXTRACT requires a date, got {value!r}")
            return {"YEAR": value.year, "MONTH": value.month, "DAY": value.day}[part]

        return _extract

    def _compile_SubstringExpr(self, expr: ast.SubstringExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)
        start = self.compile(expr.start)
        length = self.compile(expr.length) if expr.length is not None else None
        substr = functions.SCALAR_FUNCTIONS["substring"]
        if length is None:
            return lambda env: substr(operand(env), start(env))
        return lambda env: substr(operand(env), start(env), length(env))


def _null_safe_binop(
    left: CompiledExpr, right: CompiledExpr, fn: Callable[[Any, Any], Any]
) -> CompiledExpr:
    def _op(env: Env) -> Any:
        a = left(env)
        b = right(env)
        if a is None or b is None:
            return None
        return fn(a, b)

    return _op
