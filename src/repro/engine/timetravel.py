"""Time travel from the WAL: point-in-time query and restore-to-timestamp.

The WAL already records every change the database ever committed; Talius
et al. (PAPERS.md) observe that this makes the log itself a time machine —
no full backups needed.  This module is that machine:

* :class:`LogIndex` — maps commit timestamps to cut LSNs.  Commit records
  are stamped at *device-force* time (:meth:`WriteAheadLog._flush_commits`),
  so every commit covered by one group force shares one instant and a
  batch is all-or-none under any cut.  The index is volatile and rebuilt
  from the (archived + live) log at every boot.
* :func:`reconstruct_at` — replays committed history up to a cut LSN into
  a fresh, throwaway-storage :class:`Database`: the read-only snapshot
  ``SELECT ... AS OF <ts>`` queries run against.
* :class:`TimeTravelManager` — owns the clock, the index, and an LRU cache
  of reconstructed snapshots (one executor *per cut*, so plan caching is
  naturally keyed per cut).  ``DatabaseServer`` attaches one per system;
  ``restore_to(ts)`` uses :func:`restore_storage_to` to rewrite stable
  storage to a cut and then boots a fresh engine from it.

**Cut semantics.**  A *cut* is the LSN of a COMMIT record; the state at a
cut is every transaction whose commit LSN is ``<= cut``, in log order —
exactly restart recovery's winner set, evaluated at a past moment.
``AS OF ts`` resolves to the last commit whose timestamp is ``<= ts``
(the empty database when there is none).  Uncommitted and aborted
transactions are invisible at every cut, a quiescent checkpoint archives
the log prefix it truncates (``_META_TT_ARCHIVE``) so no cut is ever lost,
and ``restore_to`` *discards* post-cut history — by design, that is the
application-error-recovery story.  See docs/TIME_TRAVEL.md.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import TimeTravelError
from repro.engine.database import Database, _META_TT_ARCHIVE
from repro.engine.recovery import RecoveryReport, _replay
from repro.engine.storage import InMemoryStableStorage, StableStorage
from repro.engine.wal import CommitClock, RecordType, scan_log
from repro.obs.tracer import get_tracer

__all__ = [
    "LogIndex",
    "ReconstructInfo",
    "TimeTravelManager",
    "TimeTravelStats",
    "full_log_records",
    "reconstruct_at",
]


@dataclass
class TimeTravelStats:
    """Time-travel counters; reset semantics per :mod:`repro.obs.metrics`
    (cumulative across crashes/restarts, zeroed only by explicit reset)."""

    as_of_queries: int = 0
    reconstructions: int = 0
    records_replayed: int = 0
    snapshot_hits: int = 0
    restores_started: int = 0
    restores_completed: int = 0
    #: committed transactions discarded by restore_to (post-cut history)
    commits_discarded: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)

    def reset(self) -> None:
        for name in list(self.__dict__):
            setattr(self, name, 0)


class LogIndex:
    """Commit timestamp → cut LSN, over the full archived + live history.

    Entries arrive in LSN order with strictly increasing timestamps (the
    :class:`CommitClock` guarantees it), so both columns are sorted and
    ``floor`` is a bisect.  Volatile: :meth:`rebuild` rescans storage at
    boot; :meth:`note_commit` keeps it live afterwards (called by the WAL
    after each successful device force).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._lsns: list[int] = []
        self._ends: list[int] = []
        self._tss: list[float] = []

    def __len__(self) -> int:
        return len(self._lsns)

    def note_commit(self, lsn: int, end: int, ts: float) -> None:
        with self._lock:
            if self._tss and ts <= self._tss[-1]:
                ts = self._tss[-1] + 1e-9  # defensive: keep bisect valid
            self._lsns.append(lsn)
            self._ends.append(end)
            self._tss.append(ts)

    def floor(self, ts: float) -> tuple[int, int, float] | None:
        """The last commit at or before ``ts`` as ``(lsn, end, ts)``;
        None when ``ts`` predates every commit."""
        with self._lock:
            i = bisect.bisect_right(self._tss, ts)
            if i == 0:
                return None
            return self._lsns[i - 1], self._ends[i - 1], self._tss[i - 1]

    def latest(self) -> tuple[int, int, float] | None:
        with self._lock:
            if not self._lsns:
                return None
            return self._lsns[-1], self._ends[-1], self._tss[-1]

    def cuts(self) -> list[tuple[float, int]]:
        """Every known cut as ``(ts, lsn)``, oldest first."""
        with self._lock:
            return list(zip(self._tss, self._lsns))

    def truncate_to(self, cut_lsn: int) -> int:
        """Drop entries past ``cut_lsn`` (restore_to discarded them);
        returns how many were dropped."""
        with self._lock:
            i = bisect.bisect_right(self._lsns, cut_lsn)
            dropped = len(self._lsns) - i
            del self._lsns[i:], self._ends[i:], self._tss[i:]
            return dropped

    def end_for(self, cut_lsn: int) -> int | None:
        """End offset of the commit frame at ``cut_lsn`` (None if unknown)."""
        with self._lock:
            i = bisect.bisect_left(self._lsns, cut_lsn)
            if i < len(self._lsns) and self._lsns[i] == cut_lsn:
                return self._ends[i]
            return None

    def rebuild(self, storage: StableStorage) -> int:
        """Re-index every commit in the archived + live log; returns the
        entry count.  Records missing a stamp (logs written before this
        feature) get a synthesized monotonic timestamp."""
        records, _start, ends = full_log_records(storage)
        with self._lock:
            self._lsns.clear()
            self._ends.clear()
            self._tss.clear()
            last_ts = 0.0
            for record, end in zip(records, ends):
                if record.type is not RecordType.COMMIT:
                    continue
                ts = getattr(record, "commit_ts", None)
                if ts is None or ts <= last_ts:
                    ts = last_ts + 1e-9
                last_ts = ts
                self._lsns.append(record.lsn)
                self._ends.append(end)
                self._tss.append(ts)
            return len(self._lsns)


def full_log_records(storage: StableStorage):
    """Decode the *entire* committed history: archive segments + live log.

    Returns ``(records, start_lsn, ends)`` where ``ends[i]`` is the end
    offset of ``records[i]``'s frame (what a restore truncating *after*
    that record keeps).  Gaps between segments are legitimate (history
    erased by a ``restore_to`` below the log base); an *overlap* means the
    archive is corrupt and raises :class:`TimeTravelError`.
    """
    base = getattr(storage, "log_base", 0)
    segments = list(storage.read_meta(_META_TT_ARCHIVE, []) or [])
    segments.append((base, None, storage.read_log()))  # the live log
    records: list = []
    ends: list[int] = []
    prev_end = 0
    for seg_start, seg_end, blob in segments:
        if seg_start < prev_end:
            raise TimeTravelError(
                f"time-travel archive segments overlap at LSN {seg_start} "
                f"(previous segment ends at {prev_end}): history is corrupt"
            )
        seg_records, good_end = scan_log(blob, base_offset=seg_start)
        for i, record in enumerate(seg_records):
            records.append(record)
            ends.append(
                seg_records[i + 1].lsn if i + 1 < len(seg_records) else good_end
            )
        prev_end = good_end if seg_end is None else seg_end
    start = segments[0][0]
    return records, start, ends


@dataclass
class ReconstructInfo:
    """What one reconstruction did (the ``timetravel.reconstruct`` span
    carries the same numbers)."""

    cut_lsn: int
    records_scanned: int = 0
    records_replayed: int = 0
    tables: int = 0
    winners: int = 0
    #: highest transaction id anywhere in the scanned history — restore
    #: seeds the fresh engine past it so ids are never reused across a cut
    max_txn_id: int = 0


def reconstruct_at(
    storage: StableStorage, cut_lsn: int
) -> tuple[Database, ReconstructInfo]:
    """Replay committed history up to ``cut_lsn`` into a fresh Database.

    The returned database lives on a *throwaway* in-memory storage: replay
    side effects (dropped-table file deletes) must never touch the real
    device, and nothing the snapshot does is durable.  Reconstruction
    reuses restart recovery's ``_replay`` with the winner set restricted
    to commits at or below the cut — the snapshot is exactly what a crash
    recovery at that moment would have produced.
    """
    with get_tracer().span("timetravel.reconstruct", cut=cut_lsn) as span:
        records, start, _ends = full_log_records(storage)
        if cut_lsn < start:
            raise TimeTravelError(
                f"cut LSN {cut_lsn} predates the replayable history "
                f"(archive starts at {start})"
            )
        info = ReconstructInfo(cut_lsn=cut_lsn, records_scanned=len(records))
        # Attribute each record to the COMMIT that closes it.  Transaction
        # ids are *reused* across server incarnations (each boot reseeds),
        # so a bare txn-id → commit map would fold two different
        # transactions into one; instead a forward walk tracks the open
        # incarnation per id — a COMMIT claims the records accumulated
        # since the id's last closure, an ABORT discards them.
        commit_of: dict[int, int] = {}  # record index -> owning commit LSN
        pending: dict[int, list[int]] = {}
        winners = 0
        for i, record in enumerate(records):
            if record.txn_id > info.max_txn_id:
                info.max_txn_id = record.txn_id
            pending.setdefault(record.txn_id, []).append(i)
            if record.type is RecordType.COMMIT:
                indices = pending.pop(record.txn_id, [])
                if record.lsn <= cut_lsn:
                    winners += 1
                    for idx in indices:
                        commit_of[idx] = record.lsn
            elif record.type is RecordType.ABORT:
                pending.pop(record.txn_id, None)
        info.winners = winners

        database = Database(InMemoryStableStorage(), tables={}, procedures={}, views={})
        report = RecoveryReport()
        snapshot_lsn: dict[str, int] = {}
        for i, record in enumerate(records):
            commit_lsn = commit_of.get(i)
            if commit_lsn is None:
                continue
            _replay(record, commit_lsn, database, snapshot_lsn, 0, report)
        for name, (table_name, column) in list(database.indexes.items()):
            table = database.tables.get(table_name)
            if table is None:
                del database.indexes[name]
                continue
            table.add_secondary_index(column)
        info.records_replayed = report.records_redone
        info.tables = len(database.tables)
        #: marks the database as a frozen point-in-time snapshot
        database.frozen_cut = cut_lsn
        span.set(
            scanned=info.records_scanned,
            replayed=info.records_replayed,
            winners=info.winners,
            tables=info.tables,
        )
        return database, info


class _Snapshot:
    """One cached cut: the reconstructed database plus its own executor
    (own plan cache — cache keys are naturally per cut) and session."""

    def __init__(self, cut_lsn: int, database: Database, executor, info: ReconstructInfo):
        self.cut_lsn = cut_lsn
        self.database = database
        self.executor = executor
        self.info = info


class TimeTravelManager:
    """The server's time-travel surface: clock + index + snapshot cache.

    One manager spans every database incarnation of a server (like the
    stats objects): the clock stays monotonic across restarts and the
    index is rebuilt from storage at each boot via :meth:`rebuild`.
    """

    def __init__(
        self,
        storage: StableStorage,
        *,
        stats: TimeTravelStats | None = None,
        engine_metrics=None,
        max_snapshots: int = 4,
    ):
        self.storage = storage
        self.clock = CommitClock()
        self.log_index = LogIndex()
        self.stats = stats if stats is not None else TimeTravelStats()
        if engine_metrics is None:
            from repro.engine.plancache import EngineMetrics

            engine_metrics = EngineMetrics()
        self.engine_metrics = engine_metrics
        self.max_snapshots = max_snapshots
        self._snapshots: OrderedDict[int, _Snapshot] = OrderedDict()
        self._lock = threading.RLock()

    # -- wiring ---------------------------------------------------------------

    def attach(self, database: Database) -> None:
        """Wire this manager into a (new) database incarnation: the WAL
        stamps commits with our clock and publishes them to our index."""
        database.time_travel = self
        database.wal.clock = self.clock
        database.wal.log_index = self.log_index

    def rebuild(self) -> None:
        """Boot-time reset: re-index full history, advance the clock past
        every recovered stamp, drop cached snapshots."""
        with self._lock:
            self.log_index.rebuild(self.storage)
            latest = self.log_index.latest()
            if latest is not None:
                self.clock.advance_past(latest[2])
            self._snapshots.clear()

    # -- resolution -----------------------------------------------------------

    def resolve_cut(self, ts: float) -> int:
        """The cut LSN ``AS OF ts`` means: the last commit at or before
        ``ts``, or 0 (the empty database) when ``ts`` predates them all."""
        entry = self.log_index.floor(ts)
        return entry[0] if entry is not None else 0

    def cut_end(self, cut_lsn: int) -> int:
        """The end offset of the cut's commit frame — where restore_to
        truncates the log.  Cut 0 (before the first commit) maps to the
        start of history."""
        if cut_lsn == 0:
            return 0
        end = self.log_index.end_for(cut_lsn)
        if end is None:
            raise TimeTravelError(f"no commit at cut LSN {cut_lsn}")
        return end

    # -- snapshots ------------------------------------------------------------

    def snapshot_at(self, ts: float) -> _Snapshot:
        """The cached (or freshly reconstructed) snapshot for ``ts``'s cut."""
        return self.snapshot_at_cut(self.resolve_cut(ts))

    def snapshot_at_cut(self, cut_lsn: int) -> _Snapshot:
        with self._lock:
            snapshot = self._snapshots.get(cut_lsn)
            if snapshot is not None:
                self._snapshots.move_to_end(cut_lsn)
                self.stats.snapshot_hits += 1
                return snapshot
            database, info = reconstruct_at(self.storage, cut_lsn)
            from repro.engine.executor import Executor
            from repro.engine.session import Session

            session = Session(user="timetravel")
            executor = Executor(
                database, session, metrics=self.engine_metrics, plan_cache=True
            )
            #: tells Executor.execute_select it already *is* the snapshot —
            #: a select's AS OF clause is resolved, not recursed on
            executor.as_of_cut = cut_lsn
            snapshot = _Snapshot(cut_lsn, database, executor, info)
            self._snapshots[cut_lsn] = snapshot
            while len(self._snapshots) > self.max_snapshots:
                self._snapshots.popitem(last=False)
            self.stats.reconstructions += 1
            self.stats.records_replayed += info.records_replayed
            return snapshot
