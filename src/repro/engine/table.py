"""Volatile table representation: rows in memory plus a primary-key index.

A :class:`Table` wraps a :class:`~repro.engine.storage.TableData` image and
adds the structures that are *not* persisted (the PK hash index and the
ordered secondary indexes).  All methods here are unlogged primitives — the
logged mutation API lives on :class:`~repro.engine.database.Database`,
which writes WAL records before calling these.  Because undo, redo, crash
recovery, checkpoint loads, and time-travel reconstruction all route
through these same primitives, index maintenance here is automatically
consistent across every one of those paths — the indexes are *derived*
state, rebuilt from the catalog's index DDL whenever a table image is
(re)loaded, never persisted themselves.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator

from repro.errors import IntegrityError, InternalError
from repro.engine.schema import TableSchema
from repro.engine.storage import TableData

__all__ = ["OrderedIndex", "Table"]


class OrderedIndex:
    """Ordered secondary index over one column: sorted keys + sorted postings.

    Two maintained invariants replace the seed's hash-of-sets design:

    * ``_keys`` is the sorted list of distinct non-NULL key values, kept
      ordered with :func:`bisect.insort` — range probes (``<``, ``<=``,
      ``>``, ``>=``, ``BETWEEN``) are two bisects plus a slice, and ORDER BY
      on the indexed column can stream in key order.
    * each posting list is a sorted list of rowids, maintained on every
      add/remove — equality probes return it directly instead of re-sorting
      a set per call (the old ``sorted(bucket)``-per-probe cost).

    NULL keys live in a separate posting list: SQL comparisons with NULL
    are never true, so range probes skip them, while ordered iteration
    places them first ascending / last descending (matching the executor's
    ``sort_key`` NULLS-FIRST-ASC collation exactly).

    Values within one column are homogeneous (the schema coerces them), so
    bisecting the raw values is safe.
    """

    __slots__ = ("_postings", "_keys", "_nulls")

    def __init__(self) -> None:
        #: non-NULL key value -> sorted list of rowids
        self._postings: dict[Any, list[int]] = {}
        #: sorted distinct non-NULL key values
        self._keys: list = []
        #: sorted rowids whose key is NULL
        self._nulls: list[int] = []

    def add(self, value: Any, rowid: int) -> None:
        if value is None:
            insort(self._nulls, rowid)
            return
        posting = self._postings.get(value)
        if posting is None:
            insort(self._keys, value)
            self._postings[value] = [rowid]
        else:
            insort(posting, rowid)

    def remove(self, value: Any, rowid: int) -> None:
        if value is None:
            i = bisect_left(self._nulls, rowid)
            if i < len(self._nulls) and self._nulls[i] == rowid:
                del self._nulls[i]
            return
        posting = self._postings.get(value)
        if posting is None:
            return
        i = bisect_left(posting, rowid)
        if i < len(posting) and posting[i] == rowid:
            del posting[i]
        if not posting:
            del self._postings[value]
            k = bisect_left(self._keys, value)
            if k < len(self._keys) and self._keys[k] == value:
                del self._keys[k]

    def eq(self, value: Any) -> list[int]:
        """Sorted rowids whose key equals ``value`` (no per-call sort)."""
        if value is None:
            return list(self._nulls)
        return list(self._postings.get(value, ()))

    def range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        desc: bool = False,
    ) -> list[int]:
        """Rowids whose key falls in the bound interval, in key order.

        ``None`` on either side means unbounded.  NULL keys never match a
        range (SQL three-valued comparison).  Within one key, rowids come
        back ascending; ``desc`` reverses the *key* order only, matching a
        stable descending sort.
        """
        keys = self._keys
        lo = 0 if low is None else (
            bisect_left(keys, low) if low_inclusive else bisect_right(keys, low)
        )
        hi = len(keys) if high is None else (
            bisect_right(keys, high) if high_inclusive else bisect_left(keys, high)
        )
        selected = keys[lo:hi]
        if desc:
            selected = reversed(selected)
        postings = self._postings
        return [rowid for key in selected for rowid in postings[key]]

    def ordered(self, *, desc: bool = False) -> Iterator[int]:
        """Every rowid in key order (NULLS FIRST ascending, last
        descending), ties in rowid order — exactly the order a stable
        ``sort_key`` sort of the rows would produce."""
        if desc:
            for key in reversed(self._keys):
                yield from self._postings[key]
            yield from self._nulls
        else:
            yield from self._nulls
            for key in self._keys:
                yield from self._postings[key]

    def __len__(self) -> int:
        return len(self._nulls) + sum(len(p) for p in self._postings.values())


class Table:
    """In-memory table: row store + PK index + ordered secondary indexes."""

    def __init__(self, data: TableData):
        self.data = data
        self._pk_index: dict[tuple, int] = {}
        #: ordered secondary indexes: column name -> OrderedIndex.
        #: Volatile (never snapshotted); rebuilt from index DDL at recovery.
        self._secondary: dict[str, OrderedIndex] = {}
        #: cached ascending rowid order for scan(); None = needs rebuild.
        #: Inserts extend it when rowids stay monotonic (the normal case);
        #: deletes and out-of-order redo inserts invalidate it.
        self._scan_order: list[int] | None = None
        self._rebuild_index()

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, schema: TableSchema) -> "Table":
        return cls(TableData(schema=schema))

    def _rebuild_index(self) -> None:
        self._pk_index.clear()
        schema = self.schema
        if not schema.primary_key:
            return
        for rowid, row in self.data.rows.items():
            key = schema.key_of(row)
            if key in self._pk_index:
                raise InternalError(
                    f"duplicate primary key {key!r} while loading table {schema.name}"
                )
            self._pk_index[key] = rowid

    # -- introspection -----------------------------------------------------------

    @property
    def schema(self) -> TableSchema:
        return self.data.schema

    @property
    def name(self) -> str:
        return self.data.schema.name

    def row_count(self) -> int:
        return len(self.data.rows)

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Iterate (rowid, row) in insertion (rowid) order.

        The sorted rowid order is cached and maintained incrementally across
        monotonic inserts, so repeated scans (the analytic hot path) stop
        paying an O(n log n) sort each.
        """
        order = self._scan_order
        if order is None:
            order = self._scan_order = sorted(self.data.rows)
        rows = self.data.rows
        for rowid in order:
            yield rowid, rows[rowid]

    def get(self, rowid: int) -> tuple | None:
        return self.data.rows.get(rowid)

    def lookup_key(self, key: tuple) -> int | None:
        """Row id for a primary-key value, or None."""
        return self._pk_index.get(key)

    # -- secondary indexes -------------------------------------------------------

    def add_secondary_index(self, column: str) -> None:
        """Build an ordered index over ``column`` (idempotent)."""
        column = column.lower()
        if column in self._secondary:
            return
        position = self.schema.column_index(column)
        index = OrderedIndex()
        for rowid, row in self.data.rows.items():
            index.add(row[position], rowid)
        self._secondary[column] = index

    def drop_secondary_index(self, column: str) -> None:
        self._secondary.pop(column.lower(), None)

    def has_secondary_index(self, column: str) -> bool:
        return column.lower() in self._secondary

    def index_lookup(self, column: str, value) -> list[int]:
        """Rowids whose ``column`` equals ``value`` (sorted postings — no
        per-probe sort)."""
        return self._secondary[column.lower()].eq(value)

    def index_range(
        self,
        column: str,
        low=None,
        high=None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        desc: bool = False,
    ) -> list[int]:
        """Rowids whose ``column`` falls in the bound interval (key order)."""
        return self._secondary[column.lower()].range(
            low, high,
            low_inclusive=low_inclusive,
            high_inclusive=high_inclusive,
            desc=desc,
        )

    def index_ordered(self, column: str, *, desc: bool = False) -> Iterator[int]:
        """Every rowid in ``column`` key order (see OrderedIndex.ordered)."""
        return self._secondary[column.lower()].ordered(desc=desc)

    def _secondary_add(self, rowid: int, row: tuple) -> None:
        for column, index in self._secondary.items():
            index.add(row[self.schema.column_index(column)], rowid)

    def _secondary_remove(self, rowid: int, row: tuple) -> None:
        for column, index in self._secondary.items():
            index.remove(row[self.schema.column_index(column)], rowid)

    # -- unlogged mutation primitives ------------------------------------------------

    def check_insert(self, row: tuple) -> None:
        """Raise IntegrityError if inserting ``row`` would violate the PK.

        Called by the logged API *before* it writes the WAL record.
        """
        schema = self.schema
        if schema.primary_key and schema.key_of(row) in self._pk_index:
            raise IntegrityError(
                f"duplicate primary key {schema.key_of(row)!r} in table {schema.name}"
            )

    def check_update(self, rowid: int, new_row: tuple) -> None:
        """Raise IntegrityError if updating ``rowid`` to ``new_row`` would
        collide with another row's primary key."""
        schema = self.schema
        if not schema.primary_key:
            return
        new_key = schema.key_of(new_row)
        existing = self._pk_index.get(new_key)
        if existing is not None and existing != rowid:
            raise IntegrityError(
                f"duplicate primary key {new_key!r} in table {schema.name}"
            )

    def insert(self, row: tuple, rowid: int | None = None) -> int:
        """Insert a coerced row; returns its rowid.

        ``rowid`` is supplied during redo to reproduce the original id.
        """
        schema = self.schema
        if schema.primary_key:
            key = schema.key_of(row)
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {schema.name}"
                )
        if rowid is None:
            rowid = self.data.next_rowid
            self.data.next_rowid += 1
        else:
            self.data.next_rowid = max(self.data.next_rowid, rowid + 1)
        if rowid in self.data.rows:
            raise InternalError(f"rowid {rowid} already present in {schema.name}")
        order = self._scan_order
        if order is not None:
            if not order or rowid > order[-1]:
                order.append(rowid)
            else:
                self._scan_order = None  # out-of-order redo insert
        self.data.rows[rowid] = row
        if schema.primary_key:
            self._pk_index[schema.key_of(row)] = rowid
        self._secondary_add(rowid, row)
        return rowid

    def delete(self, rowid: int) -> tuple:
        """Remove a row; returns the deleted row (the undo image)."""
        try:
            row = self.data.rows.pop(rowid)
        except KeyError:
            raise InternalError(f"rowid {rowid} not in table {self.name}") from None
        self._scan_order = None
        if self.schema.primary_key:
            self._pk_index.pop(self.schema.key_of(row), None)
        self._secondary_remove(rowid, row)
        return row

    def update(self, rowid: int, new_row: tuple) -> tuple:
        """Replace a row in place; returns the before image."""
        schema = self.schema
        try:
            old_row = self.data.rows[rowid]
        except KeyError:
            raise InternalError(f"rowid {rowid} not in table {self.name}") from None
        if schema.primary_key:
            old_key = schema.key_of(old_row)
            new_key = schema.key_of(new_row)
            if new_key != old_key:
                existing = self._pk_index.get(new_key)
                if existing is not None and existing != rowid:
                    raise IntegrityError(
                        f"duplicate primary key {new_key!r} in table {schema.name}"
                    )
                self._pk_index.pop(old_key, None)
                self._pk_index[new_key] = rowid
        self._secondary_remove(rowid, old_row)
        self.data.rows[rowid] = new_row
        self._secondary_add(rowid, new_row)
        return old_row
