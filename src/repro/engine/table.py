"""Volatile table representation: rows in memory plus a primary-key index.

A :class:`Table` wraps a :class:`~repro.engine.storage.TableData` image and
adds the structures that are *not* persisted (the PK hash index).  All
methods here are unlogged primitives — the logged mutation API lives on
:class:`~repro.engine.database.Database`, which writes WAL records before
calling these.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import IntegrityError, InternalError
from repro.engine.schema import TableSchema
from repro.engine.storage import TableData

__all__ = ["Table"]


class Table:
    """In-memory table: row store + PK index."""

    def __init__(self, data: TableData):
        self.data = data
        self._pk_index: dict[tuple, int] = {}
        #: secondary hash indexes: column name -> value -> set of rowids.
        #: Volatile (never snapshotted); rebuilt from index DDL at recovery.
        self._secondary: dict[str, dict] = {}
        self._rebuild_index()

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, schema: TableSchema) -> "Table":
        return cls(TableData(schema=schema))

    def _rebuild_index(self) -> None:
        self._pk_index.clear()
        schema = self.schema
        if not schema.primary_key:
            return
        for rowid, row in self.data.rows.items():
            key = schema.key_of(row)
            if key in self._pk_index:
                raise InternalError(
                    f"duplicate primary key {key!r} while loading table {schema.name}"
                )
            self._pk_index[key] = rowid

    # -- introspection -----------------------------------------------------------

    @property
    def schema(self) -> TableSchema:
        return self.data.schema

    @property
    def name(self) -> str:
        return self.data.schema.name

    def row_count(self) -> int:
        return len(self.data.rows)

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Iterate (rowid, row) in insertion (rowid) order."""
        for rowid in sorted(self.data.rows):
            yield rowid, self.data.rows[rowid]

    def get(self, rowid: int) -> tuple | None:
        return self.data.rows.get(rowid)

    def lookup_key(self, key: tuple) -> int | None:
        """Row id for a primary-key value, or None."""
        return self._pk_index.get(key)

    # -- secondary indexes -------------------------------------------------------

    def add_secondary_index(self, column: str) -> None:
        """Build a hash index over ``column`` (idempotent)."""
        column = column.lower()
        if column in self._secondary:
            return
        position = self.schema.column_index(column)
        index: dict = {}
        for rowid, row in self.data.rows.items():
            index.setdefault(row[position], set()).add(rowid)
        self._secondary[column] = index

    def drop_secondary_index(self, column: str) -> None:
        self._secondary.pop(column.lower(), None)

    def has_secondary_index(self, column: str) -> bool:
        return column.lower() in self._secondary

    def index_lookup(self, column: str, value) -> list[int]:
        """Rowids whose ``column`` equals ``value`` (via the hash index)."""
        return sorted(self._secondary[column.lower()].get(value, ()))

    def _secondary_add(self, rowid: int, row: tuple) -> None:
        for column, index in self._secondary.items():
            value = row[self.schema.column_index(column)]
            index.setdefault(value, set()).add(rowid)

    def _secondary_remove(self, rowid: int, row: tuple) -> None:
        for column, index in self._secondary.items():
            value = row[self.schema.column_index(column)]
            bucket = index.get(value)
            if bucket is not None:
                bucket.discard(rowid)
                if not bucket:
                    del index[value]

    # -- unlogged mutation primitives ------------------------------------------------

    def check_insert(self, row: tuple) -> None:
        """Raise IntegrityError if inserting ``row`` would violate the PK.

        Called by the logged API *before* it writes the WAL record.
        """
        schema = self.schema
        if schema.primary_key and schema.key_of(row) in self._pk_index:
            raise IntegrityError(
                f"duplicate primary key {schema.key_of(row)!r} in table {schema.name}"
            )

    def check_update(self, rowid: int, new_row: tuple) -> None:
        """Raise IntegrityError if updating ``rowid`` to ``new_row`` would
        collide with another row's primary key."""
        schema = self.schema
        if not schema.primary_key:
            return
        new_key = schema.key_of(new_row)
        existing = self._pk_index.get(new_key)
        if existing is not None and existing != rowid:
            raise IntegrityError(
                f"duplicate primary key {new_key!r} in table {schema.name}"
            )

    def insert(self, row: tuple, rowid: int | None = None) -> int:
        """Insert a coerced row; returns its rowid.

        ``rowid`` is supplied during redo to reproduce the original id.
        """
        schema = self.schema
        if schema.primary_key:
            key = schema.key_of(row)
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {schema.name}"
                )
        if rowid is None:
            rowid = self.data.next_rowid
            self.data.next_rowid += 1
        else:
            self.data.next_rowid = max(self.data.next_rowid, rowid + 1)
        if rowid in self.data.rows:
            raise InternalError(f"rowid {rowid} already present in {schema.name}")
        self.data.rows[rowid] = row
        if schema.primary_key:
            self._pk_index[schema.key_of(row)] = rowid
        self._secondary_add(rowid, row)
        return rowid

    def delete(self, rowid: int) -> tuple:
        """Remove a row; returns the deleted row (the undo image)."""
        try:
            row = self.data.rows.pop(rowid)
        except KeyError:
            raise InternalError(f"rowid {rowid} not in table {self.name}") from None
        if self.schema.primary_key:
            self._pk_index.pop(self.schema.key_of(row), None)
        self._secondary_remove(rowid, row)
        return row

    def update(self, rowid: int, new_row: tuple) -> tuple:
        """Replace a row in place; returns the before image."""
        schema = self.schema
        try:
            old_row = self.data.rows[rowid]
        except KeyError:
            raise InternalError(f"rowid {rowid} not in table {self.name}") from None
        if schema.primary_key:
            old_key = schema.key_of(old_row)
            new_key = schema.key_of(new_row)
            if new_key != old_key:
                existing = self._pk_index.get(new_key)
                if existing is not None and existing != rowid:
                    raise IntegrityError(
                        f"duplicate primary key {new_key!r} in table {schema.name}"
                    )
                self._pk_index.pop(old_key, None)
                self._pk_index[new_key] = rowid
        self._secondary_remove(rowid, old_row)
        self.data.rows[rowid] = new_row
        self._secondary_add(rowid, new_row)
        return old_row
