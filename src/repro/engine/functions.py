"""Scalar and aggregate function implementations.

Scalar functions are plain callables over Python values with SQL NULL
propagation handled per-function (most return NULL on NULL input; COALESCE
and friends do not).  Aggregates are accumulator classes the group-by
executor drives.
"""

from __future__ import annotations

import datetime
import math
from typing import Any, Callable

from repro.errors import DataError, ProgrammingError
from repro.engine.values import compare, parse_date

__all__ = ["SCALAR_FUNCTIONS", "AGGREGATE_NAMES", "make_accumulator", "Accumulator"]

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def _null_safe(fn: Callable) -> Callable:
    """Wrap a scalar so any NULL argument yields NULL."""

    def wrapper(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


def _substr(text: str, start: int, length: int | None = None) -> str:
    """SQL SUBSTRING: 1-based start, optional length."""
    start = int(start)
    begin = max(start - 1, 0)
    if length is None:
        return str(text)[begin:]
    if length < 0:
        raise DataError("negative SUBSTRING length")
    return str(text)[begin : begin + int(length)]


def _round(value: float, digits: int = 0) -> float:
    result = round(float(value), int(digits))
    return result


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(left: Any, right: Any) -> Any:
    return None if compare(left, right) == 0 else left


def _to_date(value: Any) -> datetime.date:
    if isinstance(value, datetime.date):
        return value
    return parse_date(str(value))


#: name → callable.  Names are lower-case; the parser lower-cases call names.
SCALAR_FUNCTIONS: dict[str, Callable] = {
    "upper": _null_safe(lambda s: str(s).upper()),
    "lower": _null_safe(lambda s: str(s).lower()),
    "length": _null_safe(lambda s: len(str(s))),
    "abs": _null_safe(lambda x: abs(x)),
    "round": _null_safe(_round),
    "floor": _null_safe(lambda x: math.floor(x)),
    "ceil": _null_safe(lambda x: math.ceil(x)),
    "ceiling": _null_safe(lambda x: math.ceil(x)),
    "sqrt": _null_safe(lambda x: math.sqrt(x)),
    "mod": _null_safe(lambda a, b: a % b),
    "trim": _null_safe(lambda s: str(s).strip()),
    "ltrim": _null_safe(lambda s: str(s).lstrip()),
    "rtrim": _null_safe(lambda s: str(s).rstrip()),
    "substr": _null_safe(_substr),
    "substring": _null_safe(_substr),
    "concat": _null_safe(lambda *parts: "".join(str(p) for p in parts)),
    "replace": _null_safe(lambda s, old, new: str(s).replace(str(old), str(new))),
    "coalesce": _coalesce,
    "nullif": _nullif,
    "date": _null_safe(_to_date),
}


class Accumulator:
    """Base aggregate accumulator: feed values with :meth:`add`, read the
    aggregate with :meth:`result`.  SQL semantics: NULLs are skipped (except
    COUNT(*)); empty input yields NULL (except COUNT → 0)."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _Count(Accumulator):
    def __init__(self):
        self.n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.n += 1

    def result(self) -> int:
        return self.n


class _CountStar(Accumulator):
    def __init__(self):
        self.n = 0

    def add(self, value: Any) -> None:
        self.n += 1

    def result(self) -> int:
        return self.n


class _Sum(Accumulator):
    def __init__(self):
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class _Avg(Accumulator):
    def __init__(self):
        self.total = 0.0
        self.n = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.n += 1

    def result(self) -> float | None:
        return self.total / self.n if self.n else None


class _Min(Accumulator):
    def __init__(self):
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or compare(value, self.best) < 0:
            self.best = value

    def result(self) -> Any:
        return self.best


class _Max(Accumulator):
    def __init__(self):
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or compare(value, self.best) > 0:
            self.best = value

    def result(self) -> Any:
        return self.best


class _Distinct(Accumulator):
    """Wrapper dropping duplicate inputs before the inner accumulator."""

    def __init__(self, inner: Accumulator):
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is None or value in self.seen:
            if value is None:
                self.inner.add(value)  # inner skips NULLs itself
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


_AGGREGATES = {
    "count": _Count,
    "sum": _Sum,
    "avg": _Avg,
    "min": _Min,
    "max": _Max,
}


def make_accumulator(name: str, *, star: bool = False, distinct: bool = False) -> Accumulator:
    """Instantiate the accumulator for an aggregate call."""
    lowered = name.lower()
    if star:
        if lowered != "count":
            raise ProgrammingError(f"{name}(*) is not valid")
        return _CountStar()
    try:
        inner = _AGGREGATES[lowered]()
    except KeyError:
        raise ProgrammingError(f"unknown aggregate {name}") from None
    return _Distinct(inner) if distinct else inner
