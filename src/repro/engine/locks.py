"""Multi-granularity lock manager: row/key locks under table intent locks.

The engine used to take whole-table S/X locks, so one hot table serialized
every writer behind a single X holder.  Locking is now **two-level**
(Gray's multi-granularity protocol): a transaction that wants a row first
takes an *intent* lock on the table (IS for row reads, IX for row writes),
then the actual S/X lock on the ``(table, rowid)`` resource.  Whole-table
operations (non-keyed scans, DDL) still take plain table S/X — the intent
modes are what make the two granularities conflict correctly without the
table-level path ever enumerating row locks.

Compatibility matrix (standard; symmetric)::

          IS   IX   S    SIX  X
    IS    ✓    ✓    ✓    ✓    ✗
    IX    ✓    ✓    ✗    ✗    ✗
    S     ✓    ✗    ✓    ✗    ✗
    SIX   ✓    ✗    ✗    ✗    ✗
    X     ✗    ✗    ✗    ✗    ✗

A transaction's held mode on a resource is the *supremum* of everything it
requested there (re-entrant acquires never self-conflict; ``sup(S, IX) =
SIX``).  Past :attr:`LockManager.escalation_threshold` row locks on one
table, a transaction **escalates**: it takes the full table lock (S for
reads, X for writes) and drops its row locks — safe because the table lock
can only be granted once no other transaction holds an intent on the
table, at which point nobody else can hold or acquire row locks there.

Waiting, deadlines, and crash behaviour are unchanged from the
table-granular design, now operating on ``(table, rowid)`` resources:

* a **timeout** — per-transaction (``SET lock_timeout <ms>`` via
  :meth:`set_timeout`) falling back to :attr:`LockManager.default_timeout`
  (0 = historical fail-fast for standalone managers; the server installs
  :data:`DEFAULT_SERVER_WAIT`).
* a **waits-for-graph deadlock detector** — edges are transaction →
  transaction regardless of which granularity the conflict is at, so
  cycles that pass through a row lock on one side and a table (or intent)
  lock on the other are caught by the same DFS.  The requester is the
  victim and raises :class:`~repro.errors.DeadlockError`.
* **no-wait windows** — inside a WAL group-commit deferred window the
  worker must never sleep on any lock (row or table): waiting releases
  the engine mutex and another session's commit would be acknowledged
  before the covering group force.  :meth:`no_wait` marks the thread.
* :meth:`invalidate` (server crash) drops all two-level state and wakes
  every sleeper into :class:`~repro.errors.ServerCrashedError`.

The condition variable is built over the engine-wide mutex the server
installs via :meth:`use_mutex`; waiting releases the engine.  Every
completed wait emits a ``lock.wait`` trace event carrying the table, row,
requested mode, wait time, and the waits-for edges observed when the
waiter went to sleep — which is how the observability CLI reconstructs
the live graph after the fact.

S→X upgrade semantics (pinned by regression tests before waits landed)
fall out of the matrix: the upgrade is granted iff no *other* transaction
holds the resource — the upgrader's own re-entrant shared acquires never
block its own upgrade.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict

from repro.errors import (
    DeadlockError,
    LockError,
    ServerCrashedError,
    ServerRestartingError,
)
from repro.obs.tracer import get_tracer

__all__ = ["LockMode", "LockManager", "LockStats", "DEFAULT_SERVER_WAIT"]

#: Server-installed default wait budget (seconds).  Short enough that the
#: historical "conflict surfaces as LockError" tests still pass promptly,
#: long enough that commit-latency-scale contention waits instead of failing.
DEFAULT_SERVER_WAIT = 0.25

#: Row locks one transaction may hold on one table before it trades them
#: for a single full-table lock.  Large enough that OLTP-shaped
#: transactions never escalate; small enough that a bulk statement inside
#: an explicit transaction stops ballooning the lock table.
DEFAULT_ESCALATION_THRESHOLD = 128


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"
    INTENT_SHARED = "IS"
    INTENT_EXCLUSIVE = "IX"
    SHARED_INTENT_EXCLUSIVE = "SIX"
    # short aliases (enum aliasing by value): LockMode.IX is LockMode.INTENT_EXCLUSIVE
    S = "S"
    X = "X"
    IS = "IS"
    IX = "IX"
    SIX = "SIX"


_IS = LockMode.INTENT_SHARED
_IX = LockMode.INTENT_EXCLUSIVE
_S = LockMode.SHARED
_SIX = LockMode.SHARED_INTENT_EXCLUSIVE
_X = LockMode.EXCLUSIVE

#: mode -> the set of modes another transaction may hold concurrently
_COMPAT: dict[LockMode, frozenset[LockMode]] = {
    _IS: frozenset((_IS, _IX, _S, _SIX)),
    _IX: frozenset((_IS, _IX)),
    _S: frozenset((_IS, _S)),
    _SIX: frozenset((_IS,)),
    _X: frozenset(),
}

#: pairwise supremum of the mode lattice (held mode after a re-request)
_SUP: dict[tuple[LockMode, LockMode], LockMode] = {}
for _a in LockMode:
    for _b in LockMode:
        if _a is _b:
            _SUP[(_a, _b)] = _a
        elif _X in (_a, _b):
            _SUP[(_a, _b)] = _X
        elif _SIX in (_a, _b) or {_a, _b} == {_IX, _S}:
            _SUP[(_a, _b)] = _SIX
        elif _a is _IS:
            _SUP[(_a, _b)] = _b
        elif _b is _IS:
            _SUP[(_a, _b)] = _a
        else:  # unreachable: remaining pairs are covered above
            _SUP[(_a, _b)] = _X
del _a, _b

#: table-level modes that make an explicit row lock of the given mode
#: redundant (holding table X covers every row; S/SIX cover row reads)
_COVERS_ROW: dict[LockMode, frozenset[LockMode]] = {
    _S: frozenset((_S, _SIX, _X)),
    _X: frozenset((_X,)),
}

#: a resource is (table, rowid) — rowid None means the table itself
Resource = tuple[str, "int | None"]


class LockStats:
    """Observability counters (cumulative; reset semantics follow
    :mod:`repro.obs.metrics` — they describe the simulation, not one
    database incarnation, so the server threads one object through every
    restart exactly like :class:`~repro.engine.wal.WalStats`)."""

    def __init__(self) -> None:
        self.acquires = 0
        #: acquires that targeted a row (the rest are table/intent level)
        self.row_acquires = 0
        self.waits = 0
        self.wait_timeouts = 0
        self.deadlocks = 0
        #: row-lock sets traded for a full table lock
        self.escalations = 0
        #: waiters evicted (or fail-fasted) by a planned-restart drain
        self.drain_bounces = 0
        self.total_wait_time = 0.0

    def snapshot(self) -> dict[str, float]:
        return dict(self.__dict__)

    def reset(self) -> None:
        self.__init__()


class LockManager:
    """Tracks two-level (table, row) locks per transaction; strict
    two-phase — released only at commit/abort via :meth:`release_all`."""

    def __init__(
        self,
        mutex: threading.RLock | None = None,
        *,
        stats: LockStats | None = None,
    ):
        # (table, rowid|None) -> {txn_id -> LockMode}
        self._locks: dict[Resource, dict[int, LockMode]] = defaultdict(dict)
        #: txn_id -> resources it holds (release_all is O(held), and an
        #: empty entry is how release_all knows nothing could be freed)
        self._held: dict[int, set[Resource]] = {}
        #: (txn_id, table) -> row locks held there (escalation trigger)
        self._row_counts: dict[tuple[int, str], int] = {}
        self._mutex = mutex if mutex is not None else threading.RLock()
        self._cond = threading.Condition(self._mutex)
        #: waiting txn -> set of txn_ids it is blocked behind (waits-for graph)
        self._waits_for: dict[int, set[int]] = {}
        #: waiting txn -> (table, row, mode) it is asking for (graph labels)
        self._wait_info: dict[int, tuple[str, int | None, LockMode]] = {}
        #: per-transaction wait budget override, seconds (``SET lock_timeout``)
        self._timeouts: dict[int, float] = {}
        #: standalone managers keep the historical fail-fast behaviour; the
        #: server raises this to DEFAULT_SERVER_WAIT when it installs its mutex
        self.default_timeout = 0.0
        #: row locks per (txn, table) before escalating to a table lock
        self.escalation_threshold = DEFAULT_ESCALATION_THRESHOLD
        #: ablation switch: False degrades every row request to its table
        #: lock (the pre-row-locking behaviour, kept for A/B benchmarks)
        self.row_locking = True
        #: bumped by :meth:`invalidate` (server crash) so sleepers learn the
        #: engine they were waiting on no longer exists
        self._generation = 0
        #: bumped by :meth:`bounce_waiters` (planned-restart drain deadline)
        #: so sleepers raise a retryable ServerRestartingError
        self._bounce_generation = 0
        #: set by :meth:`bounce_waiters`: the drain deadline has passed, so
        #: *new* wait attempts fail fast with ServerRestartingError too (a
        #: statement still in flight must not park behind a lock held by a
        #: transaction whose releasing commit is itself parked behind the
        #: drain barrier).  Never cleared: the swap discards this manager.
        self._draining = False
        self._no_wait = threading.local()
        #: injectable so the counters survive database incarnations
        self.stats = stats if stats is not None else LockStats()

    # ----------------------------------------------------------- wiring

    def use_mutex(self, mutex: threading.RLock) -> None:
        """Rebuild the condition over an externally owned mutex (the
        server's engine-wide lock).  Call only while no waiter sleeps."""
        self._mutex = mutex
        self._cond = threading.Condition(mutex)

    def set_timeout(self, txn_id: int, seconds: float | None) -> None:
        """Install (or clear) a per-transaction wait budget, from the
        session's ``lock_timeout`` option (milliseconds on the wire)."""
        if seconds is None:
            self._timeouts.pop(txn_id, None)
        else:
            self._timeouts[txn_id] = seconds

    class _NoWaitWindow:
        def __init__(self, manager: "LockManager"):
            self._manager = manager

        def __enter__(self) -> None:
            local = self._manager._no_wait
            local.depth = getattr(local, "depth", 0) + 1

        def __exit__(self, *exc) -> None:
            self._manager._no_wait.depth -= 1

    def no_wait(self) -> "_NoWaitWindow":
        """Context manager: acquires on the current thread fail fast instead
        of sleeping.  Used for WAL group-commit deferred windows, where a
        lock wait would release the engine mutex and let another session's
        commit be acknowledged before the covering force."""
        return self._NoWaitWindow(self)

    def invalidate(self) -> None:
        """Server crash: drop all lock state and wake every sleeper so it
        raises :class:`ServerCrashedError` instead of waiting on an engine
        that no longer exists."""
        with self._cond:
            self._locks.clear()
            self._held.clear()
            self._row_counts.clear()
            self._waits_for.clear()
            self._wait_info.clear()
            self._timeouts.clear()
            self._generation += 1
            self._cond.notify_all()

    def bounce_waiters(self) -> int:
        """Planned-restart drain deadline: wake every sleeping waiter so it
        raises :class:`ServerRestartingError` instead of blocking the drain.

        Unlike :meth:`invalidate` this keeps all granted lock state — only
        *waiters* are evicted; each one's transaction is then aborted by the
        executor exactly like a deadlock victim, so the statement is safely
        retryable after the swap.  Returns the number of waiters evicted.
        """
        with self._cond:
            bounced = len(self._waits_for)
            self._bounce_generation += 1
            self._draining = True
            self.stats.drain_bounces += bounced
            self._cond.notify_all()
            return bounced

    # ----------------------------------------------------------- acquisition

    def acquire(
        self,
        txn_id: int,
        table: str,
        mode: LockMode,
        *,
        row: int | None = None,
        timeout: float | None = None,
    ) -> None:
        """Grant or upgrade a lock on ``table`` (or on row ``row`` of it),
        waiting if necessary.

        Row requests must be S or X and the caller must already hold the
        matching intent (IS/IX) on the table — :class:`~repro.engine
        .database.Database` wraps both steps.  A row request is satisfied
        without a row lock when the transaction's table-level mode already
        covers it (including after escalation), and trips escalation when
        the transaction's row-lock count on the table crosses
        :attr:`escalation_threshold`.

        Raises :class:`DeadlockError` when waiting would close a cycle in
        the waits-for graph (the requester is the victim), plain
        :class:`LockError` when the wait budget expires, and
        :class:`ServerCrashedError` when the server dies mid-wait.
        """
        with self._cond:
            self.stats.acquires += 1
            if row is not None:
                if not self.row_locking:
                    row = None  # ablation baseline: row requests hit the table
                else:
                    self.stats.row_acquires += 1
                    table_mode = self._locks.get((table, None), {}).get(txn_id)
                    if table_mode is not None and table_mode in _COVERS_ROW[mode]:
                        return
                    if (
                        self._row_counts.get((txn_id, table), 0)
                        >= self.escalation_threshold
                    ):
                        self._escalate(txn_id, table, mode, timeout)
                        return
            self._acquire_resource(txn_id, (table, row), mode, timeout)

    def _escalate(
        self, txn_id: int, table: str, mode: LockMode, timeout: float | None
    ) -> None:
        """Trade the transaction's row locks on ``table`` for one full
        table lock (S for a read request, X for a write request).

        The table lock waits like any other acquire; once granted, no other
        transaction holds an intent on the table, hence none holds (or can
        acquire) row locks there — dropping ours frees memory without
        letting anyone slip past.
        """
        self.stats.escalations += 1
        self._acquire_resource(txn_id, (table, None), mode, timeout)
        held = self._held.get(txn_id, set())
        for resource in [r for r in held if r[0] == table and r[1] is not None]:
            holders = self._locks.get(resource)
            if holders is not None:
                holders.pop(txn_id, None)
                if not holders:
                    del self._locks[resource]
            held.discard(resource)
        self._row_counts.pop((txn_id, table), None)

    def _acquire_resource(
        self,
        txn_id: int,
        resource: Resource,
        mode: LockMode,
        timeout: float | None,
    ) -> None:
        """The grant/wait loop, shared by table- and row-level requests."""
        if self._try_grant(txn_id, resource, mode):
            return
        budget = timeout
        if budget is None:
            budget = self._timeouts.get(txn_id, self.default_timeout)
        if budget <= 0 or getattr(self._no_wait, "depth", 0):
            # no-wait (batch) windows keep their LockError contract — the
            # client's batch resubmission path owns that error shape
            raise self._conflict_error(txn_id, resource, mode)
        if self._draining:
            self.stats.drain_bounces += 1
            raise ServerRestartingError(
                f"server draining for planned restart: transaction {txn_id} "
                f"must not wait for a lock on {self._resource_name(resource)}"
            )
        generation = self._generation
        bounce_generation = self._bounce_generation
        deadline = time.monotonic() + budget
        self.stats.waits += 1
        wait_started = time.monotonic()
        #: waits-for edges as this waiter first saw them (for the trace event)
        graph_at_sleep: dict[int, list[int]] = {}
        try:
            while True:
                blockers = self._blockers(txn_id, resource, mode)
                if not blockers:  # freed between checks
                    break
                self._waits_for[txn_id] = blockers
                self._wait_info[txn_id] = (resource[0], resource[1], mode)
                if not graph_at_sleep:
                    graph_at_sleep = {
                        t: sorted(b) for t, b in self._waits_for.items()
                    }
                if self._in_cycle(txn_id):
                    self.stats.deadlocks += 1
                    raise DeadlockError(
                        f"transaction {txn_id} deadlocked on "
                        f"{self._resource_name(resource)} "
                        f"(victim; cycle through {sorted(blockers)})"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats.wait_timeouts += 1
                    raise self._conflict_error(txn_id, resource, mode, waited=True)
                self._cond.wait(remaining)
                if self._generation != generation:
                    raise ServerCrashedError(
                        f"server crashed while transaction {txn_id} "
                        f"waited for a lock on {self._resource_name(resource)}"
                    )
                if self._bounce_generation != bounce_generation:
                    raise ServerRestartingError(
                        f"server draining for planned restart: transaction "
                        f"{txn_id} bounced off its lock wait on "
                        f"{self._resource_name(resource)}"
                    )
                if self._try_grant(txn_id, resource, mode):
                    return
        finally:
            self._waits_for.pop(txn_id, None)
            self._wait_info.pop(txn_id, None)
            waited = time.monotonic() - wait_started
            self.stats.total_wait_time += waited
            get_tracer().event(
                "lock.wait",
                table=resource[0],
                row=resource[1],
                mode=mode.value,
                wait_seconds=waited,
                waits_for={str(t): b for t, b in graph_at_sleep.items()},
            )
        # blockers vanished without a grant racing us — take the lock
        self._grant(txn_id, resource, mode)

    def _try_grant(self, txn_id: int, resource: Resource, mode: LockMode) -> bool:
        holders = self._locks[resource]
        current = holders.get(txn_id)
        target = mode if current is None else _SUP[(current, mode)]
        if current is target:
            return True  # already covered (re-entrant)
        if any(
            t != txn_id and target not in _COMPAT[m] for t, m in holders.items()
        ):
            return False
        self._grant(txn_id, resource, mode)
        return True

    def _grant(self, txn_id: int, resource: Resource, mode: LockMode) -> None:
        holders = self._locks[resource]
        current = holders.get(txn_id)
        holders[txn_id] = mode if current is None else _SUP[(current, mode)]
        if current is None:
            self._held.setdefault(txn_id, set()).add(resource)
            if resource[1] is not None:
                key = (txn_id, resource[0])
                self._row_counts[key] = self._row_counts.get(key, 0) + 1

    def _blockers(self, txn_id: int, resource: Resource, mode: LockMode) -> set[int]:
        """Transactions (other than the requester) preventing the grant."""
        holders = self._locks[resource]
        current = holders.get(txn_id)
        target = mode if current is None else _SUP[(current, mode)]
        if current is target:
            return set()
        return {
            t for t, m in holders.items() if t != txn_id and target not in _COMPAT[m]
        }

    def _in_cycle(self, start: int) -> bool:
        """DFS over the waits-for graph: does a path from ``start`` return
        to ``start``?  All edges live under the mutex, so the walk is
        consistent."""
        stack = list(self._waits_for.get(start, ()))
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False

    @staticmethod
    def _resource_name(resource: Resource) -> str:
        table, row = resource
        return table if row is None else f"{table} row {row}"

    def _conflict_error(
        self, txn_id: int, resource: Resource, mode: LockMode, *, waited: bool = False
    ) -> LockError:
        suffix = " (lock wait timeout)" if waited else ""
        name = self._resource_name(resource)
        if mode in (_S, _IS):
            return LockError(
                f"transaction {txn_id} blocked: {name} is exclusively locked{suffix}"
            )
        return LockError(
            f"transaction {txn_id} blocked: {name} is locked by another transaction{suffix}"
        )

    # ----------------------------------------------------------- release / introspection

    def release_all(self, txn_id: int) -> None:
        """Drop every lock the transaction holds (commit/abort), waking
        waiters only when the transaction actually held something or
        someone was queued behind it — an empty-handed commit must not
        stampede every sleeper in the process."""
        with self._cond:
            held = self._held.pop(txn_id, None)
            waited_on = any(
                txn_id in blockers for blockers in self._waits_for.values()
            )
            if held:
                for resource in held:
                    holders = self._locks.get(resource)
                    if holders is not None:
                        holders.pop(txn_id, None)
                        if not holders:
                            del self._locks[resource]
                for key in [k for k in self._row_counts if k[0] == txn_id]:
                    del self._row_counts[key]
            self._timeouts.pop(txn_id, None)
            if held or waited_on:
                self._cond.notify_all()

    def held(self, txn_id: int, table: str, row: int | None = None) -> LockMode | None:
        with self._mutex:
            return self._locks.get((table, row), {}).get(txn_id)

    def holders(self, table: str, row: int | None = None) -> dict[int, LockMode]:
        with self._mutex:
            return dict(self._locks.get((table, row), {}))

    def row_locks_held(self, txn_id: int, table: str) -> int:
        """How many row locks the transaction holds on ``table`` (0 after
        escalation — the table lock subsumed them)."""
        with self._mutex:
            return self._row_counts.get((txn_id, table), 0)

    def waiting(self) -> dict[int, set[int]]:
        """Snapshot of the waits-for graph (observability/tests)."""
        with self._mutex:
            return {t: set(b) for t, b in self._waits_for.items()}

    def waits_for_graph(self) -> list[dict]:
        """The live waits-for graph with resource labels, one entry per
        waiter — what ``python -m repro.obs --locks`` renders."""
        with self._mutex:
            out = []
            for txn_id, blockers in sorted(self._waits_for.items()):
                table, row, mode = self._wait_info.get(
                    txn_id, ("?", None, LockMode.EXCLUSIVE)
                )
                out.append(
                    {
                        "txn": txn_id,
                        "waits_for": sorted(blockers),
                        "table": table,
                        "row": row,
                        "mode": mode.value,
                    }
                )
            return out
