"""Table-granularity lock manager.

The engine executes one statement at a time (the server is a deterministic
single-threaded simulation), so locks never *wait*: a conflicting request
from another transaction fails fast with :class:`~repro.errors.LockError`.
That is sufficient to enforce two-phase isolation between the interleaved
transactions that do occur (e.g. Phoenix's private connection working next
to the application's connection), and keeps tests deterministic.

Lock modes: shared (reads) and exclusive (writes), with S→X upgrade when no
other holder exists.
"""

from __future__ import annotations

import enum
from collections import defaultdict

from repro.errors import LockError

__all__ = ["LockMode", "LockManager"]


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockManager:
    """Tracks table locks per transaction (strict two-phase: released only
    at commit/abort via :meth:`release_all`)."""

    def __init__(self):
        # table -> {txn_id -> LockMode}
        self._locks: dict[str, dict[int, LockMode]] = defaultdict(dict)

    def acquire(self, txn_id: int, table: str, mode: LockMode) -> None:
        """Grant or upgrade a lock, or raise LockError on conflict."""
        holders = self._locks[table]
        current = holders.get(txn_id)
        if current is LockMode.EXCLUSIVE or current is mode:
            return
        others = {t: m for t, m in holders.items() if t != txn_id}
        if mode is LockMode.SHARED:
            if any(m is LockMode.EXCLUSIVE for m in others.values()):
                raise LockError(
                    f"transaction {txn_id} blocked: {table} is exclusively locked"
                )
        else:  # EXCLUSIVE (fresh grant or S->X upgrade)
            if others:
                raise LockError(
                    f"transaction {txn_id} blocked: {table} is locked by another transaction"
                )
        holders[txn_id] = mode

    def release_all(self, txn_id: int) -> None:
        """Drop every lock the transaction holds (commit/abort)."""
        for table in list(self._locks):
            self._locks[table].pop(txn_id, None)
            if not self._locks[table]:
                del self._locks[table]

    def held(self, txn_id: int, table: str) -> LockMode | None:
        return self._locks.get(table, {}).get(txn_id)

    def holders(self, table: str) -> dict[int, LockMode]:
        return dict(self._locks.get(table, {}))
