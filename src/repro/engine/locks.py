"""Table-granularity lock manager with blocking waits and deadlock detection.

The engine used to execute one statement at a time (a deterministic
single-threaded simulation), so locks never waited: conflicts failed fast.
With the threaded dispatch layer (:mod:`repro.engine.dispatch`) several
sessions' statements are genuinely in flight at once, so a conflicting
request now *waits* on a :class:`threading.Condition` until the holder
commits or aborts, subject to:

* a **timeout** — per-transaction (``SET lock_timeout <ms>`` on the
  session, threaded through :meth:`set_timeout`) falling back to
  :attr:`LockManager.default_timeout`.  A ``LockManager()`` constructed
  standalone keeps the historical fail-fast behaviour
  (``default_timeout = 0``); the server installs a short wait budget.
* a **waits-for-graph deadlock detector** — before sleeping (and on every
  re-check) the requester records the holders blocking it and runs a DFS
  over the waits-for edges; a cycle means deadlock, the *requester* is the
  victim, and it raises :class:`~repro.errors.DeadlockError`.  The caller
  (the executor) aborts the victim's transaction, releasing its locks so
  the survivors proceed; Phoenix retries the statement transparently.
* **no-wait windows** — inside a WAL group-commit deferred window
  (``execute_batch``) the worker must never sleep on a lock: waiting
  releases the engine mutex, another session's commit would then be
  acknowledged before the covering group force.  :meth:`no_wait` marks the
  current thread so acquires fail fast for the window's duration.

The condition variable is built over the engine-wide mutex that
:class:`~repro.engine.server.DatabaseServer` installs via :meth:`use_mutex`
— waiting releases the engine, letting other sessions run and eventually
release the contended lock.  ``threading.Condition`` over an ``RLock``
fully saves/restores the recursion count across ``wait()``, so waiting
from inside nested engine calls is sound.

Lock modes: shared (reads) and exclusive (writes).  S→X upgrade semantics
(pinned by regression tests before waits landed): the upgrade is granted
iff no *other* transaction holds the table — the upgrader's own re-entrant
shared acquires never block its own upgrade.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict

from repro.errors import DeadlockError, LockError, ServerCrashedError

__all__ = ["LockMode", "LockManager", "LockStats"]

#: Server-installed default wait budget (seconds).  Short enough that the
#: historical "conflict surfaces as LockError" tests still pass promptly,
#: long enough that commit-latency-scale contention waits instead of failing.
DEFAULT_SERVER_WAIT = 0.25


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockStats:
    """Observability counters (cumulative; reset semantics follow
    :mod:`repro.obs.metrics` — they describe the simulation)."""

    def __init__(self) -> None:
        self.acquires = 0
        self.waits = 0
        self.wait_timeouts = 0
        self.deadlocks = 0
        self.total_wait_time = 0.0

    def snapshot(self) -> dict[str, float]:
        return dict(self.__dict__)


class LockManager:
    """Tracks table locks per transaction (strict two-phase: released only
    at commit/abort via :meth:`release_all`)."""

    def __init__(self, mutex: threading.RLock | None = None):
        # table -> {txn_id -> LockMode}
        self._locks: dict[str, dict[int, LockMode]] = defaultdict(dict)
        self._mutex = mutex if mutex is not None else threading.RLock()
        self._cond = threading.Condition(self._mutex)
        #: waiting txn -> set of txn_ids it is blocked behind (waits-for graph)
        self._waits_for: dict[int, set[int]] = {}
        #: per-transaction wait budget override, seconds (``SET lock_timeout``)
        self._timeouts: dict[int, float] = {}
        #: standalone managers keep the historical fail-fast behaviour; the
        #: server raises this to DEFAULT_SERVER_WAIT when it installs its mutex
        self.default_timeout = 0.0
        #: bumped by :meth:`invalidate` (server crash) so sleepers learn the
        #: engine they were waiting on no longer exists
        self._generation = 0
        self._no_wait = threading.local()
        self.stats = LockStats()

    # ----------------------------------------------------------- wiring

    def use_mutex(self, mutex: threading.RLock) -> None:
        """Rebuild the condition over an externally owned mutex (the
        server's engine-wide lock).  Call only while no waiter sleeps."""
        self._mutex = mutex
        self._cond = threading.Condition(mutex)

    def set_timeout(self, txn_id: int, seconds: float | None) -> None:
        """Install (or clear) a per-transaction wait budget, from the
        session's ``lock_timeout`` option (milliseconds on the wire)."""
        if seconds is None:
            self._timeouts.pop(txn_id, None)
        else:
            self._timeouts[txn_id] = seconds

    class _NoWaitWindow:
        def __init__(self, manager: "LockManager"):
            self._manager = manager

        def __enter__(self) -> None:
            local = self._manager._no_wait
            local.depth = getattr(local, "depth", 0) + 1

        def __exit__(self, *exc) -> None:
            self._manager._no_wait.depth -= 1

    def no_wait(self) -> "_NoWaitWindow":
        """Context manager: acquires on the current thread fail fast instead
        of sleeping.  Used for WAL group-commit deferred windows, where a
        lock wait would release the engine mutex and let another session's
        commit be acknowledged before the covering force."""
        return self._NoWaitWindow(self)

    def invalidate(self) -> None:
        """Server crash: drop all lock state and wake every sleeper so it
        raises :class:`ServerCrashedError` instead of waiting on an engine
        that no longer exists."""
        with self._cond:
            self._locks.clear()
            self._waits_for.clear()
            self._timeouts.clear()
            self._generation += 1
            self._cond.notify_all()

    # ----------------------------------------------------------- acquisition

    def acquire(
        self,
        txn_id: int,
        table: str,
        mode: LockMode,
        *,
        timeout: float | None = None,
    ) -> None:
        """Grant or upgrade a lock, waiting if necessary.

        Raises :class:`DeadlockError` when waiting would close a cycle in
        the waits-for graph (the requester is the victim), plain
        :class:`LockError` when the wait budget expires, and
        :class:`ServerCrashedError` when the server dies mid-wait.
        """
        with self._cond:
            self.stats.acquires += 1
            if self._try_grant(txn_id, table, mode):
                return
            budget = timeout
            if budget is None:
                budget = self._timeouts.get(txn_id, self.default_timeout)
            if budget <= 0 or getattr(self._no_wait, "depth", 0):
                raise self._conflict_error(txn_id, table, mode)
            generation = self._generation
            deadline = time.monotonic() + budget
            self.stats.waits += 1
            wait_started = time.monotonic()
            try:
                while True:
                    blockers = self._blockers(txn_id, table, mode)
                    if not blockers:  # freed between checks
                        break
                    self._waits_for[txn_id] = blockers
                    if self._in_cycle(txn_id):
                        self.stats.deadlocks += 1
                        raise DeadlockError(
                            f"transaction {txn_id} deadlocked on {table} "
                            f"(victim; cycle through {sorted(blockers)})"
                        )
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats.wait_timeouts += 1
                        raise self._conflict_error(txn_id, table, mode, waited=True)
                    self._cond.wait(remaining)
                    if self._generation != generation:
                        raise ServerCrashedError(
                            f"server crashed while transaction {txn_id} "
                            f"waited for a lock on {table}"
                        )
                    if self._try_grant(txn_id, table, mode):
                        return
            finally:
                self._waits_for.pop(txn_id, None)
                self.stats.total_wait_time += time.monotonic() - wait_started
            # blockers vanished without a grant racing us — take the lock
            self._locks[table][txn_id] = self._effective_mode(txn_id, table, mode)

    def _try_grant(self, txn_id: int, table: str, mode: LockMode) -> bool:
        holders = self._locks[table]
        current = holders.get(txn_id)
        if current is LockMode.EXCLUSIVE or current is mode:
            return True
        if self._blockers(txn_id, table, mode):
            return False
        holders[txn_id] = self._effective_mode(txn_id, table, mode)
        return True

    def _effective_mode(self, txn_id: int, table: str, mode: LockMode) -> LockMode:
        current = self._locks[table].get(txn_id)
        if current is LockMode.EXCLUSIVE:
            return LockMode.EXCLUSIVE
        return mode

    def _blockers(self, txn_id: int, table: str, mode: LockMode) -> set[int]:
        """Transactions (other than the requester) preventing the grant."""
        holders = self._locks[table]
        current = holders.get(txn_id)
        if current is LockMode.EXCLUSIVE or current is mode:
            return set()
        others = {t: m for t, m in holders.items() if t != txn_id}
        if mode is LockMode.SHARED:
            return {t for t, m in others.items() if m is LockMode.EXCLUSIVE}
        # EXCLUSIVE (fresh grant or S->X upgrade): any other holder blocks;
        # the requester's own re-entrant shares never block its upgrade
        return set(others)

    def _in_cycle(self, start: int) -> bool:
        """DFS over the waits-for graph: does a path from ``start`` return
        to ``start``?  All edges live under the mutex, so the walk is
        consistent."""
        stack = list(self._waits_for.get(start, ()))
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False

    def _conflict_error(
        self, txn_id: int, table: str, mode: LockMode, *, waited: bool = False
    ) -> LockError:
        suffix = " (lock wait timeout)" if waited else ""
        if mode is LockMode.SHARED:
            return LockError(
                f"transaction {txn_id} blocked: {table} is exclusively locked{suffix}"
            )
        return LockError(
            f"transaction {txn_id} blocked: {table} is locked by another transaction{suffix}"
        )

    # ----------------------------------------------------------- release / introspection

    def release_all(self, txn_id: int) -> None:
        """Drop every lock the transaction holds (commit/abort) and wake
        the waiters so they re-check."""
        with self._cond:
            for table in list(self._locks):
                self._locks[table].pop(txn_id, None)
                if not self._locks[table]:
                    del self._locks[table]
            self._timeouts.pop(txn_id, None)
            self._cond.notify_all()

    def held(self, txn_id: int, table: str) -> LockMode | None:
        with self._mutex:
            return self._locks.get(table, {}).get(txn_id)

    def holders(self, table: str) -> dict[int, LockMode]:
        with self._mutex:
            return dict(self._locks.get(table, {}))

    def waiting(self) -> dict[int, set[int]]:
        """Snapshot of the waits-for graph (observability/tests)."""
        with self._mutex:
            return {t: set(b) for t, b in self._waits_for.items()}
