"""Transaction objects and state tracking.

A :class:`Transaction` remembers the WAL records it produced so abort can
undo them in reverse.  Lifecycle: ACTIVE → COMMITTED | ABORTED.  The logged
mutation API lives on :class:`~repro.engine.database.Database`; this module
only carries state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TransactionError
from repro.engine.wal import LogRecord

__all__ = ["TxnState", "Transaction", "TransactionManager"]


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One transaction: id, state, and its undo trail."""

    txn_id: int
    state: TxnState = TxnState.ACTIVE
    records: list[LogRecord] = field(default_factory=list)
    #: monotone per-transaction record counter (rec_id source); never
    #: decreases even when statement rollback trims ``records``
    next_rec_id: int = 0

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(f"transaction {self.txn_id} is {self.state.value}")


class TransactionManager:
    """Hands out transaction ids and tracks active transactions.

    Ids restart from max(logged ids)+1 after recovery so ids never collide
    across a crash (``seed`` is supplied by restart recovery).
    """

    def __init__(self, seed: int = 0):
        self._next_id = seed + 1
        self._active: dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        txn = Transaction(self._next_id)
        self._next_id += 1
        self._active[txn.txn_id] = txn
        return txn

    def finish(self, txn: Transaction, state: TxnState) -> None:
        txn.state = state
        self._active.pop(txn.txn_id, None)

    def active_ids(self) -> list[int]:
        return sorted(self._active)

    def get(self, txn_id: int) -> Transaction | None:
        return self._active.get(txn_id)

    @property
    def active_count(self) -> int:
        return len(self._active)
