"""Stable storage — the durability boundary of the engine.

Everything the engine keeps in ordinary Python objects is *volatile*: a
:meth:`~repro.engine.server.DatabaseServer.crash` throws it away.  The only
state that survives is what was explicitly written through a
:class:`StableStorage` implementation:

* **table files** — snapshots of table contents, written at checkpoints;
* **the log** — append-only WAL bytes, forced at commit;
* **meta entries** — small key/value items (last checkpoint LSN).

Two implementations are provided.  :class:`InMemoryStableStorage` keeps
"disk" contents in dictionaries but snapshots every table payload on the
way in and out (copy-on-write over immutable row tuples — see
:meth:`TableData.snapshot`), so no volatile structure can alias it — this
is what tests and benchmarks use, because crashes are then instantaneous.
:class:`FileStableStorage` puts the same contents in real files for
end-to-end durability demonstrations.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
from dataclasses import dataclass, field

from repro.engine.schema import TableSchema

__all__ = [
    "TableData",
    "StorageFault",
    "StableStorage",
    "InMemoryStableStorage",
    "FileStableStorage",
]


class StorageFault(Exception):
    """A stable-storage device failure (torn write, failed force).

    Deliberately *not* a :class:`repro.errors.Error` subclass: a device
    fault must never travel in-band as an SQL ErrorResponse — it kills the
    server process (the endpoint turns it into a crash + communication
    error, exactly like a kernel panic on fsync would).
    """


@dataclass
class TableData:
    """The picklable on-disk image of one table.

    ``rows`` maps an engine-assigned row id to the row tuple.  Row ids are
    stable for the life of a row and never reused (``next_rowid`` only
    grows), which is what makes logical WAL records unambiguous.
    """

    schema: TableSchema
    rows: dict[int, tuple] = field(default_factory=dict)
    next_rowid: int = 1
    #: LSN of the last log record whose effect is reflected here; restart
    #: redo skips records at or below it, making redo idempotent even when a
    #: crash interleaves snapshot writes with the checkpoint-pointer update.
    last_lsn: int = 0

    def snapshot(self) -> "TableData":
        """Isolated copy-on-write copy of this table image.

        The rows dict is copied, but the row *tuples* (and the frozen
        schema) are shared: rows are immutable tuples of immutable scalars,
        so sharing them cannot let volatile state alias "disk" state.  The
        engine always replaces whole rows (``rows[rowid] = new_tuple``) and
        never mutates one in place, which makes this as isolating as a
        ``copy.deepcopy`` at a fraction of the cost.
        """
        return TableData(
            schema=self.schema,
            rows=dict(self.rows),
            next_rowid=self.next_rowid,
            last_lsn=self.last_lsn,
        )


class StableStorage:
    """Interface every stable-storage backend implements."""

    #: armed device fault for the next log append: None | "torn" | "fail"
    _append_fault: str | None = None
    _append_fault_torn_bytes: int = 7

    # -- fault injection ----------------------------------------------------

    def inject_append_fault(self, mode: str, *, torn_bytes: int = 7) -> None:
        """Arm a device fault for the next :meth:`append_log`.

        ``mode="torn"`` writes all but the last ``torn_bytes`` bytes of the
        payload and then raises :class:`StorageFault` — the partial frame
        stays on disk, exercising recovery's "read until the first bad
        frame" scan.  ``mode="fail"`` raises without writing anything (a
        failed force).  Either way the caller is expected to treat the
        exception as fatal (the server crashes).
        """
        if mode not in ("torn", "fail"):
            raise ValueError(f"unknown append fault mode {mode!r}")
        self._append_fault = mode
        self._append_fault_torn_bytes = max(1, torn_bytes)

    def clear_append_fault(self) -> None:
        """Disarm any pending device fault (a dead server has none)."""
        self._append_fault = None

    def append_log(self, payload: bytes) -> int:
        """Durably append ``payload`` and return its start offset (LSN).

        The append is atomic: a crash either leaves the log without the
        payload or with all of it (see wal.py for why recovery leans on
        this).  An armed device fault (:meth:`inject_append_fault`) breaks
        exactly that promise — once, deliberately — and raises
        :class:`StorageFault`.
        """
        fault, self._append_fault = self._append_fault, None
        if fault == "fail":
            raise StorageFault("log append failed (device error, nothing written)")
        if fault == "torn":
            torn = payload[: max(0, len(payload) - self._append_fault_torn_bytes)]
            if torn:
                self._append_log_raw(torn)
            raise StorageFault(
                f"torn log append ({len(torn)}/{len(payload)} bytes reached the device)"
            )
        return self._append_log_raw(payload)

    def _append_log_raw(self, payload: bytes) -> int:
        """Backend-specific append (no fault checking)."""
        raise NotImplementedError

    # -- table files --------------------------------------------------------

    def write_table_file(self, name: str, data: TableData) -> None:
        raise NotImplementedError

    def read_table_file(self, name: str) -> TableData:
        raise NotImplementedError

    def delete_table_file(self, name: str) -> None:
        raise NotImplementedError

    def list_table_files(self) -> list[str]:
        raise NotImplementedError

    # -- the log ------------------------------------------------------------

    def read_log(self) -> bytes:
        raise NotImplementedError

    def log_size(self) -> int:
        raise NotImplementedError

    def truncate_log_prefix(self, offset: int) -> None:
        """Discard log bytes before ``offset`` (log head after a quiescent
        checkpoint).  Offsets/LSNs remain absolute."""
        raise NotImplementedError

    def truncate_log_suffix(self, offset: int) -> None:
        """Discard log bytes at and after absolute ``offset`` (a torn tail
        found by restart recovery).  Later appends land at ``offset``."""
        raise NotImplementedError

    # -- meta ----------------------------------------------------------------

    def write_meta(self, key: str, value: object) -> None:
        raise NotImplementedError

    def read_meta(self, key: str, default: object = None) -> object:
        raise NotImplementedError


class InMemoryStableStorage(StableStorage):
    """Stable storage held in process memory.

    Copy-on-write snapshots (:meth:`TableData.snapshot`) enforce the
    durability boundary: the engine can never keep a live reference into
    "disk" *structure*, so ``crash()`` genuinely loses every unflushed
    change.  Row tuples are shared — safely, because they are immutable —
    which keeps checkpoints O(rows) pointer copies instead of a deep copy
    of every value.
    """

    def __init__(self):
        self._tables: dict[str, TableData] = {}
        self._log = bytearray()
        self._log_base = 0  # absolute offset of _log[0] after truncation
        self._meta: dict[str, object] = {}
        #: counters exposed to benchmarks (forced writes etc.)
        self.log_appends = 0
        self.table_writes = 0

    def write_table_file(self, name: str, data: TableData) -> None:
        self._tables[name] = data.snapshot()
        self.table_writes += 1

    def read_table_file(self, name: str) -> TableData:
        return self._tables[name].snapshot()

    def delete_table_file(self, name: str) -> None:
        self._tables.pop(name, None)

    def list_table_files(self) -> list[str]:
        return sorted(self._tables)

    def _append_log_raw(self, payload: bytes) -> int:
        offset = self._log_base + len(self._log)
        self._log.extend(payload)
        self.log_appends += 1
        return offset

    def read_log(self) -> bytes:
        return bytes(self._log)

    @property
    def log_base(self) -> int:
        """Absolute LSN of the first retained log byte."""
        return self._log_base

    def log_size(self) -> int:
        return self._log_base + len(self._log)

    def truncate_log_prefix(self, offset: int) -> None:
        keep_from = offset - self._log_base
        if keep_from <= 0:
            return
        del self._log[:keep_from]
        self._log_base = offset

    def truncate_log_suffix(self, offset: int) -> None:
        keep_to = offset - self._log_base
        if keep_to >= len(self._log):
            return
        del self._log[max(0, keep_to):]

    def write_meta(self, key: str, value: object) -> None:
        self._meta[key] = copy.deepcopy(value)

    def read_meta(self, key: str, default: object = None) -> object:
        return copy.deepcopy(self._meta.get(key, default))


class FileStableStorage(StableStorage):
    """Stable storage backed by a directory of real files.

    Layout::

        <root>/tables/<name>.tbl   pickled TableData
        <root>/wal.log             raw log bytes
        <root>/meta.pickle         pickled meta dict

    Table and meta writes go through a temp-file + ``os.replace`` so a crash
    mid-write never leaves a torn file.
    """

    def __init__(self, root: str):
        self.root = root
        self._tables_dir = os.path.join(root, "tables")
        self._log_path = os.path.join(root, "wal.log")
        self._meta_path = os.path.join(root, "meta.pickle")
        self._base_path = os.path.join(root, "wal.base")
        os.makedirs(self._tables_dir, exist_ok=True)
        if not os.path.exists(self._log_path):
            with open(self._log_path, "wb"):
                pass

    # -- helpers --------------------------------------------------------------

    def _table_path(self, name: str) -> str:
        # Escape path-hostile characters conservatively ('#' from temp names).
        safe = name.replace(os.sep, "_").replace("#", "_tmp_")
        return os.path.join(self._tables_dir, safe + ".tbl")

    @staticmethod
    def _atomic_write(path: str, payload: bytes) -> None:
        directory = os.path.dirname(path)
        fd, tmp_path = tempfile.mkstemp(dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    # -- table files ------------------------------------------------------------

    def write_table_file(self, name: str, data: TableData) -> None:
        payload = pickle.dumps((name, data), protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(self._table_path(name), payload)

    def read_table_file(self, name: str) -> TableData:
        with open(self._table_path(name), "rb") as handle:
            stored_name, data = pickle.load(handle)
        return data

    def delete_table_file(self, name: str) -> None:
        path = self._table_path(name)
        if os.path.exists(path):
            os.unlink(path)

    def list_table_files(self) -> list[str]:
        names = []
        for entry in sorted(os.listdir(self._tables_dir)):
            if not entry.endswith(".tbl"):
                continue
            with open(os.path.join(self._tables_dir, entry), "rb") as handle:
                stored_name, _ = pickle.load(handle)
            names.append(stored_name)
        return sorted(names)

    # -- log -----------------------------------------------------------------------

    @property
    def log_base(self) -> int:
        if os.path.exists(self._base_path):
            with open(self._base_path, "rb") as handle:
                return pickle.load(handle)
        return 0

    def _append_log_raw(self, payload: bytes) -> int:
        offset = self.log_base + os.path.getsize(self._log_path)
        with open(self._log_path, "ab") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return offset

    def read_log(self) -> bytes:
        with open(self._log_path, "rb") as handle:
            return handle.read()

    def log_size(self) -> int:
        return self.log_base + os.path.getsize(self._log_path)

    def truncate_log_prefix(self, offset: int) -> None:
        base = self.log_base
        keep_from = offset - base
        if keep_from <= 0:
            return
        with open(self._log_path, "rb") as handle:
            handle.seek(keep_from)
            remainder = handle.read()
        self._atomic_write(self._log_path, remainder)
        self._atomic_write(self._base_path, pickle.dumps(offset))

    def truncate_log_suffix(self, offset: int) -> None:
        keep_to = offset - self.log_base
        if keep_to >= os.path.getsize(self._log_path):
            return
        with open(self._log_path, "rb") as handle:
            prefix = handle.read(max(0, keep_to))
        self._atomic_write(self._log_path, prefix)

    # -- meta --------------------------------------------------------------------------

    def _load_meta(self) -> dict:
        if not os.path.exists(self._meta_path):
            return {}
        with open(self._meta_path, "rb") as handle:
            return pickle.load(handle)

    def write_meta(self, key: str, value: object) -> None:
        meta = self._load_meta()
        meta[key] = value
        self._atomic_write(self._meta_path, pickle.dumps(meta))

    def read_meta(self, key: str, default: object = None) -> object:
        return self._load_meta().get(key, default)
