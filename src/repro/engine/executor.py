"""Statement execution.

One :class:`Executor` is created per (database, session) pair and executes
parsed statements.  SELECT goes through a straightforward materializing
pipeline (FROM → WHERE → GROUP/HAVING → project → DISTINCT → ORDER →
LIMIT); DML and DDL route through the logged mutation API for persistent
objects and through direct in-memory operations for session temp objects —
that split *is* the volatile/durable distinction the paper builds on.

Transaction discipline: with no explicit transaction open, each DML/DDL
statement runs in its own implicit transaction, committed (and the WAL
forced) before the reply — matching the autocommit behaviour Phoenix
assumes when it wraps statements.  Under a batched request the server puts
the WAL in deferred-force mode (:meth:`repro.engine.wal.WriteAheadLog
.begin_deferred`): each sub-statement still commits in order, but the
commit-time forces coalesce into one group force at the batch boundary —
the invariant is unchanged, no reply is released before the force covering
it lands; only *which* force covers a commit moves.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import (
    CatalogError,
    DeadlockError,
    NotSupportedError,
    ProgrammingError,
    ServerRestartingError,
    TransactionError,
)
from repro.engine import functions
from repro.engine.database import Database
from repro.engine.expressions import Env, ExpressionCompiler, PlaceholderList, Scope
from repro.engine.plancache import EngineMetrics, ExecutorStats, PlanCache
from repro.engine.results import ResultSet, StatementResult
from repro.engine.schema import Column, schema_from_ast, type_spec_to_sql_type
from repro.engine.table import Table
from repro.engine.values import SqlType, sort_key
from repro.obs.tracer import get_tracer
from repro.sql import ast, parse_script

__all__ = ["Executor"]

#: comparison operators usable as index probes (equality or range bound)
_PROBE_OPS = ("=", "<", "<=", ">", ">=")
#: the same comparison with its sides swapped (``5 < k`` is ``k > 5``)
_FLIPPED_OP = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
#: sentinel from bounds evaluation: the probe constant cannot be coerced to
#: the column type, so the plan must fall back to the full scan — only the
#: per-row predicate may decide (and raise) there, keeping error semantics
#: identical to the unprobed path.
_FALLBACK_SCAN = object()


def _as_of_timestamp(expr: "ast.Expr") -> float:
    """The timestamp an ``AS OF`` clause names.

    Only literals qualify: a placeholder would make the cut vary per
    execution while plan caches and Phoenix's statement log key on SQL
    text, so the moment must be spelled out in the statement itself.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, bool):
            pass  # bools are ints in Python; fall through to the error
        elif isinstance(value, (int, float)):
            return float(value)
        elif isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
    raise ProgrammingError(
        "AS OF expects a literal numeric timestamp (placeholders and "
        "expressions are not supported)"
    )


class Executor:
    """Executes AST statements for one session against one database."""

    def __init__(
        self,
        database: Database,
        session,
        *,
        metrics: EngineMetrics | None = None,
        plan_cache: bool = True,
        stats: ExecutorStats | None = None,
        vectorized: bool = True,
    ):
        self.database = database
        self.session = session  # repro.engine.session.Session
        self._proc_cache: dict[str, ast.CreateProcedure] = {}
        #: shared server-wide counters (a private set when standalone)
        self.metrics = metrics if metrics is not None else EngineMetrics()
        #: access-path / pipeline counters (shared server-wide when wired)
        self.stats = stats if stats is not None else ExecutorStats()
        #: vectorized mode: row-closure pipeline (one reused environment per
        #: loop instead of a per-row allocation), range-aware index probes,
        #: and index-ordered top-k.  False keeps the per-row-environment
        #: interpreted baseline — the executor ablation's knob.
        self.vectorized = vectorized
        #: compiled-plan reuse for repeated top-level SELECTs; None = disabled
        self._plan_cache: PlanCache | None = PlanCache() if plan_cache else None
        #: statement epoch, bumped at every top-level SELECT entry; compiled
        #: closures capture this cell so "once per statement" memos (uncorrelated
        #: subqueries, derived tables, views) recompute when a cached plan is
        #: re-run — see expressions._statement_memo.
        self._epoch_cell: list[int] = [0]

    # ------------------------------------------------------------ entry point

    def execute(
        self,
        stmt: ast.Statement,
        *,
        params: dict[str, Any] | None = None,
        placeholders: list | None = None,
    ) -> StatementResult:
        """Execute one statement with autocommit semantics (see module doc)."""
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("engine.stmt", stmt=type(stmt).__name__):
                return self._execute_traced(stmt, params=params, placeholders=placeholders)
        return self._execute_traced(stmt, params=params, placeholders=placeholders)

    def _execute_traced(
        self,
        stmt: ast.Statement,
        *,
        params: dict[str, Any] | None = None,
        placeholders: list | None = None,
    ) -> StatementResult:
        if isinstance(stmt, ast.BeginTransaction):
            return self._begin()
        if isinstance(stmt, ast.Commit):
            return self._commit()
        if isinstance(stmt, ast.Rollback):
            return self._rollback()
        if isinstance(stmt, ast.SetOption):
            self.session.options[stmt.name] = stmt.value
            return StatementResult.ok(f"SET {stmt.name}")
        if isinstance(stmt, ast.Checkpoint):
            lsn = self.database.checkpoint()
            return StatementResult.ok(f"CHECKPOINT at {lsn}")
        if isinstance(stmt, ast.Explain):
            if isinstance(stmt.select, ast.UnionSelect):
                lines = []
                for i, part in enumerate(stmt.select.parts):
                    flag = (
                        "" if i == 0
                        else (" ALL" if stmt.select.all_flags[i - 1] else "")
                    )
                    lines.append(f"Union{flag} part {i + 1}:")
                    part_plan = _SelectPlan(self, part, params or {}, placeholders or [], None)
                    lines.extend("  " + line for line in part_plan.describe())
            else:
                plan = _SelectPlan(
                    self, stmt.select, params or {}, placeholders or [], None
                )
                lines = plan.describe()
            return StatementResult.rows(
                ResultSet(
                    columns=[Column("plan", SqlType.VARCHAR)],
                    rows=[(line,) for line in lines],
                )
            )
        if isinstance(stmt, (ast.Select, ast.UnionSelect)):
            if stmt.into is None:
                result_set = self.execute_select(
                    stmt, params=params, placeholders=placeholders
                )
                return StatementResult.rows(result_set)
            if getattr(stmt, "as_of", None) is not None:
                raise NotSupportedError(
                    "SELECT ... INTO cannot run AS OF: snapshots are "
                    "read-only and INTO writes the live database"
                )

        # Everything else mutates: run inside a transaction.
        autocommit = self.session.current_txn is None
        txn = self._begin_txn() if autocommit else self.session.current_txn
        statement_mark = len(txn.records)
        try:
            bound = PlaceholderList(placeholders or [])
            result = self._execute_mutation(stmt, txn, params or {}, bound)
            # a ?-template needing more values than were bound must error
            # even when no row was touched (e.g. a filter over an empty
            # table); the raise lands in the rollback path below
            bound.check_bound()
        except BaseException as exc:
            if self.database.dead:
                # The server crashed out from under this statement (e.g. a
                # lock wait interrupted by crash()): the volatile engine is
                # gone, so there is nothing to undo — and above all no WAL
                # write may happen after the crash point.
                self.session.current_txn = None
            elif isinstance(exc, (DeadlockError, ServerRestartingError)):
                # Deadlock victim, or a waiter bounced off the planned-restart
                # drain barrier: the *whole* transaction aborts — its locks
                # must release so the surviving side (or the drain) can
                # proceed.  The client sees a distinguishable, retryable
                # error (the transaction is gone, so a replay is safe).
                self.database.abort(txn)
                self.session.current_txn = None
            elif autocommit:
                self.database.abort(txn)
            else:
                # statement-level atomicity: a failed statement inside an
                # explicit transaction rolls back only its own effects
                self.database.rollback_statement(txn, statement_mark)
            raise
        if autocommit:
            self.database.commit(txn)
        # rowcount() reflects the immediately preceding statement: DML sets
        # it, any other mutation (DDL, EXEC returning rows) resets it to 0 —
        # sticky values would leak a *previous* statement's count into the
        # Phoenix status table when a wrapped DDL records its outcome.
        self.session.last_rowcount = (
            result.rowcount if result.kind == "rowcount" else 0
        )
        return result

    def execute_sql(self, sql: str, **kwargs) -> StatementResult:
        """Parse and execute a batch; returns the last statement's result."""
        result = StatementResult.ok()
        for stmt in parse_script(sql):
            result = self.execute(stmt, **kwargs)
        return result

    # ------------------------------------------------------------ transactions

    def _begin_txn(self):
        """Start an engine transaction carrying the session's lock-wait
        budget (``SET lock_timeout <ms>``) into the lock manager."""
        txn = self.database.begin()
        timeout_ms = self.session.options.get("lock_timeout")
        if isinstance(timeout_ms, (int, float)) and not isinstance(timeout_ms, bool):
            self.database.locks.set_timeout(txn.txn_id, timeout_ms / 1000.0)
        return txn

    def _begin(self) -> StatementResult:
        if self.session.current_txn is not None:
            raise TransactionError("transaction already in progress")
        self.session.current_txn = self._begin_txn()
        return StatementResult.ok("BEGIN")

    def _commit(self) -> StatementResult:
        txn = self.session.current_txn
        if txn is None:
            raise TransactionError("no transaction in progress")
        self.database.commit(txn)
        self.session.current_txn = None
        return StatementResult.ok("COMMIT")

    def _rollback(self) -> StatementResult:
        txn = self.session.current_txn
        if txn is None:
            raise TransactionError("no transaction in progress")
        self.database.abort(txn)
        self.session.current_txn = None
        return StatementResult.ok("ROLLBACK")

    # ------------------------------------------------------------ mutation dispatch

    def _execute_mutation(
        self, stmt: ast.Statement, txn, params: dict[str, Any], placeholders: list
    ) -> StatementResult:
        if isinstance(stmt, ast.Select):  # SELECT ... INTO
            return self._select_into(stmt, txn, params, placeholders)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt, txn, params, placeholders)
        if isinstance(stmt, ast.Update):
            return self._update(stmt, txn, params, placeholders)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt, txn, params, placeholders)
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt, txn)
        if isinstance(stmt, ast.DropTable):
            return self._drop_table(stmt, txn)
        if isinstance(stmt, ast.CreateIndex):
            return self._create_index(stmt, txn)
        if isinstance(stmt, ast.DropIndex):
            return self._drop_index(stmt, txn)
        if isinstance(stmt, ast.CreateView):
            return self._create_view(stmt, txn)
        if isinstance(stmt, ast.DropView):
            return self._drop_view(stmt, txn)
        if isinstance(stmt, ast.CreateProcedure):
            return self._create_procedure(stmt, txn)
        if isinstance(stmt, ast.DropProcedure):
            return self._drop_procedure(stmt, txn)
        if isinstance(stmt, ast.ExecProcedure):
            return self._exec_procedure(stmt, txn, params, placeholders)
        raise NotSupportedError(f"statement {type(stmt).__name__} is not supported")

    # ------------------------------------------------------------ name resolution

    def resolve_table(self, name: str) -> tuple[Table, bool]:
        """Find a table by name; session temp tables shadow persistent ones.

        Returns (table, is_temp).
        """
        lowered = name.lower()
        temp = self.session.temp_tables.get(lowered)
        if temp is not None:
            return temp, True
        return self.database.get_table(lowered), False

    def table_exists(self, name: str) -> bool:
        lowered = name.lower()
        return lowered in self.session.temp_tables or self.database.has_table(lowered)

    # ------------------------------------------------------------ DDL

    def _create_table(self, stmt: ast.CreateTable, txn) -> StatementResult:
        schema = schema_from_ast(stmt)
        if self.table_exists(schema.name):
            if stmt.if_not_exists:
                return StatementResult.ok(f"table {schema.name} exists")
            raise CatalogError(f"table {schema.name} already exists")
        if schema.temporary:
            self.session.temp_tables[schema.name] = Table.create(schema)
            self.session.temp_version += 1
        else:
            self.database.create_table(txn, schema)
        return StatementResult.ok(f"CREATE TABLE {schema.name}")

    def _drop_table(self, stmt: ast.DropTable, txn) -> StatementResult:
        name = stmt.name.lower()
        if name in self.session.temp_tables:
            del self.session.temp_tables[name]
            self.session.temp_version += 1
            return StatementResult.ok(f"DROP TABLE {name}")
        if not self.database.has_table(name):
            if stmt.if_exists:
                return StatementResult.ok(f"table {name} absent")
            raise CatalogError(f"table {name} does not exist")
        self.database.drop_table(txn, name)
        return StatementResult.ok(f"DROP TABLE {name}")

    def _create_index(self, stmt: ast.CreateIndex, txn) -> StatementResult:
        name = stmt.name.lower()
        table = stmt.table.lower()
        if table in self.session.temp_tables:
            raise NotSupportedError("indexes on temp tables are not supported")
        self.database.create_index(txn, name, table, stmt.column.lower())
        return StatementResult.ok(f"CREATE INDEX {name}")

    def _drop_index(self, stmt: ast.DropIndex, txn) -> StatementResult:
        name = stmt.name.lower()
        if not self.database.has_index(name):
            if stmt.if_exists:
                return StatementResult.ok(f"index {name} absent")
            from repro.errors import CatalogError as _CatalogError

            raise _CatalogError(f"index {name} does not exist")
        self.database.drop_index(txn, name)
        return StatementResult.ok(f"DROP INDEX {name}")

    def _create_view(self, stmt: ast.CreateView, txn) -> StatementResult:
        name = stmt.name.lower()
        if self.table_exists(name) or self.database.has_view(name):
            raise CatalogError(f"name {name} is already in use")
        # plan the defining query now: unknown tables/columns fail at
        # CREATE VIEW time, not first use (and the column list must fit)
        meta = _SelectPlan(self, stmt.select, {}, [], None)
        if stmt.columns and len(stmt.columns) != len(meta.output_columns):
            raise CatalogError(
                f"view {name} names {len(stmt.columns)} columns but its query "
                f"produces {len(meta.output_columns)}"
            )
        self.database.create_view(txn, name, stmt.sql())
        return StatementResult.ok(f"CREATE VIEW {name}")

    def _drop_view(self, stmt: ast.DropView, txn) -> StatementResult:
        name = stmt.name.lower()
        if not self.database.has_view(name):
            if stmt.if_exists:
                return StatementResult.ok(f"view {name} absent")
            raise CatalogError(f"view {name} does not exist")
        self.database.drop_view(txn, name)
        return StatementResult.ok(f"DROP VIEW {name}")

    def view_definition(self, name: str) -> ast.CreateView | None:
        """Parsed CREATE VIEW statement for ``name``, or None."""
        source = self.database.views.get(name.lower())
        if source is None:
            return None
        from repro.sql import parse

        parsed = parse(source)
        assert isinstance(parsed, ast.CreateView)
        return parsed

    def _create_procedure(self, stmt: ast.CreateProcedure, txn) -> StatementResult:
        name = stmt.name.lower()
        exists = name in self.session.temp_procedures or self.database.has_procedure(name)
        if exists:
            raise CatalogError(f"procedure {name} already exists")
        if stmt.temporary:
            self.session.temp_procedures[name] = stmt.sql()
            self.session.temp_version += 1
        else:
            self.database.create_procedure(txn, name, stmt.sql())
        return StatementResult.ok(f"CREATE PROCEDURE {name}")

    def _drop_procedure(self, stmt: ast.DropProcedure, txn) -> StatementResult:
        name = stmt.name.lower()
        if name in self.session.temp_procedures:
            del self.session.temp_procedures[name]
            self.session.temp_version += 1
            return StatementResult.ok(f"DROP PROCEDURE {name}")
        if not self.database.has_procedure(name):
            if stmt.if_exists:
                return StatementResult.ok(f"procedure {name} absent")
            raise CatalogError(f"procedure {name} does not exist")
        self.database.drop_procedure(txn, name)
        return StatementResult.ok(f"DROP PROCEDURE {name}")

    # ------------------------------------------------------------ procedures

    def _exec_procedure(
        self, stmt: ast.ExecProcedure, txn, params: dict[str, Any], placeholders: list
    ) -> StatementResult:
        name = stmt.name.lower()
        source = self.session.temp_procedures.get(name) or (
            self.database.procedures.get(name)
        )
        if source is None:
            raise CatalogError(f"procedure {name} does not exist")
        proc = self._proc_cache.get(source)
        if proc is None:
            from repro.sql import parse

            parsed = parse(source)
            if not isinstance(parsed, ast.CreateProcedure):
                raise CatalogError(f"stored text of {name} is not a procedure")
            proc = parsed
            self._proc_cache[source] = proc
        if len(stmt.args) != len(proc.params):
            raise ProgrammingError(
                f"procedure {name} expects {len(proc.params)} args, got {len(stmt.args)}"
            )
        # Evaluate call arguments in a rowless scope (constants / outer params).
        scope = Scope()
        compiler = ExpressionCompiler(
            scope, self, params=params, placeholders=placeholders
        )
        env = Env(values=[])
        bound: dict[str, Any] = {}
        for (pname, ptype), arg in zip(proc.params, stmt.args):
            value = compiler.compile(arg)(env)
            bound[pname.lower()] = Column(
                pname.lower(), type_spec_to_sql_type(ptype), length=ptype.length
            ).coerce(value)
        result = StatementResult.ok(f"EXEC {name}")
        for body_stmt in proc.body:
            if isinstance(body_stmt, ast.Select) and body_stmt.into is None:
                result = StatementResult.rows(
                    self.execute_select(body_stmt, params=bound)
                )
            else:
                result = self._execute_mutation(body_stmt, txn, bound, [])
        return result

    # ------------------------------------------------------------ DML

    def _insert(
        self, stmt: ast.Insert, txn, params: dict[str, Any], placeholders: list
    ) -> StatementResult:
        table, is_temp = self.resolve_table(stmt.table)
        schema = table.schema
        if stmt.columns is not None:
            positions = [schema.column_index(c.lower()) for c in stmt.columns]
        else:
            positions = list(range(len(schema.columns)))

        def make_full_row(values: list) -> list:
            if len(values) != len(positions):
                raise ProgrammingError(
                    f"INSERT expects {len(positions)} values, got {len(values)}"
                )
            full: list = [None] * len(schema.columns)
            for pos, value in zip(positions, values):
                full[pos] = value
            return full

        count = 0
        if stmt.select is not None:
            result = self.execute_select(stmt.select, params=params, placeholders=placeholders)
            for row in result.rows:
                self._insert_row(table, is_temp, txn, make_full_row(list(row)))
                count += 1
        else:
            scope = Scope()
            compiler = ExpressionCompiler(scope, self, params=params, placeholders=placeholders)
            env = Env(values=[])
            for row_exprs in stmt.rows or []:
                values = [compiler.compile(e)(env) for e in row_exprs]
                self._insert_row(table, is_temp, txn, make_full_row(values))
                count += 1
        return StatementResult.count(count, f"INSERT {count}")

    def _insert_row(self, table: Table, is_temp: bool, txn, full_row: list) -> None:
        if is_temp:
            table.insert(table.schema.coerce_row(full_row))
        else:
            self.database.insert_row(txn, table.name, full_row)

    def _dml_lock_candidates(
        self, txn, table: Table, is_temp: bool, stmt_where, compiler, scope
    ):
        """Lock and return the candidate set for an UPDATE/DELETE.

        Point DML resolved by a primary-key probe locks only the touched
        rows: lock, then re-probe, looping until the candidate set is
        stable under the held row locks.  The loop is the row-granularity
        form of the lock-before-scan rule: a candidate computed before a
        lock wait may be a dirty read (the victim aborted mid-wait; the key
        now lives in a different row, or nowhere), and values pre-computed
        from it must never be applied.  Each iteration re-reads after its
        locks are granted, so the set returned was probed entirely under
        held locks — committed state only.

        Everything else — full scans, secondary-index probes, row locking
        disabled — takes the whole-table X lock before scanning, exactly
        as before row locks existed.
        """
        if is_temp:
            return self._dml_candidates(table, stmt_where, compiler, scope)
        probe = (
            _dml_index_probe(table, stmt_where, scope, compiler)
            if stmt_where is not None
            else None
        )
        if probe is None or probe[2] != "pk" or not self.database.locks.row_locking:
            self.database.lock_write(txn, table.name)
            return self._dml_candidates(table, stmt_where, compiler, scope)
        locked: set[int] = set()
        while True:
            candidates = self._dml_candidates(table, stmt_where, compiler, scope)
            fresh = [rowid for rowid, _row in candidates if rowid not in locked]
            if not fresh:
                return candidates
            for rowid in fresh:
                self.database.lock_row_write(txn, table.name, rowid)
            locked.update(fresh)

    def _dml_candidates(self, table: Table, stmt_where, compiler, scope):
        """(rowid, row) pairs a DML statement's WHERE might match.

        Uses a PK/secondary index probe for a constant-equality conjunct
        (the predicate is still applied in full afterwards); otherwise a
        full scan.
        """
        if stmt_where is not None:
            probe = _dml_index_probe(table, stmt_where, scope, compiler)
            if probe is not None:
                column, value_fn, probe_kind = probe
                from repro.errors import DataError

                value = value_fn(Env(values=[None] * scope.slot_count))
                if value is None:
                    return []
                try:
                    value = table.schema.column(column).coerce(value)
                except DataError:
                    return []
                self.stats.index_eq_probes += 1
                if probe_kind == "pk":
                    rowid = table.lookup_key((value,))
                    return [] if rowid is None else [(rowid, table.get(rowid))]
                return [
                    (rowid, table.get(rowid))
                    for rowid in table.index_lookup(column, value)
                ]
        return list(table.scan())

    def _update(
        self, stmt: ast.Update, txn, params: dict[str, Any], placeholders: list
    ) -> StatementResult:
        table, is_temp = self.resolve_table(stmt.table)
        schema = table.schema
        scope = Scope()
        scope.add_source(stmt.table, schema.column_names)
        compiler = ExpressionCompiler(scope, self, params=params, placeholders=placeholders)
        where = compiler.compile_predicate(stmt.where) if stmt.where is not None else None
        assignments = [
            (schema.column_index(col.lower()), compiler.compile(expr))
            for col, expr in stmt.assignments
        ]
        # Lock before evaluating anything row-dependent: candidate rows and
        # assignment inputs must never be computed from another
        # transaction's uncommitted writes — a waiter that pre-computed new
        # values from a dirty read would apply them verbatim after the
        # holder aborts.  Keyed point updates lock just the touched rows
        # (see _dml_lock_candidates); everything else locks the table.
        # Snapshot first: assignments must see pre-statement values and the
        # scan must not chase its own writes.
        targets: list[tuple[int, tuple]] = []
        for rowid, row in self._dml_lock_candidates(
            txn, table, is_temp, stmt.where, compiler, scope
        ):
            env = Env(values=list(row))
            if where is None or where(env) is True:
                targets.append((rowid, row))
        for rowid, row in targets:
            env = Env(values=list(row))
            new_row = list(row)
            for index, value_fn in assignments:
                new_row[index] = value_fn(env)
            if is_temp:
                table.update(rowid, schema.coerce_row(new_row))
            else:
                self.database.update_row(txn, table.name, rowid, new_row)
        return StatementResult.count(len(targets), f"UPDATE {len(targets)}")

    def _delete(
        self, stmt: ast.Delete, txn, params: dict[str, Any], placeholders: list
    ) -> StatementResult:
        table, is_temp = self.resolve_table(stmt.table)
        scope = Scope()
        scope.add_source(stmt.table, table.schema.column_names)
        compiler = ExpressionCompiler(scope, self, params=params, placeholders=placeholders)
        where = compiler.compile_predicate(stmt.where) if stmt.where is not None else None
        # Same lock-before-scan rule as UPDATE: the candidate set must not
        # reflect another transaction's uncommitted rows.  Keyed point
        # deletes lock just the touched rows; the rest lock the table.
        targets = [
            rowid
            for rowid, row in self._dml_lock_candidates(
                txn, table, is_temp, stmt.where, compiler, scope
            )
            if where is None or where(Env(values=list(row))) is True
        ]
        for rowid in targets:
            if is_temp:
                table.delete(rowid)
            else:
                self.database.delete_row(txn, table.name, rowid)
        return StatementResult.count(len(targets), f"DELETE {len(targets)}")

    def _select_into(
        self, stmt: ast.Select, txn, params: dict[str, Any], placeholders: list
    ) -> StatementResult:
        """``SELECT ... INTO t`` — materialize a result as a new table."""
        target = stmt.into
        assert target is not None
        result = self.execute_select(stmt, params=params, placeholders=placeholders)
        schema = result.to_schema(target.lower())
        if self.table_exists(schema.name):
            raise CatalogError(f"table {schema.name} already exists")
        if schema.temporary:
            table = Table.create(schema)
            self.session.temp_tables[schema.name] = table
            self.session.temp_version += 1
            for row in result.rows:
                table.insert(schema.coerce_row(list(row)))
        else:
            self.database.create_table(txn, schema)
            for row in result.rows:
                self.database.insert_row(txn, schema.name, list(row))
        return StatementResult.count(len(result.rows), f"SELECT INTO {schema.name}")

    # ------------------------------------------------------------ SELECT pipeline

    def execute_select(
        self,
        select: "ast.Select | ast.UnionSelect",
        *,
        params: dict[str, Any] | None = None,
        placeholders: list | None = None,
        outer_scope: Scope | None = None,
        outer_env: Env | None = None,
    ) -> ResultSet:
        """Run the full SELECT pipeline and return a materialized result."""
        top_level = outer_scope is None and outer_env is None
        if (
            top_level
            and getattr(select, "as_of", None) is not None
            and getattr(self, "as_of_cut", None) is None
        ):
            # Point-in-time query: route to the snapshot executor for the
            # cut.  Snapshot executors carry ``as_of_cut`` — they already
            # *are* the requested moment, so they fall through and run the
            # same AST normally (the as_of field is resolved, not recursed
            # on).
            return self._execute_as_of(select, params=params, placeholders=placeholders)
        if top_level:
            # new statement epoch: per-statement memos inside any reused
            # compiled plan (uncorrelated subqueries, derived tables, views)
            # must recompute so intervening DML is visible.
            self._epoch_cell[0] += 1
            if not params and self._plan_cache is not None:
                # Placeholder templates are cacheable too: the compiled plan
                # reads its shared placeholder list at run time, so rebinding
                # the list re-parameterizes the cached plan without a
                # recompile (qmark binding keys the cache on the template).
                runner = self._cached_runner(select)
                runner.placeholders[:] = placeholders or []
                runner.placeholders.check_bound()
                return runner.run(None)
        bound = PlaceholderList(placeholders or [])
        if isinstance(select, ast.UnionSelect):
            runner = _UnionRunner(self, select, params or {}, bound, outer_scope)
            bound.check_bound()
            return runner.run(outer_env)
        plan = _SelectPlan(self, select, params or {}, bound, outer_scope)
        bound.check_bound()
        return plan.run(outer_env)

    def _execute_as_of(
        self,
        select: "ast.Select | ast.UnionSelect",
        *,
        params: dict[str, Any] | None = None,
        placeholders: list | None = None,
    ) -> ResultSet:
        """Run ``select`` against the committed state at its ``AS OF``
        timestamp (see :mod:`repro.engine.timetravel`)."""
        manager = self.database.time_travel
        if manager is None:
            raise NotSupportedError(
                "AS OF queries need a server-managed database "
                "(no time-travel manager is attached)"
            )
        ts = _as_of_timestamp(select.as_of)
        manager.stats.as_of_queries += 1
        snapshot = manager.snapshot_at(ts)
        return snapshot.executor.execute_select(
            select, params=params, placeholders=placeholders
        )

    def _cached_runner(self, select: "ast.Select | ast.UnionSelect"):
        """Compiled plan for a cacheable top-level SELECT, reused across
        executions while the catalog and session temp namespace are
        unchanged.  Keys are statement object identities — the server-side
        parse cache returns the *same* AST objects for repeated SQL text,
        and the entry pins the statement so the id stays unambiguous."""
        versions = (self.database.catalog_version, self.session.temp_version)
        assert self._plan_cache is not None
        runner = self._plan_cache.lookup(select, versions, self.metrics)
        if runner is None:
            if isinstance(select, ast.UnionSelect):
                runner = _UnionRunner(self, select, {}, PlaceholderList(), None)
            else:
                runner = _SelectPlan(self, select, {}, PlaceholderList(), None)
            self._plan_cache.store(select, versions, runner)
        return runner

    # -- SubqueryRunner protocol ------------------------------------------------

    def prepare_subquery(self, select: ast.Select, scope: Scope):
        """Plan a subquery once against ``scope``; returns (rows_fn,
        correlated).  ``rows_fn(env)`` re-runs the compiled plan with the
        outer row's environment — compilation happens exactly once per
        statement, which is what makes correlated subqueries affordable."""
        params = getattr(scope, "_params", None) or {}
        if isinstance(select, ast.UnionSelect):
            runner = _UnionRunner(self, select, params, [], scope)

            def union_rows(env: Env) -> list[tuple]:
                return runner.run(env).rows

            return union_rows, runner.correlated
        probe = Scope(parent=scope)
        plan = _SelectPlan(
            self,
            select,
            params,
            [],
            scope,
            probe_scope=probe,
        )

        def rows_fn(env: Env) -> list[tuple]:
            return plan.run(env).rows

        return rows_fn, probe.used_parent


class _SelectPlan:
    """One compiled SELECT: scope, compiled filters, and the row pipeline."""

    def __init__(
        self,
        executor: Executor,
        select: ast.Select,
        params: dict[str, Any],
        placeholders: list,
        outer_scope: Scope | None,
        probe_scope: Scope | None = None,
    ):
        self.executor = executor
        self.select = select
        self.params = params
        self.placeholders = placeholders
        #: vectorized row pipeline on/off — fixed at plan compile time, so a
        #: cached plan always re-runs in the mode it was compiled under
        self.vectorized = executor.vectorized
        self.scope = probe_scope if probe_scope is not None else Scope(parent=outer_scope)
        self.scope._params = params  # stashed for nested subquery planning
        #: Column metadata per scope slot, parallel to scope slots.
        self.slot_columns: list[Column] = []
        #: (binding, rows supplier) in scope order
        self.sources: list[_Source] = []
        self._register_from(select.from_)
        self.compiler = ExpressionCompiler(
            self.scope, executor, params=params, placeholders=placeholders
        )
        self._plan_joins()
        self._plan_projection()
        self._plan_topk()
        if self.vectorized:
            executor.stats.compiled_plans += 1

    # -- FROM ---------------------------------------------------------------

    def _register_from(self, ref: ast.TableRef | None) -> None:
        if ref is None:
            return
        if isinstance(ref, ast.TableName):
            if not self.executor.table_exists(ref.name):
                view = self.executor.view_definition(ref.name)
                if view is not None:
                    self._register_view(ref, view)
                    return
            table, _ = self.executor.resolve_table(ref.name)
            binding = (ref.alias or ref.name).lower()
            self.scope.add_source(binding, table.schema.column_names)
            self.slot_columns.extend(table.schema.columns)
            self.sources.append(
                _Source(binding, lambda t=table: (row for _, row in t.scan()), table=table)
            )
            return
        if isinstance(ref, ast.SubquerySource):
            # Derived tables are planned now (their column metadata becomes
            # scope slots) and evaluated lazily once per statement — they
            # cannot see sibling FROM items, only the statement's outer scope.
            if isinstance(ref.select, ast.UnionSelect):
                meta = _UnionRunner(
                    self.executor, ref.select, self.params, self.placeholders, self.scope.parent
                )
            else:
                meta = _SelectPlan(
                    self.executor, ref.select, self.params, self.placeholders, self.scope.parent
                )
            self.scope.add_source(ref.alias, [c.name for c in meta.output_columns])
            self.slot_columns.extend(
                Column(c.name, c.type, length=c.length) for c in meta.output_columns
            )
            holder: dict[str, Any] = {}
            epoch_cell = self.executor._epoch_cell

            def derived_rows_cached() -> Iterator[tuple]:
                # memoized per statement epoch, not per plan object: a cached
                # plan re-run after DML must re-evaluate the derived table.
                if holder.get("epoch") != epoch_cell[0]:
                    holder["r"] = meta.run(None).rows
                    holder["epoch"] = epoch_cell[0]
                return iter(holder["r"])

            self.sources.append(_Source(ref.alias.lower(), derived_rows_cached))
            return
        if isinstance(ref, ast.Join):
            self._register_from(ref.left)
            self._register_from(ref.right)
            return
        raise NotSupportedError(f"FROM element {type(ref).__name__}")

    def _register_view(self, ref: ast.TableName, view: ast.CreateView) -> None:
        """Expand a view reference as a derived table (planned once,
        evaluated lazily once per statement), applying the view's declared
        column names."""
        meta = _SelectPlan(self.executor, view.select, self.params, self.placeholders, None)
        names = view.columns or [c.name for c in meta.output_columns]
        binding = (ref.alias or ref.name).lower()
        self.scope.add_source(binding, names)
        self.slot_columns.extend(
            Column(name, c.type, length=c.length)
            for name, c in zip(names, meta.output_columns)
        )
        holder: dict[str, Any] = {}
        epoch_cell = self.executor._epoch_cell

        def view_rows() -> Iterator[tuple]:
            if holder.get("epoch") != epoch_cell[0]:
                holder["r"] = meta.run(None).rows
                holder["epoch"] = epoch_cell[0]
            return iter(holder["r"])

        self.sources.append(_Source(binding, view_rows))

    def _plan_joins(self) -> None:
        """Plan join execution: conjunct pushdown + hash equi-joins.

        WHERE is split into AND-conjuncts; each conjunct that references
        only base columns is evaluated at the *earliest* join step where all
        its columns are bound (selection pushdown), and a ``col = col``
        conjunct across two sources becomes a hash-join key.  Conjuncts
        containing subqueries or outer references stay in the final WHERE —
        their evaluation context is subtler and correctness wins.

        Semantics guard: pushed WHERE conjuncts whose step is a LEFT join
        are applied *after* the join (as post-filters), since filtering
        inside a LEFT join would change which rows get NULL-padded.
        """
        # absolute slot range per source
        self.source_ranges: list[tuple[int, int]] = []
        offset = 0
        for source in self.sources:
            width = len(self.scope.columns_of(source.binding))
            self.source_ranges.append((offset, offset + width))
            offset += width

        # collect per-step kind and ON expression from the FROM tree
        kinds: list[str] = []
        on_exprs: list[ast.Expr | None] = []

        def walk(ref: ast.TableRef | None) -> None:
            if ref is None:
                return
            if isinstance(ref, (ast.TableName, ast.SubquerySource)):
                kinds.append("FIRST" if not kinds else "CROSS")
                on_exprs.append(None)
                return
            if isinstance(ref, ast.Join):
                walk(ref.left)
                if isinstance(ref.right, ast.Join):
                    raise NotSupportedError("right-nested joins are not supported")
                walk(ref.right)
                kinds[-1] = ref.kind
                on_exprs[-1] = ref.on
                return
            raise NotSupportedError(f"FROM element {type(ref).__name__}")

        walk(self.select.from_)

        join_conjuncts: list[list[ast.Expr]] = [[] for _ in self.sources]
        post_conjuncts: list[list[ast.Expr]] = [[] for _ in self.sources]
        final_conjuncts: list[ast.Expr] = []

        for index, on_expr in enumerate(on_exprs):
            join_conjuncts[index].extend(_split_conjuncts(on_expr))

        #: conjuncts referencing no column of this query (e.g. Phoenix's
        #: ``0 = 1`` metadata probe, or purely outer-correlated guards) —
        #: evaluated once per run, not once per row.  This is what makes
        #: ``WHERE 0=1`` effectively compile-only, as the paper assumes.
        constant_conjuncts: list[ast.Expr] = []

        #: set when a literal-only conjunct folded to not-True at compile
        #: time — the plan is then an empty-result short circuit.
        self.folded_false = False

        for conjunct in _split_conjuncts(self.select.where):
            refs: list[ast.ColumnRef] = []
            if _collect_plain_refs(conjunct, refs) and not any(
                self._is_local_ref(ref) for ref in refs
            ):
                if not refs and not _contains_funccall(conjunct):
                    # constant folding: no column refs at any depth and no
                    # function calls (rowcount() is session-state-dependent)
                    # — evaluate now, once per *compile*, not once per run.
                    try:
                        value = self.compiler.compile_predicate(conjunct)(_env([], None))
                    except Exception:
                        # runtime errors (e.g. division by zero) must keep
                        # surfacing at run time, not at EXPLAIN/compile time
                        constant_conjuncts.append(conjunct)
                    else:
                        if value is not True:
                            self.folded_false = True
                    continue
                constant_conjuncts.append(conjunct)
                continue
            target = self._conjunct_target(conjunct)
            if target is None:
                final_conjuncts.append(conjunct)
            elif kinds[target] == "LEFT":
                post_conjuncts[target].append(conjunct)
            else:
                join_conjuncts[target].append(conjunct)
        self.constant_filter = self._compile_conjunction(constant_conjuncts)

        self.join_steps: list[_JoinStep] = []
        for index, kind in enumerate(kinds):
            equi: list[tuple[int, int]] = []
            residual: list[ast.Expr] = []
            for conjunct in join_conjuncts[index]:
                pair = self._equi_pair(conjunct, index)
                if pair is not None:
                    equi.append(pair)  # LEFT joins hash on ON-equality too
                else:
                    residual.append(conjunct)
            probe = None
            if kind != "LEFT":
                probe = self._index_probe(index, join_conjuncts[index])
            self.join_steps.append(
                _JoinStep(
                    kind=kind,
                    equi=equi,
                    residual=self._compile_conjunction(residual),
                    post=self._compile_conjunction(post_conjuncts[index]),
                    probe=probe,
                )
            )
        self.where = self._compile_conjunction(final_conjuncts)

    def _index_probe(self, index: int, conjuncts: list[ast.Expr]):
        """Pick the best access path for source ``index`` from its
        conjuncts, ranked **PK probe > secondary equality > secondary
        range** (full scan when nothing matches).  Range probes come from
        ``<``, ``<=``, ``>``, ``>=`` and ``BETWEEN`` conjuncts over an
        ordered secondary index (vectorized mode only — the interpreted
        baseline keeps the seed's equality-only behaviour).  Every chosen
        conjunct is kept in the residual too — the probe only narrows the
        scan, it never replaces the predicate."""
        source = self.sources[index]
        if source.table is None:
            return None
        table = source.table
        start, end = self.source_ranges[index]

        def local_column(col_side: ast.Expr) -> str | None:
            if not isinstance(col_side, ast.ColumnRef):
                return None
            resolved = self.scope.try_resolve(col_side.name, col_side.table)
            if resolved is None or resolved[0] != 0:
                return None
            slot = resolved[1]
            if not start <= slot < end:
                return None
            return table.schema.columns[slot - start].name

        def row_independent(value_side: ast.Expr) -> bool:
            # the probe value must not depend on this query's rows
            refs: list[ast.ColumnRef] = []
            if not _collect_plain_refs(value_side, refs):
                return False  # subquery
            return not any(self._is_local_ref(r) for r in refs)

        eq_pk: tuple[str, ast.Expr] | None = None
        eq_secondary: tuple[str, ast.Expr] | None = None
        #: column -> [low_expr, low_inclusive, high_expr, high_inclusive]
        range_bounds: dict[str, list] = {}

        for conjunct in conjuncts:
            if isinstance(conjunct, ast.Binary) and conjunct.op in _PROBE_OPS:
                for col_side, value_side, op in (
                    (conjunct.left, conjunct.right, conjunct.op),
                    (conjunct.right, conjunct.left, _FLIPPED_OP[conjunct.op]),
                ):
                    column = local_column(col_side)
                    if column is None or not row_independent(value_side):
                        continue
                    if op == "=":
                        if table.schema.primary_key == (column,):
                            if eq_pk is None:
                                eq_pk = (column, value_side)
                        elif table.has_secondary_index(column):
                            if eq_secondary is None:
                                eq_secondary = (column, value_side)
                    elif self.vectorized and table.has_secondary_index(column):
                        bounds = range_bounds.setdefault(column, [None, True, None, True])
                        if op in (">", ">="):
                            if bounds[0] is None:
                                bounds[0], bounds[1] = value_side, op == ">="
                        else:
                            if bounds[2] is None:
                                bounds[2], bounds[3] = value_side, op == "<="
            elif (
                self.vectorized
                and isinstance(conjunct, ast.Between)
                and not conjunct.negated
            ):
                column = local_column(conjunct.operand)
                if (
                    column is not None
                    and table.has_secondary_index(column)
                    and row_independent(conjunct.low)
                    and row_independent(conjunct.high)
                ):
                    bounds = range_bounds.setdefault(column, [None, True, None, True])
                    if bounds[0] is None:
                        bounds[0], bounds[1] = conjunct.low, True
                    if bounds[2] is None:
                        bounds[2], bounds[3] = conjunct.high, True

        if eq_pk is not None:
            column, value_side = eq_pk
            return (column, self.compiler.compile(value_side), "pk")
        if eq_secondary is not None:
            column, value_side = eq_secondary
            return (column, self.compiler.compile(value_side), "secondary")
        if range_bounds:
            # prefer the column bounded on both sides (tightest interval)
            column, bounds = max(
                range_bounds.items(),
                key=lambda kv: (kv[1][0] is not None) + (kv[1][2] is not None),
            )
            low_expr, low_incl, high_expr, high_incl = bounds
            low_fn = self.compiler.compile(low_expr) if low_expr is not None else None
            high_fn = self.compiler.compile(high_expr) if high_expr is not None else None
            return (column, (low_fn, low_incl, high_fn, high_incl), "range")
        return None

    def _compile_conjunction(self, conjuncts: list[ast.Expr]):
        if not conjuncts:
            return None
        fns = [self.compiler.compile_predicate(c) for c in conjuncts]
        if len(fns) == 1:
            return fns[0]

        def _all(env: Env):
            for fn in fns:
                if fn(env) is not True:
                    return False
            return True

        return _all

    def _is_local_ref(self, ref: ast.ColumnRef) -> bool:
        """Does this column reference resolve to one of *this* query's rows
        (depth 0), as opposed to an outer scope?"""
        resolved = self.scope.try_resolve(ref.name, ref.table)
        return resolved is not None and resolved[0] == 0

    def _conjunct_target(self, conjunct: ast.Expr) -> int | None:
        """Earliest join step at which ``conjunct`` can run, or None to keep
        it in the final WHERE (subqueries, outer refs, unresolvable)."""
        refs: list[ast.ColumnRef] = []
        if not _collect_plain_refs(conjunct, refs):
            return None  # contains a subquery
        target = 0
        for ref in refs:
            resolved = self.scope.try_resolve(ref.name, ref.table)
            if resolved is None:
                return None
            depth, slot = resolved
            if depth > 0:
                continue  # outer reference: constant w.r.t. this query's rows
            for index, (start, end) in enumerate(self.source_ranges):
                if start <= slot < end:
                    target = max(target, index)
                    break
            else:
                return None  # synthetic slot (aggregate) — not valid in WHERE
        return target

    def _equi_pair(self, conjunct: ast.Expr, step: int) -> tuple[int, int] | None:
        """If ``conjunct`` is ``left_col = right_col`` linking an earlier
        source to source ``step``, return (left_abs_slot, right_local_slot)."""
        if not (
            isinstance(conjunct, ast.Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            return None
        sides = []
        for ref in (conjunct.left, conjunct.right):
            resolved = self.scope.try_resolve(ref.name, ref.table)
            if resolved is None or resolved[0] != 0:
                return None
            sides.append(resolved[1])
        start, end = self.source_ranges[step]
        a, b = sides
        if start <= a < end and b < start:
            return (b, a - start)
        if start <= b < end and a < start:
            return (a, b - start)
        return None

    # -- projection planning ----------------------------------------------------

    def _expand_items(self) -> list[tuple[ast.Expr, str]]:
        """Expand stars; returns [(expr, output name)]."""
        items: list[tuple[ast.Expr, str]] = []
        for item in self.select.items:
            expr = item.expr
            if isinstance(expr, ast.Star):
                bindings = (
                    [expr.table.lower()] if expr.table else [b for b, _ in self.scope.sources]
                )
                for binding in bindings:
                    for name in self.scope.columns_of(binding):
                        items.append((ast.ColumnRef(name, table=binding), name))
                continue
            name = item.alias or _derive_name(expr)
            items.append((expr, name.lower()))
        return items

    def _plan_projection(self) -> None:
        select = self.select
        self.items = self._expand_items()
        self.aliases = {
            (item.alias or "").lower(): item.expr
            for item in select.items
            if item.alias
        }

        # Resolve GROUP BY entries (aliases allowed, TPC-H style).
        group_exprs = [self._dealias(e) for e in select.group_by]
        agg_nodes: list[ast.FuncCall] = []
        for expr, _ in self.items:
            _collect_aggregates(expr, agg_nodes)
        if select.having is not None:
            _collect_aggregates(self._dealias(select.having), agg_nodes)
        for order in select.order_by:
            _collect_aggregates(self._dealias(order.expr), agg_nodes)
        self.group_exprs = group_exprs
        self.agg_nodes = agg_nodes
        self.grouped = bool(group_exprs) or bool(agg_nodes)

        if self.grouped:
            # Synthetic slots for aggregate results, post-group compilation.
            agg_slots: dict[int, int] = {}
            for node in agg_nodes:
                agg_slots[id(node)] = self.scope.add_synthetic_slot()
            self.group_key_fns = [self.compiler.compile(e) for e in group_exprs]
            self.agg_arg_fns = [
                None if node.star else self.compiler.compile(node.args[0])
                for node in agg_nodes
            ]
            post_compiler = ExpressionCompiler(
                self.scope,
                self.executor,
                agg_slots=agg_slots,
                params=self.params,
                placeholders=self.placeholders,
            )
            self.item_fns = [post_compiler.compile(expr) for expr, _ in self.items]
            self.having_fn = (
                post_compiler.compile_predicate(self._dealias(select.having))
                if select.having is not None
                else None
            )
            self.order_fns = self._compile_order(post_compiler)
        else:
            if select.having is not None:
                raise ProgrammingError("HAVING requires GROUP BY or aggregates")
            self.item_fns = [self.compiler.compile(expr) for expr, _ in self.items]
            self.having_fn = None
            self.order_fns = self._compile_order(self.compiler)

        self.output_columns = [
            _infer_column(expr, name, self.slot_columns, self.scope)
            for expr, name in self.items
        ]

    def _dealias(self, expr: ast.Expr) -> ast.Expr:
        """Replace a bare alias reference with the aliased expression."""
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            aliased = self.aliases.get(expr.name.lower())
            if aliased is not None and self.scope.try_resolve(expr.name) is None:
                return aliased
        return expr

    def _compile_order(self, compiler: ExpressionCompiler):
        order_fns = []
        for order in self.select.order_by:
            expr = order.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                index = expr.value - 1
                if not 0 <= index < len(self.items):
                    raise ProgrammingError(f"ORDER BY position {expr.value} out of range")
                order_fns.append(("position", index, order.desc))
                continue
            order_fns.append(("expr", compiler.compile(self._dealias(expr)), order.desc))
        return order_fns

    def _plan_topk(self) -> None:
        """Detect the index-ordered top-k shape: a single-table ``ORDER BY
        <indexed column> LIMIT k`` (optionally with a range probe on that
        same column) can stream rowids in index order and stop after
        offset+limit matches instead of materialize-then-sort.  The ordered
        index yields exactly the stable ``sort_key`` order the sort would
        produce (NULLS FIRST ascending, ties in rowid order), so results
        are identical."""
        self.topk: tuple[str, bool] | None = None
        if not self.vectorized:
            return
        select = self.select
        if select.limit is None or select.distinct or self.grouped:
            return
        if len(self.sources) != 1 or self.sources[0].table is None:
            return
        if len(select.order_by) != 1 or len(self.order_fns) != 1:
            return
        step = self.join_steps[0]
        if step.post is not None:
            return
        expr = self._dealias(select.order_by[0].expr)
        if not isinstance(expr, ast.ColumnRef):
            return
        resolved = self.scope.try_resolve(expr.name, expr.table)
        if resolved is None or resolved[0] != 0:
            return
        start, end = self.source_ranges[0]
        slot = resolved[1]
        if not start <= slot < end:
            return
        table = self.sources[0].table
        column = table.schema.columns[slot - start].name
        if not table.has_secondary_index(column):
            return
        probe = step.probe
        if probe is not None and not (probe[2] == "range" and probe[0] == column):
            # an equality probe (or a range on another column) is more
            # selective than streaming the whole index — keep the probe path
            return
        self.topk = (column, select.order_by[0].desc)

    # -- plan introspection -------------------------------------------------------

    def describe(self) -> list[str]:
        """Human-readable plan: join order, hash keys, pushed filters —
        the EXPLAIN output."""
        lines: list[str] = []
        select = self.select
        if not self.sources:
            lines.append("Result: constant row")
        for index, (source, step) in enumerate(zip(self.sources, self.join_steps)):
            if step.probe is not None:
                column, payload, probe_kind = step.probe
                if probe_kind == "range":
                    low_fn, low_incl, high_fn, high_incl = payload
                    parts = []
                    if low_fn is not None:
                        parts.append(f"{column} {'>=' if low_incl else '>'} const")
                    if high_fn is not None:
                        parts.append(f"{column} {'<=' if high_incl else '<'} const")
                    head = f"IndexRange {source.binding} ({' AND '.join(parts)})"
                else:
                    label = "PkLookup" if probe_kind == "pk" else "IndexScan"
                    head = f"{label} {source.binding} ({column} = const)"
            elif index == 0:
                head = f"Scan {source.binding}"
            elif step.kind == "CROSS" and not step.equi:
                head = f"NestedLoop(CROSS) {source.binding}"
            elif step.equi:
                keys = ", ".join(
                    f"{self._slot_name(left)} = {source.binding}.{self._local_name(index, right)}"
                    for left, right in step.equi
                )
                head = f"HashJoin({step.kind}) {source.binding} ON {keys}"
            else:
                head = f"NestedLoop({step.kind}) {source.binding}"
            notes = []
            if step.residual is not None:
                notes.append("residual filter")
            if step.post is not None:
                notes.append("post filter")
            lines.append(head + (f"  [{', '.join(notes)}]" if notes else ""))
        if self.folded_false:
            lines.append("ConstantFilter (folded false at compile time: empty result)")
        if self.constant_filter is not None:
            lines.append("ConstantFilter (evaluated once per run)")
        if self.where is not None:
            lines.append("Filter (final WHERE: subqueries / outer refs)")
        if self.grouped:
            keys = ", ".join(e.sql() for e in self.group_exprs) or "<all rows>"
            lines.append(f"Aggregate by [{keys}] computing {len(self.agg_nodes)} aggregate(s)")
        if select.having is not None:
            lines.append("Having")
        if select.distinct:
            lines.append("Distinct")
        if self.topk is not None:
            column, desc = self.topk
            lines.append(
                f"TopK {select.limit} Offset {select.offset or 0} "
                f"ORDER BY {column}{' DESC' if desc else ''} (index-ordered, no sort)"
            )
        else:
            if select.order_by:
                lines.append("Sort " + ", ".join(o.sql() for o in select.order_by))
            if select.limit is not None or select.offset is not None:
                lines.append(f"Limit {select.limit} Offset {select.offset or 0}")
        lines.append(
            f"Project {len(self.items)} column(s)"
            + (" [compiled]" if self.vectorized else "")
        )
        return lines

    def _slot_name(self, slot: int) -> str:
        for index, (start, end) in enumerate(self.source_ranges):
            if start <= slot < end:
                binding = self.sources[index].binding
                return f"{binding}.{self._local_name(index, slot - start)}"
        return f"slot{slot}"

    def _local_name(self, source_index: int, local_slot: int) -> str:
        binding = self.sources[source_index].binding
        return self.scope.columns_of(binding)[local_slot]

    # -- execution ---------------------------------------------------------------

    def run(self, outer_env: Env | None) -> ResultSet:
        out_rows = self._run_rows(outer_env)
        self.executor.stats.rows_returned += len(out_rows)
        return ResultSet(self.output_columns, out_rows)

    def _run_rows(self, outer_env: Env | None) -> list[tuple]:
        if self.folded_false:
            return []
        if self.constant_filter is not None:
            probe_env = _env([None] * self.scope.slot_count, outer_env)
            if self.constant_filter(probe_env) is not True:
                return []
        if self.topk is not None:
            return self._run_topk(outer_env)
        rows = self._source_rows(outer_env)
        if self.where is not None:
            where = self.where
            if self.vectorized:
                # one reused environment for the whole filter pass — the
                # compiled closures read slot offsets out of it, so
                # rebinding ``values`` is all a new row costs
                env = _env([], outer_env)
                kept: list[list] = []
                for r in rows:
                    env.values = r
                    if where(env) is True:
                        kept.append(r)
                rows = kept
            else:
                rows = [r for r in rows if where(_env(r, outer_env)) is True]

        if self.grouped:
            out_rows = self._run_grouped(rows, outer_env)
        else:
            item_fns = self.item_fns
            if self.vectorized:
                env = _env([], outer_env)
                out_rows = []
                for r in rows:
                    env.values = r
                    out_rows.append(tuple(fn(env) for fn in item_fns))
            else:
                out_rows = [
                    tuple(fn(_env(r, outer_env)) for fn in item_fns) for r in rows
                ]
            self._ordering_rows = rows  # parallel to out_rows, for ORDER BY

        return self._order_distinct_limit(out_rows, outer_env)

    def _run_topk(self, outer_env: Env | None) -> list[tuple]:
        """Index-ordered top-k: stream rowids in ORDER BY order (optionally
        restricted to the range probe's slice of the index) and stop at
        offset+limit accepted rows — no materialize, no sort."""
        select = self.select
        column, desc = self.topk
        source = self.sources[0]
        table = source.table
        step = self.join_steps[0]
        stats = self.executor.stats
        if step.probe is not None:  # range probe on the ORDER BY column
            bounds = self._range_probe_bounds(table, step.probe, outer_env)
            if bounds is None:
                rowids: Any = ()
            elif bounds is _FALLBACK_SCAN:
                rowids = table.index_ordered(column, desc=desc)
            else:
                low, high, low_incl, high_incl = bounds
                stats.index_range_scans += 1
                rowids = table.index_range(
                    column, low, high,
                    low_inclusive=low_incl, high_inclusive=high_incl, desc=desc,
                )
        else:
            rowids = table.index_ordered(column, desc=desc)
        residual = step.residual
        where = self.where
        offset = select.offset or 0
        need = select.limit + offset
        start, end = self.source_ranges[0]
        pad = [None] * (self.scope.slot_count - end)
        env = _env([], outer_env)
        item_fns = self.item_fns
        get = table.get
        out: list[tuple] = []
        scanned = 0
        for rowid in rowids:
            scanned += 1
            row = list(get(rowid))
            if pad:
                row += pad
            env.values = row
            if residual is not None and residual(env) is not True:
                continue
            if where is not None and where(env) is not True:
                continue
            out.append(tuple(fn(env) for fn in item_fns))
            if len(out) >= need:
                break
        stats.rows_scanned += scanned
        stats.topk_shortcuts += 1
        return out[offset:] if offset else out

    def _source_rows(self, outer_env: Env | None) -> list[list]:
        """Join pipeline: hash joins on the planned equi-keys, nested loops
        otherwise, with pushed filters applied at each step."""
        if not self.sources:
            return [[]]
        total_width = self.scope.slot_count
        stats = self.executor.stats
        if self.vectorized and len(self.sources) == 1:
            # single-source fast path: no join product to build, so each row
            # is copied once (scan or probe result), padded in place, and
            # filtered through one reused environment
            source = self.sources[0]
            step = self.join_steps[0]
            start, end = self.source_ranges[0]
            pad = [None] * (total_width - end)
            if step.probe is not None:
                rows = self._probe_rows(source, step.probe, outer_env)
                if rows is None:
                    rows = [list(row) for row in source.rows_fn()]
            else:
                rows = [list(row) for row in source.rows_fn()]
            if source.table is not None:
                stats.rows_scanned += len(rows)
            if pad:
                rows = [row + pad for row in rows]
            residual = step.residual
            if residual is not None:
                env = _env([], outer_env)
                kept: list[list] = []
                for row in rows:
                    env.values = row
                    if residual(env) is True:
                        kept.append(row)
                rows = kept
            return rows
        current: list[list] = [[]]
        shared_env = _env([], outer_env) if self.vectorized else None
        for index, (source, step) in enumerate(zip(self.sources, self.join_steps)):
            start, end = self.source_ranges[index]
            width = end - start
            pad_after = total_width - end
            pad = [None] * pad_after
            right_rows = None
            if step.probe is not None:
                right_rows = self._probe_rows(source, step.probe, outer_env)
            if right_rows is None:
                right_rows = [list(row) for row in source.rows_fn()]
            if source.table is not None:
                stats.rows_scanned += len(right_rows)

            if shared_env is not None:
                def passes(fn, candidate: list) -> bool:
                    if fn is None:
                        return True
                    shared_env.values = candidate + pad
                    return fn(shared_env) is True
            else:
                def passes(fn, candidate: list) -> bool:
                    if fn is None:
                        return True
                    return fn(_env(candidate + pad, outer_env)) is True

            next_rows: list[list] = []
            if step.equi and step.kind != "LEFT":
                index_map = _hash_rows(right_rows, [local for _, local in step.equi])
                left_slots = [abs_slot for abs_slot, _ in step.equi]
                for left in current:
                    key = tuple(left[slot] for slot in left_slots)
                    if None in key:
                        continue  # NULL never equi-joins
                    for right in index_map.get(key, ()):
                        candidate = left + right
                        if passes(step.residual, candidate) and passes(step.post, candidate):
                            next_rows.append(candidate)
            elif step.kind == "LEFT":
                index_map = (
                    _hash_rows(right_rows, [local for _, local in step.equi])
                    if step.equi
                    else None
                )
                left_slots = [abs_slot for abs_slot, _ in step.equi]
                null_right = [None] * width
                for left in current:
                    matched = False
                    if index_map is not None:
                        key = tuple(left[slot] for slot in left_slots)
                        candidates = () if None in key else index_map.get(key, ())
                    else:
                        candidates = right_rows
                    for right in candidates:
                        candidate = left + right
                        if passes(step.residual, candidate):
                            matched = True
                            if passes(step.post, candidate):
                                next_rows.append(candidate)
                    if not matched:
                        candidate = left + null_right
                        if passes(step.post, candidate):
                            next_rows.append(candidate)
            else:
                for left in current:
                    for right in right_rows:
                        candidate = left + right
                        if passes(step.residual, candidate) and passes(step.post, candidate):
                            next_rows.append(candidate)
            current = next_rows
        # pad to full width (synthetic agg slots)
        if self.source_ranges:
            end = self.source_ranges[-1][1]
            if total_width > end:
                tail = [None] * (total_width - end)
                current = [row + tail for row in current]
        return current

    def _probe_rows(
        self, source: _Source, probe, outer_env: Env | None
    ) -> list[list] | None:
        """Fetch only the rows matching an index probe (PK, secondary
        equality, or secondary range).  Returns None when the probe cannot
        be used this run (an uncoercible range bound) — the caller falls
        back to the full scan so per-row error semantics are preserved."""
        from repro.errors import DataError

        column, value_fn, probe_kind = probe
        table = source.table
        stats = self.executor.stats
        if probe_kind == "range":
            bounds = self._range_probe_bounds(table, probe, outer_env)
            if bounds is _FALLBACK_SCAN:
                return None
            if bounds is None:
                return []  # a NULL bound: the comparison is never true
            low, high, low_incl, high_incl = bounds
            stats.index_range_scans += 1
            # index_range returns rowids in *key* order; re-sort to rowid
            # (scan) order so downstream aggregation and stable sorts see
            # rows in exactly the order the full scan would feed them —
            # float sums and tie-breaking are order-sensitive.
            rowids = sorted(
                table.index_range(
                    column, low, high,
                    low_inclusive=low_incl, high_inclusive=high_incl,
                )
            )
            return [list(table.get(rowid)) for rowid in rowids]
        value = value_fn(_env([None] * self.scope.slot_count, outer_env))
        if value is None:
            return []  # NULL never equals anything
        try:
            value = table.schema.column(column).coerce(value)
        except DataError:
            return []  # incomparable constant: no row can match
        stats.index_eq_probes += 1
        if probe_kind == "pk":
            rowid = table.lookup_key((value,))
            return [] if rowid is None else [list(table.get(rowid))]
        return [list(table.get(rowid)) for rowid in table.index_lookup(column, value)]

    def _range_probe_bounds(self, table: Table, probe, outer_env: Env | None):
        """Evaluate a range probe's bound expressions for this run.

        Returns ``(low, high, low_inclusive, high_inclusive)`` with bounds
        coerced to the column type (None = unbounded side), ``None`` when a
        bound evaluated to SQL NULL (the range matches nothing), or
        :data:`_FALLBACK_SCAN` when a bound cannot be coerced — the full
        scan must run so the per-row comparison raises exactly as it would
        without the index."""
        from repro.errors import DataError

        column, (low_fn, low_incl, high_fn, high_incl), _kind = probe
        spec = table.schema.column(column)
        env = _env([None] * self.scope.slot_count, outer_env)
        low = high = None
        if low_fn is not None:
            low = low_fn(env)
            if low is None:
                return None
            try:
                low = spec.coerce(low)
            except DataError:
                return _FALLBACK_SCAN
        if high_fn is not None:
            high = high_fn(env)
            if high is None:
                return None
            try:
                high = spec.coerce(high)
            except DataError:
                return _FALLBACK_SCAN
        return (low, high, low_incl, high_incl)

    def _run_grouped(self, rows: list[list], outer_env: Env | None) -> list[tuple]:
        groups: dict[tuple, dict] = {}
        order: list[tuple] = []
        shared_env = _env([], outer_env) if self.vectorized else None
        for row in rows:
            if shared_env is not None:
                shared_env.values = row
                env = shared_env
            else:
                env = _env(row, outer_env)
            key = tuple(fn(env) for fn in self.group_key_fns)
            group = groups.get(key)
            if group is None:
                group = {
                    "rep": row,
                    "accs": [
                        functions.make_accumulator(
                            node.name, star=node.star, distinct=node.distinct
                        )
                        for node in self.agg_nodes
                    ],
                }
                groups[key] = group
                order.append(key)
            for acc, arg_fn in zip(group["accs"], self.agg_arg_fns):
                acc.add(1 if arg_fn is None else arg_fn(env))
        if not groups and not self.group_exprs:
            # aggregate over empty input: one all-NULL/zero row
            groups[()] = {
                "rep": [None] * self.scope.slot_count,
                "accs": [
                    functions.make_accumulator(
                        node.name, star=node.star, distinct=node.distinct
                    )
                    for node in self.agg_nodes
                ],
            }
            order.append(())

        out_rows: list[tuple] = []
        ordering_rows: list[list] = []
        n_aggs = len(self.agg_nodes)
        width = self.scope.slot_count
        for key in order:
            group = groups[key]
            rep = list(group["rep"])
            # place aggregate results in their synthetic slots (the last
            # n_aggs slots, allocated in agg_nodes order)
            agg_values = [acc.result() for acc in group["accs"]]
            full = rep[: width - n_aggs] + agg_values if n_aggs else rep
            env = _env(full, outer_env)
            if self.having_fn is not None and self.having_fn(env) is not True:
                continue
            out_rows.append(tuple(fn(env) for fn in self.item_fns))
            ordering_rows.append(full)
        self._ordering_rows = ordering_rows
        return out_rows

    def _order_distinct_limit(self, out_rows: list[tuple], outer_env: Env | None) -> list[tuple]:
        select = self.select
        rows = out_rows
        if select.distinct:
            seen = set()
            deduped = []
            deduped_ordering = []
            for row, orow in zip(rows, self._ordering_rows):
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
                    deduped_ordering.append(orow)
            rows = deduped
            self._ordering_rows = deduped_ordering
        if self.order_fns:
            indexed = list(zip(rows, self._ordering_rows))
            sort_env = _env([], outer_env) if self.vectorized else None
            for kind, key, desc in reversed(self.order_fns):
                if kind == "position":
                    indexed.sort(key=lambda pair: sort_key(pair[0][key]), reverse=desc)
                elif sort_env is not None:
                    def _key(pair, key=key):
                        sort_env.values = pair[1]
                        return sort_key(key(sort_env))

                    indexed.sort(key=_key, reverse=desc)
                else:
                    indexed.sort(
                        key=lambda pair: sort_key(key(_env(pair[1], outer_env))),
                        reverse=desc,
                    )
            rows = [pair[0] for pair in indexed]
        if select.offset is not None:
            rows = rows[select.offset :]
        if select.limit is not None:
            rows = rows[: select.limit]
        return rows


class _UnionRunner:
    """Executes a UNION chain: per-part plans + combination semantics.

    Quacks like _SelectPlan where callers need it (``output_columns``,
    ``run(env)``), so derived tables and subqueries can hold unions.
    """

    def __init__(self, executor, union, params, placeholders, outer_scope):
        self.union = union
        #: shared across every part's plan tree; mutated in place on rebind
        self.placeholders = placeholders
        self.plans = []
        self.correlated = False
        for part in union.parts:
            probe = Scope(parent=outer_scope)
            plan = _SelectPlan(executor, part, params, placeholders, outer_scope, probe_scope=probe)
            self.plans.append(plan)
            self.correlated = self.correlated or probe.used_parent
        widths = {len(p.output_columns) for p in self.plans}
        if len(widths) != 1:
            raise ProgrammingError(
                f"UNION parts produce different column counts: {sorted(widths)}"
            )
        #: metadata comes from the first part (standard SQL behaviour)
        self.output_columns = self.plans[0].output_columns

    def run(self, outer_env: Env | None) -> ResultSet:
        rows: list[tuple] = []
        for index, plan in enumerate(self.plans):
            part_rows = plan.run(outer_env).rows
            rows.extend(part_rows)
            # plain UNION dedupes everything accumulated so far (left-assoc)
            if index > 0 and not self.union.all_flags[index - 1]:
                seen: set = set()
                deduped: list[tuple] = []
                for row in rows:
                    if row not in seen:
                        seen.add(row)
                        deduped.append(row)
                rows = deduped
        rows = self._order_limit(rows)
        return ResultSet(self.output_columns, rows)

    def _order_limit(self, rows: list[tuple]) -> list[tuple]:
        union = self.union
        if union.order_by:
            name_to_index = {c.name: i for i, c in enumerate(self.output_columns)}
            keys: list[tuple[int, bool]] = []
            for order in union.order_by:
                expr = order.expr
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    position = expr.value - 1
                elif isinstance(expr, ast.ColumnRef) and expr.table is None:
                    position = name_to_index.get(expr.name.lower(), -1)
                else:
                    position = -1
                if not 0 <= position < len(self.output_columns):
                    raise ProgrammingError(
                        "UNION ORDER BY must name an output column or position"
                    )
                keys.append((position, order.desc))
            for position, desc in reversed(keys):
                rows = sorted(rows, key=lambda r: sort_key(r[position]), reverse=desc)
        if union.offset is not None:
            rows = rows[union.offset :]
        if union.limit is not None:
            rows = rows[: union.limit]
        return rows


class _Source:
    """One FROM source: binding name, a fresh-iterator supplier, and (for
    base tables) the Table object — the planner needs it for index probes."""

    def __init__(self, binding: str, rows_fn, table=None):
        self.binding = binding
        self.rows_fn = rows_fn
        self.table = table


class _JoinStep:
    """Execution plan for one join step (aligned with one source)."""

    __slots__ = ("kind", "equi", "residual", "post", "probe")

    def __init__(self, kind: str, equi, residual, post, probe=None):
        self.kind = kind
        #: [(left_absolute_slot, right_local_slot)] hash-join keys
        self.equi = equi
        #: remaining join condition (ON + pushed WHERE for inner joins)
        self.residual = residual
        #: pushed WHERE conjuncts applied after a LEFT join pads its rows
        self.post = post
        #: (column_name, payload, kind) index probe replacing the full scan;
        #: kind is "pk" / "secondary" (payload = value_fn) or "range"
        #: (payload = (low_fn, low_inclusive, high_fn, high_inclusive))
        self.probe = probe


def _hash_rows(rows: list[list], local_slots: list[int]) -> dict:
    """Bucket rows by their key tuple; NULL keys never participate."""
    index: dict[tuple, list] = {}
    for row in rows:
        key = tuple(row[slot] for slot in local_slots)
        if None in key:
            continue
        index.setdefault(key, []).append(row)
    return index


def _dml_index_probe(table: Table, where: ast.Expr, scope: Scope, compiler):
    """Find a ``col = constant`` conjunct of a DML WHERE usable as an index
    probe (PK or secondary); returns (column, value_fn, kind) or None."""
    for conjunct in _split_conjuncts(where):
        if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
            continue
        for col_side, value_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(col_side, ast.ColumnRef):
                continue
            resolved = scope.try_resolve(col_side.name, col_side.table)
            if resolved is None or resolved[0] != 0:
                continue
            refs: list[ast.ColumnRef] = []
            if not _collect_plain_refs(value_side, refs):
                continue
            if any(
                scope.try_resolve(r.name, r.table) is not None
                and scope.try_resolve(r.name, r.table)[0] == 0
                for r in refs
            ):
                continue  # depends on the row itself
            column = table.schema.columns[resolved[1]].name
            if table.has_secondary_index(column):
                return (column, compiler.compile(value_side), "secondary")
            if table.schema.primary_key == (column,):
                return (column, compiler.compile(value_side), "pk")
    return None


def _split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten a predicate into AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op.upper() == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _contains_funccall(expr: ast.Expr) -> bool:
    """Does the expression contain any function call?  Used to exclude
    conjuncts from constant folding: scalar functions may be session-state
    dependent (``rowcount()``) and must keep evaluating at run time."""
    if isinstance(expr, ast.FuncCall):
        return True
    if isinstance(expr, ast.Binary):
        return _contains_funccall(expr.left) or _contains_funccall(expr.right)
    if isinstance(expr, (ast.Unary, ast.IsNull, ast.Cast, ast.ExtractExpr)):
        return _contains_funccall(expr.operand)
    if isinstance(expr, ast.Between):
        return any(_contains_funccall(e) for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, ast.InList):
        return any(_contains_funccall(e) for e in (expr.operand, *expr.items))
    if isinstance(expr, ast.Like):
        children = [expr.operand, expr.pattern]
        if expr.escape is not None:
            children.append(expr.escape)
        return any(_contains_funccall(e) for e in children)
    if isinstance(expr, ast.CaseExpr):
        children = [c for c in (expr.operand, expr.else_) if c is not None]
        for cond, result in expr.whens:
            children.extend([cond, result])
        return any(_contains_funccall(e) for e in children)
    if isinstance(expr, ast.SubstringExpr):
        children = [expr.operand, expr.start]
        if expr.length is not None:
            children.append(expr.length)
        return any(_contains_funccall(e) for e in children)
    return False


def _collect_plain_refs(expr: ast.Expr, out: list[ast.ColumnRef]) -> bool:
    """Collect column refs; returns False if the expression contains a
    subquery (which disqualifies it from pushdown)."""
    if isinstance(expr, (ast.ScalarSelect, ast.InSelect, ast.Exists)):
        return False
    if isinstance(expr, ast.ColumnRef):
        out.append(expr)
        return True
    children: list[ast.Expr] = []
    if isinstance(expr, ast.Binary):
        children = [expr.left, expr.right]
    elif isinstance(expr, ast.Unary):
        children = [expr.operand]
    elif isinstance(expr, ast.IsNull):
        children = [expr.operand]
    elif isinstance(expr, ast.Between):
        children = [expr.operand, expr.low, expr.high]
    elif isinstance(expr, ast.InList):
        children = [expr.operand, *expr.items]
    elif isinstance(expr, ast.Like):
        children = [expr.operand, expr.pattern]
        if expr.escape is not None:
            children.append(expr.escape)
    elif isinstance(expr, ast.FuncCall):
        children = list(expr.args)
    elif isinstance(expr, ast.CaseExpr):
        children = [c for c in [expr.operand, expr.else_] if c is not None]
        for cond, result in expr.whens:
            children.extend([cond, result])
    elif isinstance(expr, ast.Cast):
        children = [expr.operand]
    elif isinstance(expr, ast.ExtractExpr):
        children = [expr.operand]
    elif isinstance(expr, ast.SubstringExpr):
        children = [expr.operand, expr.start]
        if expr.length is not None:
            children.append(expr.length)
    return all(_collect_plain_refs(child, out) for child in children)


def _env(values: list, outer_env: Env | None) -> Env:
    return Env(values=values, parent=outer_env)


def _collect_aggregates(expr: ast.Expr, out: list[ast.FuncCall]) -> None:
    """Gather aggregate calls at this query level (do not descend into
    subqueries — their aggregates are their own)."""
    if isinstance(expr, ast.FuncCall):
        if expr.name.lower() in functions.AGGREGATE_NAMES:
            out.append(expr)
            return
        for arg in expr.args:
            _collect_aggregates(arg, out)
        return
    if isinstance(expr, (ast.ScalarSelect, ast.InSelect, ast.Exists)):
        return
    if isinstance(expr, ast.Binary):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, ast.Unary):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.Between):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.low, out)
        _collect_aggregates(expr.high, out)
    elif isinstance(expr, ast.InList):
        _collect_aggregates(expr.operand, out)
        for item in expr.items:
            _collect_aggregates(item, out)
    elif isinstance(expr, ast.Like):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.pattern, out)
    elif isinstance(expr, ast.IsNull):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.CaseExpr):
        if expr.operand is not None:
            _collect_aggregates(expr.operand, out)
        for cond, result in expr.whens:
            _collect_aggregates(cond, out)
            _collect_aggregates(result, out)
        if expr.else_ is not None:
            _collect_aggregates(expr.else_, out)
    elif isinstance(expr, ast.Cast):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, (ast.ExtractExpr,)):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.SubstringExpr):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.start, out)
        if expr.length is not None:
            _collect_aggregates(expr.length, out)


def _derive_name(expr: ast.Expr) -> str:
    """Output column name for an unaliased select item."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return expr.name
    return expr.sql().lower()[:64]


def _infer_column(
    expr: ast.Expr, name: str, slot_columns: list[Column], scope: Scope
) -> Column:
    """Static type inference for output metadata (Phoenix's CREATE TABLE is
    built from this, so it must work without executing the query)."""
    sql_type, length = _infer_type(expr, slot_columns, scope)
    return Column(name.lower(), sql_type, length=length)


def _infer_type(
    expr: ast.Expr, slot_columns: list[Column], scope: Scope
) -> tuple[SqlType, int | None]:
    if isinstance(expr, ast.ColumnRef):
        resolved = scope.try_resolve(expr.name, expr.table)
        if resolved is not None and resolved[0] == 0 and resolved[1] < len(slot_columns):
            column = slot_columns[resolved[1]]
            return column.type, column.length
        return SqlType.VARCHAR, None
    if isinstance(expr, ast.Literal):
        value = expr.value
        if expr.is_date:
            return SqlType.DATE, None
        if isinstance(value, bool):
            return SqlType.BOOLEAN, None
        if isinstance(value, int):
            return SqlType.INT, None
        if isinstance(value, float):
            return SqlType.FLOAT, None
        return SqlType.VARCHAR, None
    if isinstance(expr, ast.FuncCall):
        name = expr.name.lower()
        if name == "count":
            return SqlType.INT, None
        if name in ("sum", "avg"):
            return SqlType.FLOAT, None
        if name in ("min", "max") and expr.args:
            return _infer_type(expr.args[0], slot_columns, scope)
        if name in ("upper", "lower", "trim", "ltrim", "rtrim", "substr", "substring", "concat", "replace"):
            return SqlType.VARCHAR, None
        if name in ("length", "floor", "ceil", "ceiling", "mod"):
            return SqlType.INT, None
        if name in ("abs", "round", "sqrt"):
            return SqlType.FLOAT, None
        if name == "date":
            return SqlType.DATE, None
        return SqlType.VARCHAR, None
    if isinstance(expr, ast.Binary):
        if expr.op.upper() in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
            return SqlType.BOOLEAN, None
        if expr.op == "||":
            return SqlType.VARCHAR, None
        left_type, _ = _infer_type(expr.left, slot_columns, scope)
        right_type, _ = _infer_type(expr.right, slot_columns, scope)
        if left_type is SqlType.DATE and isinstance(expr.right, ast.IntervalLiteral):
            return SqlType.DATE, None
        if left_type is SqlType.DATE and right_type is SqlType.DATE:
            return SqlType.INT, None
        if left_type is SqlType.DATE:
            return SqlType.DATE, None
        if expr.op == "/":
            return SqlType.FLOAT, None
        if left_type is SqlType.INT and right_type is SqlType.INT:
            return SqlType.INT, None
        return SqlType.FLOAT, None
    if isinstance(expr, ast.Unary):
        if expr.op.upper() == "NOT":
            return SqlType.BOOLEAN, None
        return _infer_type(expr.operand, slot_columns, scope)
    if isinstance(expr, (ast.IsNull, ast.Between, ast.InList, ast.InSelect, ast.Like, ast.Exists)):
        return SqlType.BOOLEAN, None
    if isinstance(expr, ast.CaseExpr):
        for _, result in expr.whens:
            return _infer_type(result, slot_columns, scope)
    if isinstance(expr, ast.Cast):
        return type_spec_to_sql_type(expr.type), expr.type.length
    if isinstance(expr, ast.ScalarSelect):
        return SqlType.FLOAT, None  # most common use: aggregated subquery
    if isinstance(expr, ast.ExtractExpr):
        return SqlType.INT, None
    if isinstance(expr, ast.SubstringExpr):
        return SqlType.VARCHAR, None
    return SqlType.VARCHAR, None
