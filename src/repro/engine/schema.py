"""Table schemas and row validation.

A :class:`TableSchema` is the engine's unit of metadata: column names, types,
nullability, and the primary key.  Schemas are also the *metadata* payload
the wire protocol ships to clients ahead of result rows — which is exactly
what Phoenix's ``WHERE 0=1`` trick fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import CatalogError, IntegrityError
from repro.engine.values import SqlType, coerce_value
from repro.sql import ast

__all__ = ["Column", "TableSchema", "schema_from_ast", "type_spec_to_sql_type"]


@dataclass(frozen=True)
class Column:
    """One column: name, engine type, and constraints."""

    name: str
    type: SqlType
    length: int | None = None
    precision: int | None = None
    scale: int | None = None
    not_null: bool = False

    def coerce(self, value: object) -> object:
        """Coerce ``value`` to this column's type, enforcing NOT NULL."""
        if value is None:
            if self.not_null:
                raise IntegrityError(f"column {self.name} is NOT NULL")
            return None
        return coerce_value(value, self.type, length=self.length)

    def type_spec(self) -> ast.TypeSpec:
        """Render back to an AST type for DDL generation."""
        return ast.TypeSpec(
            self.type.value,
            length=self.length,
            precision=self.precision,
            scale=self.scale,
        )


@dataclass(frozen=True)
class TableSchema:
    """Schema of a table (or of a result set — same shape on the wire)."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    temporary: bool = False

    _index: dict = field(default=None, repr=False, compare=False)  # lazy name→pos

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in {self.name}: {names}")
        for key in self.primary_key:
            if key not in names:
                raise CatalogError(f"primary key column {key} not in table {self.name}")
        object.__setattr__(self, "_index", {c.name: i for i, c in enumerate(self.columns)})

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"no column {name} in table {self.name}") from None

    def has_column(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def coerce_row(self, values: list[object]) -> tuple:
        """Validate and coerce a full row (positional)."""
        if len(values) != len(self.columns):
            raise IntegrityError(
                f"table {self.name} expects {len(self.columns)} values, got {len(values)}"
            )
        return tuple(col.coerce(v) for col, v in zip(self.columns, values))

    def key_of(self, row: tuple) -> tuple:
        """Extract the primary-key tuple from a row."""
        return tuple(row[self._index[k]] for k in self.primary_key)

    def renamed(self, new_name: str, *, temporary: bool | None = None) -> "TableSchema":
        """A copy of this schema under a different table name.

        Used by Phoenix when it turns a temp table into a persistent one and
        when it creates result-set tables from result metadata.
        """
        return replace(
            self,
            name=new_name,
            temporary=self.temporary if temporary is None else temporary,
            _index=None,
        )

    def create_table_sql(self) -> str:
        """Render a CREATE TABLE statement recreating this schema."""
        columns = [
            ast.ColumnDef(c.name, c.type_spec(), not_null=c.not_null) for c in self.columns
        ]
        stmt = ast.CreateTable(
            name=self.name,
            columns=columns,
            primary_key=list(self.primary_key),
            temporary=self.temporary,
        )
        return stmt.sql()


def type_spec_to_sql_type(spec: ast.TypeSpec) -> SqlType:
    """Map a parsed type spec to the engine type enum."""
    try:
        return SqlType(spec.name)
    except ValueError:
        raise CatalogError(f"unsupported type {spec.name}") from None


def schema_from_ast(stmt: ast.CreateTable) -> TableSchema:
    """Build a :class:`TableSchema` from a parsed CREATE TABLE."""
    columns = tuple(
        Column(
            name=c.name.lower(),
            type=type_spec_to_sql_type(c.type),
            length=c.type.length,
            precision=c.type.precision,
            scale=c.type.scale,
            not_null=c.not_null or c.name.lower() in [k.lower() for k in stmt.primary_key],
        )
        for c in stmt.columns
    )
    return TableSchema(
        name=stmt.name.lower(),
        columns=columns,
        primary_key=tuple(k.lower() for k in stmt.primary_key),
        temporary=stmt.temporary or stmt.name.startswith("#"),
    )
