"""The database: catalog + logged mutation API + checkpoint.

This is the durable half of the engine.  All *persistent* tables and
procedures live here, mutated only through methods that write WAL records
first (write-ahead rule).  Volatile session state (temp tables, cursors)
lives in :mod:`repro.engine.session` and never touches the log — which is
precisely why it dies in a crash and why Phoenix has to re-materialize it.

Restart recovery (:mod:`repro.engine.recovery`) reconstructs a Database from
stable storage alone.
"""

from __future__ import annotations

from repro.errors import CatalogError, TransactionError
from repro.engine.locks import LockManager, LockMode, LockStats
from repro.engine.schema import TableSchema
from repro.engine.storage import StableStorage, TableData
from repro.engine.table import Table
from repro.engine.transactions import Transaction, TransactionManager, TxnState
from repro.engine.wal import LogRecord, RecordType, WalStats, WriteAheadLog

__all__ = ["Database"]

_META_CHECKPOINT = "checkpoint_lsn"
_META_PROCEDURES = "procedures"  # (dict name -> CREATE PROCEDURE sql, snapshot lsn)
_META_VIEWS = "views"  # (dict name -> CREATE VIEW sql, snapshot lsn)
_META_INDEXES = "indexes"  # (dict name -> (table, column), snapshot lsn)
#: time-travel log archive: a list of ``(start_lsn, end_lsn, raw_bytes)``
#: segments, ascending and non-overlapping.  Truncating the log prefix
#: would destroy the ability to replay history up to any past cut, so the
#: truncating (quiescent) checkpoint first copies the bytes it is about to
#: discard into this archive — extending the last segment when it joins the
#: live log's base, else opening a new segment.  Reconstruction scans every
#: segment plus the live log as one record stream; a *gap* between segments
#: (``end < next start``) is legitimate — it marks history erased by a
#: ``restore_to`` below the log base — while an *overlap* means the meta is
#: corrupt (:class:`~repro.errors.TimeTravelError`).
_META_TT_ARCHIVE = "timetravel_log_archive"


class Database:
    """Persistent tables, procedures, WAL, transactions, and locks."""

    def __init__(
        self,
        storage: StableStorage,
        *,
        tables: dict[str, Table] | None = None,
        procedures: dict[str, str] | None = None,
        views: dict[str, str] | None = None,
        txn_seed: int = 0,
        wal_stats: WalStats | None = None,
        lock_stats: LockStats | None = None,
    ):
        self.storage = storage
        self.wal = WriteAheadLog(storage, stats=wal_stats)
        self.tables: dict[str, Table] = tables if tables is not None else {}
        #: persistent stored procedures: name -> CREATE PROCEDURE source text
        self.procedures: dict[str, str] = procedures if procedures is not None else {}
        #: persistent views: name -> CREATE VIEW source text
        self.views: dict[str, str] = views if views is not None else {}
        #: persistent secondary indexes: name -> (table, column)
        self.indexes: dict[str, tuple[str, str]] = {}
        self.locks = LockManager(stats=lock_stats)
        self.txns = TransactionManager(seed=txn_seed)
        #: monotonic catalog version: bumped on every persistent DDL
        #: (create/drop of tables, views, procedures, indexes), including
        #: DDL undone by rollback.  Cached plans are validated against it —
        #: see :mod:`repro.engine.plancache`.  Volatile: a restart builds a
        #: fresh Database (and fresh caches), so it starts at zero again.
        self.catalog_version = 0
        #: the server's :class:`~repro.engine.timetravel.TimeTravelManager`,
        #: attached by ``DatabaseServer._boot`` (None on bare databases).
        #: ``Executor`` routes ``SELECT ... AS OF`` through it.
        self.time_travel = None
        #: set by the server's crash(): a worker thread may still be deep in
        #: a statement against this object when the crash hits (a lock wait
        #: wakes into a dead engine) — the flag tells its cleanup path that
        #: undo is meaningless and, critically, that nothing may be appended
        #: to the WAL after the crash point.
        self.dead = False

    def mark_dead(self) -> None:
        self.dead = True

    def bump_catalog_version(self) -> int:
        """Invalidate all version-validated plan caches; returns the new version."""
        self.catalog_version += 1
        return self.catalog_version

    # ------------------------------------------------------------------ catalog

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def get_table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"table {name} does not exist") from None

    def has_procedure(self, name: str) -> bool:
        return name in self.procedures

    def has_view(self, name: str) -> bool:
        return name in self.views

    def has_index(self, name: str) -> bool:
        return name in self.indexes

    def table_indexes(self, table: str) -> list[str]:
        """Names of indexes on ``table``."""
        return [n for n, (t, _c) in self.indexes.items() if t == table]

    def get_view(self, name: str) -> str:
        try:
            return self.views[name]
        except KeyError:
            raise CatalogError(f"view {name} does not exist") from None

    def get_procedure(self, name: str) -> str:
        try:
            return self.procedures[name]
        except KeyError:
            raise CatalogError(f"procedure {name} does not exist") from None

    # ------------------------------------------------------------- transactions

    def begin(self) -> Transaction:
        txn = self.txns.begin()
        self.wal.append(LogRecord(RecordType.BEGIN, txn_id=txn.txn_id))
        return txn

    def commit(self, txn: Transaction) -> None:
        """Write and force the commit record, then release locks."""
        txn.require_active()
        self.wal.append(LogRecord(RecordType.COMMIT, txn_id=txn.txn_id))
        self.wal.force()
        self.txns.finish(txn, TxnState.COMMITTED)
        self.locks.release_all(txn.txn_id)

    def abort(self, txn: Transaction) -> None:
        """Undo the transaction in memory, then append its CLR batch + ABORT
        record as one atomic forced write (see wal.py docstring)."""
        txn.require_active()
        clrs = [self._undo_record(record) for record in reversed(txn.records)]
        clrs.append(LogRecord(RecordType.ABORT, txn_id=txn.txn_id))
        self.wal.append_forced(clrs)
        self.txns.finish(txn, TxnState.ABORTED)
        self.locks.release_all(txn.txn_id)

    def _undo_record(self, record: LogRecord) -> LogRecord:
        """Apply the inverse of ``record`` in memory and return its CLR."""
        clr = self._undo_record_inner(record)
        clr.compensates = record.rec_id
        return clr

    def _undo_record_inner(self, record: LogRecord) -> LogRecord:
        kind = record.type
        txn_id = record.txn_id
        if kind is RecordType.INSERT:
            table = self.get_table(record.table)
            before = table.delete(record.rowid)
            return LogRecord(
                RecordType.DELETE, txn_id=txn_id, table=record.table,
                rowid=record.rowid, before=before, is_clr=True,
            )
        if kind is RecordType.DELETE:
            table = self.get_table(record.table)
            table.insert(record.before, rowid=record.rowid)
            return LogRecord(
                RecordType.INSERT, txn_id=txn_id, table=record.table,
                rowid=record.rowid, after=record.before, is_clr=True,
            )
        if kind is RecordType.UPDATE:
            table = self.get_table(record.table)
            table.update(record.rowid, record.before)
            return LogRecord(
                RecordType.UPDATE, txn_id=txn_id, table=record.table,
                rowid=record.rowid, before=record.after, after=record.before,
                is_clr=True,
            )
        if kind is RecordType.CREATE_TABLE:
            # Rows inserted by the same txn were undone already (reverse order),
            # so the table is empty by now.  The stable file (if any) is
            # reconciled away at the next checkpoint.
            self.tables.pop(record.schema.name, None)
            self.bump_catalog_version()
            return LogRecord(
                RecordType.DROP_TABLE, txn_id=txn_id, schema=record.schema,
                dropped_rows={}, is_clr=True,
            )
        if kind is RecordType.DROP_TABLE:
            restored = Table(
                TableData(
                    schema=record.schema,
                    rows=dict(record.dropped_rows or {}),
                    next_rowid=record.next_rowid or 1,
                )
            )
            self.tables[record.schema.name] = restored
            self.bump_catalog_version()
            return LogRecord(
                RecordType.CREATE_TABLE, txn_id=txn_id, schema=record.schema,
                dropped_rows=dict(record.dropped_rows or {}),
                next_rowid=record.next_rowid, is_clr=True,
            )
        if kind is RecordType.CREATE_VIEW:
            self.views.pop(record.proc_name, None)
            self.bump_catalog_version()
            return LogRecord(
                RecordType.DROP_VIEW, txn_id=txn_id,
                proc_name=record.proc_name, proc_sql=record.proc_sql, is_clr=True,
            )
        if kind is RecordType.DROP_VIEW:
            self.views[record.proc_name] = record.proc_sql
            self.bump_catalog_version()
            return LogRecord(
                RecordType.CREATE_VIEW, txn_id=txn_id,
                proc_name=record.proc_name, proc_sql=record.proc_sql, is_clr=True,
            )
        if kind is RecordType.CREATE_INDEX:
            self._detach_index(record.proc_name)
            return LogRecord(
                RecordType.DROP_INDEX, txn_id=txn_id,
                proc_name=record.proc_name, proc_sql=record.proc_sql, is_clr=True,
            )
        if kind is RecordType.DROP_INDEX:
            table, column = _parse_index_sql(record.proc_sql)
            self._attach_index(record.proc_name, table, column)
            return LogRecord(
                RecordType.CREATE_INDEX, txn_id=txn_id,
                proc_name=record.proc_name, proc_sql=record.proc_sql, is_clr=True,
            )
        if kind is RecordType.CREATE_PROC:
            self.procedures.pop(record.proc_name, None)
            self.bump_catalog_version()
            return LogRecord(
                RecordType.DROP_PROC, txn_id=txn_id,
                proc_name=record.proc_name, proc_sql=record.proc_sql, is_clr=True,
            )
        if kind is RecordType.DROP_PROC:
            self.procedures[record.proc_name] = record.proc_sql
            self.bump_catalog_version()
            return LogRecord(
                RecordType.CREATE_PROC, txn_id=txn_id,
                proc_name=record.proc_name, proc_sql=record.proc_sql, is_clr=True,
            )
        raise TransactionError(f"cannot undo record type {kind}")

    # ------------------------------------------------------- logged mutation API

    def _log(self, txn: Transaction, record: LogRecord) -> LogRecord:
        txn.require_active()
        if not record.is_clr:
            txn.next_rec_id += 1
            record.rec_id = txn.next_rec_id
        self.wal.append(record)
        if not record.is_clr:
            txn.records.append(record)
        return record

    def lock_read(self, txn: Transaction, table_name: str) -> None:
        """Whole-table shared lock (non-keyed scans that must be stable)."""
        self.locks.acquire(txn.txn_id, table_name, LockMode.SHARED)

    def lock_write(self, txn: Transaction, table_name: str) -> None:
        """Whole-table exclusive lock (DDL, non-keyed DML scans)."""
        self.locks.acquire(txn.txn_id, table_name, LockMode.EXCLUSIVE)

    def lock_row_read(self, txn: Transaction, table_name: str, rowid: int) -> None:
        """IS on the table, then S on the row; degrades to the whole-table
        shared lock when row locking is disabled (ablation baseline)."""
        if not self.locks.row_locking:
            self.lock_read(txn, table_name)
            return
        self.locks.acquire(txn.txn_id, table_name, LockMode.INTENT_SHARED)
        self.locks.acquire(txn.txn_id, table_name, LockMode.SHARED, row=rowid)

    def lock_row_write(self, txn: Transaction, table_name: str, rowid: int) -> None:
        """IX on the table, then X on the row.

        When row locking is disabled this takes the whole-table X lock in
        one step rather than IX-then-upgrade — two baseline transactions
        both holding IX and upgrading would deadlock on each other, a
        conflict the pre-row-locking design never had.
        """
        if not self.locks.row_locking:
            self.lock_write(txn, table_name)
            return
        self.locks.acquire(txn.txn_id, table_name, LockMode.INTENT_EXCLUSIVE)
        self.locks.acquire(txn.txn_id, table_name, LockMode.EXCLUSIVE, row=rowid)

    def insert_row(self, txn: Transaction, table_name: str, values: list) -> int:
        """Coerce, lock, log, and insert one row; returns its rowid.

        Validation (PK uniqueness) happens *before* the record is encoded
        into the log buffer, so a failed insert never leaves a phantom
        record behind; the rowid is pre-assigned for the same reason.

        Lock order: table IX first (that acquire may wait), *then* read
        ``next_rowid`` and take X on it — a fresh rowid has no other
        holders, so the row acquire only ever waits when it trips
        escalation into a full table lock; the re-read afterwards picks up
        any rowids consumed during such a wait (the escalated table X
        covers whichever rowid we end up using).
        """
        table = self.get_table(table_name)
        row = table.schema.coerce_row(values)
        if self.locks.row_locking:
            self.locks.acquire(txn.txn_id, table_name, LockMode.INTENT_EXCLUSIVE)
            rowid = table.data.next_rowid
            self.locks.acquire(txn.txn_id, table_name, LockMode.EXCLUSIVE, row=rowid)
            rowid = table.data.next_rowid
        else:
            self.lock_write(txn, table_name)
            rowid = table.data.next_rowid
        table.check_insert(row)
        record = self._log(
            txn,
            LogRecord(
                RecordType.INSERT, txn_id=txn.txn_id, table=table_name,
                rowid=rowid, after=row,
            ),
        )
        table.insert(row, rowid=rowid)
        table.data.last_lsn = record.lsn
        return rowid

    def delete_row(self, txn: Transaction, table_name: str, rowid: int) -> tuple:
        table = self.get_table(table_name)
        self.lock_row_write(txn, table_name, rowid)
        before = table.get(rowid)
        if before is None:
            raise CatalogError(f"rowid {rowid} not found in {table_name}")
        record = self._log(
            txn,
            LogRecord(
                RecordType.DELETE, txn_id=txn.txn_id, table=table_name,
                rowid=rowid, before=before,
            ),
        )
        deleted = table.delete(rowid)
        table.data.last_lsn = record.lsn
        return deleted

    def update_row(self, txn: Transaction, table_name: str, rowid: int, new_values: list) -> None:
        table = self.get_table(table_name)
        new_row = table.schema.coerce_row(list(new_values))
        self.lock_row_write(txn, table_name, rowid)
        before = table.get(rowid)
        if before is None:
            raise CatalogError(f"rowid {rowid} not found in {table_name}")
        table.check_update(rowid, new_row)
        record = self._log(
            txn,
            LogRecord(
                RecordType.UPDATE, txn_id=txn.txn_id, table=table_name,
                rowid=rowid, before=before, after=new_row,
            ),
        )
        table.update(rowid, new_row)
        table.data.last_lsn = record.lsn

    def create_table(self, txn: Transaction, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise CatalogError(f"table {schema.name} already exists")
        record = self._log(
            txn, LogRecord(RecordType.CREATE_TABLE, txn_id=txn.txn_id, schema=schema)
        )
        table = Table.create(schema)
        table.data.last_lsn = record.lsn
        self.tables[schema.name] = table
        self.bump_catalog_version()
        self.lock_write(txn, schema.name)
        return table

    def drop_table(self, txn: Transaction, name: str) -> None:
        table = self.get_table(name)
        self.lock_write(txn, name)
        for index_name in self.table_indexes(name):
            self.drop_index(txn, index_name)
        self._log(
            txn,
            LogRecord(
                RecordType.DROP_TABLE, txn_id=txn.txn_id, schema=table.schema,
                dropped_rows=dict(table.data.rows), next_rowid=table.data.next_rowid,
            ),
        )
        # NOTE: the stable table file is *not* deleted here — the DROP is not
        # durable until commit.  Checkpoint reconciles stale files away.
        del self.tables[name]
        self.bump_catalog_version()

    def create_procedure(self, txn: Transaction, name: str, sql_text: str) -> None:
        if name in self.procedures:
            raise CatalogError(f"procedure {name} already exists")
        self._log(
            txn,
            LogRecord(RecordType.CREATE_PROC, txn_id=txn.txn_id, proc_name=name, proc_sql=sql_text),
        )
        self.procedures[name] = sql_text
        self.bump_catalog_version()

    def drop_procedure(self, txn: Transaction, name: str) -> None:
        sql_text = self.get_procedure(name)
        self._log(
            txn,
            LogRecord(RecordType.DROP_PROC, txn_id=txn.txn_id, proc_name=name, proc_sql=sql_text),
        )
        del self.procedures[name]
        self.bump_catalog_version()

    def create_view(self, txn: Transaction, name: str, sql_text: str) -> None:
        if name in self.views:
            raise CatalogError(f"view {name} already exists")
        self._log(
            txn,
            LogRecord(RecordType.CREATE_VIEW, txn_id=txn.txn_id, proc_name=name, proc_sql=sql_text),
        )
        self.views[name] = sql_text
        self.bump_catalog_version()

    def drop_view(self, txn: Transaction, name: str) -> None:
        sql_text = self.get_view(name)
        self._log(
            txn,
            LogRecord(RecordType.DROP_VIEW, txn_id=txn.txn_id, proc_name=name, proc_sql=sql_text),
        )
        del self.views[name]
        self.bump_catalog_version()

    def _attach_index(self, name: str, table: str, column: str) -> None:
        """Register the index and build its ordered structure.

        The :class:`~repro.engine.table.OrderedIndex` built here is derived
        state — never logged or snapshotted; every load path (recovery
        redo, checkpoint load, time-travel reconstruction) re-enters
        through this method.  The catalog bump invalidates cached plans so
        probes and top-k orderings can never reference an index that no
        longer matches the catalog.
        """
        self.indexes[name] = (table, column)
        if table in self.tables:
            self.tables[table].add_secondary_index(column)
        self.bump_catalog_version()

    def _detach_index(self, name: str) -> None:
        entry = self.indexes.pop(name, None)
        if entry is None:
            return
        self.bump_catalog_version()
        table, column = entry
        # only drop the structure if no other index covers the same column
        if table in self.tables and not any(
            t == table and c == column for t, c in self.indexes.values()
        ):
            self.tables[table].drop_secondary_index(column)

    def create_index(self, txn: Transaction, name: str, table: str, column: str) -> None:
        if name in self.indexes:
            raise CatalogError(f"index {name} already exists")
        table_obj = self.get_table(table)
        table_obj.schema.column_index(column)  # validate the column exists
        sql_text = f"CREATE INDEX {name} ON {table} ({column})"
        self._log(
            txn,
            LogRecord(RecordType.CREATE_INDEX, txn_id=txn.txn_id, proc_name=name, proc_sql=sql_text),
        )
        self._attach_index(name, table, column)

    def drop_index(self, txn: Transaction, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"index {name} does not exist")
        table, column = self.indexes[name]
        sql_text = f"CREATE INDEX {name} ON {table} ({column})"
        self._log(
            txn,
            LogRecord(RecordType.DROP_INDEX, txn_id=txn.txn_id, proc_name=name, proc_sql=sql_text),
        )
        self._detach_index(name)

    def rollback_statement(self, txn: Transaction, mark: int) -> None:
        """Partial rollback: undo the transaction's records past ``mark``
        (statement-level atomicity for a failed statement inside an explicit
        transaction).

        The CLRs go out as one atomic log append; each names the record it
        compensates, so restart undo — should the transaction later lose —
        skips the already-compensated records.
        """
        txn.require_active()
        to_undo = txn.records[mark:]
        if not to_undo:
            return
        clrs = [self._undo_record(record) for record in reversed(to_undo)]
        del txn.records[mark:]
        self.wal.append_forced(clrs)

    # --------------------------------------------------------------- checkpoint

    def _clean_images(
        self,
    ) -> tuple[dict[str, TableData], dict[str, str], dict[str, str], dict[str, tuple[str, str]]]:
        """Copy the tables and catalog with every active transaction's
        uncommitted effects undone — **clean (no-steal) images**.

        A file written from a clean image contains exactly the effects of
        transactions that committed before the covering CHECKPOINT record,
        and nothing else.  That is the invariant REDO-only restart builds
        on: per table, a winner needs replaying iff its commit LSN is past
        the image's snapshot LSN — whole transactions are replayed or
        skipped, never individual records.

        Undo is applied to copies in reverse global LSN order across all
        active transactions (their in-memory undo trails), leaving the live
        tables untouched.  ``next_rowid`` is *not* rolled back for undone
        inserts: rowids are never reused, and keeping the high-water mark in
        the image means a loser's rowids stay burned even though its rows
        never reach the file.
        """
        images = {
            name: TableData(
                schema=table.schema,
                rows=dict(table.data.rows),
                next_rowid=table.data.next_rowid,
            )
            for name, table in self.tables.items()
        }
        procedures = dict(self.procedures)
        views = dict(self.views)
        indexes = dict(self.indexes)
        pending = [
            record
            for txn_id in self.txns.active_ids()
            for record in self.txns.get(txn_id).records
        ]
        for record in sorted(pending, key=lambda r: r.lsn, reverse=True):
            kind = record.type
            if kind is RecordType.INSERT:
                images[record.table].rows.pop(record.rowid, None)
            elif kind is RecordType.DELETE:
                images[record.table].rows[record.rowid] = record.before
            elif kind is RecordType.UPDATE:
                images[record.table].rows[record.rowid] = record.before
            elif kind is RecordType.CREATE_TABLE:
                images.pop(record.schema.name, None)
            elif kind is RecordType.DROP_TABLE:
                images[record.schema.name] = TableData(
                    schema=record.schema,
                    rows=dict(record.dropped_rows or {}),
                    next_rowid=record.next_rowid or 1,
                )
            elif kind is RecordType.CREATE_VIEW:
                views.pop(record.proc_name, None)
            elif kind is RecordType.DROP_VIEW:
                views[record.proc_name] = record.proc_sql
            elif kind is RecordType.CREATE_PROC:
                procedures.pop(record.proc_name, None)
            elif kind is RecordType.DROP_PROC:
                procedures[record.proc_name] = record.proc_sql
            elif kind is RecordType.CREATE_INDEX:
                indexes.pop(record.proc_name, None)
            elif kind is RecordType.DROP_INDEX:
                indexes[record.proc_name] = _parse_index_sql(record.proc_sql)
        return images, procedures, views, indexes

    def checkpoint(self) -> int:
        """Write a clean checkpoint; returns the checkpoint record's LSN.

        Order (each step safe against a crash after it):

        1. force the WAL (write-ahead rule: every image effect is logged);
        2. build clean images — active transactions' effects undone in the
           copies (see :meth:`_clean_images`);
        3. append + force a CHECKPOINT record noting in-flight transactions;
        4. write every table file from its clean image, stamped with the
           checkpoint LSN (a transaction committed at or below that LSN is
           in the file; one committing past it is not — no in-between);
        5. point meta at the new checkpoint;
        6. if quiescent, drop the log prefix before the checkpoint.

        A crash between 3 and 5 leaves meta pointing at the *old*
        checkpoint; files already rewritten in step 4 carry the new stamp
        and each is self-consistent, so the per-table commit-LSN guard in
        recovery stays exact even for a torn checkpoint.
        """
        self.wal.force()
        images, procedures, views, indexes = self._clean_images()
        active = tuple(self.txns.active_ids())
        (lsn,) = self.wal.append_forced(
            [LogRecord(RecordType.CHECKPOINT, active_txns=active)]
        )
        for name, data in images.items():
            data.last_lsn = lsn
            self.storage.write_table_file(name, data)
        for stale in set(self.storage.list_table_files()) - set(images):
            self.storage.delete_table_file(stale)
        self.storage.write_meta(_META_PROCEDURES, (procedures, lsn))
        self.storage.write_meta(_META_VIEWS, (views, lsn))
        self.storage.write_meta(_META_INDEXES, (indexes, lsn))
        self.storage.write_meta(_META_CHECKPOINT, lsn)
        if not active:
            self._archive_log_prefix(lsn)
            self.storage.truncate_log_prefix(lsn)
        return lsn

    def _archive_log_prefix(self, lsn: int) -> None:
        """Copy the log bytes below ``lsn`` into the time-travel archive
        before :meth:`checkpoint` truncates them (see ``_META_TT_ARCHIVE``).
        Restart recovery never reads the archive — only point-in-time
        reconstruction does — so a crash anywhere in here is harmless."""
        base = getattr(self.storage, "log_base", 0)
        if lsn <= base:
            return
        segments = list(self.storage.read_meta(_META_TT_ARCHIVE, []) or [])
        chunk = bytes(self.storage.read_log()[: lsn - base])
        if segments and segments[-1][1] == base:
            start, _end, blob = segments[-1]
            segments[-1] = (start, lsn, blob + chunk)
        else:
            # The archive does not join the live log (a restore_to erased
            # history below ``base``, or the log was truncated before this
            # feature existed): open a new segment and keep the gap.
            segments.append((base, lsn, chunk))
        self.storage.write_meta(_META_TT_ARCHIVE, segments)


def _parse_index_sql(sql_text: str) -> tuple[str, str]:
    """Extract (table, column) from a generated CREATE INDEX statement."""
    from repro.sql import parse

    stmt = parse(sql_text)
    return stmt.table.lower(), stmt.column.lower()
