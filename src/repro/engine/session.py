"""Server-side sessions: the volatile state the paper is about.

A :class:`Session` owns everything that exists *only while the connection
lives*: temp tables, temp procedures, open cursors, session options, and
the current explicit transaction.  None of it is logged; a server crash
destroys all of it.  (Phoenix's proxy probe — "does my session temp table
still exist?" — works because of exactly this lifetime rule.)
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.errors import ProgrammingError
from repro.engine.cursors import ServerCursor
from repro.engine.table import Table

if TYPE_CHECKING:
    from repro.engine.transactions import Transaction

__all__ = ["Session"]

_session_ids = itertools.count(1)


class Session:
    """One connection's volatile server-side state."""

    def __init__(self, user: str):
        self.session_id = next(_session_ids)
        self.user = user
        self.options: dict[str, object] = {}
        self.temp_tables: dict[str, Table] = {}
        self.temp_procedures: dict[str, str] = {}
        self.cursors: dict[int, ServerCursor] = {}
        self.current_txn: "Transaction | None" = None
        #: affected-row count of the last DML statement — readable in SQL via
        #: the rowcount() function (our @@ROWCOUNT; Phoenix's status-table
        #: wrapper records it inside the same transaction as the DML).
        self.last_rowcount: int = 0
        #: monotonic counter bumped on every temp-table / temp-procedure
        #: create or drop; plan-cache entries record it so a plan compiled
        #: against (or shadowed by) a temp object is never served stale.
        self.temp_version: int = 0
        #: server activity epoch of this session's last operation — stamped
        #: by the server, read by ``DatabaseServer.reap_sessions`` to find
        #: sessions orphaned by a dropped connection.
        self.last_epoch: int = 0
        self.closed = False

    def register_cursor(self, cursor: ServerCursor) -> int:
        self.cursors[cursor.cursor_id] = cursor
        return cursor.cursor_id

    def get_cursor(self, cursor_id: int) -> ServerCursor:
        try:
            return self.cursors[cursor_id]
        except KeyError:
            raise ProgrammingError(f"no open cursor {cursor_id}") from None

    def close_cursor(self, cursor_id: int) -> None:
        cursor = self.cursors.pop(cursor_id, None)
        if cursor is not None:
            cursor.close()

    def close(self) -> None:
        """Normal termination: everything volatile is discarded."""
        for cursor in self.cursors.values():
            cursor.close()
        self.cursors.clear()
        self.temp_tables.clear()
        self.temp_procedures.clear()
        self.closed = True
