"""The database server: sessions, SQL execution, crash and restart.

:class:`DatabaseServer` is what sits on the far side of the wire.  It owns

* a :class:`~repro.engine.database.Database` (volatile object over stable
  storage),
* the live :class:`~repro.engine.session.Session` objects,

and exposes the operations the wire protocol maps onto: ``connect``,
``execute``, ``fetch``, ``advance``, ``close_cursor``, ``disconnect``.

Fault injection drives :meth:`crash` — which throws away every volatile
object exactly as a process kill would — and :meth:`restart`, which runs
restart recovery from stable storage.  Committed tables come back; sessions,
temp tables, and open cursors do not.  That asymmetry is the entire reason
Phoenix/ODBC exists.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    Error,
    OperationalError,
    ProgrammingError,
    ServerCrashedError,
    SessionLostError,
)
from repro.engine.cursors import CursorType, open_cursor
from repro.engine.database import Database
from repro.engine.dispatch import SessionDispatcher
from repro.engine.executor import Executor
from repro.engine.locks import DEFAULT_SERVER_WAIT, LockStats
from repro.engine.plancache import EngineMetrics, ExecutorStats, ParseCache
from repro.engine.recovery import RecoveryReport, recover
from repro.engine.results import StatementResult
from repro.engine.session import Session
from repro.engine.storage import InMemoryStableStorage, StableStorage
from repro.engine.timetravel import TimeTravelManager, TimeTravelStats
from repro.engine.wal import WalStats
from repro.obs.tracer import get_tracer
from repro.sql import ast, parse_script

__all__ = [
    "DatabaseServer",
    "ServerStats",
    "RestartPolicy",
    "DrainStats",
    "RestoreReport",
]


class ServerStats:
    """Observability counters for the server object.  Cumulative across
    crashes/restarts — they describe the simulation, not server state."""

    def __init__(self):
        self.statements = 0
        self.rows_returned = 0
        self.connects = 0
        self.crashes = 0
        self.restarts = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class RestartPolicy:
    """How :meth:`DatabaseServer.drain_and_restart` treats in-flight work.

    * ``graceful`` — wait however long it takes for every in-flight
      statement to finish; nothing is bounced.
    * ``deadline`` — wait up to ``drain_timeout`` seconds, then bounce
      every lock waiter with a retryable
      :class:`~repro.errors.ServerRestartingError` (their transactions are
      aborted like deadlock victims) and finish the drain.
    * ``immediate`` — bounce waiters right away; only statements already
      past their lock acquisitions run to completion.

    ``bump_catalog`` models a migrated upgrade: the swapped-in engine comes
    up with a bumped ``catalog_version`` so every cached plan revalidates.
    """

    mode: str = "deadline"
    drain_timeout: float = 1.0
    bump_catalog: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("graceful", "deadline", "immediate"):
            raise ValueError(f"unknown restart mode: {self.mode!r}")


class DrainStats:
    """Planned-restart counters.  Cumulative across restarts (reset
    semantics: :mod:`repro.obs.metrics`); injectable so a MetricsRegistry
    can adopt the same object."""

    def __init__(self) -> None:
        self.drains_started = 0
        self.drains_completed = 0
        self.statements_bounced = 0
        self.sessions_ridden_through = 0
        self.max_pause_seconds = 0.0

    def snapshot(self) -> dict[str, float]:
        return dict(self.__dict__)

    def reset(self) -> None:
        self.__init__()


@dataclass
class RestoreReport:
    """What one :meth:`DatabaseServer.restore_to` did."""

    ts: float
    cut_lsn: int
    cut_end: int
    #: committed transactions whose effects the restore erased (post-cut)
    commits_discarded: int = 0
    records_replayed: int = 0
    tables: int = 0
    #: Phoenix sessions disconnected by the swap (they ride through on the
    #: ordinary recovery path, exactly like a planned restart)
    sessions_ridden: int = 0
    seconds: float = 0.0


class DatabaseServer:
    """A single-node SQL server over a stable-storage device."""

    def __init__(
        self,
        storage: StableStorage | None = None,
        *,
        name: str = "server",
        plan_cache: bool = True,
        executor: str = "compiled",
        engine_metrics: EngineMetrics | None = None,
        executor_stats: ExecutorStats | None = None,
        wal_stats: WalStats | None = None,
        lock_stats: LockStats | None = None,
        drain_stats: DrainStats | None = None,
        time_travel_stats: TimeTravelStats | None = None,
    ):
        self.name = name
        self.storage = storage if storage is not None else InMemoryStableStorage()
        #: WAL counters threaded through every database incarnation —
        #: cumulative across crashes (reset semantics: repro.obs.metrics),
        #: injectable so a MetricsRegistry can adopt the same object
        self.wal_stats = wal_stats if wal_stats is not None else WalStats()
        #: lock-manager counters, threaded the same way as wal_stats
        self.lock_stats = lock_stats if lock_stats is not None else LockStats()
        #: planned-restart counters, threaded the same way as wal_stats
        self.drain_stats = drain_stats if drain_stats is not None else DrainStats()
        self.database: Database | None = None
        self.sessions: dict[int, Session] = {}
        self._executors: dict[int, Executor] = {}
        self.stats = ServerStats()
        #: parse/plan cache counters — cumulative across crashes, like stats
        #: (reset semantics: repro.obs.metrics); injectable so a
        #: MetricsRegistry can adopt the same object
        self.engine_metrics = engine_metrics if engine_metrics is not None else EngineMetrics()
        #: executor access-path counters — cumulative across crashes, like
        #: engine_metrics; injectable so a MetricsRegistry can adopt them
        self.executor_stats = executor_stats if executor_stats is not None else ExecutorStats()
        #: enables both the parse cache and per-session plan caches; the
        #: bench ablation flips this off for its baseline
        self.plan_cache_enabled = plan_cache
        if executor not in ("compiled", "interpreted"):
            raise ValueError(f"executor mode must be 'compiled' or 'interpreted', not {executor!r}")
        #: "compiled" enables the vectorized executor (row-closure pipeline,
        #: range-aware access paths, index-ordered top-k); "interpreted" is
        #: the per-row-environment baseline the executor ablation measures
        #: against.  Plans are volatile, so the mode is safe to fix per
        #: server lifetime — every session compiled under it.
        self.executor_mode = executor
        #: SQL text → parsed statements; volatile (rebuilt cold on restart)
        self._parse_cache: ParseCache | None = None
        self.last_recovery: RecoveryReport | None = None
        #: monotonically increasing activity counter; every session-scoped
        #: operation stamps its session with the current value, which is
        #: what :meth:`reap_sessions` compares against.  Cumulative across
        #: restarts (it describes the simulation timeline, like stats).
        self.activity_epoch = 0
        self.up = False
        #: planned-restart state machine: ``running`` → ``draining`` →
        #: ``swapping`` → ``running``.  Orthogonal to :attr:`up`, which stays
        #: True for the whole planned restart — the server is not *dead*,
        #: merely pausing; a crash mid-drain resets this to ``running``.
        self.lifecycle = "running"
        #: monotonic deadline of the current drain window (None outside a
        #: planned restart) — what the RESTARTING ping reply advertises
        self._restart_deadline: float | None = None
        #: Engine-wide mutex: every public operation runs under it, so the
        #: worker threads of the dispatch layer interleave at *statement*
        #: granularity while engine structures (catalog, WAL, sessions) see
        #: single-threaded access.  It is an RLock, and the lock manager's
        #: condition variable is built over it — a session waiting for a
        #: table lock releases the engine so other sessions can run and
        #: eventually commit (see :mod:`repro.engine.locks`).  The mutex
        #: survives crashes: it guards the *server*, not one database
        #: incarnation.
        self._engine_mutex = threading.RLock()
        #: per-session FIFO dispatch over a dynamic worker pool — the wire
        #: endpoint routes every request through it
        self.dispatcher = SessionDispatcher()
        #: time-travel surface (AS OF snapshots + restore_to) — one manager
        #: per server, spanning every database incarnation like the stats
        #: objects, so its commit clock stays monotonic across restarts
        self.time_travel = TimeTravelManager(
            self.storage,
            stats=time_travel_stats,
            engine_metrics=self.engine_metrics,
        )
        self._boot()

    def _boot(self) -> None:
        self.database, self.last_recovery = recover(
            self.storage, wal_stats=self.wal_stats, lock_stats=self.lock_stats
        )
        # the lock manager waits on the engine mutex so blocked statements
        # release the engine, and the server grants waiters a real budget
        # (standalone LockManagers keep the historical fail-fast default)
        self.database.locks.use_mutex(self._engine_mutex)
        self.database.locks.default_timeout = DEFAULT_SERVER_WAIT
        self._parse_cache = ParseCache() if self.plan_cache_enabled else None
        # wire the new incarnation into time travel: the WAL stamps commits
        # with the manager's (restart-spanning) clock and publishes them to
        # its index, which is rebuilt here from the durable history
        self.time_travel.attach(self.database)
        self.time_travel.rebuild()
        self.up = True

    # ----------------------------------------------------------- lifecycle

    def crash(self) -> None:
        """Kill the server: all volatile state is gone, stable storage stays.

        Under concurrency a crash can hit while other sessions' statements
        are mid-flight (most visibly: asleep in a lock wait).  Marking the
        database dead and invalidating the lock manager wakes every waiter
        into :class:`~repro.errors.ServerCrashedError` and tells their
        cleanup paths that no undo — and no post-crash WAL write — may run.
        """
        with self._engine_mutex:
            self.up = False
            if self.database is not None:
                self.database.mark_dead()
                self.database.locks.invalidate()
            self.database = None
            self.sessions.clear()
            self._executors.clear()
            self._parse_cache = None  # caches are volatile: a restart starts cold
            # a dead server has no pending device fault — the injected torn
            # write / failed force models the crash moment itself
            self.storage.clear_append_fault()
            self.stats.crashes += 1
            # a crash during a planned drain aborts the drain: lift the
            # barrier so parked requests run, observe the dead server, and
            # enter the normal (unplanned) recovery path instead of hanging
            self.lifecycle = "running"
            self._restart_deadline = None
            self.dispatcher.resume()
            get_tracer().event("server.crash", server=self.name)

    def restart(self) -> RecoveryReport:
        """Run restart recovery and come back up (with zero sessions)."""
        with self._engine_mutex:
            if self.up:
                raise OperationalError("server is already up")
            with get_tracer().span("server.restart", server=self.name):
                self._boot()
            self.stats.restarts += 1
            return self.last_recovery

    # ------------------------------------------------------ planned restart

    def begin_drain(self, policy: RestartPolicy | None = None) -> None:
        """Enter the ``draining`` state: the dispatcher stops claiming new
        work (submissions park inside their wire threads), pings start
        answering RESTARTING.  Split out of :meth:`drain_and_restart` so
        fault injection can crash the server *inside* the drain window."""
        policy = policy if policy is not None else RestartPolicy()
        with self._engine_mutex:
            self._require_up()
            if self.lifecycle != "running":
                raise OperationalError("a planned restart is already in progress")
            self.lifecycle = "draining"
            # graceful mode has no bound, but the advertised ETA still uses
            # drain_timeout as the operator's estimate of the pause
            self._restart_deadline = time.monotonic() + policy.drain_timeout
            self.drain_stats.drains_started += 1
        self.dispatcher.pause()

    def restart_eta_seconds(self) -> float:
        """Remaining seconds of the advertised drain window (0 when past
        the deadline or when no planned restart is in progress)."""
        deadline = self._restart_deadline
        if deadline is None:
            return 0.0
        return max(0.0, deadline - time.monotonic())

    def drain_and_restart(self, policy: RestartPolicy | None = None) -> RecoveryReport:
        """Planned restart: drain in-flight work, checkpoint, swap in a
        fresh engine instance, resume — without ever going *down*.

        New wire requests park behind the dispatcher's drain barrier for
        the duration (their clients see a bounded pause, not an error);
        in-flight statements run to completion, or — past the policy's
        drain deadline — lock waiters are bounced with a retryable
        :class:`~repro.errors.ServerRestartingError`.  All sessions are
        then disconnected (open transactions abort cleanly), the database
        checkpoints, and a fresh engine boots from stable storage: every
        Phoenix client rides through on the existing recovery path, which
        finds the server up, its session gone, and rebuilds it.

        Must be called from an administrative thread, never from a
        dispatcher worker (the quiesce would wait on itself).
        """
        policy = policy if policy is not None else RestartPolicy()
        tracer = get_tracer()
        start = time.monotonic()
        bounced_before = self.lock_stats.drain_bounces
        self._drain_in_flight(policy, tracer)
        with tracer.span("server.swap", server=self.name, bump_catalog=policy.bump_catalog):
            with self._engine_mutex:
                try:
                    self._require_up()  # a mid-drain crash beat us to the swap
                    self.lifecycle = "swapping"
                    ridden = len(self.sessions)
                    for session_id in list(self.sessions):
                        self.disconnect(session_id)
                    self.database.checkpoint()
                    self._boot()
                    if policy.bump_catalog:
                        self.database.bump_catalog_version()
                    self.stats.restarts += 1
                    self.drain_stats.drains_completed += 1
                    self.drain_stats.sessions_ridden_through += ridden
                finally:
                    self.lifecycle = "running"
                    self._restart_deadline = None
                    self.dispatcher.resume()
        pause = time.monotonic() - start
        self.drain_stats.statements_bounced += (
            self.lock_stats.drain_bounces - bounced_before
        )
        self.drain_stats.max_pause_seconds = max(
            self.drain_stats.max_pause_seconds, pause
        )
        return self.last_recovery

    def _drain_in_flight(self, policy: RestartPolicy, tracer) -> None:
        """The drain half of a planned restart/restore: enter ``draining``,
        quiesce the dispatcher per the policy, bounce lock waiters past the
        deadline.  On failure the barrier is lifted before re-raising."""
        with tracer.span(
            "server.drain", server=self.name, mode=policy.mode,
            drain_timeout=policy.drain_timeout,
        ):
            self.begin_drain(policy)
            try:
                if policy.mode == "graceful":
                    self.dispatcher.quiesce(None)
                else:
                    timeout = policy.drain_timeout if policy.mode == "deadline" else 0.0
                    if not self.dispatcher.quiesce(timeout):
                        # deadline passed: evict lock waiters (their txns
                        # abort like deadlock victims) and wait out the
                        # statements that are genuinely executing
                        self.database.locks.bounce_waiters()
                        self.dispatcher.quiesce(None)
            except BaseException:
                # drain failed (e.g. a concurrent crash() raced us): lift
                # the barrier rather than leave parked requests hanging
                self.lifecycle = "running"
                self._restart_deadline = None
                self.dispatcher.resume()
                raise

    # ------------------------------------------------------------ time travel

    def restore_storage_to(self, ts: float | None = None) -> RestoreReport:
        """The destructive half of :meth:`restore_to`: rewrite stable
        storage so its durable state is exactly the cut for ``ts``.

        Order is fail-safe: the cut is reconstructed (read-only) *before*
        anything is discarded, then post-cut log bytes are truncated and
        the reconstructed state is checkpointed onto the device — after
        which an ordinary boot (or crash recovery, if the process dies
        right here: see CRASH_MID_RESTORE) comes up at the cut.  ``ts``
        None means "now": the latest committed state, which discards no
        commits — the no-op restore chaos exploits.

        Callers must hold the engine quiet (drained or about to crash);
        the in-memory engine still reflects *pre*-restore state afterwards
        and must be thrown away (:meth:`_boot` or :meth:`crash`).
        """
        with self._engine_mutex:
            self._require_up()
            if ts is None:
                ts = self.time_travel.clock.now()
            self.time_travel.stats.restores_started += 1
            cut = self.time_travel.resolve_cut(ts)
            cut_end = self.time_travel.cut_end(cut)
            # reconstruct first — any failure here leaves storage untouched
            snapshot = self.time_travel.snapshot_at_cut(cut)
            info = snapshot.info
            base = getattr(self.storage, "log_base", 0)
            if cut_end >= base:
                self.storage.truncate_log_suffix(cut_end)
            else:
                # the cut predates the live log: drop the live log entirely
                # and trim the archive segments back to the cut (the gap
                # between archive end and live base is erased history)
                self.storage.truncate_log_suffix(base)
                from repro.engine.database import _META_TT_ARCHIVE

                segments = list(self.storage.read_meta(_META_TT_ARCHIVE, []) or [])
                kept = []
                for start, end, blob in segments:
                    if start >= cut_end:
                        break
                    if end > cut_end:
                        end, blob = cut_end, blob[: cut_end - start]
                    kept.append((start, end, blob))
                self.storage.write_meta(_META_TT_ARCHIVE, kept)
            discarded = self.time_travel.log_index.truncate_to(cut)
            restored = Database(
                self.storage,
                tables=snapshot.database.tables,
                procedures=snapshot.database.procedures,
                views=snapshot.database.views,
                txn_seed=info.max_txn_id,
                wal_stats=self.wal_stats,
                lock_stats=self.lock_stats,
            )
            restored.indexes = dict(snapshot.database.indexes)
            self.time_travel.attach(restored)
            restored.checkpoint()
            self.time_travel.stats.commits_discarded += discarded
            return RestoreReport(
                ts=ts,
                cut_lsn=cut,
                cut_end=cut_end,
                commits_discarded=discarded,
                records_replayed=info.records_replayed,
                tables=info.tables,
            )

    def restore_to(
        self, ts: float, policy: RestartPolicy | None = None
    ) -> RestoreReport:
        """Restore the database to its state as of ``ts`` — application
        error recovery from the log (Talius et al.; docs/TIME_TRAVEL.md).

        The choreography is a planned restart with the engine swap replaced
        by a storage rewrite: drain in-flight work behind the dispatcher
        barrier, disconnect every session (open transactions abort), rewrite
        stable storage to the cut via :meth:`restore_storage_to`, boot a
        fresh engine from it, resume.  Every Phoenix session rides through
        on the ordinary recovery path.  Commits after the cut are *erased*
        — that is the point — so the caller chooses ``ts`` with care.

        Must be called from an administrative thread, never a dispatcher
        worker (the quiesce would wait on itself).
        """
        policy = policy if policy is not None else RestartPolicy()
        tracer = get_tracer()
        start = time.monotonic()
        self._drain_in_flight(policy, tracer)
        with tracer.span("server.restore", server=self.name, ts=ts):
            with self._engine_mutex:
                try:
                    self._require_up()  # a mid-drain crash beat us here
                    self.lifecycle = "swapping"
                    ridden = len(self.sessions)
                    for session_id in list(self.sessions):
                        self.disconnect(session_id)
                    report = self.restore_storage_to(ts)
                    self._boot()
                    self.stats.restarts += 1
                    self.drain_stats.drains_completed += 1
                    self.drain_stats.sessions_ridden_through += ridden
                    self.time_travel.stats.restores_completed += 1
                    report.sessions_ridden = ridden
                finally:
                    self.lifecycle = "running"
                    self._restart_deadline = None
                    self.dispatcher.resume()
        report.seconds = time.monotonic() - start
        return report

    def shutdown(self) -> None:
        """Clean shutdown: checkpoint, then stop."""
        with self._engine_mutex:
            self._require_up()
            for session_id in list(self.sessions):
                self.disconnect(session_id)
            self.database.checkpoint()
            self.up = False
            self.database = None

    def _require_up(self) -> None:
        if not self.up:
            raise ServerCrashedError(f"server {self.name} is down")

    # ----------------------------------------------------------- sessions

    def connect(self, user: str = "app", options: dict[str, Any] | None = None) -> int:
        """Open a session; returns the session id."""
        with self._engine_mutex:
            self._require_up()
            session = Session(user)
            if options:
                session.options.update(options)
            self.sessions[session.session_id] = session
            self._executors[session.session_id] = Executor(
                self.database,
                session,
                metrics=self.engine_metrics,
                plan_cache=self.plan_cache_enabled,
                stats=self.executor_stats,
                vectorized=self.executor_mode == "compiled",
            )
            self._touch(session)
            self.stats.connects += 1
            return session.session_id

    def disconnect(self, session_id: int) -> None:
        with self._engine_mutex:
            self._require_up()
            session = self._session(session_id)
            if session.current_txn is not None:
                self.database.abort(session.current_txn)
                session.current_txn = None
            session.close()
            del self.sessions[session_id]
            del self._executors[session_id]

    def _touch(self, session: Session) -> None:
        self.activity_epoch += 1
        session.last_epoch = self.activity_epoch

    def reap_sessions(self, older_than_epoch: int) -> list[int]:
        """Administrative GC hook: disconnect every session whose last
        activity predates ``older_than_epoch`` (open transactions are
        aborted by the disconnect).  A client that loses its connection
        without a crash (network glitch) leaves its old session orphaned —
        Phoenix reaps its own orphans best-effort during recovery, and this
        hook is the server-side backstop an operator (or test) can drive.
        Returns the reaped session ids."""
        with self._engine_mutex:
            self._require_up()
            # A session parked behind the drain barrier looks idle (its last
            # request is queued, not stamped) but its client is alive and
            # blocked mid-request — reaping it would turn a planned pause
            # into a lost session.
            parked = self.dispatcher.keys_with_pending()
            reaped = []
            for session_id, session in list(self.sessions.items()):
                if session.last_epoch < older_than_epoch and session_id not in parked:
                    self.disconnect(session_id)
                    reaped.append(session_id)
            return reaped

    def _session(self, session_id: int) -> Session:
        try:
            session = self.sessions[session_id]
            self._touch(session)
            return session
        except KeyError:
            # The server is up but this session is gone — it died in a crash
            # + fast restart, or was disconnected.  A distinct error type so
            # Phoenix can route straight to session recovery.
            raise SessionLostError(
                f"no session {session_id} (lost in a crash or closed)"
            ) from None

    def executor_for(self, session_id: int) -> Executor:
        with self._engine_mutex:
            self._require_up()
            self._session(session_id)
            return self._executors[session_id]

    def session_exists(self, session_id: int) -> bool:
        with self._engine_mutex:
            return session_id in self.sessions

    # ----------------------------------------------------------- execution

    def execute(
        self,
        session_id: int,
        sql: str,
        *,
        placeholders: list | None = None,
        cursor_type: str = CursorType.DEFAULT,
    ) -> StatementResult:
        """Parse and execute a SQL batch for a session.

        SELECT statements honour ``cursor_type``: the default materializes
        the whole result in the reply (a *default result set*); keyset and
        dynamic open a server cursor and return only metadata +
        ``cursor_id`` — the client then block-fetches.
        """
        with self._engine_mutex:
            return self._execute_locked(
                session_id, sql, placeholders=placeholders, cursor_type=cursor_type
            )

    def _execute_locked(
        self,
        session_id: int,
        sql: str,
        *,
        placeholders: list | None = None,
        cursor_type: str = CursorType.DEFAULT,
    ) -> StatementResult:
        self._require_up()
        session = self._session(session_id)
        executor = self._executors[session_id]
        self.stats.statements += 1
        result = StatementResult.ok()
        last_rows: StatementResult | None = None
        batch_rowcounts: list[int] = []
        for stmt in self._parse(sql):
            if (
                isinstance(stmt, ast.Select)
                and stmt.into is None
                and cursor_type != CursorType.DEFAULT
            ):
                cursor = open_cursor(executor, stmt, cursor_type)
                session.register_cursor(cursor)
                result = StatementResult(
                    kind="rows",
                    result_set=None,
                    cursor_id=cursor.cursor_id,
                    extra={
                        "columns": cursor.columns,
                        "effective_cursor_type": cursor.effective_type,
                    },
                )
            else:
                result = executor.execute(stmt, placeholders=placeholders)
                if result.kind == "rows" and result.result_set is not None:
                    self.stats.rows_returned += len(result.result_set.rows)
                    last_rows = result
                elif result.kind == "rowcount":
                    batch_rowcounts.append(result.rowcount)
        # Like typical clients consuming a batch: the result set survives
        # trailing non-query statements (e.g. "CREATE VIEW; SELECT; DROP
        # VIEW" — TPC-H Q15's shape); their rowcounts ride alongside.
        if result.kind != "rows" and last_rows is not None:
            result = last_rows
        result.extra["batch_rowcounts"] = batch_rowcounts
        return result

    def execute_batch(
        self,
        session_id: int,
        statements: list[str],
        *,
        stop_after: int | None = None,
    ) -> tuple[list[StatementResult], Exception | None, int]:
        """Execute N independent SQL batches as one wire unit under WAL
        group commit.

        Each entry runs exactly as :meth:`execute` would (own wrapper
        transaction, own status-table row — per-statement exactly-once is
        unchanged), but every commit-time WAL force inside the batch is
        deferred and one group force at the batch boundary covers them all.
        The caller (the endpoint) releases no reply before this method
        returns, i.e. before the covering force landed — that is the group
        commit invariant.

        Returns ``(results, error, error_index)``: on a SQL error the
        results are the successful prefix and the suffix is not executed
        (matching the per-statement loop, where the error surfaces at the
        failing statement).  ``stop_after`` is fault injection's hook: run
        only that many sub-statements and return *without* the group force,
        modelling a process kill mid-batch (the deferred commits are lost).
        """
        with self._engine_mutex:
            return self._execute_batch_locked(session_id, statements, stop_after=stop_after)

    def _execute_batch_locked(
        self,
        session_id: int,
        statements: list[str],
        *,
        stop_after: int | None = None,
    ) -> tuple[list[StatementResult], Exception | None, int]:
        self._require_up()
        self._session(session_id)  # session errors surface batch-level
        wal = self.database.wal
        results: list[StatementResult] = []
        error: Exception | None = None
        error_index = -1
        bound = len(statements) if stop_after is None else min(stop_after, len(statements))
        wal.begin_deferred()
        try:
            # No lock *waits* inside a deferred window: waiting releases the
            # engine mutex, and another session's commit acknowledged during
            # the window would ride a force that hasn't happened yet.  Lock
            # conflicts inside a batch therefore fail fast (and Phoenix's
            # batch resubmission handles them like any statement error).
            with self.database.locks.no_wait():
                for index in range(bound):
                    try:
                        results.append(self._execute_locked(session_id, statements[index]))
                    except Error as exc:
                        error = exc
                        error_index = index
                        break
        except BaseException:
            # a device fault (StorageFault) mid-batch: the server is about
            # to be crashed by the endpoint — leave the deferred commits
            # un-forced; they die with the volatile engine
            wal.end_deferred()
            raise
        if stop_after is not None:
            # simulated kill between sub-statements: no group force, so
            # every deferred commit stays volatile and the crash loses it
            wal.end_deferred()
        else:
            # the invariant: force before any result is released — this can
            # itself meet an armed device fault (torn tail under the group
            # force), which propagates as a StorageFault crash with the
            # durable prefix deciding which sub-statements survived
            wal.group_force()
        return results, error, error_index

    def _parse(self, sql: str) -> tuple:
        """Parse a SQL batch through the server-wide parse cache.

        Repeated statement texts come back as the *same* AST objects —
        which is what keys the per-session plan caches.  Parse errors are
        not cached (they raise before the put).
        """
        cache = self._parse_cache
        if cache is None:
            return tuple(parse_script(sql))
        statements = cache.get(sql)
        if statements is not None:
            self.engine_metrics.parse_hits += 1
            return statements
        self.engine_metrics.parse_misses += 1
        statements = tuple(parse_script(sql))
        cache.put(sql, statements)
        return statements

    def fetch(self, session_id: int, cursor_id: int, n: int) -> tuple[list[tuple], bool]:
        """Fetch the next block from an open cursor."""
        with self._engine_mutex:
            self._require_up()
            if n <= 0:
                raise ProgrammingError("fetch count must be positive")
            session = self._session(session_id)
            cursor = session.get_cursor(cursor_id)
            rows, done = cursor.fetch(n)
            self.stats.rows_returned += len(rows)
            return rows, done

    def advance(self, session_id: int, cursor_id: int, position: int) -> None:
        """Server-side reposition (no rows cross the wire)."""
        with self._engine_mutex:
            self._require_up()
            session = self._session(session_id)
            session.get_cursor(cursor_id).advance_to(position)

    def close_cursor(self, session_id: int, cursor_id: int) -> None:
        with self._engine_mutex:
            self._require_up()
            self._session(session_id).close_cursor(cursor_id)

    # ----------------------------------------------------------- admin helpers

    def checkpoint(self) -> int:
        with self._engine_mutex:
            self._require_up()
            return self.database.checkpoint()

    def table_names(self) -> list[str]:
        with self._engine_mutex:
            self._require_up()
            return sorted(self.database.tables)

    def table_schema(self, session_id: int, name: str):
        """Catalog lookup for a table visible to the session (temp tables
        shadow persistent ones, as in name resolution)."""
        with self._engine_mutex:
            self._require_up()
            executor = self.executor_for(session_id)
            table, _ = executor.resolve_table(name)
            return table.schema
