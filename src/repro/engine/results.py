"""Result containers shared by the executor, server, and wire protocol.

A :class:`ResultSet` is column metadata plus materialized rows.  The
metadata is a list of :class:`~repro.engine.schema.Column` — the same shape
as table schemas — because Phoenix's whole materialization trick relies on
turning result metadata directly into a CREATE TABLE statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.schema import Column, TableSchema

__all__ = ["ResultSet", "StatementResult"]


@dataclass
class ResultSet:
    """Column descriptions + rows (fully materialized)."""

    columns: list[Column]
    rows: list[tuple]

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def to_schema(self, table_name: str, *, primary_key: tuple[str, ...] = ()) -> TableSchema:
        """Build a table schema that can hold this result (Phoenix Step 2)."""
        return TableSchema(
            name=table_name,
            columns=tuple(self.columns),
            primary_key=primary_key,
            temporary=table_name.startswith("#"),
        )

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class StatementResult:
    """Outcome of one statement.

    ``kind``:

    * ``"rows"`` — a query; ``result_set`` is populated (or a cursor was
      opened — then ``cursor_id`` is set and rows stream via FETCH);
    * ``"rowcount"`` — DML; ``rowcount`` is the affected-tuple count (the
      state the paper's status table makes testable);
    * ``"ok"`` — DDL / transaction control / SET.
    """

    kind: str
    result_set: ResultSet | None = None
    rowcount: int = 0
    message: str = ""
    cursor_id: int | None = None
    extra: dict = field(default_factory=dict)

    @classmethod
    def ok(cls, message: str = "") -> "StatementResult":
        return cls(kind="ok", message=message)

    @classmethod
    def count(cls, rowcount: int, message: str = "") -> "StatementResult":
        return cls(kind="rowcount", rowcount=rowcount, message=message)

    @classmethod
    def rows(cls, result_set: ResultSet) -> "StatementResult":
        return cls(kind="rows", result_set=result_set)
